//! Run-time comparison: one workload under all four modeled run-times,
//! with CPI, phase breakdown and JIT pipeline statistics — the paper's
//! CPython / PyPy w/o JIT / PyPy / V8 comparison in miniature.
//!
//! ```text
//! cargo run --release --example jit_vs_interpreter [workload-name]
//! ```

use qoa_core::report::{f2, pct, Table};
use qoa_core::runtime::{capture, RuntimeConfig};
use qoa_model::{Phase, RuntimeKind};
use qoa_uarch::UarchConfig;
use qoa_workloads::{by_name, Scale};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "richards".to_string());
    let Some(workload) = by_name(&name) else {
        eprintln!("unknown workload '{name}'");
        std::process::exit(1);
    };
    let uarch = UarchConfig::skylake();
    let mut t = Table::new(
        format!("Run-time comparison: {name}"),
        &[
            "runtime",
            "instructions",
            "cycles",
            "CPI",
            "interp%",
            "jit-code%",
            "gc%",
            "traces",
            "bridges",
        ],
    );
    let mut cpython_cycles = None;
    for kind in RuntimeKind::ALL {
        // The V8 preset runs the JetStream suite in the paper; it still
        // executes Python-suite programs fine for comparison purposes.
        let rt = RuntimeConfig::new(kind).with_nursery(512 << 10);
        let run = capture(&workload.source(Scale::Small), &rt).expect("runs");
        let stats = run.trace.simulate_ooo(&uarch);
        let share = |p: Phase| stats.cycles_by_phase[p] as f64 / stats.cycles.max(1) as f64;
        if kind == RuntimeKind::CPython {
            cpython_cycles = Some(stats.cycles);
        }
        t.row(vec![
            kind.label().to_string(),
            stats.instructions.to_string(),
            stats.cycles.to_string(),
            f2(stats.cpi()),
            pct(share(Phase::Interpreter)),
            pct(share(Phase::JitCode)),
            pct(stats.gc_share()),
            run.jit.traces_compiled.to_string(),
            run.jit.bridges_compiled.to_string(),
        ]);
        if kind == RuntimeKind::PyPyJit {
            if let Some(base) = cpython_cycles {
                println!(
                    "PyPy w/ JIT speedup over CPython: {}x",
                    f2(base as f64 / stats.cycles.max(1) as f64)
                );
            }
        }
    }
    println!("{}", t.render());
}
