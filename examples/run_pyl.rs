//! Run an arbitrary Pyl source file under any modeled run-time and report
//! its output, result, and overhead profile — the stack as a profiler for
//! your own guest programs.
//!
//! ```text
//! cargo run --release --example run_pyl -- path/to/program.pyl [cpython|pypy|pypy-nojit|v8]
//! ```
//!
//! With no arguments, runs a small built-in demo program.

use qoa_core::attribution::Breakdown;
use qoa_core::report::{pct, Table};
use qoa_core::runtime::{capture, RuntimeConfig};
use qoa_model::{Category, RuntimeKind};
use qoa_uarch::UarchConfig;

const DEMO: &str = "
# Demo: word frequencies with a dict, then a checksum.
words = 'the quick brown fox jumps over the lazy dog the fox'.split(' ')
counts = {}
for w in words:
    if w in counts:
        counts[w] = counts[w] + 1
    else:
        counts[w] = 1
top = 0
for w in counts:
    if counts[w] > top:
        top = counts[w]
print('distinct words:', len(counts), 'max count:', top)
result = crc32(json_dumps(counts))
";

fn main() {
    let mut args = std::env::args().skip(1);
    let source = match args.next() {
        Some(path) => std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {path}: {e}")),
        None => DEMO.to_string(),
    };
    let kind = match args.next().as_deref() {
        None | Some("cpython") => RuntimeKind::CPython,
        Some("pypy") => RuntimeKind::PyPyJit,
        Some("pypy-nojit") => RuntimeKind::PyPyNoJit,
        Some("v8") => RuntimeKind::V8,
        Some(other) => panic!("unknown runtime '{other}'"),
    };

    let run = capture(&source, &RuntimeConfig::new(kind)).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    for line in &run.output {
        println!("{line}");
    }
    if let Some(result) = &run.result {
        println!("result = {result}");
    }

    let stats = run.trace.simulate_simple(&UarchConfig::skylake());
    let b = Breakdown::from_stats("program", &stats);
    let mut t = Table::new(
        format!("Overhead profile ({})", kind.label()),
        &["category", "share"],
    );
    let mut rows: Vec<(Category, f64)> =
        Category::ALL.iter().map(|&c| (c, b.shares[c])).collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("shares are finite"));
    for (c, share) in rows.into_iter().filter(|(_, s)| *s > 0.001) {
        t.row(vec![c.label().to_string(), pct(share)]);
    }
    println!("{}", t.render());
    println!(
        "{} guest bytecodes, {} simulated instructions, {} cycles",
        run.vm.bytecodes, stats.instructions, stats.cycles
    );
}
