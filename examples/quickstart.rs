//! Quickstart: run one benchmark under the CPython model and print its
//! Table II overhead breakdown — the paper's §IV methodology in a dozen
//! lines.
//!
//! ```text
//! cargo run --release --example quickstart [workload-name]
//! ```

use qoa_core::attribution::attribute_workload;
use qoa_core::report::{pct, Table};
use qoa_core::runtime::RuntimeConfig;
use qoa_model::{Category, RuntimeKind};
use qoa_uarch::UarchConfig;
use qoa_workloads::{by_name, Scale};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "richards".to_string());
    let Some(workload) = by_name(&name) else {
        eprintln!("unknown workload '{name}'; try one of:");
        for w in qoa_workloads::python_suite() {
            eprint!("{} ", w.name);
        }
        eprintln!();
        std::process::exit(1);
    };

    let breakdown = attribute_workload(
        workload,
        Scale::Small,
        &RuntimeConfig::new(RuntimeKind::CPython),
        &UarchConfig::skylake(),
    )
    .expect("workload runs");

    let mut table = Table::new(
        format!("Overhead breakdown: {name} (CPython model, simple core)"),
        &["category", "group", "share"],
    );
    for c in Category::ALL {
        table.row(vec![
            c.label().to_string(),
            c.group().label().to_string(),
            pct(breakdown.shares[c]),
        ]);
    }
    println!("{}", table.render());
    println!(
        "identified overheads: {}   execute+library: {}   ({} cycles, {} instructions)",
        pct(breakdown.overhead_share()),
        pct(breakdown.compute_share()),
        breakdown.cycles,
        breakdown.instructions
    );
}
