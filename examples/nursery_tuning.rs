//! Nursery tuning: the paper's §V-B insight as a practical tool.
//!
//! Sweeps the generational nursery for one workload on the PyPy-model
//! run-time, prints the GC-frequency / cache-residency trade-off, and
//! recommends an application-specific nursery size — the paper's Fig. 17
//! takeaway ("nursery sizing should be done considering cache performance,
//! run-time configuration, and application characteristics").
//!
//! ```text
//! cargo run --release --example nursery_tuning [workload-name]
//! ```

use qoa_core::report::{f2, pct, Table};
use qoa_core::runtime::RuntimeConfig;
use qoa_core::sweeps::{best_nursery, format_bytes, nursery_sweep, NURSERY_SIZES_SCALED};
use qoa_model::RuntimeKind;
use qoa_uarch::UarchConfig;
use qoa_workloads::{by_name, Scale};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "spitfire".to_string());
    let Some(workload) = by_name(&name) else {
        eprintln!("unknown workload '{name}'");
        std::process::exit(1);
    };
    let uarch = UarchConfig::skylake();
    let rt = RuntimeConfig::new(RuntimeKind::PyPyJit);
    eprintln!("sweeping {} nursery sizes for '{name}'...", NURSERY_SIZES_SCALED.len());
    let points = nursery_sweep(workload, Scale::Small, &rt, &uarch, &NURSERY_SIZES_SCALED)
        .expect("workload runs");

    let mut t = Table::new(
        format!("Nursery sweep: {name} (PyPy model w/ JIT, 2MB LLC)"),
        &["nursery", "cycles", "gc-share", "llc-miss", "minor-GCs"],
    );
    for p in &points {
        t.row(vec![
            format_bytes(p.nursery),
            p.cycles.to_string(),
            pct(p.gc_share()),
            pct(p.llc_miss_rate),
            p.minor_collections.to_string(),
        ]);
    }
    println!("{}", t.render());

    let best = best_nursery(&points).expect("sweep produced points");
    let baseline = points
        .iter()
        .find(|p| p.nursery == (1 << 20))
        .expect("1MB point present");
    println!(
        "recommended nursery: {} ({}x vs the static 1MB policy)",
        format_bytes(best.nursery),
        f2(baseline.cycles as f64 / best.cycles as f64),
    );
}
