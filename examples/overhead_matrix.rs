//! Overhead matrix: every Table II category × every modeled run-time for
//! one workload — how each run-time design pays (or avoids) each cost.
//!
//! ```text
//! cargo run --release --example overhead_matrix [workload-name]
//! ```

use qoa_core::attribution::attribute_workload;
use qoa_core::report::{pct, Table};
use qoa_core::runtime::RuntimeConfig;
use qoa_model::{Category, RuntimeKind};
use qoa_uarch::UarchConfig;
use qoa_workloads::{by_name, Scale};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "deltablue".to_string());
    let Some(workload) = by_name(&name) else {
        eprintln!("unknown workload '{name}'");
        std::process::exit(1);
    };
    let uarch = UarchConfig::skylake();
    let breakdowns: Vec<_> = RuntimeKind::ALL
        .iter()
        .map(|&kind| {
            eprintln!("running {name} on {kind}...");
            (
                kind,
                attribute_workload(
                    workload,
                    Scale::Small,
                    &RuntimeConfig::new(kind).with_nursery(512 << 10),
                    &uarch,
                )
                .expect("workload runs"),
            )
        })
        .collect();

    let mut cols: Vec<String> = vec!["category".into()];
    cols.extend(breakdowns.iter().map(|(k, _)| k.label().to_string()));
    let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(format!("Overhead matrix: {name} (share of cycles)"), &col_refs);
    for c in Category::ALL {
        let mut row = vec![c.label().to_string()];
        row.extend(breakdowns.iter().map(|(_, b)| pct(b.shares[c])));
        t.row(row);
    }
    let mut row = vec!["identified overheads".to_string()];
    row.extend(breakdowns.iter().map(|(_, b)| pct(b.overhead_share())));
    t.row(row);
    println!("{}", t.render());

    println!("cycles:");
    for (k, b) in &breakdowns {
        println!("  {:<14} {:>12}", k.label(), b.cycles);
    }
}
