//! Chaos-engine guards.
//!
//! The contracts the fault-injection layer must keep:
//!
//! * **Neutrality** — with the engine compiled in but no faults armed,
//!   the simulation is bit-identical to a plain capture: same micro-ops,
//!   same cycles, same per-category attribution, and zero snapshots.
//! * **Differential oracle** — every injected-then-recovered run is
//!   byte-identical to the fault-free baseline.
//! * **Degrade mode** — JIT faults deoptimize in place and the run still
//!   completes with the baseline's guest result.
//! * **Snapshot determinism** — restoring a mid-run checkpoint and
//!   resuming reproduces the remainder of the run exactly.
//! * **Exposition** — the chaos counters surface through the Prometheus
//!   text format under their contractual names.

use qoa::chaos::{FaultKind, FaultPlan, FaultPoint, Snapshot};
use qoa::core::runtime::{capture, RuntimeConfig};
use qoa::core::{capture_chaos, oracle_check, stats_divergence, ChaosOptions};
use qoa::model::RuntimeKind;
use qoa::obs::metrics::Registry;
use qoa::obs::parse_exposition;
use qoa::uarch::UarchConfig;
use qoa::vm::{StepEvent, Vm, VmConfig};
use qoa::workloads::{by_name, Scale};

const WORKLOAD: &str = "go";

/// A loop hot enough to compile under the modeled PyPy JIT.
const HOT_SRC: &str = "t = 0\nfor i in range(3000):\n    t = t + i\nresult = t\n";

fn source() -> String {
    by_name(WORKLOAD).expect("workload").source(Scale::Tiny)
}

#[test]
fn disabled_chaos_engine_is_simulation_neutral() {
    let source = source();
    let uarch = UarchConfig::skylake();
    for kind in [RuntimeKind::CPython, RuntimeKind::PyPyJit] {
        let rt = RuntimeConfig::new(kind);
        let baseline = capture(&source, &rt).expect("baseline runs");
        let (run, out) =
            capture_chaos(&source, &rt, &ChaosOptions::new(FaultPlan::empty())).expect("runs");
        assert_eq!(out.faults_injected_total(), 0);
        assert_eq!(out.checkpoints_written, 0, "{kind:?}: empty plan must not snapshot");
        assert_eq!(oracle_check(&baseline, &run, &uarch), None, "{kind:?} diverged");
        // Spelled out on top of the oracle: the cycle counts are
        // bit-identical, so the disabled engine has zero simulated cost.
        let a = baseline.trace.simulate_simple(&uarch);
        let b = run.trace.simulate_simple(&uarch);
        assert_eq!(a.cycles, b.cycles, "{kind:?}: simulated cycles changed");
        assert_eq!(stats_divergence(&a, &b), None);
    }
}

#[test]
fn interpreter_faults_recover_byte_identically() {
    let source = source();
    let uarch = UarchConfig::skylake();
    let rt = RuntimeConfig::new(RuntimeKind::CPython);
    let baseline = capture(&source, &rt).expect("baseline runs");
    for kind in [FaultKind::FuelTrip, FaultKind::DeadlineTrip, FaultKind::AllocFault] {
        let opts = ChaosOptions::new(FaultPlan::single(1000, kind));
        let (run, out) = capture_chaos(&source, &rt, &opts)
            .unwrap_or_else(|e| panic!("{kind:?} not recovered: {e}"));
        assert_eq!(out.injected.get(kind.name()), Some(&1), "{kind:?} did not fire");
        assert_eq!(out.recoveries_total(), 1);
        assert!(out.restores >= 1, "{kind:?} recovered without a restore");
        assert!(out.checkpoints_written >= 1);
        assert_eq!(oracle_check(&baseline, &run, &uarch), None, "{kind:?} oracle violated");
    }
}

/// Regression: two faults inside one checkpoint window. The snapshot
/// predates both, so each restore must re-disarm *every* recovered point
/// — recovering them one-at-a-time against the same snapshot would
/// re-arm the other and livelock.
#[test]
fn multiple_faults_in_one_checkpoint_window_recover() {
    let source = source();
    let uarch = UarchConfig::skylake();
    let rt = RuntimeConfig::new(RuntimeKind::CPython);
    let baseline = capture(&source, &rt).expect("baseline runs");
    let plan = FaultPlan {
        seed: 7,
        points: vec![
            FaultPoint { tick: 2000, kind: FaultKind::DeadlineTrip },
            FaultPoint { tick: 2050, kind: FaultKind::DeadlineTrip },
            FaultPoint { tick: 2100, kind: FaultKind::FuelTrip },
        ],
    };
    // A cadence far larger than the run: the step-0 snapshot covers all
    // three faults.
    let opts = ChaosOptions::new(plan).with_checkpoint_every(10_000_000);
    let (run, out) = capture_chaos(&source, &rt, &opts).expect("recovers");
    assert_eq!(out.faults_injected_total(), 3);
    assert_eq!(out.restores, 3);
    assert_eq!(oracle_check(&baseline, &run, &uarch), None);
}

#[test]
fn jit_faults_recover_byte_identically() {
    let uarch = UarchConfig::skylake();
    let rt = RuntimeConfig::new(RuntimeKind::PyPyJit);
    let baseline = capture(HOT_SRC, &rt).expect("baseline runs");
    assert!(baseline.jit.traces_compiled > 0, "workload must exercise the JIT");
    for kind in [FaultKind::JitCompileFault, FaultKind::TraceAbort] {
        let opts = ChaosOptions::new(FaultPlan::single(1, kind));
        let (run, out) = capture_chaos(HOT_SRC, &rt, &opts)
            .unwrap_or_else(|e| panic!("{kind:?} not recovered: {e}"));
        assert_eq!(out.injected.get(kind.name()), Some(&1), "{kind:?} did not fire");
        assert!(out.restores >= 1);
        assert_eq!(oracle_check(&baseline, &run, &uarch), None, "{kind:?} oracle violated");
        // Restore-recovery rewinds the fault entirely: the recovered
        // run's JIT statistics match the baseline too.
        assert_eq!(run.jit.traces_compiled, baseline.jit.traces_compiled);
        assert_eq!(run.jit.deopts, baseline.jit.deopts);
    }
}

#[test]
fn bytecode_corruption_is_handled_at_load() {
    let source = source();
    let uarch = UarchConfig::skylake();
    let rt = RuntimeConfig::new(RuntimeKind::CPython);
    let baseline = capture(&source, &rt).expect("baseline runs");
    let opts = ChaosOptions::new(FaultPlan::single(0, FaultKind::BytecodeCorrupt));
    let (run, out) = capture_chaos(&source, &rt, &opts).expect("runs");
    assert_eq!(out.faults_injected_total(), 1);
    assert_eq!(
        out.verifier_caught + out.verifier_missed,
        1,
        "the corrupted load must be adjudicated"
    );
    // The pristine code is what ran either way.
    assert_eq!(oracle_check(&baseline, &run, &uarch), None);
}

#[test]
fn degrade_mode_completes_with_the_baseline_result() {
    let rt = RuntimeConfig::new(RuntimeKind::PyPyJit);
    let baseline = capture(HOT_SRC, &rt).expect("baseline runs");

    // Compile fault: the recording is discarded, the loop stays hot, and
    // a later attempt compiles it.
    let opts =
        ChaosOptions::new(FaultPlan::single(1, FaultKind::JitCompileFault)).with_degrade_jit();
    let (run, out) = capture_chaos(HOT_SRC, &rt, &opts).expect("degrades, not fails");
    assert_eq!(run.result, baseline.result);
    assert_eq!(out.restores, 0, "degrade mode must not restore");
    assert_eq!(out.recoveries.get("jit"), Some(&1));
    assert!(run.jit.aborted_recordings > baseline.jit.aborted_recordings);

    // Trace abort: the compiled loop deoptimizes back to the interpreter
    // and the run continues.
    let opts = ChaosOptions::new(FaultPlan::single(1, FaultKind::TraceAbort)).with_degrade_jit();
    let (run, out) = capture_chaos(HOT_SRC, &rt, &opts).expect("degrades, not fails");
    assert_eq!(run.result, baseline.result);
    assert_eq!(out.recoveries.get("jit"), Some(&1));
    assert!(run.jit.deopts > baseline.jit.deopts, "the abort must deoptimize");
}

#[test]
fn snapshot_restore_resumes_identically() {
    let source = source();
    let uarch = UarchConfig::skylake();
    let code = qoa::frontend::compile(&source).expect("compiles");

    let run_to_end = |mut vm: Vm<qoa::uarch::TraceBuffer>| {
        while !matches!(vm.step().expect("steps"), StepEvent::Done) {}
        let result = vm.global_display("result");
        let (trace, _) = vm.finish();
        (trace, result)
    };

    let mut reference = Vm::new(VmConfig::default(), qoa::uarch::TraceBuffer::new());
    reference.load_program(&code);
    let (full_trace, full_result) = run_to_end(reference);

    // Run a second machine part-way, checkpoint, throw the live machine
    // away, and finish from the restored snapshot.
    let mut vm = Vm::new(VmConfig::default(), qoa::uarch::TraceBuffer::new());
    vm.load_program(&code);
    for _ in 0..5000 {
        assert!(!matches!(vm.step().expect("steps"), StepEvent::Done), "ran out early");
    }
    let snap = Snapshot::capture(vm.steps(), &vm);
    drop(vm);
    let restored = snap.restore().expect("snapshot version matches");
    let (resumed_trace, resumed_result) = run_to_end(restored);

    assert_eq!(resumed_result, full_result);
    assert_eq!(resumed_trace.len(), full_trace.len(), "resumed trace length diverged");
    let a = full_trace.simulate_simple(&uarch);
    let b = resumed_trace.simulate_simple(&uarch);
    assert_eq!(stats_divergence(&a, &b), None, "resumed run simulates differently");
}

#[test]
fn chaos_counters_surface_in_the_exposition() {
    let source = source();
    let rt = RuntimeConfig::new(RuntimeKind::CPython);
    let opts = ChaosOptions::new(FaultPlan::single(1000, FaultKind::FuelTrip));
    let (_, out) = capture_chaos(&source, &rt, &opts).expect("recovers");

    let mut reg = Registry::new();
    out.export(&mut reg);
    let text = reg.expose();
    for name in [
        "qoa_chaos_faults_injected_total",
        "qoa_chaos_recoveries_total",
        "qoa_chaos_checkpoints_written_total",
        "qoa_chaos_restores_total",
    ] {
        assert!(text.contains(name), "exposition is missing {name}:\n{text}");
    }
    let exposition = parse_exposition(&text).expect("exposition round-trips");
    assert_eq!(
        exposition.get("qoa_chaos_faults_injected_total"),
        Some(out.faults_injected_total() as f64)
    );
    assert!(text.contains("qoa_chaos_recoveries_total{kind=\"fuel\"}"));
}
