//! Fault isolation and resume, end to end: a diverging guest program must
//! become a recorded failure (not a crashed sweep), and a killed sweep must
//! resume from its journal with byte-identical figure output.

use qoa::core::harness::{nursery_cell, Harness, HarnessOptions, NurseryCell};
use qoa::core::journal::{CellKey, CellMetrics, Metric};
use qoa::core::runtime::RuntimeConfig;
use qoa::core::QoaError;
use qoa::model::{CountingSink, RuntimeKind};
use qoa::uarch::UarchConfig;
use qoa::vm::{VmConfig, VmError};
use qoa::workloads::{by_name, Scale};
use std::path::PathBuf;
use std::time::Duration;

const DIVERGING: &str = "while True:\n    pass\n";

fn tmp_journal(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qoa-resilience-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn options(tag: &str) -> HarnessOptions {
    let mut opts = HarnessOptions::new("figtest", "cfg");
    opts.journal_dir = tmp_journal(tag);
    opts
}

/// A forever-looping guest is cut off by the execution fuel and recorded
/// as a failure; the sibling cells of the sweep still run to completion.
#[test]
fn diverging_guest_is_recorded_without_aborting_siblings() {
    let opts = options("fuel");
    let dir = opts.journal_dir.clone();
    let mut h = Harness::open(opts).expect("open");

    let looping = h.cell(CellKey::new("forever", "CPython", "p", "1"), |_| {
        let cfg = VmConfig { max_steps: 50_000, ..VmConfig::default() };
        qoa::vm::run_source(DIVERGING, cfg, CountingSink::new()).map_err(QoaError::from)?;
        Ok(CellMetrics::new())
    });
    assert!(looping.is_none(), "diverging guest must not produce metrics");

    let sibling = h.cell(CellKey::new("ok", "CPython", "p", "1"), |_| {
        let mut vm = qoa::vm::run_source("x = 2 + 3\n", VmConfig::default(), CountingSink::new())
            .map_err(QoaError::from)?;
        let mut m = CellMetrics::new();
        m.insert("x".into(), Metric::Int(vm.global_int("x").unwrap_or(-1)));
        Ok(m)
    });
    let sibling = sibling.expect("sibling cell must still run");
    assert_eq!(sibling.get("x").and_then(Metric::as_i64), Some(5));

    assert_eq!(h.failures().len(), 1);
    assert_eq!(h.failures()[0].kind, "fuel");
    // 1 of 2 cells failed: above the default 25% threshold.
    assert_eq!(h.finish(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Same shape under the wall-clock deadline instead of fuel.
#[test]
fn diverging_guest_is_cut_off_by_the_deadline() {
    let mut opts = options("deadline");
    let dir = opts.journal_dir.clone();
    opts.deadline = Some(Duration::from_millis(50));
    opts.max_failure_rate = 1.0;
    let mut h = Harness::open(opts).expect("open");

    let looping = h.cell(CellKey::new("forever", "CPython", "p", "1"), |deadline| {
        let cfg = VmConfig { deadline, ..VmConfig::default() };
        qoa::vm::run_source(DIVERGING, cfg, CountingSink::new()).map_err(QoaError::from)?;
        Ok(CellMetrics::new())
    });
    assert!(looping.is_none());
    assert_eq!(h.failures()[0].kind, "deadline");
    assert_eq!(h.finish(), 0, "within the 100% threshold");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A panicking cell is caught, recorded, and journaled: the rerun skips it
/// without executing the closure again.
#[test]
fn guest_panic_is_journaled_and_not_rerun() {
    let opts = options("panic");
    let dir = opts.journal_dir.clone();
    let key = CellKey::new("boom", "CPython", "p", "1");
    {
        let mut h = Harness::open(opts.clone()).expect("open");
        let r = h.cell(key.clone(), |_| panic!("simulated driver bug"));
        assert!(r.is_none());
        assert_eq!(h.failures()[0].kind, "panic");
        assert!(h.failures()[0].message.contains("simulated driver bug"));
    }
    let mut h = Harness::open(opts).expect("reopen");
    let r = h.cell(key, |_| {
        unreachable!("journaled failure must not re-run");
    });
    assert!(r.is_none(), "failure is replayed from the journal");
    assert_eq!(h.cells_skipped(), 1);
    assert_eq!(h.failures()[0].kind, "panic");
    let _ = std::fs::remove_dir_all(&dir);
}

fn render(points: &[Option<NurseryCell>]) -> String {
    // A miniature figure body: what fig10/fig11 would print for these
    // cells. Byte-identical output means byte-identical figures.
    points
        .iter()
        .map(|p| match p {
            Some(p) => format!(
                "{} {} {} {}\n",
                p.cycles, p.gc_cycles, p.llc_miss_rate, p.minor_collections
            ),
            None => "n/a\n".to_string(),
        })
        .collect()
}

/// Kill a sweep halfway, rerun it, and compare against an uninterrupted
/// run: the resumed figure output must be byte-identical.
#[test]
fn killed_sweep_resumes_from_the_journal_byte_identically() {
    let sizes = [128u64 << 10, 256 << 10];
    let w = by_name("tuple_gc").expect("workload");
    let rt = RuntimeConfig::new(RuntimeKind::PyPyNoJit);
    let uarch = UarchConfig::skylake();

    // Uninterrupted reference run in its own journal.
    let ref_opts = options("resume-ref");
    let ref_dir = ref_opts.journal_dir.clone();
    let mut h = Harness::open(ref_opts).expect("open");
    let reference: Vec<_> = sizes
        .iter()
        .map(|&n| nursery_cell(&mut h, w, Scale::Tiny, &rt, &uarch, n, ""))
        .collect();

    // Interrupted run: the process dies after the first point...
    let opts = options("resume");
    let dir = opts.journal_dir.clone();
    {
        let mut h = Harness::open(opts.clone()).expect("open");
        nursery_cell(&mut h, w, Scale::Tiny, &rt, &uarch, sizes[0], "").expect("first point runs");
        // (harness dropped without finish: simulates a kill)
    }

    // ...and the rerun completes the sweep, first point from the journal.
    let mut h = Harness::open(opts).expect("reopen");
    let resumed: Vec<_> = sizes
        .iter()
        .map(|&n| nursery_cell(&mut h, w, Scale::Tiny, &rt, &uarch, n, ""))
        .collect();
    assert_eq!(h.cells_skipped(), 1, "first point must come from the journal");
    assert_eq!(render(&resumed), render(&reference), "figure output must be byte-identical");

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--fresh` semantics: the journal is ignored and cells re-run.
#[test]
fn fresh_reruns_journaled_cells() {
    let opts = options("fresh");
    let dir = opts.journal_dir.clone();
    let key = CellKey::new("w", "CPython", "p", "1");
    {
        let mut h = Harness::open(opts.clone()).expect("open");
        h.cell(key.clone(), |_| {
            let mut m = CellMetrics::new();
            m.insert("x".into(), Metric::Int(1));
            Ok(m)
        });
    }
    let mut fresh_opts = opts;
    fresh_opts.fresh = true;
    let mut h = Harness::open(fresh_opts).expect("reopen fresh");
    let ran = std::cell::Cell::new(false);
    let m = h.cell(key, |_| {
        ran.set(true);
        let mut m = CellMetrics::new();
        m.insert("x".into(), Metric::Int(2));
        Ok(m)
    });
    assert!(ran.get(), "--fresh must re-measure");
    assert_eq!(m.expect("runs").get("x").and_then(Metric::as_i64), Some(2));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The typed taxonomy end to end: each guest-visible failure mode maps to
/// its own [`QoaError`] kind.
#[test]
fn error_taxonomy_classifies_failure_modes() {
    let cases: [(&str, VmConfig, &str); 4] = [
        ("x = (\n", VmConfig::default(), "compile"),
        ("x = 1 // 0\n", VmConfig::default(), "guest"),
        (DIVERGING, VmConfig { max_steps: 10_000, ..VmConfig::default() }, "fuel"),
        (
            "xs = []\nwhile True:\n    xs.append(xs)\n",
            VmConfig { max_heap_bytes: 64 << 10, max_steps: 50_000_000, ..VmConfig::default() },
            "oom",
        ),
    ];
    for (src, cfg, want) in cases {
        let err = qoa::vm::run_source(src, cfg, CountingSink::new())
            .map(|_| ())
            .map_err(QoaError::from)
            .expect_err(src);
        assert_eq!(err.kind(), want, "{src} -> {err}");
    }
    let deadline_err: VmError = {
        let cfg = VmConfig::default().with_timeout(Duration::from_millis(20));
        qoa::vm::run_source(DIVERGING, cfg, CountingSink::new())
            .map(|_| ())
            .expect_err("deadline must fire")
    };
    assert_eq!(QoaError::from(deadline_err).kind(), "deadline");
}
