//! The semantics-preservation oracle for the static optimization
//! pipeline.
//!
//! The optimizer's contract is that opt levels are *observationally
//! indistinguishable* to the guest: across every workload of both suites
//! (85 programs), the rendered `result` global, the captured `print`
//! output, and any raised error must be byte-identical at every opt
//! level — including when a seeded chaos plan injects and recovers
//! faults mid-run. Cycle counts, step counts, and dispatch statistics
//! legitimately differ between levels; that difference *is* the measured
//! win, and it is reported by `fig04-static --opt`, not hidden here.

use qoa::chaos::FaultPlan;
use qoa::core::runtime::{capture, RuntimeConfig};
use qoa::core::{capture_chaos, fault_kinds_for, ChaosOptions};
use qoa::model::RuntimeKind;
use qoa::workloads::{Scale, Workload};

/// What the guest can observe from one run: the `result` global, stdout,
/// or the error that stopped the program.
#[derive(Debug, PartialEq, Eq)]
enum Observed {
    Ok { result: Option<String>, output: Vec<String> },
    Err(String),
}

fn observe(w: &Workload, level: u8) -> Observed {
    let rt = RuntimeConfig::new(RuntimeKind::CPython).with_opt_level(level);
    match capture(&w.source(Scale::Tiny), &rt) {
        Ok(run) => Observed::Ok { result: run.result, output: run.output },
        Err(e) => Observed::Err(e.to_string()),
    }
}

fn assert_suite_invariant(suite: &[Workload]) {
    for w in suite {
        let base = observe(w, 0);
        if let Observed::Ok { result, .. } = &base {
            assert!(
                result.is_some(),
                "{}: workload must bind a `result` global",
                w.name
            );
        }
        for level in 1..=qoa::analysis::MAX_OPT_LEVEL {
            let opt = observe(w, level);
            assert_eq!(
                opt, base,
                "{}: opt level {level} changed guest-observable behavior",
                w.name
            );
        }
    }
}

#[test]
fn python_suite_is_byte_identical_across_opt_levels() {
    assert_suite_invariant(qoa::workloads::python_suite());
}

#[test]
fn jetstream_suite_is_byte_identical_across_opt_levels() {
    assert_suite_invariant(qoa::workloads::jetstream_suite());
}

/// The composition the acceptance gate names: optimized code under a
/// seeded chaos plan (injected-then-recovered faults) must still match
/// the plain, unoptimized, fault-free baseline byte for byte.
#[test]
fn optimized_chaos_runs_match_unoptimized_baselines() {
    let kinds = fault_kinds_for(RuntimeKind::CPython);
    for (name, seed) in [("go", 7u64), ("richards", 11), ("float", 13)] {
        let w = qoa::workloads::by_name(name).expect("workload");
        let src = w.source(Scale::Tiny);
        let baseline =
            capture(&src, &RuntimeConfig::new(RuntimeKind::CPython)).expect("baseline runs");
        let rt = RuntimeConfig::new(RuntimeKind::CPython)
            .with_opt_level(qoa::analysis::MAX_OPT_LEVEL);
        let plan = FaultPlan::seeded(seed, 20_000, 3, kinds);
        let (run, outcome) =
            capture_chaos(&src, &rt, &ChaosOptions::new(plan)).expect("chaos run recovers");
        assert!(
            outcome.faults_injected_total() > 0,
            "{name}: seeded plan injected nothing — composition untested"
        );
        assert_eq!(run.result, baseline.result, "{name}: result diverged under opt+chaos");
        assert_eq!(run.output, baseline.output, "{name}: output diverged under opt+chaos");
    }
}

/// Every code object the optimizer emits must re-verify, across the
/// whole corpus — the "failure is a hard error" half of the contract,
/// exercised here simply by `optimize` succeeding (it re-verifies
/// internally and surfaces any failure as `OptError::Reverify`).
#[test]
fn every_optimized_workload_reverifies() {
    for w in qoa::workloads::python_suite().iter().chain(qoa::workloads::jetstream_suite()) {
        let code = qoa::frontend::compile(&w.source(Scale::Tiny)).expect("compiles");
        let (v, report) = qoa::analysis::optimize(&code, qoa::analysis::MAX_OPT_LEVEL)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        // The token is minted only by the verifier, so its existence is
        // the proof; spot-check the tree anyway to keep the invariant
        // honest against future refactors of `optimize`.
        qoa::analysis::verify(v.get()).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let _ = report;
    }
}
