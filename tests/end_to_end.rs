//! Cross-crate integration tests: the paper's headline findings must hold
//! end-to-end, from guest source through run-times and the simulator to
//! the analysis layer.

use qoa::core::attribution::{attribute_workload, average_shares};
use qoa::core::runtime::{capture, RuntimeConfig};
use qoa::core::sweeps::{nursery_sweep, sweep_trace, SweepParam};
use qoa::model::{Category, Phase, RuntimeKind};
use qoa::uarch::UarchConfig;
use qoa::workloads::{by_name, Scale};

fn breakdown(name: &str, kind: RuntimeKind) -> qoa::core::Breakdown {
    attribute_workload(
        by_name(name).expect("workload"),
        Scale::Tiny,
        &RuntimeConfig::new(kind),
        &UarchConfig::skylake(),
    )
    .expect("runs")
}

#[test]
fn finding1_c_function_calls_are_a_major_cpython_overhead() {
    // §IV-C.1: C function calls average 18.4% — the single largest
    // interpreter-operation overhead for most benchmarks.
    let names = ["richards", "go", "deltablue", "nbody", "float"];
    let bs: Vec<_> = names
        .iter()
        .map(|n| breakdown(n, RuntimeKind::CPython))
        .collect();
    let avg = average_shares(&bs);
    assert!(
        avg[Category::CFunctionCall] > 0.10,
        "C-call share {:.3}",
        avg[Category::CFunctionCall]
    );
    assert!(avg[Category::Dispatch] > 0.05);
    // The overheads leave well under half the time for real execution —
    // the ≥2.8x headline.
    let overhead: f64 = bs.iter().map(|b| b.overhead_share()).sum::<f64>() / bs.len() as f64;
    assert!(overhead > 0.55, "overheads only {overhead:.3}");
}

#[test]
fn finding1b_c_calls_survive_the_jit_but_shrink() {
    // Fig. 4b vs Fig. 5: 18.4% on CPython vs 7.5% on PyPy.
    let c = breakdown("richards", RuntimeKind::CPython);
    let p = breakdown("richards", RuntimeKind::PyPyJit);
    assert!(p.shares[Category::CFunctionCall] > 0.005, "JIT erased C calls");
    assert!(
        p.shares[Category::CFunctionCall] < c.shares[Category::CFunctionCall],
        "JIT did not reduce C-call share"
    );
}

#[test]
fn finding1c_native_heavy_group_lives_in_c_library() {
    // §IV-C.1: the pickle/regex group spends >64% in C library code.
    for name in ["pickle", "regex_dna", "json_dumps"] {
        let b = breakdown(name, RuntimeKind::CPython);
        assert!(
            b.shares[Category::CLibrary] > 0.5,
            "{name}: C library only {:.3}",
            b.shares[Category::CLibrary]
        );
    }
}

#[test]
fn finding2_low_ilp_and_memory_sensitivity() {
    // §V-A: issue width barely matters; memory parameters matter for the
    // JIT run-time.
    let w = by_name("spitfire").expect("workload");
    let jit = capture(
        &w.source(Scale::Tiny),
        &RuntimeConfig::new(RuntimeKind::PyPyJit).with_nursery(512 << 10),
    )
    .expect("runs");
    let base = UarchConfig::skylake();

    let widths = sweep_trace(&jit.trace, SweepParam::IssueWidth, &base);
    let w4 = widths[1].cpi;
    let w32 = widths[4].cpi;
    assert!(
        (w4 - w32).abs() / w4 < 0.05,
        "issue width mattered too much: {w4} vs {w32}"
    );

    let lat = sweep_trace(&jit.trace, SweepParam::MemLatency, &base);
    assert!(
        lat[3].cpi > lat[0].cpi,
        "memory latency had no effect: {} vs {}",
        lat[0].cpi,
        lat[3].cpi
    );
}

#[test]
fn finding2b_jit_is_less_branch_sensitive_than_interpreter() {
    let w = by_name("eparse").expect("workload");
    let base = UarchConfig::skylake();
    let rel_branch_sensitivity = |kind: RuntimeKind| {
        let run = capture(
            &w.source(Scale::Tiny),
            &RuntimeConfig::new(kind).with_nursery(512 << 10),
        )
        .expect("runs");
        let pts = sweep_trace(&run.trace, SweepParam::BranchScale, &base);
        pts[0].cpi / pts[4].cpi // 0.5x tables vs 8x tables
    };
    let interp = rel_branch_sensitivity(RuntimeKind::CPython);
    let jit = rel_branch_sensitivity(RuntimeKind::PyPyJit);
    assert!(
        jit < interp,
        "JIT should be less branch-sensitive: jit {jit:.3} vs interp {interp:.3}"
    );
}

#[test]
fn finding3_nursery_trade_off_exists() {
    // §V-B: small nurseries collect often; big nurseries miss in the LLC.
    let w = by_name("spitfire").expect("workload");
    let pts = nursery_sweep(
        w,
        Scale::Tiny,
        &RuntimeConfig::new(RuntimeKind::PyPyJit),
        &UarchConfig::skylake(),
        &[128 << 10, 1 << 20, 16 << 20],
    )
    .expect("sweeps");
    // GC frequency falls monotonically with nursery size.
    assert!(pts[0].minor_collections > pts[1].minor_collections);
    assert!(pts[1].minor_collections >= pts[2].minor_collections);
    // GC cycles follow.
    assert!(pts[0].gc_cycles > pts[2].gc_cycles);
    // The big nursery pays in LLC misses.
    assert!(
        pts[2].llc_miss_rate > pts[1].llc_miss_rate,
        "no cache penalty: {} vs {}",
        pts[1].llc_miss_rate,
        pts[2].llc_miss_rate
    );
}

#[test]
fn finding3b_jit_amplifies_gc_share() {
    // Fig. 13: the JIT shrinks mutator time, so the GC share grows.
    let w = by_name("richards").expect("workload");
    let uarch = UarchConfig::skylake();
    let share = |kind: RuntimeKind| {
        let run = capture(
            &w.source(Scale::Small),
            &RuntimeConfig::new(kind).with_nursery(128 << 10),
        )
        .expect("runs");
        run.trace.simulate_ooo(&uarch).gc_share()
    };
    let nojit = share(RuntimeKind::PyPyNoJit);
    let jit = share(RuntimeKind::PyPyJit);
    assert!(nojit > 0.0, "no GC at all without JIT");
    assert!(
        jit > nojit,
        "JIT should amplify the GC share: {jit:.4} vs {nojit:.4}"
    );
}

#[test]
fn phases_partition_the_jit_run() {
    let w = by_name("fannkuch").expect("workload");
    let run = capture(
        &w.source(Scale::Tiny),
        &RuntimeConfig::new(RuntimeKind::PyPyJit).with_nursery(256 << 10),
    )
    .expect("runs");
    let stats = run.trace.simulate_simple(&UarchConfig::skylake());
    assert_eq!(stats.cycles_by_phase.total(), stats.cycles);
    assert!(stats.cycles_by_phase[Phase::JitCode] > 0);
    assert!(stats.cycles_by_phase[Phase::JitCompile] > 0);
    assert!(stats.cycles_by_phase[Phase::Interpreter] > 0);
}

#[test]
fn all_four_runtimes_agree_on_results() {
    for name in ["nqueens", "json_loads", "sym_sum"] {
        let w = by_name(name).expect("workload");
        let mut results = Vec::new();
        for kind in RuntimeKind::ALL {
            let run = capture(&w.source(Scale::Tiny), &RuntimeConfig::new(kind))
                .unwrap_or_else(|e| panic!("{name} on {kind}: {e}"));
            results.push(run.result.expect("result"));
        }
        results.dedup();
        assert_eq!(results.len(), 1, "{name}: runtimes disagree: {results:?}");
    }
}
