//! Observability overhead guard.
//!
//! The contract the `qoa-obs` layer must keep: turning observability on
//! may cost a little wall-clock time, but it must not perturb the
//! *simulation* at all — same micro-ops, same cycles, same per-category
//! attribution — and the sampled profile must agree with the exact
//! attribution the figures are built from.

use qoa::core::runtime::{capture, capture_observed, RuntimeConfig};
use qoa::model::RuntimeKind;
use qoa::obs::profiler::ObsCore;
use qoa::obs::{ObsConfig, Observability};
use qoa::uarch::UarchConfig;
use qoa::workloads::{by_name, Scale};
use std::time::{Duration, Instant};

const WORKLOAD: &str = "go";

fn rt_off() -> RuntimeConfig {
    RuntimeConfig::new(RuntimeKind::CPython)
}

fn rt_on() -> RuntimeConfig {
    rt_off().with_observability(ObsConfig::on().with_sample_every(512))
}

#[test]
fn observability_does_not_change_the_simulation() {
    let source = by_name(WORKLOAD).expect("workload").source(Scale::Tiny);
    let uarch = UarchConfig::skylake();

    let off = capture(&source, &rt_off()).expect("runs");
    let on = capture(&source, &rt_on()).expect("runs");

    // Frame events cost zero micro-ops: the traces are op-identical.
    assert_eq!(off.trace.len(), on.trace.len(), "micro-op counts differ");
    assert_eq!(off.result, on.result);
    assert!(!on.trace.frame_events().is_empty(), "frame events were captured");
    assert!(off.trace.frame_events().is_empty(), "off-path must not capture frames");

    // Replaying the observed trace through the sampling core yields
    // bit-identical statistics to the unobserved replay.
    let exact = off.trace.simulate_simple(&uarch);
    let mut core = ObsCore::new(&uarch, 512, 4096);
    on.trace.replay(&mut core);
    let report = core.finish();
    assert_eq!(report.stats.cycles, exact.cycles, "simulated cycles changed");
    assert_eq!(report.stats.instructions, exact.instructions, "instructions changed");
    for (c, &cycles) in exact.cycles_by_category.iter() {
        assert_eq!(
            report.stats.cycles_by_category[c], cycles,
            "category {c:?} attribution changed"
        );
    }
}

#[test]
fn sampled_shares_agree_with_exact_attribution_within_2pp() {
    let source = by_name(WORKLOAD).expect("workload").source(Scale::Tiny);
    let uarch = UarchConfig::skylake();
    let run = capture(&source, &rt_on()).expect("runs");
    let mut core = ObsCore::new(&uarch, 256, 4096);
    run.trace.replay(&mut core);
    let report = core.finish();

    assert!(report.profile.total_samples > 500, "too few samples to compare");
    let sampled = report.profile.category_shares();
    let exact = report.stats.category_shares();
    for (c, &s) in sampled.iter() {
        let d = (s - exact[c]).abs();
        assert!(
            d <= 0.02,
            "{c:?}: sampled {:.2}% vs exact {:.2}% (diff {:.2}pp)",
            s * 100.0,
            exact[c] * 100.0,
            d * 100.0
        );
    }
}

#[test]
fn wall_clock_overhead_stays_under_five_percent() {
    // Mid-scale workload, best-of-N timing of the full capture+replay
    // pipeline with observability off vs on. Best-of filters scheduler
    // noise; the absolute slack keeps the test honest on loaded CI boxes
    // where a 5% relative bound on a fast run is within timer jitter.
    let source = by_name(WORKLOAD).expect("workload").source(Scale::Small);
    let uarch = UarchConfig::skylake();

    let time_off = || {
        let t = Instant::now();
        let run = capture(&source, &rt_off()).expect("runs");
        let stats = run.trace.simulate_simple(&uarch);
        (t.elapsed(), stats.cycles)
    };
    let time_on = || {
        let t = Instant::now();
        let mut obs = Observability::new(ObsConfig::on());
        let run = capture_observed(&source, &rt_on(), &mut obs).expect("runs");
        let mut core = ObsCore::new(&uarch, 4096, 4096);
        run.trace.replay(&mut core);
        let report = core.finish();
        (t.elapsed(), report.stats.cycles)
    };

    let mut best_off = Duration::MAX;
    let mut best_on = Duration::MAX;
    let mut cycles_off = 0;
    let mut cycles_on = 0;
    for _ in 0..5 {
        let (d, c) = time_off();
        best_off = best_off.min(d);
        cycles_off = c;
        let (d, c) = time_on();
        best_on = best_on.min(d);
        cycles_on = c;
    }

    // The cycle totals agree regardless of the toggle...
    assert_eq!(cycles_off, cycles_on, "observability changed simulated cycles");
    // ...and the wall cost of observing stays under 5% (+ jitter slack —
    // generous because the workspace suite runs many test binaries
    // concurrently; a real regression is multiplicative, not 100ms).
    let budget = best_off.mul_f64(1.05) + Duration::from_millis(100);
    assert!(
        best_on <= budget,
        "observability overhead too high: off {best_off:?}, on {best_on:?} (budget {budget:?})"
    );
}
