//! Root facade for the QOA workspace.
//!
//! Re-exports the public API of every layer so that downstream users depend
//! on a single crate. See the workspace README for the architecture overview
//! and `qoa_core` for the experiment API that reproduces each table and
//! figure of *Quantitative Overhead Analysis for Python* (IISWC 2018).

pub use qoa_analysis as analysis;
pub use qoa_chaos as chaos;
pub use qoa_core as core;
pub use qoa_frontend as frontend;
pub use qoa_heap as heap;
pub use qoa_jit as jit;
pub use qoa_model as model;
pub use qoa_obs as obs;
pub use qoa_uarch as uarch;
pub use qoa_vm as vm;
pub use qoa_workloads as workloads;
