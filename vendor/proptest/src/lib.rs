//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This shim keeps the same surface (`proptest!`, `prop_oneof!`,
//! `Strategy`, `BoxedStrategy`, regex-subset string strategies, ranges,
//! tuples, `collection::vec`, `Just`, `any`, `prop_map`, `prop_recursive`,
//! `ProptestConfig`, `prop_assert*`, `TestCaseError`) with a deterministic
//! generator and no shrinking: a failing case panics with the generated
//! inputs' debug output instead of a minimised counterexample.

use std::fmt;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Deterministic RNG (splitmix64)
// ---------------------------------------------------------------------------

pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

// ---------------------------------------------------------------------------
// Errors and config
// ---------------------------------------------------------------------------

/// Failure raised by `prop_assert!` / returned from a test-case body.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// Present for API parity; rejects are treated as failures here.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds a recursive strategy: `f` maps a strategy for depth-`d` values
    /// to one for depth-`d+1` values. `_desired_size` and `_expected_branch`
    /// are accepted for API parity but unused (no shrinking/sizing here).
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut cur = self.boxed();
        for _ in 0..depth {
            cur = f(cur.clone()).boxed();
        }
        cur
    }
}

/// Type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union used by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.options.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total.max(1));
        for (w, s) in &self.options {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        self.options[0].1.generate(rng)
    }
}

// --- numeric ranges --------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// --- any::<T>() ------------------------------------------------------------

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// --- tuples ----------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// --- regex-subset string strategy ------------------------------------------

/// `&'static str` strategies are interpreted as a small regex subset:
/// literal chars, character classes `[...]` (ranges, escapes `\n \t \\ \- \]`),
/// and quantifiers `{m}`, `{m,n}`, `*`, `+`, `?` (starred forms capped at 8).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        gen_from_pattern(self, rng)
    }
}

enum Atom {
    Lit(char),
    Class(Vec<(char, char)>),
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

fn parse_pattern(pat: &str) -> Vec<(Atom, usize, usize)> {
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                i += 1;
                let mut items: Vec<(char, char)> = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = if chars[i] == '\\' {
                        i += 1;
                        unescape(chars[i])
                    } else {
                        chars[i]
                    };
                    i += 1;
                    if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                        i += 1;
                        let hi = if chars[i] == '\\' {
                            i += 1;
                            unescape(chars[i])
                        } else {
                            chars[i]
                        };
                        i += 1;
                        items.push((lo, hi));
                    } else {
                        items.push((lo, lo));
                    }
                }
                i += 1; // closing ']'
                Atom::Class(items)
            }
            '\\' => {
                i += 1;
                let c = unescape(chars[i]);
                i += 1;
                Atom::Lit(c)
            }
            c => {
                i += 1;
                Atom::Lit(c)
            }
        };
        // optional quantifier
        let (lo, hi) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    i += 1;
                    let mut lo = 0usize;
                    while chars[i].is_ascii_digit() {
                        lo = lo * 10 + chars[i] as usize - '0' as usize;
                        i += 1;
                    }
                    let hi = if chars[i] == ',' {
                        i += 1;
                        let mut hi = 0usize;
                        while chars[i].is_ascii_digit() {
                            hi = hi * 10 + chars[i] as usize - '0' as usize;
                            i += 1;
                        }
                        hi
                    } else {
                        lo
                    };
                    i += 1; // closing '}'
                    (lo, hi)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        out.push((atom, lo, hi));
    }
    out
}

fn gen_from_pattern(pat: &str, rng: &mut TestRng) -> String {
    let atoms = parse_pattern(pat);
    let mut s = String::new();
    for (atom, lo, hi) in &atoms {
        let n = *lo + rng.below((*hi - *lo + 1) as u64) as usize;
        for _ in 0..n {
            match atom {
                Atom::Lit(c) => s.push(*c),
                Atom::Class(items) => {
                    let total: u64 = items
                        .iter()
                        .map(|(a, b)| (*b as u64).saturating_sub(*a as u64) + 1)
                        .sum();
                    let mut pick = rng.below(total.max(1));
                    for (a, b) in items {
                        let span = (*b as u64).saturating_sub(*a as u64) + 1;
                        if pick < span {
                            s.push(char::from_u32(*a as u32 + pick as u32).unwrap_or(*a));
                            break;
                        }
                        pick -= span;
                    }
                }
            }
        }
    }
    s
}

// --- collections -----------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty vec size range");
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), l, r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
}

/// The main entry point. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases as u64 {
                let mut rng = $crate::TestRng::new(
                    case.wrapping_mul(0x0123_4567_89AB_CDEF).wrapping_add(0xDEAD_BEEF)
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let snapshot = format!(
                    concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                    $(&$arg),+
                );
                let result: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {} of {} failed: {}\ninputs:\n{}",
                        case + 1, cfg.cases, e, snapshot
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
    pub use crate as proptest;
}

#[cfg(test)]
mod shim_tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in -5i64..=5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn string_pattern_respected(s in "[a-c]{2,4}") {
            prop_assert!(s.len() >= 2 && s.len() <= 4, "len was {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn oneof_and_vec(v in proptest::collection::vec(prop_oneof![1 => Just(1u8), 2 => Just(2u8)], 1..9)) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|&x| x == 1 || x == 2));
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug, Clone)]
        #[allow(dead_code)] // exercised only through Debug formatting
        enum Tree {
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        let leaf = (0u8..10).prop_map(Tree::Leaf).boxed();
        let strat = leaf.prop_recursive(4, 24, 2, |inner| {
            prop_oneof![
                2 => inner.clone(),
                1 => (inner.clone(), inner)
                    .prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b))),
            ]
        });
        let mut rng = super::TestRng::new(7);
        for _ in 0..64 {
            let _ = strat.generate(&mut rng);
        }
    }
}
