//! Offline shim for the subset of the `criterion` API this workspace uses.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This shim times each benchmark with `std::time::Instant` over a
//! fixed iteration budget and prints a one-line summary — no statistics,
//! plots, or baselines, but `cargo bench` compiles and runs.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // One warmup pass, then a fixed measurement budget.
        black_box(f());
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < self.iters {
            black_box(f());
            iters += 1;
        }
        self.elapsed = start.elapsed();
    }
}

fn report(group: Option<&str>, label: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iters.max(1) as f64;
    let qualified = match group {
        Some(g) => format!("{g}/{label}"),
        None => label.to_string(),
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 * 1e9 / per_iter.max(1.0);
            format!("  ({per_sec:.0} elem/s)")
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 * 1e9 / per_iter.max(1.0);
            format!("  ({per_sec:.0} B/s)")
        }
        None => String::new(),
    };
    println!("bench {qualified:<40} {per_iter:>12.1} ns/iter{rate}");
}

pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iters: 10 }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: self.iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(None, name, &b, None);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            iters: self.criterion.iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(Some(&self.name), &id.label, &b, self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: self.criterion.iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        report(Some(&self.name), &id.label, &b, self.throughput);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod shim_tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(4));
        g.bench_function(BenchmarkId::new("f", 3), |b| b.iter(|| black_box(3) * 2));
        g.bench_with_input(BenchmarkId::new("in", "x"), &5u64, |b, &x| {
            b.iter(|| x + 1)
        });
        g.finish();
    }
}
