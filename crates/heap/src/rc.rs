//! CPython-style size-class allocator with immediate reclamation.
//!
//! Models `obmalloc`: small allocations are served from per-size-class free
//! lists (pools), larger ones from a large-object region. Every allocation
//! and free emits the loads/stores a real free-list allocator performs, so
//! the *object allocation* overhead category of Table II (deallocation
//! immediately followed by reallocation, e.g. method frames and arithmetic
//! temporaries) is visible in both the instruction counts and the cache.

use crate::ObjId;
use qoa_model::{mem, Category, Emitter, OpSink};

/// Size classes step by 16 bytes up to this bound; beyond it allocations go
/// to the large-object region.
const SMALL_LIMIT: u64 = 512;
const CLASS_STEP: u64 = 16;
const NUM_CLASSES: usize = (SMALL_LIMIT / CLASS_STEP) as usize;

/// Emission sites within the allocator's code region.
mod site {
    pub const ALLOC: u32 = 0x000;
    pub const FREE: u32 = 0x040;
    pub const INCREF: u32 = 0x080;
    pub const DECREF: u32 = 0x0C0;
}

/// Allocator statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RcStats {
    /// Objects allocated.
    pub allocs: u64,
    /// Objects freed.
    pub frees: u64,
    /// Bytes currently live.
    pub live_bytes: u64,
    /// High-water mark of live bytes.
    pub peak_bytes: u64,
    /// Reference-count increments observed.
    pub increfs: u64,
    /// Reference-count decrements observed.
    pub decrefs: u64,
}

#[derive(Debug, Clone, Copy)]
struct Record {
    addr: u64,
    size: u64,
}

/// The reference-counting interpreter's heap.
#[derive(Debug, Clone)]
pub struct RcHeap {
    /// Free lists per size class (addresses of freed blocks).
    free: Vec<Vec<u64>>,
    /// Free lists for large blocks, keyed by rounded size.
    free_large: std::collections::HashMap<u64, Vec<u64>>,
    bump: u64,
    large_bump: u64,
    records: Vec<Option<Record>>,
    stats: RcStats,
}

impl Default for RcHeap {
    fn default() -> Self {
        Self::new()
    }
}

impl RcHeap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        RcHeap {
            free: vec![Vec::new(); NUM_CLASSES],
            free_large: std::collections::HashMap::new(),
            bump: mem::RC_HEAP_BASE,
            large_bump: mem::LARGE_OBJECT_BASE,
            records: Vec::new(),
            stats: RcStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> RcStats {
        self.stats
    }

    fn record_slot(&mut self, id: ObjId) -> &mut Option<Record> {
        let idx = id.index();
        if idx >= self.records.len() {
            self.records.resize(idx + 1, None);
        }
        &mut self.records[idx]
    }

    fn round(size: u64) -> u64 {
        size.max(CLASS_STEP).div_ceil(CLASS_STEP) * CLASS_STEP
    }

    /// Allocates `size` bytes for object `id`, emitting allocator traffic
    /// tagged with `category`, and returns the simulated address.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already allocated.
    pub fn alloc<S: OpSink>(
        &mut self,
        id: ObjId,
        size: u64,
        category: Category,
        e: &mut Emitter<'_, S>,
    ) -> u64 {
        let rounded = Self::round(size);
        // Size-class computation.
        e.alu(site::ALLOC, category, 2);
        let addr = if rounded <= SMALL_LIMIT {
            let class = (rounded / CLASS_STEP) as usize - 1;
            // Load the free-list head.
            e.load(site::ALLOC + 2, category, self.class_head_addr(class));
            match self.free[class].pop() {
                Some(addr) => {
                    // Pop: read the link word stored in the block.
                    e.load(site::ALLOC + 3, category, addr);
                    e.store(site::ALLOC + 4, category, self.class_head_addr(class));
                    addr
                }
                None => {
                    // Bump a fresh block from the arena.
                    e.alu(site::ALLOC + 5, category, 1);
                    e.store(site::ALLOC + 6, category, self.class_head_addr(class));
                    let addr = self.bump;
                    self.bump += rounded;
                    addr
                }
            }
        } else {
            let key = rounded.next_power_of_two();
            e.alu(site::ALLOC + 7, category, 3);
            match self.free_large.get_mut(&key).and_then(|v| v.pop()) {
                Some(addr) => {
                    e.load(site::ALLOC + 8, category, addr);
                    addr
                }
                None => {
                    let addr = self.large_bump;
                    self.large_bump += key;
                    addr
                }
            }
        };
        let prev = self.record_slot(id).replace(Record { addr, size: rounded });
        assert!(prev.is_none(), "{id} allocated twice");
        self.stats.allocs += 1;
        self.stats.live_bytes += rounded;
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.live_bytes);
        addr
    }

    fn class_head_addr(&self, class: usize) -> u64 {
        mem::STATIC_DATA_BASE + 0x1000 + (class as u64) * 8
    }

    /// Frees object `id`, emitting the free-list pushes.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not allocated.
    pub fn free<S: OpSink>(&mut self, id: ObjId, category: Category, e: &mut Emitter<'_, S>) {
        let rec = self
            .record_slot(id)
            .take()
            .unwrap_or_else(|| panic!("free of unallocated {id}"));
        // Push onto the free list: write the link word and the head.
        e.store(site::FREE, category, rec.addr);
        if rec.size <= SMALL_LIMIT {
            let class = (rec.size / CLASS_STEP) as usize - 1;
            e.store(site::FREE + 1, category, self.class_head_addr(class));
            self.free[class].push(rec.addr);
        } else {
            e.alu(site::FREE + 2, category, 2);
            self.free_large
                .entry(rec.size.next_power_of_two())
                .or_default()
                .push(rec.addr);
        }
        self.stats.frees += 1;
        self.stats.live_bytes -= rec.size;
    }

    /// Emits a reference-count increment on `id` — a single
    /// read-modify-write of the header word, like `Py_INCREF`.
    pub fn incref<S: OpSink>(&mut self, id: ObjId, e: &mut Emitter<'_, S>) {
        if let Some(rec) = self.records.get(id.index()).copied().flatten() {
            e.store(site::INCREF, Category::GarbageCollection, rec.addr);
            self.stats.increfs += 1;
        }
    }

    /// Emits a reference-count decrement on `id`. Returns `true` when the
    /// modeled count would reach zero — the *caller* decides to free (it
    /// owns the real count).
    pub fn decref<S: OpSink>(&mut self, id: ObjId, new_count_zero: bool, e: &mut Emitter<'_, S>) {
        if let Some(rec) = self.records.get(id.index()).copied().flatten() {
            e.store(site::DECREF, Category::GarbageCollection, rec.addr);
            // The zero test.
            e.branch(site::DECREF + 3, Category::GarbageCollection, new_count_zero, site::FREE);
            self.stats.decrefs += 1;
        }
    }

    /// Simulated address of `id`, if allocated.
    pub fn addr_of(&self, id: ObjId) -> Option<u64> {
        self.records.get(id.index()).copied().flatten().map(|r| r.addr)
    }

    /// Rounded size of `id`, if allocated.
    pub fn size_of(&self, id: ObjId) -> Option<u64> {
        self.records.get(id.index()).copied().flatten().map(|r| r.size)
    }

    /// Number of live objects.
    pub fn live_objects(&self) -> usize {
        self.records.iter().filter(|r| r.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoa_model::{CountingSink, Phase};

    fn emitter(sink: &mut CountingSink) -> Emitter<'_, CountingSink> {
        Emitter::new(sink, Phase::Interpreter, mem::INTERP_CODE_BASE)
    }

    #[test]
    fn alloc_free_reuses_addresses() {
        let mut h = RcHeap::new();
        let mut sink = CountingSink::new();
        let mut e = emitter(&mut sink);
        let a = h.alloc(ObjId(0), 32, Category::ObjectAllocation, &mut e);
        h.free(ObjId(0), Category::GarbageCollection, &mut e);
        let b = h.alloc(ObjId(1), 32, Category::ObjectAllocation, &mut e);
        assert_eq!(a, b, "freed block should be reused");
        assert_eq!(h.stats().allocs, 2);
        assert_eq!(h.stats().frees, 1);
    }

    #[test]
    fn distinct_live_objects_do_not_alias() {
        let mut h = RcHeap::new();
        let mut sink = CountingSink::new();
        let mut e = emitter(&mut sink);
        let mut addrs = Vec::new();
        for i in 0..100 {
            addrs.push(h.alloc(ObjId(i), 48, Category::ObjectAllocation, &mut e));
        }
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), 100);
        assert_eq!(h.live_objects(), 100);
    }

    #[test]
    fn large_allocations_go_to_large_region() {
        let mut h = RcHeap::new();
        let mut sink = CountingSink::new();
        let mut e = emitter(&mut sink);
        let a = h.alloc(ObjId(0), 4096, Category::ObjectAllocation, &mut e);
        assert!(qoa_model::Segment::of(a) == Some(qoa_model::Segment::LargeObject));
        h.free(ObjId(0), Category::GarbageCollection, &mut e);
        let b = h.alloc(ObjId(1), 4000, Category::ObjectAllocation, &mut e);
        assert_eq!(a, b, "large block reused via power-of-two bucket");
    }

    #[test]
    fn refcount_ops_emit_gc_category() {
        let mut h = RcHeap::new();
        let mut sink = CountingSink::new();
        {
            let mut e = emitter(&mut sink);
            h.alloc(ObjId(0), 32, Category::ObjectAllocation, &mut e);
            h.incref(ObjId(0), &mut e);
            h.decref(ObjId(0), false, &mut e);
        }
        assert!(sink.by_category[Category::GarbageCollection] >= 3);
        assert_eq!(h.stats().increfs, 1);
        assert_eq!(h.stats().decrefs, 1);
    }

    #[test]
    #[should_panic(expected = "allocated twice")]
    fn double_alloc_panics() {
        let mut h = RcHeap::new();
        let mut sink = CountingSink::new();
        let mut e = emitter(&mut sink);
        h.alloc(ObjId(0), 32, Category::ObjectAllocation, &mut e);
        h.alloc(ObjId(0), 32, Category::ObjectAllocation, &mut e);
    }

    #[test]
    fn live_bytes_track_alloc_and_free() {
        let mut h = RcHeap::new();
        let mut sink = CountingSink::new();
        let mut e = emitter(&mut sink);
        h.alloc(ObjId(0), 30, Category::ObjectAllocation, &mut e); // rounds to 32
        h.alloc(ObjId(1), 100, Category::ObjectAllocation, &mut e); // rounds to 112
        assert_eq!(h.stats().live_bytes, 32 + 112);
        h.free(ObjId(0), Category::GarbageCollection, &mut e);
        assert_eq!(h.stats().live_bytes, 112);
        assert_eq!(h.stats().peak_bytes, 144);
    }
}
