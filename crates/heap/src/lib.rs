//! Memory-management substrates over the simulated address space.
//!
//! Two allocators model the two run-time families the paper studies:
//!
//! * [`RcHeap`] — a CPython-style size-class allocator with immediate
//!   reclamation, used by the reference-counting interpreter. Objects live
//!   at stable simulated addresses in the `rc-heap` segment.
//! * [`GenHeap`] — a PyPy-style generational collector: new objects are
//!   bump-allocated in a contiguous, configurable-size *nursery*; a copying
//!   minor collection moves survivors to the old space; the old space is
//!   collected mark-sweep when it grows past a threshold; a write barrier
//!   maintains the remembered set of old→young references.
//!
//! Both allocators *emit* categorized micro-ops for everything they do, so
//! the cache hierarchy in `qoa-uarch` observes allocation streaming through
//! the nursery — that interaction is the entire subject of §V-B of the
//! paper (nursery size vs. LLC size, Fig. 10–17).
//!
//! Object identity is a stable [`ObjId`] owned by the VM; the heap maps ids
//! to (moving) simulated addresses. The VM describes its object graph to
//! the collector through the [`Tracer`] trait.

pub mod gen;
pub mod rc;

pub use gen::{GcConfig, GcStats, GenHeap, Space};
pub use rc::{RcHeap, RcStats};

/// Stable identity of a heap object, assigned by the VM's object table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u32);

impl ObjId {
    /// The id as a dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ObjId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

/// Describes the mutator's object graph to the garbage collector.
///
/// The VM implements this: `roots` enumerates frame slots, value stacks and
/// globals; `refs` enumerates the outgoing references of one object.
pub trait Tracer {
    /// Visits every root reference.
    fn roots(&self, visit: &mut dyn FnMut(ObjId));
    /// Visits every outgoing reference of `id`.
    fn refs(&self, id: ObjId, visit: &mut dyn FnMut(ObjId));
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::{ObjId, Tracer};
    use std::collections::HashMap;

    /// A test object graph with explicit roots and edges.
    #[derive(Debug, Default, Clone)]
    pub struct Graph {
        pub roots: Vec<ObjId>,
        pub edges: HashMap<ObjId, Vec<ObjId>>,
    }

    impl Tracer for Graph {
        fn roots(&self, visit: &mut dyn FnMut(ObjId)) {
            for &r in &self.roots {
                visit(r);
            }
        }
        fn refs(&self, id: ObjId, visit: &mut dyn FnMut(ObjId)) {
            if let Some(children) = self.edges.get(&id) {
                for &c in children {
                    visit(c);
                }
            }
        }
    }
}
