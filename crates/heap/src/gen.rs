//! PyPy-style generational garbage collector.
//!
//! New objects are bump-allocated in a contiguous **nursery** whose size is
//! the paper's central tuning knob (§V-B, Fig. 10–17). When the nursery
//! fills, a **minor collection** traces the young generation from the roots
//! and the remembered set, copies survivors into the **old space**, and
//! resets the bump pointer — so nursery addresses are reused every cycle,
//! which is precisely why a nursery that fits in the LLC stays cache-hot
//! and one that does not trashes it (Fig. 10's ~2.4× miss-rate cliff). The
//! old space is collected with a mark-sweep pass when it outgrows a
//! threshold (PyPy runs this incrementally; we run it in one pass at minor
//! boundaries, which preserves the cost accounting).
//!
//! Every phase of the collector emits categorized micro-ops
//! ([`Category::GarbageCollection`]) under [`Phase::GcMinor`] /
//! [`Phase::GcMajor`], so both the GC-time share (Fig. 11, 13) and its
//! cache footprint are observable.

use crate::{ObjId, Tracer};
use qoa_model::{mem, Category, Emitter, OpSink, Phase};

/// Emission sites within the collector's code region.
mod site {
    pub const ALLOC: u32 = 0x000;
    pub const BARRIER: u32 = 0x040;
    pub const MINOR_SCAN: u32 = 0x080;
    pub const MINOR_COPY: u32 = 0x0C0;
    pub const MINOR_RESET: u32 = 0x100;
    pub const MAJOR_MARK: u32 = 0x140;
    pub const MAJOR_SWEEP: u32 = 0x180;
}

/// Which space an object currently lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Space {
    /// The nursery (young generation).
    Young,
    /// The old generation.
    Old,
    /// The large-object space (never copied).
    Large,
}

/// Generational-collector configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcConfig {
    /// Nursery size in bytes (the paper sweeps 512 kB – 128 MB).
    pub nursery_size: u64,
    /// Allocations larger than this go straight to the large-object space.
    pub large_threshold: u64,
    /// Run a major collection when old-space live bytes exceed this.
    pub major_threshold: u64,
    /// Growth factor applied to `major_threshold` after each major GC.
    pub major_growth_num: u64,
    /// Denominator of the growth factor.
    pub major_growth_den: u64,
    /// Fixed per-minor-collection work (stack maps, remembered-set and
    /// page management, write-barrier bookkeeping) in micro-ops. Real
    /// minor-pause floors are tens of microseconds — tens of thousands of
    /// instructions — even when nothing survives.
    pub minor_fixed_ops: u32,
}

impl GcConfig {
    /// PyPy-like defaults with the given nursery size.
    pub fn with_nursery(nursery_size: u64) -> Self {
        GcConfig {
            nursery_size,
            large_threshold: (nursery_size / 8).max(32 << 10),
            major_threshold: 16 << 20,
            major_growth_num: 18,
            major_growth_den: 10,
            minor_fixed_ops: 60_000,
        }
    }
}

impl Default for GcConfig {
    /// PyPy's default nursery is a few megabytes; 4 MB here.
    fn default() -> Self {
        GcConfig::with_nursery(4 << 20)
    }
}

/// Collector statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Minor (nursery) collections performed.
    pub minor_collections: u64,
    /// Major (old-space) collections performed.
    pub major_collections: u64,
    /// Total bytes bump-allocated in the nursery.
    pub nursery_allocated: u64,
    /// Total bytes copied out of the nursery by minor collections.
    pub bytes_promoted: u64,
    /// Young objects reclaimed by minor collections.
    pub young_reclaimed: u64,
    /// Old/large objects reclaimed by major collections.
    pub old_reclaimed: u64,
    /// Current live bytes in the old space.
    pub old_live_bytes: u64,
    /// Objects currently in the remembered set.
    pub remembered_len: u64,
}

impl GcStats {
    /// Fraction of nursery-allocated bytes that survived to the old space.
    pub fn survival_rate(&self) -> f64 {
        if self.nursery_allocated == 0 {
            0.0
        } else {
            self.bytes_promoted as f64 / self.nursery_allocated as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Record {
    addr: u64,
    size: u64,
    space: Space,
    remembered: bool,
}

/// The generational heap.
#[derive(Debug, Clone)]
pub struct GenHeap {
    cfg: GcConfig,
    nursery_bump: u64,
    old_bump: u64,
    old_free: std::collections::HashMap<u64, Vec<u64>>,
    large_bump: u64,
    records: Vec<Option<Record>>,
    remembered: Vec<ObjId>,
    stats: GcStats,
    major_threshold: u64,
    mark: Vec<bool>,
}

impl GenHeap {
    /// Creates a heap with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the nursery size exceeds the segment headroom.
    pub fn new(cfg: GcConfig) -> Self {
        assert!(cfg.nursery_size <= mem::NURSERY_MAX_SIZE);
        assert!(cfg.nursery_size >= 4096);
        GenHeap {
            cfg,
            nursery_bump: 0,
            old_bump: mem::OLD_SPACE_BASE,
            old_free: std::collections::HashMap::new(),
            large_bump: mem::LARGE_OBJECT_BASE,
            records: Vec::new(),
            remembered: Vec::new(),
            stats: GcStats::default(),
            major_threshold: cfg.major_threshold,
            mark: Vec::new(),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &GcConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> GcStats {
        let mut s = self.stats;
        s.remembered_len = self.remembered.len() as u64;
        s
    }

    fn slot(&mut self, id: ObjId) -> &mut Option<Record> {
        let idx = id.index();
        if idx >= self.records.len() {
            self.records.resize(idx + 1, None);
        }
        &mut self.records[idx]
    }

    fn get(&self, id: ObjId) -> Option<Record> {
        self.records.get(id.index()).copied().flatten()
    }

    /// Simulated address of `id`, if allocated.
    pub fn addr_of(&self, id: ObjId) -> Option<u64> {
        self.get(id).map(|r| r.addr)
    }

    /// Space of `id`, if allocated.
    pub fn space_of(&self, id: ObjId) -> Option<Space> {
        self.get(id).map(|r| r.space)
    }

    /// Number of live (tracked) objects.
    pub fn live_objects(&self) -> usize {
        self.records.iter().filter(|r| r.is_some()).count()
    }

    /// Bytes remaining in the nursery before the next minor collection.
    pub fn nursery_headroom(&self) -> u64 {
        self.cfg.nursery_size - self.nursery_bump
    }

    /// Current live bytes: old space plus the occupied nursery prefix.
    pub fn live_bytes(&self) -> u64 {
        self.stats.old_live_bytes + self.nursery_bump
    }

    /// Whether an allocation of `size` would trigger a minor collection.
    pub fn needs_minor(&self, size: u64) -> bool {
        let rounded = Self::round(size);
        rounded <= self.cfg.large_threshold && self.nursery_bump + rounded > self.cfg.nursery_size
    }

    /// Whether the old space has outgrown its threshold.
    pub fn needs_major(&self) -> bool {
        self.stats.old_live_bytes > self.major_threshold
    }

    fn round(size: u64) -> u64 {
        size.max(16).div_ceil(16) * 16
    }

    /// Bump-allocates `size` bytes for `id` in the nursery (or the
    /// large-object space for big allocations). Emits the fast-path
    /// bump-pointer ops and the object's initializing stores.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already allocated, or if the nursery lacks
    /// headroom — call [`GenHeap::minor_collect`] first when
    /// [`GenHeap::needs_minor`] says so.
    pub fn alloc<S: OpSink>(
        &mut self,
        id: ObjId,
        size: u64,
        e: &mut Emitter<'_, S>,
    ) -> u64 {
        let rounded = Self::round(size);
        let (addr, space) = if rounded > self.cfg.large_threshold {
            let addr = self.large_bump;
            self.large_bump += rounded;
            self.stats.old_live_bytes += rounded;
            (addr, Space::Large)
        } else {
            assert!(
                self.nursery_bump + rounded <= self.cfg.nursery_size,
                "nursery exhausted: run minor_collect first"
            );
            // Fast path: load bump, compare limit, store bump.
            e.load(site::ALLOC, Category::ObjectAllocation, self.bump_ptr_addr());
            e.alu(site::ALLOC + 1, Category::ObjectAllocation, 1);
            e.branch(site::ALLOC + 2, Category::ObjectAllocation, false, site::MINOR_SCAN);
            e.store(site::ALLOC + 3, Category::ObjectAllocation, self.bump_ptr_addr());
            let addr = mem::NURSERY_BASE + self.nursery_bump;
            self.nursery_bump += rounded;
            self.stats.nursery_allocated += rounded;
            (addr, Space::Young)
        };
        let prev = self.slot(id).replace(Record { addr, size: rounded, space, remembered: false });
        assert!(prev.is_none(), "{id} allocated twice");
        addr
    }

    fn bump_ptr_addr(&self) -> u64 {
        mem::STATIC_DATA_BASE + 0x2000
    }

    /// Generational write barrier: the VM calls this on every reference
    /// store `parent.field = child`. Old/large parents holding young
    /// children enter the remembered set.
    pub fn write_barrier<S: OpSink>(
        &mut self,
        parent: ObjId,
        child: ObjId,
        e: &mut Emitter<'_, S>,
    ) {
        // The barrier's flag test is real work on every pointer store.
        e.alu(site::BARRIER, Category::GarbageCollection, 1);
        let (Some(p), Some(c)) = (self.get(parent), self.get(child)) else {
            return;
        };
        if p.space != Space::Young && c.space == Space::Young && !p.remembered {
            e.store(site::BARRIER + 1, Category::GarbageCollection, p.addr);
            self.remembered.push(parent);
            if let Some(rec) = self.slot(parent).as_mut() {
                rec.remembered = true;
            }
        }
    }

    /// Runs a minor (nursery) collection: traces the young generation from
    /// `tracer`'s roots plus the remembered set, copies survivors to the
    /// old space, and resets the nursery. Returns the ids whose objects
    /// died (the VM reclaims their Rust-side storage).
    pub fn minor_collect<T: Tracer, S: OpSink>(
        &mut self,
        tracer: &T,
        e: &mut Emitter<'_, S>,
    ) -> Vec<ObjId> {
        e.with_phase(Phase::GcMinor, |e| self.minor_inner(tracer, e))
    }

    fn minor_inner<T: Tracer, S: OpSink>(
        &mut self,
        tracer: &T,
        e: &mut Emitter<'_, S>,
    ) -> Vec<ObjId> {
        self.stats.minor_collections += 1;
        // Fixed pause work: shadow-stack scan, remembered-set maintenance,
        // nursery page management.
        let fixed = self.cfg.minor_fixed_ops;
        for i in 0..fixed / 5 {
            e.alu(site::MINOR_SCAN + 8, Category::GarbageCollection, 4);
            e.load(
                site::MINOR_SCAN + 9,
                Category::GarbageCollection,
                qoa_model::mem::STATIC_DATA_BASE + 0x3000 + ((i % 512) as u64) * 8,
            );
        }
        self.mark.clear();
        self.mark.resize(self.records.len(), false);

        // Root enumeration: roots and remembered-set entries seed the scan.
        let mut work: Vec<ObjId> = Vec::new();
        tracer.roots(&mut |id| work.push(id));
        // Roots are loaded from frames/stacks.
        for _ in 0..work.len() {
            e.load(site::MINOR_SCAN, Category::GarbageCollection, self.bump_ptr_addr());
        }
        let remembered = std::mem::take(&mut self.remembered);
        for &parent in &remembered {
            if let Some(rec) = self.get(parent) {
                // Scan the remembered old object's fields for young refs.
                e.load_span(site::MINOR_SCAN + 1, Category::GarbageCollection, rec.addr, rec.size);
                tracer.refs(parent, &mut |child| work.push(child));
                if let Some(r) = self.slot(parent).as_mut() {
                    r.remembered = false;
                }
            }
        }

        // Trace the young reachable set. Recorded *old* objects terminate
        // the scan (their young references are covered by the remembered
        // set), but unrecorded objects — immortal singletons, interned
        // constants, static namespaces like the globals dict — are pinned
        // roots that must be traced *through* on every minor collection.
        let mut survivors: Vec<ObjId> = Vec::new();
        while let Some(id) = work.pop() {
            if id.index() >= self.mark.len() {
                self.mark.resize(id.index() + 1, false);
            }
            if self.mark[id.index()] {
                continue;
            }
            self.mark[id.index()] = true;
            match self.get(id) {
                None => {
                    // Pinned/static object: trace through its references.
                    tracer.refs(id, &mut |child| work.push(child));
                }
                Some(rec) if rec.space == Space::Young => {
                    survivors.push(id);
                    // Scanning the object's fields for references.
                    e.load_span(
                        site::MINOR_SCAN + 2,
                        Category::GarbageCollection,
                        rec.addr,
                        rec.size,
                    );
                    tracer.refs(id, &mut |child| work.push(child));
                }
                Some(_) => {}
            }
        }

        // Copy survivors to the old space.
        for &id in &survivors {
            let rec = self.get(id).expect("survivor vanished");
            let new_addr = self.old_alloc(rec.size);
            e.load_span(site::MINOR_COPY, Category::GarbageCollection, rec.addr, rec.size);
            e.store_span(site::MINOR_COPY + 1, Category::GarbageCollection, new_addr, rec.size);
            self.stats.bytes_promoted += rec.size;
            self.stats.old_live_bytes += rec.size;
            if let Some(r) = self.slot(id).as_mut() {
                r.addr = new_addr;
                r.space = Space::Old;
            }
        }

        // Everything young and unmarked is dead; the nursery resets.
        let mut dead = Vec::new();
        for (idx, slot) in self.records.iter_mut().enumerate() {
            if let Some(rec) = slot {
                if rec.space == Space::Young && !self.mark.get(idx).copied().unwrap_or(false) {
                    self.stats.young_reclaimed += 1;
                    dead.push(ObjId(idx as u32));
                    *slot = None;
                }
            }
        }
        e.store(site::MINOR_RESET, Category::GarbageCollection, self.bump_ptr_addr());
        self.nursery_bump = 0;
        dead
    }

    fn old_alloc(&mut self, size: u64) -> u64 {
        let key = size.next_power_of_two().max(16);
        if let Some(addr) = self.old_free.get_mut(&key).and_then(|v| v.pop()) {
            return addr;
        }
        let addr = self.old_bump;
        self.old_bump += key;
        addr
    }

    /// Runs a major (old-space) collection: full mark from the roots, then
    /// sweep of unmarked old/large objects. Returns the ids that died.
    pub fn major_collect<T: Tracer, S: OpSink>(
        &mut self,
        tracer: &T,
        e: &mut Emitter<'_, S>,
    ) -> Vec<ObjId> {
        e.with_phase(Phase::GcMajor, |e| self.major_inner(tracer, e))
    }

    fn major_inner<T: Tracer, S: OpSink>(
        &mut self,
        tracer: &T,
        e: &mut Emitter<'_, S>,
    ) -> Vec<ObjId> {
        self.stats.major_collections += 1;
        let fixed = self.cfg.minor_fixed_ops * 4;
        for i in 0..fixed / 5 {
            e.alu(site::MAJOR_MARK + 8, Category::GarbageCollection, 4);
            e.load(
                site::MAJOR_MARK + 9,
                Category::GarbageCollection,
                qoa_model::mem::STATIC_DATA_BASE + 0x3000 + ((i % 512) as u64) * 8,
            );
        }
        self.mark.clear();
        self.mark.resize(self.records.len(), false);
        let mut work: Vec<ObjId> = Vec::new();
        tracer.roots(&mut |id| work.push(id));
        while let Some(id) = work.pop() {
            if id.index() >= self.mark.len() {
                self.mark.resize(id.index() + 1, false);
            }
            if self.mark[id.index()] {
                continue;
            }
            self.mark[id.index()] = true;
            if let Some(rec) = self.get(id) {
                // Mark bit write + header read.
                e.load(site::MAJOR_MARK, Category::GarbageCollection, rec.addr);
                e.store(site::MAJOR_MARK + 1, Category::GarbageCollection, rec.addr);
                // Field scan.
                e.load_span(site::MAJOR_MARK + 2, Category::GarbageCollection, rec.addr, rec.size);
            }
            tracer.refs(id, &mut |child| work.push(child));
        }
        // Sweep old and large spaces.
        let mut dead = Vec::new();
        for (idx, slot) in self.records.iter_mut().enumerate() {
            if let Some(rec) = slot {
                if rec.space != Space::Young && !self.mark.get(idx).copied().unwrap_or(false) {
                    e.store(site::MAJOR_SWEEP, Category::GarbageCollection, rec.addr);
                    self.stats.old_reclaimed += 1;
                    self.stats.old_live_bytes = self.stats.old_live_bytes.saturating_sub(rec.size);
                    if rec.space == Space::Old {
                        self.old_free
                            .entry(rec.size.next_power_of_two().max(16))
                            .or_default()
                            .push(rec.addr);
                    }
                    dead.push(ObjId(idx as u32));
                    *slot = None;
                }
            }
        }
        self.remembered.retain(|id| {
            self.records
                .get(id.index())
                .copied()
                .flatten()
                .is_some()
        });
        self.major_threshold = (self.stats.old_live_bytes.max(self.cfg.major_threshold)
            * self.cfg.major_growth_num)
            / self.cfg.major_growth_den;
        dead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Graph;
    use qoa_model::CountingSink;

    fn emitter(sink: &mut CountingSink) -> Emitter<'_, CountingSink> {
        Emitter::new(sink, Phase::Interpreter, mem::INTERP_CODE_BASE)
    }

    fn heap() -> GenHeap {
        GenHeap::new(GcConfig::with_nursery(64 << 10))
    }

    #[test]
    fn nursery_allocation_is_sequential() {
        let mut h = heap();
        let mut sink = CountingSink::new();
        let mut e = emitter(&mut sink);
        let a = h.alloc(ObjId(0), 32, &mut e);
        let b = h.alloc(ObjId(1), 32, &mut e);
        assert_eq!(b, a + 32);
        assert_eq!(Space::Young, h.space_of(ObjId(0)).unwrap());
    }

    #[test]
    fn minor_collect_promotes_reachable_and_frees_dead() {
        let mut h = heap();
        let mut sink = CountingSink::new();
        let mut e = emitter(&mut sink);
        h.alloc(ObjId(0), 32, &mut e);
        h.alloc(ObjId(1), 32, &mut e);
        h.alloc(ObjId(2), 32, &mut e);
        let graph = Graph {
            roots: vec![ObjId(0)],
            edges: [(ObjId(0), vec![ObjId(1)])].into_iter().collect(),
        };
        let dead = h.minor_collect(&graph, &mut e);
        assert_eq!(dead, vec![ObjId(2)]);
        assert_eq!(h.space_of(ObjId(0)), Some(Space::Old));
        assert_eq!(h.space_of(ObjId(1)), Some(Space::Old));
        assert_eq!(h.space_of(ObjId(2)), None);
        assert_eq!(h.stats().minor_collections, 1);
        assert_eq!(h.stats().young_reclaimed, 1);
        assert!(h.stats().bytes_promoted >= 64);
        assert_eq!(h.nursery_headroom(), h.config().nursery_size);
    }

    #[test]
    fn nursery_addresses_are_reused_after_collection() {
        let mut h = heap();
        let mut sink = CountingSink::new();
        let mut e = emitter(&mut sink);
        let a = h.alloc(ObjId(0), 32, &mut e);
        let graph = Graph::default(); // nothing reachable
        h.minor_collect(&graph, &mut e);
        let b = h.alloc(ObjId(1), 32, &mut e);
        assert_eq!(a, b, "nursery bump must reset");
    }

    #[test]
    fn remembered_set_keeps_young_objects_alive() {
        let mut h = heap();
        let mut sink = CountingSink::new();
        let mut e = emitter(&mut sink);
        // Promote parent to old space first.
        h.alloc(ObjId(0), 32, &mut e);
        let g0 = Graph { roots: vec![ObjId(0)], edges: Default::default() };
        h.minor_collect(&g0, &mut e);
        assert_eq!(h.space_of(ObjId(0)), Some(Space::Old));
        // Young child referenced only from the old parent.
        h.alloc(ObjId(1), 32, &mut e);
        h.write_barrier(ObjId(0), ObjId(1), &mut e);
        // Note: roots deliberately DO NOT include the parent this time —
        // only the remembered set can save the child.
        let g1 = Graph {
            roots: vec![],
            edges: [(ObjId(0), vec![ObjId(1)])].into_iter().collect(),
        };
        let dead = h.minor_collect(&g1, &mut e);
        assert!(dead.is_empty(), "child must survive via remembered set");
        assert_eq!(h.space_of(ObjId(1)), Some(Space::Old));
    }

    #[test]
    fn without_barrier_hidden_young_object_dies() {
        // The converse of the test above: no barrier call, no survival.
        let mut h = heap();
        let mut sink = CountingSink::new();
        let mut e = emitter(&mut sink);
        h.alloc(ObjId(0), 32, &mut e);
        let g0 = Graph { roots: vec![ObjId(0)], edges: Default::default() };
        h.minor_collect(&g0, &mut e);
        h.alloc(ObjId(1), 32, &mut e);
        let g1 = Graph {
            roots: vec![],
            edges: [(ObjId(0), vec![ObjId(1)])].into_iter().collect(),
        };
        let dead = h.minor_collect(&g1, &mut e);
        assert_eq!(dead, vec![ObjId(1)]);
    }

    #[test]
    fn large_objects_bypass_the_nursery() {
        let mut h = heap();
        let mut sink = CountingSink::new();
        let mut e = emitter(&mut sink);
        let big = h.config().large_threshold + 1;
        h.alloc(ObjId(0), big, &mut e);
        assert_eq!(h.space_of(ObjId(0)), Some(Space::Large));
        // A minor collection with no roots must NOT free a large object.
        let dead = h.minor_collect(&Graph::default(), &mut e);
        assert!(dead.is_empty());
        // A major collection does.
        let dead = h.major_collect(&Graph::default(), &mut e);
        assert_eq!(dead, vec![ObjId(0)]);
    }

    #[test]
    fn major_collect_reclaims_unreachable_old_objects() {
        let mut h = heap();
        let mut sink = CountingSink::new();
        let mut e = emitter(&mut sink);
        h.alloc(ObjId(0), 32, &mut e);
        h.alloc(ObjId(1), 32, &mut e);
        let g = Graph { roots: vec![ObjId(0), ObjId(1)], edges: Default::default() };
        h.minor_collect(&g, &mut e);
        assert_eq!(h.live_objects(), 2);
        // Now only obj 0 is rooted.
        let g2 = Graph { roots: vec![ObjId(0)], edges: Default::default() };
        let dead = h.major_collect(&g2, &mut e);
        assert_eq!(dead, vec![ObjId(1)]);
        assert_eq!(h.stats().major_collections, 1);
        assert_eq!(h.live_objects(), 1);
    }

    #[test]
    fn old_space_blocks_are_reused_after_major() {
        let mut h = heap();
        let mut sink = CountingSink::new();
        let mut e = emitter(&mut sink);
        h.alloc(ObjId(0), 32, &mut e);
        let g = Graph { roots: vec![ObjId(0)], edges: Default::default() };
        h.minor_collect(&g, &mut e);
        let old_addr = h.addr_of(ObjId(0)).unwrap();
        h.major_collect(&Graph::default(), &mut e);
        // New young object promoted into the freed old block.
        h.alloc(ObjId(1), 32, &mut e);
        let g1 = Graph { roots: vec![ObjId(1)], edges: Default::default() };
        h.minor_collect(&g1, &mut e);
        assert_eq!(h.addr_of(ObjId(1)), Some(old_addr));
    }

    #[test]
    fn gc_ops_carry_gc_phase() {
        let mut h = heap();
        let mut sink = CountingSink::new();
        {
            let mut e = emitter(&mut sink);
            h.alloc(ObjId(0), 64, &mut e);
            let g = Graph { roots: vec![ObjId(0)], edges: Default::default() };
            h.minor_collect(&g, &mut e);
        }
        assert!(sink.by_phase[Phase::GcMinor] > 0);
        assert!(sink.by_category[Category::GarbageCollection] > 0);
    }

    #[test]
    fn needs_minor_respects_headroom() {
        let mut h = GenHeap::new(GcConfig::with_nursery(4096));
        let mut sink = CountingSink::new();
        let mut e = emitter(&mut sink);
        assert!(!h.needs_minor(1024));
        h.alloc(ObjId(0), 4000, &mut e);
        assert!(h.needs_minor(1024));
    }

    #[test]
    #[should_panic(expected = "nursery exhausted")]
    fn alloc_past_nursery_panics() {
        let mut h = GenHeap::new(GcConfig::with_nursery(4096));
        let mut sink = CountingSink::new();
        let mut e = emitter(&mut sink);
        h.alloc(ObjId(0), 4000, &mut e);
        h.alloc(ObjId(1), 1024, &mut e);
    }

    #[test]
    fn survival_rate_tracks_promotion() {
        let mut h = heap();
        let mut sink = CountingSink::new();
        let mut e = emitter(&mut sink);
        for i in 0..10 {
            h.alloc(ObjId(i), 32, &mut e);
        }
        // Half survive.
        let g = Graph {
            roots: (0..5).map(ObjId).collect(),
            edges: Default::default(),
        };
        h.minor_collect(&g, &mut e);
        let rate = h.stats().survival_rate();
        assert!((rate - 0.5).abs() < 1e-9, "rate = {rate}");
    }
}
