//! Property-based tests for the generational collector: random object
//! graphs and collection schedules must never lose a reachable object,
//! never alias live allocations, and always keep addresses inside the
//! owning segment.

use proptest::prelude::*;
use qoa_heap::{GcConfig, GenHeap, ObjId, Tracer};
use qoa_model::{CountingSink, Emitter, Phase, Segment};
use std::collections::{HashMap, HashSet};

#[derive(Debug, Default, Clone)]
struct Graph {
    roots: Vec<ObjId>,
    edges: HashMap<ObjId, Vec<ObjId>>,
}

impl Tracer for Graph {
    fn roots(&self, visit: &mut dyn FnMut(ObjId)) {
        for &r in &self.roots {
            visit(r);
        }
    }
    fn refs(&self, id: ObjId, visit: &mut dyn FnMut(ObjId)) {
        if let Some(children) = self.edges.get(&id) {
            for &c in children {
                visit(c);
            }
        }
    }
}

impl Graph {
    fn reachable(&self) -> HashSet<ObjId> {
        let mut seen = HashSet::new();
        let mut work = self.roots.clone();
        while let Some(id) = work.pop() {
            if seen.insert(id) {
                if let Some(cs) = self.edges.get(&id) {
                    work.extend(cs.iter().copied());
                }
            }
        }
        seen
    }
}

/// One step of a randomized heap schedule.
#[derive(Debug, Clone)]
enum Step {
    /// Allocate an object of the given size and link it from an existing
    /// object (or make it a root).
    Alloc { size: u64, link_from_root: bool },
    /// Drop a random root (making a subgraph unreachable).
    DropRoot(usize),
    /// Run a minor collection.
    Minor,
    /// Run a major collection.
    Major,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => (16u64..600, any::<bool>()).prop_map(|(size, link_from_root)| Step::Alloc {
            size,
            link_from_root
        }),
        1 => (0usize..64).prop_map(Step::DropRoot),
        1 => Just(Step::Minor),
        1 => Just(Step::Major),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_schedules_preserve_reachability(
        steps in proptest::collection::vec(step_strategy(), 1..120),
    ) {
        let mut heap = GenHeap::new(GcConfig::with_nursery(8 << 10));
        let mut graph = Graph::default();
        let mut sink = CountingSink::new();
        let mut next_id = 0u32;
        let mut alive: HashSet<ObjId> = HashSet::new();

        for step in steps {
            let mut e = Emitter::new(&mut sink, Phase::Interpreter, 0x40_0000);
            match step {
                Step::Alloc { size, link_from_root } => {
                    if heap.needs_minor(size) {
                        for dead in heap.minor_collect(&graph, &mut e) {
                            alive.remove(&dead);
                            graph.edges.remove(&dead);
                        }
                    }
                    let id = ObjId(next_id);
                    next_id += 1;
                    heap.alloc(id, size, &mut e);
                    alive.insert(id);
                    if link_from_root || graph.roots.is_empty() {
                        graph.roots.push(id);
                    } else {
                        let parent = graph.roots[graph.roots.len() / 2];
                        graph.edges.entry(parent).or_default().push(id);
                        heap.write_barrier(parent, id, &mut e);
                    }
                }
                Step::DropRoot(i) => {
                    if !graph.roots.is_empty() {
                        let i = i % graph.roots.len();
                        graph.roots.remove(i);
                    }
                }
                Step::Minor => {
                    for dead in heap.minor_collect(&graph, &mut e) {
                        alive.remove(&dead);
                        graph.edges.remove(&dead);
                    }
                }
                Step::Major => {
                    for dead in heap.major_collect(&graph, &mut e) {
                        alive.remove(&dead);
                        graph.edges.remove(&dead);
                    }
                }
            }

            // Invariant 1: every reachable object is still tracked.
            let reachable = graph.reachable();
            for id in &reachable {
                prop_assert!(
                    heap.addr_of(*id).is_some(),
                    "reachable {id} lost (step {step:?})"
                );
            }
            // Invariant 2: no two live objects overlap, and every address
            // lies in a heap segment.
            let mut spans: Vec<(u64, u64)> = Vec::new();
            for id in &alive {
                if let Some(addr) = heap.addr_of(*id) {
                    let seg = Segment::of(addr);
                    prop_assert!(
                        matches!(
                            seg,
                            Some(Segment::Nursery | Segment::OldSpace | Segment::LargeObject)
                        ),
                        "{id} at {addr:#x} in {seg:?}"
                    );
                    spans.push((addr, addr + 16));
                }
            }
            spans.sort_unstable();
            for w in spans.windows(2) {
                prop_assert!(w[0].1 <= w[1].0, "live objects alias: {w:?}");
            }
        }
    }

    /// Survival accounting never exceeds allocation.
    #[test]
    fn promotion_never_exceeds_allocation(
        sizes in proptest::collection::vec(16u64..256, 1..200),
        keep_mask in any::<u64>(),
    ) {
        let mut heap = GenHeap::new(GcConfig::with_nursery(8 << 10));
        let mut graph = Graph::default();
        let mut sink = CountingSink::new();
        for (i, size) in sizes.iter().enumerate() {
            let mut e = Emitter::new(&mut sink, Phase::Interpreter, 0x40_0000);
            if heap.needs_minor(*size) {
                heap.minor_collect(&graph, &mut e);
            }
            let id = ObjId(i as u32);
            heap.alloc(id, *size, &mut e);
            if keep_mask & (1 << (i % 64)) != 0 {
                graph.roots.push(id);
            }
        }
        let mut e = Emitter::new(&mut sink, Phase::Interpreter, 0x40_0000);
        heap.minor_collect(&graph, &mut e);
        let stats = heap.stats();
        prop_assert!(stats.bytes_promoted <= stats.nursery_allocated);
        prop_assert!(stats.survival_rate() <= 1.0);
    }
}
