//! The CPython-model virtual machine for the QOA stack.
//!
//! Executes [`qoa_frontend`] bytecode with the memory managers of
//! [`qoa_heap`], emitting a fully categorized [`qoa_model::MicroOp`] stream
//! that reproduces the cost structure of CPython 2.7 as analyzed in
//! *Quantitative Overhead Analysis for Python* (IISWC 2018): dispatch,
//! stack traffic, type checks, boxing, error checks, reference counting,
//! dict-probe name resolution, function setup/cleanup, object-allocation
//! churn, register-transfer address math, and — the paper's headline —
//! C-function-call convention crossings, both in the interpreter core and
//! inside the native library.
//!
//! The same VM also provides the *JIT-compiled* cost model
//! ([`CostMode::Trace`]) that `qoa-jit` drives: guards instead of full
//! type checks, unboxed virtual temporaries, virtualized frames, elided
//! dispatch — with C calls and library work preserved, matching the
//! paper's Fig. 5 finding that JIT compilation does not remove the C call
//! overhead.
//!
//! # Example
//!
//! ```
//! use qoa_model::CountingSink;
//! use qoa_vm::{Vm, VmConfig};
//!
//! let code = qoa_frontend::compile("total = 0\nfor i in range(10):\n    total = total + i\n")
//!     .expect("compiles");
//! let mut vm = Vm::new(VmConfig::default(), CountingSink::new());
//! vm.load_program(&code);
//! vm.run().expect("runs");
//! assert_eq!(vm.global_int("total"), Some(45));
//! ```

pub mod dict;
pub mod interp;
pub mod native;
pub mod native_lib;
pub mod object;
pub mod ops;
pub mod trace_refs;
pub mod vm;

pub use native::NativeFn;
pub use native_lib::Regex;
pub use object::{Obj, ObjKind, ObjRef};
pub use vm::{Block, CostMode, Frame, HeapMode, StepEvent, Vm, VmConfig, VmError, VmStats};

use dict::Key;
use qoa_model::OpSink;
use std::rc::Rc;

impl<S: OpSink> Vm<S> {
    /// Reads a global by name (borrowed reference), for inspection.
    pub fn global(&mut self, name: &str) -> Option<ObjRef> {
        let key = Key::Str(Rc::from(name));
        let globals = self.globals_ref();
        match self.kind(globals) {
            ObjKind::Dict(d) => {
                let mut probes = Vec::new();
                d.lookup(&key, &mut probes)
            }
            _ => None,
        }
    }

    /// Reads an integer global, for tests and result checking.
    pub fn global_int(&mut self, name: &str) -> Option<i64> {
        let r = self.global(name)?;
        match self.kind(r) {
            ObjKind::Int(v) => Some(*v),
            ObjKind::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// Reads a float global.
    pub fn global_float(&mut self, name: &str) -> Option<f64> {
        let r = self.global(name)?;
        match self.kind(r) {
            ObjKind::Float(v) => Some(*v),
            ObjKind::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Reads a string global.
    pub fn global_str(&mut self, name: &str) -> Option<String> {
        let r = self.global(name)?;
        match self.kind(r) {
            ObjKind::Str(s) => Some(s.to_string()),
            _ => None,
        }
    }

    /// Renders any global with the guest `str()` rules.
    pub fn global_display(&mut self, name: &str) -> Option<String> {
        let r = self.global(name)?;
        Some(self.display_string(r))
    }
}

/// Compiles and runs a program under the given configuration, returning
/// the VM for inspection.
///
/// # Errors
///
/// Returns a typed [`VmError`]: a compile error, a guest run-time error,
/// or a resource-limit cutoff (fuel, deadline, simulated OOM).
pub fn run_source<S: OpSink>(
    source: &str,
    cfg: VmConfig,
    sink: S,
) -> Result<Vm<S>, VmError> {
    let code = qoa_frontend::compile(source)?;
    let mut vm = Vm::new(cfg, sink);
    vm.load_program(&code);
    vm.run()?;
    Ok(vm)
}
