//! Object-graph child enumeration, shared by the refcount cascade and the
//! garbage collector's tracer.

use crate::object::{IterState, Obj, ObjKind, ObjRef};

/// Calls `f` for every guest reference held by `obj` (including its hidden
/// backing buffer, which must live exactly as long as its owner).
pub fn for_each_child(obj: &Obj, mut f: impl FnMut(ObjRef)) {
    if let Some(buf) = obj.buffer {
        f(buf);
    }
    match &obj.kind {
        ObjKind::List(items) => {
            for &r in items {
                f(r);
            }
        }
        ObjKind::Tuple(items) => {
            for &r in items.iter() {
                f(r);
            }
        }
        ObjKind::Dict(d) => {
            for (k, v) in d.iter() {
                f(k);
                f(v);
            }
        }
        ObjKind::Slice { lo, hi } => {
            f(*lo);
            f(*hi);
        }
        ObjKind::Func(func) => {
            for &d in &func.defaults {
                f(d);
            }
        }
        ObjKind::BoundMethod { func, recv } => {
            f(*func);
            f(*recv);
        }
        ObjKind::Class(c) => {
            f(c.dict);
            if let Some(b) = c.base {
                f(b);
            }
        }
        ObjKind::Instance { class, dict } => {
            f(*class);
            f(*dict);
        }
        ObjKind::Iter(state) => match state {
            IterState::Seq { seq, .. } => f(*seq),
            IterState::Str { s, .. } => f(*s),
            IterState::Keys { keys, .. } => {
                for &k in keys.iter() {
                    f(k);
                }
            }
            IterState::Range { .. } => {}
        },
        ObjKind::None
        | ObjKind::Bool(_)
        | ObjKind::Int(_)
        | ObjKind::Float(_)
        | ObjKind::Str(_)
        | ObjKind::Range { .. }
        | ObjKind::Native(_)
        | ObjKind::Buffer { .. }
        | ObjKind::Code(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::DictObj;

    fn children(kind: ObjKind) -> Vec<ObjRef> {
        let mut out = Vec::new();
        for_each_child(&Obj::new(kind), |r| out.push(r));
        out
    }

    #[test]
    fn containers_report_elements() {
        assert_eq!(children(ObjKind::List(vec![ObjRef(1), ObjRef(2)])), vec![ObjRef(1), ObjRef(2)]);
        assert_eq!(
            children(ObjKind::Tuple(vec![ObjRef(3)].into())),
            vec![ObjRef(3)]
        );
        assert!(children(ObjKind::Int(5)).is_empty());
    }

    #[test]
    fn dict_reports_keys_and_values() {
        let mut d = DictObj::new();
        let mut probes = Vec::new();
        d.insert(crate::dict::Key::Int(1), ObjRef(10), ObjRef(11), &mut probes);
        let cs = children(ObjKind::Dict(d));
        assert!(cs.contains(&ObjRef(10)));
        assert!(cs.contains(&ObjRef(11)));
    }

    #[test]
    fn buffer_is_a_child() {
        let mut o = Obj::new(ObjKind::List(vec![]));
        o.buffer = Some(ObjRef(99));
        let mut out = Vec::new();
        for_each_child(&o, |r| out.push(r));
        assert_eq!(out, vec![ObjRef(99)]);
    }
}
