//! Heavyweight native modules: JSON, pickle, regular expressions,
//! checksums and compression.
//!
//! These are the analogs of the C extension modules that dominate the
//! paper's `pickle`, `pickle_dict`, `pickle_list`, `unpickle`, `json_*`,
//! and `regex_*` benchmarks (>64% of their time is spent in C library
//! code). The implementations are real — they parse, serialize, match and
//! hash actual guest data — and their costs are emitted per character /
//! per node with internal C-helper calls, so the *C function call overhead
//! inside library code* reported in §IV-C.1 is reproduced.

use crate::native::NativeFn;
use crate::object::{ObjKind, ObjRef};
use crate::vm::{Vm, VmError};
use qoa_model::OpSink;
use std::rc::Rc;

impl<S: OpSink> Vm<S> {
    pub(crate) fn native_lib_body(
        &mut self,
        f: NativeFn,
        args: &[ObjRef],
    ) -> Result<ObjRef, VmError> {
        match f {
            NativeFn::JsonDumps => {
                let [root] = args else {
                    return Err(self.err_here("TypeError: json_dumps(obj)"));
                };
                let mut out = String::new();
                self.serialize_json(*root, &mut out, 0)?;
                let r = self.alloc_obj(ObjKind::Str(Rc::from(out.as_str())));
                let ra = self.obj_addr(r) + 48;
                for i in 0..(out.len() as u64 / 8).min(2048) {
                    self.lib_store(40, ra + i * 8);
                }
                Ok(r)
            }
            NativeFn::JsonLoads => {
                let [src] = args else {
                    return Err(self.err_here("TypeError: json_loads(text)"));
                };
                let text = self.need_str(*src)?;
                let base = self.obj_addr(*src) + 48;
                let mut p = JsonParser { text: text.as_bytes(), pos: 0 };
                let v = self.parse_json(&mut p, base)?;
                p.skip_ws();
                if p.pos != p.text.len() {
                    self.decref(v);
                    return Err(self.err_here("ValueError: trailing JSON data"));
                }
                Ok(v)
            }
            NativeFn::PickleDumps => {
                let [root] = args else {
                    return Err(self.err_here("TypeError: pickle_dumps(obj)"));
                };
                let mut out = String::new();
                self.serialize_pickle(*root, &mut out, 0)?;
                let r = self.alloc_obj(ObjKind::Str(Rc::from(out.as_str())));
                let ra = self.obj_addr(r) + 48;
                for i in 0..(out.len() as u64 / 8).min(2048) {
                    self.lib_store(44, ra + i * 8);
                }
                Ok(r)
            }
            NativeFn::PickleLoads => {
                let [src] = args else {
                    return Err(self.err_here("TypeError: pickle_loads(text)"));
                };
                let text = self.need_str(*src)?;
                let base = self.obj_addr(*src) + 48;
                let mut p = JsonParser { text: text.as_bytes(), pos: 0 };
                let v = self.parse_pickle(&mut p, base)?;
                Ok(v)
            }
            NativeFn::ReSearch | NativeFn::ReMatch => {
                let [pat, text] = args else {
                    return Err(self.err_here("TypeError: re_search(pattern, text)"));
                };
                let pat = self.need_str(*pat)?;
                let text = self.need_str(*text)?;
                let base = self.obj_addr(args[1]) + 48;
                let prog = Regex::compile(&pat)
                    .map_err(|m| self.err_here(format!("ValueError: bad regex: {m}")))?;
                self.lib_call(48, NativeFn::ReSearch);
                let found = if f == NativeFn::ReMatch {
                    let (hit, cost) = prog.match_at(text.as_bytes(), 0);
                    self.emit_regex_cost(base, cost);
                    hit.is_some()
                } else {
                    let (hit, cost) = prog.search(text.as_bytes());
                    self.emit_regex_cost(base, cost);
                    hit.is_some()
                };
                self.lib_ret(52);
                let b = self.bool_ref(found);
                self.incref(b);
                Ok(b)
            }
            NativeFn::ReFindall => {
                let [pat, text] = args else {
                    return Err(self.err_here("TypeError: re_findall(pattern, text)"));
                };
                let pat = self.need_str(*pat)?;
                let text = self.need_str(*text)?;
                let base = self.obj_addr(args[1]) + 48;
                let prog = Regex::compile(&pat)
                    .map_err(|m| self.err_here(format!("ValueError: bad regex: {m}")))?;
                self.lib_call(48, NativeFn::ReFindall);
                let bytes = text.as_bytes();
                let mut pos = 0;
                let mark = self.scratch.len();
                let mut count = 0usize;
                while pos <= bytes.len() && count < 100_000 {
                    let (hit, cost) = prog.match_at(bytes, pos);
                    self.emit_regex_cost(base + pos as u64, cost);
                    match hit {
                        Some(end) if end > pos => {
                            let m: Rc<str> = Rc::from(&text[pos..end]);
                            let o = self.alloc_obj(ObjKind::Str(m));
                            self.scratch.push(o);
                            count += 1;
                            pos = end;
                        }
                        Some(_) => pos += 1,
                        None => pos += 1,
                    }
                }
                let items: Vec<ObjRef> = self.scratch[mark..].to_vec();
                let n = items.len();
                let list = self.alloc_obj(ObjKind::List(items));
                self.scratch.truncate(mark);
                self.attach_list_buffer(list, n);
                self.lib_ret(52);
                Ok(list)
            }
            NativeFn::Crc32 => {
                let [src] = args else { return Err(self.err_here("TypeError: crc32(text)")) };
                let text = self.need_str(*src)?;
                let base = self.obj_addr(*src) + 48;
                let mut crc: u32 = 0xFFFF_FFFF;
                for (i, &b) in text.as_bytes().iter().enumerate() {
                    if i % 8 == 0 {
                        self.lib_load(56, base + i as u64);
                    }
                    self.lib_work(57, 2);
                    crc ^= b as u32;
                    for _ in 0..8 {
                        crc = (crc >> 1) ^ (0xEDB8_8320 & (0u32.wrapping_sub(crc & 1)));
                    }
                }
                Ok(self.make_int((crc ^ 0xFFFF_FFFF) as i64))
            }
            NativeFn::Md5 => {
                let [src] = args else { return Err(self.err_here("TypeError: md5(text)")) };
                let text = self.need_str(*src)?;
                let base = self.obj_addr(*src) + 48;
                // A real (if abbreviated) Merkle–Damgård mix over the bytes.
                let mut h: u64 = 0x6745_2301_EFCD_AB89;
                for (i, &b) in text.as_bytes().iter().enumerate() {
                    if i % 8 == 0 {
                        self.lib_load(60, base + i as u64);
                    }
                    self.lib_work(61, 4);
                    h = h.rotate_left(7) ^ (b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    h = h.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
                }
                Ok(self.make_int((h & 0x7FFF_FFFF_FFFF_FFFF) as i64))
            }
            NativeFn::Compress => {
                let [src] = args else {
                    return Err(self.err_here("TypeError: compress(text)"));
                };
                let text = self.need_str(*src)?;
                let base = self.obj_addr(*src) + 48;
                // Run-length encoding with a small match window — the
                // zlib/pyflate analog.
                let bytes = text.as_bytes();
                let mut out = String::new();
                let mut i = 0;
                while i < bytes.len() {
                    if i % 8 == 0 {
                        self.lib_load(64, base + i as u64);
                    }
                    self.lib_work(65, 8);
                    self.lib_load(67, base + (i as u64 / 16) * 8);
                    let c = bytes[i];
                    let mut run = 1;
                    while i + run < bytes.len() && bytes[i + run] == c && run < 255 {
                        run += 1;
                        self.lib_work(66, 1);
                    }
                    if run > 3 {
                        out.push('~');
                        out.push_str(&run.to_string());
                        out.push(c as char);
                        i += run;
                    } else {
                        out.push(c as char);
                        i += 1;
                    }
                }
                Ok(self.alloc_obj(ObjKind::Str(Rc::from(out.as_str()))))
            }
            other => Err(self.err_here(format!("internal: unrouted lib native {other:?}"))),
        }
    }

    fn emit_regex_cost(&mut self, base: u64, steps: u64) {
        for i in 0..steps.min(65536) {
            if i % 4 == 0 {
                self.lib_load(50, base + i / 4 * 8);
            }
            self.lib_work(51, 2);
        }
    }

    // ---- JSON ------------------------------------------------------------------

    fn serialize_json(
        &mut self,
        r: ObjRef,
        out: &mut String,
        depth: usize,
    ) -> Result<(), VmError> {
        if depth > 64 {
            return Err(self.err_here("ValueError: JSON structure too deep"));
        }
        // Per-node helper call inside the library (type dispatch, memo
        // probe, buffer management).
        self.lib_call(30, NativeFn::JsonDumps);
        let addr = self.obj_addr(r);
        self.lib_load(31, addr);
        self.lib_load(37, addr + 8);
        self.lib_load(29, addr + 16);
        self.lib_work(35, 44);
        match self.kind(r).clone() {
            ObjKind::None => out.push_str("null"),
            ObjKind::Bool(true) => out.push_str("true"),
            ObjKind::Bool(false) => out.push_str("false"),
            ObjKind::Int(v) => {
                self.lib_work(32, 3);
                out.push_str(&v.to_string());
            }
            ObjKind::Float(v) => {
                self.lib_work(32, 6);
                out.push_str(&format!("{v}"));
            }
            ObjKind::Str(s) => {
                self.lib_work(32, (s.len() as u32 * 2).min(4096));
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            ObjKind::List(items) => {
                out.push('[');
                for (i, &item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    self.serialize_json(item, out, depth + 1)?;
                }
                out.push(']');
            }
            ObjKind::Tuple(items) => {
                out.push('[');
                for (i, &item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    self.serialize_json(item, out, depth + 1)?;
                }
                out.push(']');
            }
            ObjKind::Dict(_) => {
                out.push('{');
                for (i, (k, v)) in self.dict_pairs(r).into_iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let key = self.display_string(k);
                    self.lib_work(33, (key.len() as u32).min(64));
                    out.push('"');
                    out.push_str(&key);
                    out.push_str("\":");
                    self.serialize_json(v, out, depth + 1)?;
                }
                out.push('}');
            }
            other => {
                return Err(self.err_here(format!(
                    "TypeError: '{}' is not JSON serializable",
                    other.type_name()
                )))
            }
        }
        self.lib_ret(36);
        Ok(())
    }

    fn parse_json(&mut self, p: &mut JsonParser<'_>, base: u64) -> Result<ObjRef, VmError> {
        p.skip_ws();
        // Per-token costs: a load per 8 consumed bytes, alu per token.
        self.lib_load(34, base + (p.pos as u64 / 8) * 8);
        self.lib_work(35, 40);
        match p.peek() {
            Some(b'n') => {
                p.expect_word(b"null").map_err(|m| self.err_here(m))?;
                let n = self.none();
                self.incref(n);
                Ok(n)
            }
            Some(b't') => {
                p.expect_word(b"true").map_err(|m| self.err_here(m))?;
                let b = self.bool_ref(true);
                self.incref(b);
                Ok(b)
            }
            Some(b'f') => {
                p.expect_word(b"false").map_err(|m| self.err_here(m))?;
                let b = self.bool_ref(false);
                self.incref(b);
                Ok(b)
            }
            Some(b'"') => {
                let s = p.parse_string().map_err(|m| self.err_here(m))?;
                self.lib_work(36, (s.len() as u32 * 2).min(4096));
                Ok(self.alloc_obj(ObjKind::Str(Rc::from(s.as_str()))))
            }
            Some(b'[') => {
                p.pos += 1;
                let mark = self.scratch.len();
                p.skip_ws();
                if p.peek() == Some(b']') {
                    p.pos += 1;
                } else {
                    loop {
                        let v = self.parse_json(p, base)?;
                        self.scratch.push(v);
                        p.skip_ws();
                        match p.next() {
                            Some(b',') => continue,
                            Some(b']') => break,
                            _ => return Err(self.err_here("ValueError: expected ',' or ']'")),
                        }
                    }
                }
                let items: Vec<ObjRef> = self.scratch[mark..].to_vec();
                let n = items.len();
                let list = self.alloc_obj(ObjKind::List(items));
                self.scratch.truncate(mark);
                self.attach_list_buffer(list, n);
                Ok(list)
            }
            Some(b'{') => {
                p.pos += 1;
                let d = self.alloc_obj(ObjKind::Dict(crate::dict::DictObj::new()));
                self.scratch.push(d);
                self.attach_dict_buffer(d);
                p.skip_ws();
                if p.peek() == Some(b'}') {
                    p.pos += 1;
                } else {
                    loop {
                        p.skip_ws();
                        let key_s = p.parse_string().map_err(|m| self.err_here(m))?;
                        p.skip_ws();
                        if p.next() != Some(b':') {
                            return Err(self.err_here("ValueError: expected ':'"));
                        }
                        let key_obj = self.alloc_obj(ObjKind::Str(Rc::from(key_s.as_str())));
                        self.scratch.push(key_obj);
                        let v = self.parse_json(p, base)?;
                        self.dict_insert(
                            d,
                            crate::dict::Key::Str(Rc::from(key_s.as_str())),
                            key_obj,
                            v,
                            qoa_model::Category::CLibrary,
                        )?;
                        // The dict now owns the key; drop our scratch ref.
                        self.scratch.pop();
                        self.decref(key_obj);
                        p.skip_ws();
                        match p.next() {
                            Some(b',') => continue,
                            Some(b'}') => break,
                            _ => return Err(self.err_here("ValueError: expected ',' or '}'")),
                        }
                    }
                }
                self.scratch.pop();
                Ok(d)
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let (text, is_float) = p.parse_number().map_err(|m| self.err_here(m))?;
                self.lib_work(36, (text.len() as u32 * 6 + 10).min(256));
                if is_float {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| self.err_here("ValueError: bad JSON number"))?;
                    Ok(self.make_float(v))
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|_| self.err_here("ValueError: bad JSON number"))?;
                    Ok(self.make_int(v))
                }
            }
            _ => Err(self.err_here("ValueError: unexpected JSON input")),
        }
    }

    // ---- pickle (a compact typed text format) -----------------------------------

    fn serialize_pickle(
        &mut self,
        r: ObjRef,
        out: &mut String,
        depth: usize,
    ) -> Result<(), VmError> {
        if depth > 64 {
            return Err(self.err_here("ValueError: pickle structure too deep"));
        }
        self.lib_call(38, NativeFn::PickleDumps);
        self.lib_load(39, self.obj_addr(r));
        self.lib_load(46, self.obj_addr(r) + 8);
        self.lib_load(45, self.obj_addr(r) + 16);
        self.lib_work(47, 44);
        match self.kind(r).clone() {
            ObjKind::None => out.push('N'),
            ObjKind::Bool(b) => out.push(if b { 'T' } else { 'F' }),
            ObjKind::Int(v) => {
                self.lib_work(40, 3);
                out.push('I');
                out.push_str(&v.to_string());
                out.push(';');
            }
            ObjKind::Float(v) => {
                self.lib_work(40, 5);
                out.push('D');
                out.push_str(&format!("{:?}", v));
                out.push(';');
            }
            ObjKind::Str(s) => {
                self.lib_work(40, (s.len() as u32 * 2).min(4096));
                out.push('S');
                out.push_str(&s.len().to_string());
                out.push(':');
                out.push_str(&s);
            }
            ObjKind::List(items) => {
                out.push('L');
                out.push_str(&items.len().to_string());
                out.push(':');
                for &i in &items {
                    self.serialize_pickle(i, out, depth + 1)?;
                }
            }
            ObjKind::Tuple(items) => {
                out.push('U');
                out.push_str(&items.len().to_string());
                out.push(':');
                for &i in items.iter() {
                    self.serialize_pickle(i, out, depth + 1)?;
                }
            }
            ObjKind::Dict(_) => {
                let pairs = self.dict_pairs(r);
                out.push('M');
                out.push_str(&pairs.len().to_string());
                out.push(':');
                for (k, v) in pairs {
                    self.serialize_pickle(k, out, depth + 1)?;
                    self.serialize_pickle(v, out, depth + 1)?;
                }
            }
            other => {
                return Err(self.err_here(format!(
                    "TypeError: cannot pickle '{}'",
                    other.type_name()
                )))
            }
        }
        self.lib_ret(42);
        Ok(())
    }

    fn parse_pickle(&mut self, p: &mut JsonParser<'_>, base: u64) -> Result<ObjRef, VmError> {
        self.lib_load(43, base + (p.pos as u64 / 8) * 8);
        self.lib_work(44, 40);
        match p.next() {
            Some(b'N') => {
                let n = self.none();
                self.incref(n);
                Ok(n)
            }
            Some(b'T') => {
                let b = self.bool_ref(true);
                self.incref(b);
                Ok(b)
            }
            Some(b'F') => {
                let b = self.bool_ref(false);
                self.incref(b);
                Ok(b)
            }
            Some(b'I') => {
                let text = p.take_until(b';').map_err(|m| self.err_here(m))?;
                let v: i64 =
                    text.parse().map_err(|_| self.err_here("ValueError: bad pickle int"))?;
                self.lib_work(45, (text.len() as u32 * 6 + 10).min(256));
                Ok(self.make_int(v))
            }
            Some(b'D') => {
                let text = p.take_until(b';').map_err(|m| self.err_here(m))?;
                let v: f64 =
                    text.parse().map_err(|_| self.err_here("ValueError: bad pickle float"))?;
                self.lib_work(45, (text.len() as u32 * 6 + 10).min(256));
                Ok(self.make_float(v))
            }
            Some(b'S') => {
                let len: usize = p
                    .take_until(b':')
                    .map_err(|m| self.err_here(m))?
                    .parse()
                    .map_err(|_| self.err_here("ValueError: bad pickle string length"))?;
                let s = p.take_bytes(len).map_err(|m| self.err_here(m))?;
                self.lib_work(45, (len as u32 * 2).min(4096));
                Ok(self.alloc_obj(ObjKind::Str(Rc::from(s))))
            }
            Some(b'L') | Some(b'U') => {
                let is_list = p.text[p.pos - 1] == b'L';
                let len: usize = p
                    .take_until(b':')
                    .map_err(|m| self.err_here(m))?
                    .parse()
                    .map_err(|_| self.err_here("ValueError: bad pickle sequence length"))?;
                let mark = self.scratch.len();
                for _ in 0..len {
                    let v = self.parse_pickle(p, base)?;
                    self.scratch.push(v);
                }
                let items: Vec<ObjRef> = self.scratch[mark..].to_vec();
                let r = if is_list {
                    let n = items.len();
                    let l = self.alloc_obj(ObjKind::List(items));
                    self.attach_list_buffer(l, n);
                    l
                } else {
                    self.alloc_obj(ObjKind::Tuple(items.into()))
                };
                self.scratch.truncate(mark);
                Ok(r)
            }
            Some(b'M') => {
                let len: usize = p
                    .take_until(b':')
                    .map_err(|m| self.err_here(m))?
                    .parse()
                    .map_err(|_| self.err_here("ValueError: bad pickle map length"))?;
                let d = self.alloc_obj(ObjKind::Dict(crate::dict::DictObj::new()));
                self.scratch.push(d);
                self.attach_dict_buffer(d);
                for _ in 0..len {
                    let k = self.parse_pickle(p, base)?;
                    self.scratch.push(k);
                    let v = self.parse_pickle(p, base)?;
                    let key = self
                        .key_of(k)
                        .map_err(|m| self.err_here(format!("TypeError: {m}")))?;
                    self.dict_insert(d, key, k, v, qoa_model::Category::CLibrary)?;
                    self.scratch.pop();
                    self.decref(k);
                }
                self.scratch.pop();
                Ok(d)
            }
            _ => Err(self.err_here("ValueError: bad pickle data")),
        }
    }
}

// ---- cursor ---------------------------------------------------------------------

struct JsonParser<'a> {
    text: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn peek(&self) -> Option<u8> {
        self.text.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_word(&mut self, w: &[u8]) -> Result<(), String> {
        if self.text[self.pos..].starts_with(w) {
            self.pos += w.len();
            Ok(())
        } else {
            Err("ValueError: bad JSON literal".into())
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        if self.next() != Some(b'"') {
            return Err("ValueError: expected string".into());
        }
        let mut out = String::new();
        loop {
            match self.next() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(c) => out.push(c as char),
                    None => return Err("ValueError: unterminated escape".into()),
                },
                Some(c) => out.push(c as char),
                None => return Err("ValueError: unterminated string".into()),
            }
        }
    }

    fn parse_number(&mut self) -> Result<(String, bool), String> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        if self.pos == start {
            return Err("ValueError: expected number".into());
        }
        Ok((
            String::from_utf8_lossy(&self.text[start..self.pos]).into_owned(),
            is_float,
        ))
    }

    fn take_until(&mut self, delim: u8) -> Result<String, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == delim {
                let s = String::from_utf8_lossy(&self.text[start..self.pos]).into_owned();
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        Err("ValueError: unterminated field".into())
    }

    fn take_bytes(&mut self, n: usize) -> Result<&'a str, String> {
        if self.pos + n > self.text.len() {
            return Err("ValueError: truncated data".into());
        }
        let s = std::str::from_utf8(&self.text[self.pos..self.pos + n])
            .map_err(|_| "ValueError: invalid utf-8".to_string())?;
        self.pos += n;
        Ok(s)
    }
}

// ---- regex ------------------------------------------------------------------------

/// One element of a compiled pattern.
#[derive(Debug, Clone)]
enum Piece {
    Lit(u8),
    Any,
    Class { negated: bool, ranges: Vec<(u8, u8)> },
    Start,
    End,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Rep {
    One,
    Star,
    Plus,
    Opt,
}

/// A small backtracking regular-expression engine: literals, `.`,
/// character classes, anchors, and `* + ?` repetition, with `|`
/// alternation at the top level.
#[derive(Debug, Clone)]
pub struct Regex {
    alternatives: Vec<Vec<(Piece, Rep)>>,
}

impl Regex {
    /// Compiles a pattern.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax problem.
    pub fn compile(pattern: &str) -> Result<Regex, String> {
        let mut alternatives = Vec::new();
        for alt in split_alternatives(pattern.as_bytes()) {
            let mut seq = Vec::new();
            let bytes = alt;
            let mut i = 0;
            while i < bytes.len() {
                let piece = match bytes[i] {
                    b'.' => {
                        i += 1;
                        Piece::Any
                    }
                    b'^' => {
                        i += 1;
                        Piece::Start
                    }
                    b'$' => {
                        i += 1;
                        Piece::End
                    }
                    b'[' => {
                        i += 1;
                        let negated = bytes.get(i) == Some(&b'^');
                        if negated {
                            i += 1;
                        }
                        let mut ranges = Vec::new();
                        while i < bytes.len() && bytes[i] != b']' {
                            let lo = bytes[i];
                            if bytes.get(i + 1) == Some(&b'-')
                                && i + 2 < bytes.len()
                                && bytes[i + 2] != b']'
                            {
                                ranges.push((lo, bytes[i + 2]));
                                i += 3;
                            } else {
                                ranges.push((lo, lo));
                                i += 1;
                            }
                        }
                        if i >= bytes.len() {
                            return Err("unterminated character class".into());
                        }
                        i += 1; // ']'
                        Piece::Class { negated, ranges }
                    }
                    b'\\' => {
                        i += 1;
                        let Some(&c) = bytes.get(i) else {
                            return Err("trailing backslash".into());
                        };
                        i += 1;
                        match c {
                            b'd' => Piece::Class { negated: false, ranges: vec![(b'0', b'9')] },
                            b'w' => Piece::Class {
                                negated: false,
                                ranges: vec![(b'a', b'z'), (b'A', b'Z'), (b'0', b'9'), (b'_', b'_')],
                            },
                            b's' => Piece::Class {
                                negated: false,
                                ranges: vec![(b' ', b' '), (b'\t', b'\t'), (b'\n', b'\n')],
                            },
                            c => Piece::Lit(c),
                        }
                    }
                    b'*' | b'+' | b'?' => return Err("dangling repetition".into()),
                    c => {
                        i += 1;
                        Piece::Lit(c)
                    }
                };
                let rep = match bytes.get(i) {
                    Some(b'*') => {
                        i += 1;
                        Rep::Star
                    }
                    Some(b'+') => {
                        i += 1;
                        Rep::Plus
                    }
                    Some(b'?') => {
                        i += 1;
                        Rep::Opt
                    }
                    _ => Rep::One,
                };
                seq.push((piece, rep));
            }
            alternatives.push(seq);
        }
        Ok(Regex { alternatives })
    }

    /// Tries to match at `start`; returns (end offset on success, steps).
    pub fn match_at(&self, text: &[u8], start: usize) -> (Option<usize>, u64) {
        let mut steps = 0;
        for alt in &self.alternatives {
            if let Some(end) = match_seq(alt, text, start, 0, &mut steps) {
                return (Some(end), steps);
            }
        }
        (None, steps)
    }

    /// Searches the whole text; returns (match start on success, steps).
    pub fn search(&self, text: &[u8]) -> (Option<usize>, u64) {
        let mut total = 0;
        for start in 0..=text.len() {
            let (hit, steps) = self.match_at(text, start);
            total += steps;
            if hit.is_some() {
                return (Some(start), total);
            }
        }
        (None, total)
    }
}

fn split_alternatives(pattern: &[u8]) -> Vec<&[u8]> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut depth = 0;
    for (i, &c) in pattern.iter().enumerate() {
        match c {
            b'[' => depth += 1,
            b']' => depth -= 1,
            b'|' if depth == 0 => {
                parts.push(&pattern[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&pattern[start..]);
    parts
}

fn piece_matches(piece: &Piece, text: &[u8], pos: usize) -> bool {
    match piece {
        Piece::Lit(c) => text.get(pos) == Some(c),
        Piece::Any => pos < text.len(),
        Piece::Class { negated, ranges } => match text.get(pos) {
            Some(&b) => {
                let inside = ranges.iter().any(|&(lo, hi)| b >= lo && b <= hi);
                inside != *negated
            }
            None => false,
        },
        Piece::Start | Piece::End => unreachable!("anchors handled in match_seq"),
    }
}

fn match_seq(
    seq: &[(Piece, Rep)],
    text: &[u8],
    pos: usize,
    idx: usize,
    steps: &mut u64,
) -> Option<usize> {
    *steps += 1;
    if *steps > 1_000_000 {
        return None; // backtracking fuse
    }
    let Some((piece, rep)) = seq.get(idx) else {
        return Some(pos);
    };
    match piece {
        Piece::Start => {
            if pos == 0 {
                match_seq(seq, text, pos, idx + 1, steps)
            } else {
                None
            }
        }
        Piece::End => {
            if pos == text.len() {
                match_seq(seq, text, pos, idx + 1, steps)
            } else {
                None
            }
        }
        _ => match rep {
            Rep::One => {
                if piece_matches(piece, text, pos) {
                    match_seq(seq, text, pos + 1, idx + 1, steps)
                } else {
                    None
                }
            }
            Rep::Opt => {
                if piece_matches(piece, text, pos) {
                    if let Some(end) = match_seq(seq, text, pos + 1, idx + 1, steps) {
                        return Some(end);
                    }
                }
                match_seq(seq, text, pos, idx + 1, steps)
            }
            Rep::Star | Rep::Plus => {
                let min = if *rep == Rep::Plus { 1 } else { 0 };
                // Greedy: consume as much as possible, then backtrack.
                let mut count = 0;
                while piece_matches(piece, text, pos + count) {
                    count += 1;
                    *steps += 1;
                }
                while count + 1 > min {
                    if let Some(end) = match_seq(seq, text, pos + count, idx + 1, steps) {
                        return Some(end);
                    }
                    if count == 0 {
                        break;
                    }
                    count -= 1;
                }
                if min == 0 {
                    match_seq(seq, text, pos, idx + 1, steps)
                } else {
                    None
                }
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_match(pat: &str, text: &str) -> bool {
        let r = Regex::compile(pat).expect("compile");
        r.search(text.as_bytes()).0.is_some()
    }

    #[test]
    fn literals_and_any() {
        assert!(is_match("abc", "xxabcxx"));
        assert!(!is_match("abc", "ab"));
        assert!(is_match("a.c", "azc"));
        assert!(!is_match("a.c", "ac"));
    }

    #[test]
    fn classes() {
        assert!(is_match("[abc]+", "bcbcb"));
        assert!(!is_match("[abc]", "xyz"));
        assert!(is_match("[a-f]+", "deadbeef"));
        assert!(is_match("[^0-9]", "a1"));
        assert!(!is_match("[^0-9]+$", "123"));
        assert!(is_match("\\d+", "x42"));
        assert!(is_match("\\w+", "hello_1"));
    }

    #[test]
    fn repetition() {
        assert!(is_match("ab*c", "ac"));
        assert!(is_match("ab*c", "abbbc"));
        assert!(is_match("ab+c", "abc"));
        assert!(!is_match("ab+c", "ac"));
        assert!(is_match("ab?c", "ac"));
        assert!(is_match("ab?c", "abc"));
    }

    #[test]
    fn anchors_and_alternation() {
        assert!(is_match("^abc", "abcdef"));
        assert!(!is_match("^abc", "xabc"));
        assert!(is_match("def$", "abcdef"));
        assert!(!is_match("def$", "defabc"));
        assert!(is_match("cat|dog", "hotdog"));
        assert!(!is_match("cat|dog", "bird"));
    }

    #[test]
    fn match_at_returns_end() {
        let r = Regex::compile("ab+").expect("compile");
        let (end, _) = r.match_at(b"abbbz", 0);
        assert_eq!(end, Some(4));
    }

    #[test]
    fn compile_errors() {
        assert!(Regex::compile("*a").is_err());
        assert!(Regex::compile("[abc").is_err());
        assert!(Regex::compile("a\\").is_err());
    }
}
