//! Semantic helpers for the interpreter: arithmetic, comparisons,
//! subscripts, attribute access, dict machinery, iterators, calls and
//! returns. Each helper pairs the guest semantics with the CPython-model
//! cost emission (and its JIT-trace counterpart).

use crate::dict::Key;
use crate::object::{FuncObj, IterState, ObjKind, ObjRef};
use crate::vm::{code_key, CostMode, StepEvent, Vm, VmError};
use qoa_frontend::{Cmp, CodeKind, Opcode};
use qoa_model::{mem, Category, FrameEvent, OpSink};
use std::rc::Rc;

/// Header bytes before a list/tuple's inline element storage.
const SEQ_HEADER: u64 = 40;
/// Bytes per dict slot (hash, key, value).
const DICT_SLOT: u64 = 24;

impl<S: OpSink> Vm<S> {
    #[inline]
    fn interp(&self) -> bool {
        self.cost == CostMode::Interp
    }

    /// C call emitted only under the interpreter cost model (PyPy's traces
    /// compile these helpers away; calls into the native library use
    /// [`Vm::c_call`] directly and survive in traces).
    pub(crate) fn icall(&mut self, site: u32, target_off: u64, indirect: bool) {
        if self.interp() {
            self.c_call(site, mem::INTERP_CODE_BASE + target_off, indirect);
        }
    }

    /// Matching return for [`Vm::icall`].
    pub(crate) fn iret(&mut self, site: u32) {
        if self.interp() {
            self.c_return(site);
        }
    }

    /// A *residual* helper call that even JIT-compiled code performs:
    /// PyPy's machine code still calls RPython helpers for dict lookups,
    /// attribute misses, string building and the like. Emitted in both
    /// cost modes (this is why Fig. 5 shows C-call overhead surviving the
    /// JIT at 7.5%).
    pub(crate) fn rcall(&mut self, site: u32, target_off: u64, indirect: bool) {
        self.c_call(site, mem::INTERP_CODE_BASE + target_off, indirect);
    }

    /// Matching return for [`Vm::rcall`].
    pub(crate) fn rret(&mut self, site: u32) {
        self.c_return(site);
    }

    pub(crate) fn type_error(&self, op: &str, a: ObjRef, b: ObjRef) -> VmError {
        self.err_here(format!(
            "TypeError: unsupported operand type(s) for {op}: '{}' and '{}'",
            self.kind(a).type_name(),
            self.kind(b).type_name()
        ))
    }

    pub(crate) fn err_here(&self, message: impl Into<String>) -> VmError {
        let line = self
            .frames
            .last()
            .and_then(|f| f.code.code.get(f.pc.saturating_sub(1)))
            .map(|i| i.line)
            .unwrap_or(0);
        VmError::runtime(message, line)
    }

    // ---- binary operations ---------------------------------------------------

    /// Executes a binary bytecode on owned operands; returns an owned result.
    pub(crate) fn binary_op(
        &mut self,
        op: Opcode,
        a: ObjRef,
        b: ObjRef,
    ) -> Result<ObjRef, VmError> {
        // Type checks on both operands (guards under the JIT).
        self.emit_typecheck2(16, a);
        self.emit_typecheck2(18, b);

        // int ⊗ int takes the ceval inline fast path; any other numeric mix
        // goes through the modeled PyNumber call chain.
        if self.as_int(a).is_some() && self.as_int(b).is_some() {
            let r = self.int_binary(op, a, b)?;
            self.decref(a);
            self.decref(b);
            return Ok(r);
        }
        if self.as_float(a).is_some() && self.as_float(b).is_some() {
            let r = self.float_binary(op, a, b)?;
            self.decref(a);
            self.decref(b);
            return Ok(r);
        }

        let r = match (op, self.kind(a).clone(), self.kind(b).clone()) {
            // -------- str + str -------------------------------------------------
            (Opcode::BinaryAdd, ObjKind::Str(x), ObjKind::Str(y)) => {
                self.rcall(20, 0x9000, false);
                let out: Rc<str> = Rc::from(format!("{x}{y}"));
                let bytes = out.len() as u64;
                self.scratch.push(a);
                self.scratch.push(b);
                let r = self.alloc_obj(ObjKind::Str(out));
                self.scratch.truncate(self.scratch.len() - 2);
                // Copy both halves into the new string.
                let (aa, ba, ra) = (self.obj_addr(a), self.obj_addr(b), self.obj_addr(r));
                self.copy_span(24, aa + 48, ra + 48, x.len() as u64);
                self.copy_span(26, ba + 48, ra + 48 + x.len() as u64, y.len() as u64);
                let _ = bytes;
                self.rret(28);
                r
            }
            // -------- str * int / int * str ------------------------------------
            (Opcode::BinaryMultiply, ObjKind::Str(x), ObjKind::Int(n))
            | (Opcode::BinaryMultiply, ObjKind::Int(n), ObjKind::Str(x)) => {
                self.rcall(20, 0x9040, false);
                let n = n.max(0) as usize;
                let out: Rc<str> = Rc::from(x.repeat(n));
                self.scratch.push(a);
                self.scratch.push(b);
                let r = self.alloc_obj(ObjKind::Str(Rc::clone(&out)));
                self.scratch.truncate(self.scratch.len() - 2);
                let ra = self.obj_addr(r);
                self.copy_span(24, ra + 48, ra + 48, out.len() as u64);
                self.rret(28);
                r
            }
            // -------- str % value: simple formatting ---------------------------
            (Opcode::BinaryModulo, ObjKind::Str(fmt), _) => {
                self.rcall(20, 0x9080, false);
                let formatted = self.format_str(&fmt, b)?;
                self.scratch.push(a);
                self.scratch.push(b);
                let r = self.alloc_obj(ObjKind::Str(Rc::from(formatted.as_str())));
                self.scratch.truncate(self.scratch.len() - 2);
                let ra = self.obj_addr(r);
                self.copy_span(24, ra + 48, ra + 48, formatted.len() as u64);
                self.rret(28);
                r
            }
            // -------- list + list ------------------------------------------------
            (Opcode::BinaryAdd, ObjKind::List(x), ObjKind::List(y)) => {
                self.rcall(20, 0x90C0, false);
                let mut items = x.clone();
                items.extend_from_slice(&y);
                for &i in &items {
                    self.incref(i);
                }
                let n = items.len();
                self.scratch.push(a);
                self.scratch.push(b);
                let r = self.alloc_obj(ObjKind::List(items));
                self.attach_list_buffer(r, n);
                self.scratch.truncate(self.scratch.len() - 2);
                let (aa, ba) = (self.buffer_addr(a), self.buffer_addr(b));
                let ra = self.buffer_addr(r);
                self.copy_span(24, aa, ra, (x.len() as u64) * 8);
                self.copy_span(26, ba, ra + (x.len() as u64) * 8, (y.len() as u64) * 8);
                self.rret(28);
                r
            }
            // -------- list * int -------------------------------------------------
            (Opcode::BinaryMultiply, ObjKind::List(x), ObjKind::Int(n))
            | (Opcode::BinaryMultiply, ObjKind::Int(n), ObjKind::List(x)) => {
                self.rcall(20, 0x9100, false);
                let n = n.max(0) as usize;
                let mut items = Vec::with_capacity(x.len() * n);
                for _ in 0..n {
                    items.extend_from_slice(&x);
                }
                for &i in &items {
                    self.incref(i);
                }
                let len = items.len();
                self.scratch.push(a);
                self.scratch.push(b);
                let r = self.alloc_obj(ObjKind::List(items));
                self.attach_list_buffer(r, len);
                self.scratch.truncate(self.scratch.len() - 2);
                let ra = self.buffer_addr(r);
                self.copy_span(24, ra, ra, (len as u64) * 8);
                self.rret(28);
                r
            }
            // -------- tuple + tuple ----------------------------------------------
            (Opcode::BinaryAdd, ObjKind::Tuple(x), ObjKind::Tuple(y)) => {
                self.rcall(20, 0x9140, false);
                let mut items: Vec<ObjRef> = x.iter().copied().collect();
                items.extend(y.iter().copied());
                for &i in &items {
                    self.incref(i);
                }
                self.scratch.push(a);
                self.scratch.push(b);
                let r = self.alloc_obj(ObjKind::Tuple(items.into()));
                self.scratch.truncate(self.scratch.len() - 2);
                self.rret(28);
                r
            }
            _ => return Err(self.type_error(op_symbol(op), a, b)),
        };
        self.decref(a);
        self.decref(b);
        Ok(r)
    }

    fn int_binary(&mut self, op: Opcode, a: ObjRef, b: ObjRef) -> Result<ObjRef, VmError> {
        let x = self.as_int(a).ok_or_else(|| self.err_here("TypeError: int operand expected"))?;
        let y = self.as_int(b).ok_or_else(|| self.err_here("TypeError: int operand expected"))?;
        self.emit_unbox2(30, a);
        self.emit_unbox2(31, b);
        let v: i64 = match op {
            Opcode::BinaryAdd => {
                self.ealu2(32, Category::Execute, 4);
                self.overflow_check(33, x.checked_add(y))?
            }
            Opcode::BinarySubtract => {
                self.ealu2(32, Category::Execute, 4);
                self.overflow_check(33, x.checked_sub(y))?
            }
            Opcode::BinaryMultiply => {
                self.emit(32, qoa_model::OpKind::Mul, Category::Execute);
                self.overflow_check(33, x.checked_mul(y))?
            }
            Opcode::BinaryDivide | Opcode::BinaryFloorDivide => {
                self.zero_check(33, y)?;
                self.emit(34, qoa_model::OpKind::Div, Category::Execute);
                x.div_euclid(y)
            }
            Opcode::BinaryModulo => {
                self.zero_check(33, y)?;
                self.emit(34, qoa_model::OpKind::Div, Category::Execute);
                x.rem_euclid(y)
            }
            Opcode::BinaryPower => {
                if y < 0 {
                    return Err(self.err_here("ValueError: negative exponent"));
                }
                let mut acc: i64 = 1;
                let mut base = x;
                let mut e = y;
                while e > 0 {
                    self.emit(35, qoa_model::OpKind::Mul, Category::Execute);
                    if e & 1 == 1 {
                        acc = acc
                            .checked_mul(base)
                            .ok_or_else(|| self.err_here("OverflowError: pow"))?;
                    }
                    e >>= 1;
                    if e > 0 {
                        base = base
                            .checked_mul(base)
                            .ok_or_else(|| self.err_here("OverflowError: pow"))?;
                    }
                }
                acc
            }
            Opcode::BinaryAnd => {
                self.ealu2(32, Category::Execute, 1);
                x & y
            }
            Opcode::BinaryOr => {
                self.ealu2(32, Category::Execute, 1);
                x | y
            }
            Opcode::BinaryXor => {
                self.ealu2(32, Category::Execute, 1);
                x ^ y
            }
            Opcode::BinaryLshift => {
                self.ealu2(32, Category::Execute, 1);
                let shift = u32::try_from(y)
                    .map_err(|_| self.err_here("ValueError: negative shift count"))?;
                self.overflow_check(33, x.checked_shl(shift))?
            }
            Opcode::BinaryRshift => {
                self.ealu2(32, Category::Execute, 1);
                let shift = y.clamp(0, 63) as u32;
                if y < 0 {
                    return Err(self.err_here("ValueError: negative shift count"));
                }
                x >> shift
            }
            other => return Err(self.err_here(format!("internal error: not an int binary op: {other:?}"))),
        };
        // Boxing the result: PyInt_FromLong.
        self.icall(40, 0x9200, false);
        self.scratch.push(a);
        self.scratch.push(b);
        let r = self.make_int(v);
        self.scratch.truncate(self.scratch.len() - 2);
        self.emit_box(44, r);
        self.iret(46);
        Ok(r)
    }

    fn float_binary(&mut self, op: Opcode, a: ObjRef, b: ObjRef) -> Result<ObjRef, VmError> {
        let x = self.as_float(a).ok_or_else(|| self.err_here("TypeError: numeric operand expected"))?;
        let y = self.as_float(b).ok_or_else(|| self.err_here("TypeError: numeric operand expected"))?;
        // Slow path: PyNumber_Add -> binary_op1 -> nb_add (indirect).
        self.icall(50, 0x9300, false);
        self.icall(56, 0x9340, true);
        self.emit_unbox2(62, a);
        self.emit_unbox2(63, b);
        // Sign/NaN/width handling in the C body is the program's work too.
        self.ealu2(63, Category::Execute, 3);
        let v = match op {
            Opcode::BinaryAdd => {
                self.efp2(64);
                x + y
            }
            Opcode::BinarySubtract => {
                self.efp2(64);
                x - y
            }
            Opcode::BinaryMultiply => {
                self.efp2(64);
                x * y
            }
            Opcode::BinaryDivide => {
                self.zero_check_f(65, y)?;
                self.efp2(64);
                x / y
            }
            Opcode::BinaryFloorDivide => {
                self.zero_check_f(65, y)?;
                self.efp2(64);
                (x / y).floor()
            }
            Opcode::BinaryModulo => {
                self.zero_check_f(65, y)?;
                self.efp2(64);
                x.rem_euclid(y)
            }
            Opcode::BinaryPower => {
                self.efp2(64);
                self.efp2(66);
                x.powf(y)
            }
            _ => return Err(self.type_error(op_symbol(op), a, b)),
        };
        // Result is an int if both operands were ints under `//` and `%`?
        // Python 2.7: int `op` float yields float; int//int handled in the
        // fast path, so everything here is a float.
        self.scratch.push(a);
        self.scratch.push(b);
        let r = self.make_float(v);
        self.scratch.truncate(self.scratch.len() - 2);
        self.emit_box(68, r);
        self.iret(70);
        self.iret(74);
        Ok(r)
    }

    fn overflow_check(&mut self, site: u32, v: Option<i64>) -> Result<i64, VmError> {
        self.ealu2(site, Category::ErrorCheck, 1);
        self.ebranch2(site + 1, Category::ErrorCheck, v.is_none());
        v.ok_or_else(|| self.err_here("OverflowError: integer overflow"))
    }

    fn zero_check(&mut self, site: u32, y: i64) -> Result<(), VmError> {
        self.ealu2(site, Category::ErrorCheck, 1);
        self.ebranch2(site + 1, Category::ErrorCheck, y == 0);
        if y == 0 {
            Err(self.err_here("ZeroDivisionError: integer division or modulo by zero"))
        } else {
            Ok(())
        }
    }

    fn zero_check_f(&mut self, site: u32, y: f64) -> Result<(), VmError> {
        self.ealu2(site, Category::ErrorCheck, 1);
        self.ebranch2(site + 1, Category::ErrorCheck, y == 0.0);
        if y == 0.0 {
            Err(self.err_here("ZeroDivisionError: float division by zero"))
        } else {
            Ok(())
        }
    }

    /// `%`-formatting: supports `%d`, `%s`, `%f` with tuple or scalar args.
    fn format_str(&mut self, fmt: &str, args: ObjRef) -> Result<String, VmError> {
        let arg_list: Vec<ObjRef> = match self.kind(args) {
            ObjKind::Tuple(t) => t.iter().copied().collect(),
            _ => vec![args],
        };
        let mut out = String::new();
        let mut ai = 0;
        let mut chars = fmt.chars().peekable();
        while let Some(c) = chars.next() {
            // Per-character formatting work.
            self.ealu2(80, Category::CLibrary, 1);
            if c != '%' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('%') => out.push('%'),
                Some(spec @ ('d' | 's' | 'f')) => {
                    let Some(&arg) = arg_list.get(ai) else {
                        return Err(self.err_here("TypeError: not enough format arguments"));
                    };
                    ai += 1;
                    let rendered = match (spec, self.kind(arg)) {
                        ('f', k) => match k {
                            ObjKind::Float(v) => format!("{v:.6}"),
                            ObjKind::Int(v) => format!("{:.6}", *v as f64),
                            _ => return Err(self.err_here("TypeError: %f needs a number")),
                        },
                        (_, _) => self.display_string(arg),
                    };
                    out.push_str(&rendered);
                }
                other => {
                    return Err(
                        self.err_here(format!("ValueError: bad format character {other:?}"))
                    )
                }
            }
        }
        Ok(out)
    }

    /// Human-readable rendering (the `str()` / `print` view).
    pub(crate) fn display_string(&self, r: ObjRef) -> String {
        match self.kind(r) {
            ObjKind::None => "None".into(),
            ObjKind::Bool(true) => "True".into(),
            ObjKind::Bool(false) => "False".into(),
            ObjKind::Int(v) => v.to_string(),
            ObjKind::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e16 {
                    format!("{v:.1}")
                } else {
                    v.to_string()
                }
            }
            ObjKind::Str(s) => s.to_string(),
            ObjKind::List(items) => {
                let inner: Vec<String> =
                    items.iter().map(|&i| self.repr_string(i)).collect();
                format!("[{}]", inner.join(", "))
            }
            ObjKind::Tuple(items) => {
                let inner: Vec<String> =
                    items.iter().map(|&i| self.repr_string(i)).collect();
                if inner.len() == 1 {
                    format!("({},)", inner[0])
                } else {
                    format!("({})", inner.join(", "))
                }
            }
            ObjKind::Dict(d) => {
                let inner: Vec<String> = d
                    .iter()
                    .map(|(k, v)| format!("{}: {}", self.repr_string(k), self.repr_string(v)))
                    .collect();
                format!("{{{}}}", inner.join(", "))
            }
            ObjKind::Range { start, stop, step } => format!("range({start}, {stop}, {step})"),
            ObjKind::Class(c) => format!("<class '{}'>", c.name),
            ObjKind::Instance { class, .. } => match self.kind(*class) {
                ObjKind::Class(c) => format!("<{} instance>", c.name),
                _ => "<instance>".into(),
            },
            ObjKind::Func(f) => format!("<function {}>", f.code.name),
            ObjKind::Native(_) => "<built-in function>".into(),
            other => format!("<{}>", other.type_name()),
        }
    }

    fn repr_string(&self, r: ObjRef) -> String {
        match self.kind(r) {
            ObjKind::Str(s) => format!("'{s}'"),
            _ => self.display_string(r),
        }
    }

    // ---- comparisons ------------------------------------------------------------

    /// Executes `COMPARE_OP` on owned operands; returns an owned bool.
    pub(crate) fn compare_op(&mut self, cmp: Cmp, a: ObjRef, b: ObjRef) -> Result<ObjRef, VmError> {
        self.emit_typecheck2(16, a);
        self.emit_typecheck2(18, b);
        let result: bool = match cmp {
            Cmp::In | Cmp::NotIn => {
                let contains = self.contains(b, a)?;
                if cmp == Cmp::In {
                    contains
                } else {
                    !contains
                }
            }
            _ => {
                let ord = self.compare_values(a, b, 20)?;
                match cmp {
                    Cmp::Eq => ord == std::cmp::Ordering::Equal,
                    Cmp::Ne => ord != std::cmp::Ordering::Equal,
                    Cmp::Lt => ord == std::cmp::Ordering::Less,
                    Cmp::Le => ord != std::cmp::Ordering::Greater,
                    Cmp::Gt => ord == std::cmp::Ordering::Greater,
                    Cmp::Ge => ord != std::cmp::Ordering::Less,
                    Cmp::In | Cmp::NotIn => {
                        return Err(self.err_here("internal error: containment compare routed to ordering path"))
                    }
                }
            }
        };
        self.decref(a);
        self.decref(b);
        let r = self.bool_ref(result);
        self.incref(r);
        Ok(r)
    }

    /// Three-way comparison with emission; `Equal` for incomparable
    /// equal-checked values is handled by the callers.
    fn compare_values(
        &mut self,
        a: ObjRef,
        b: ObjRef,
        site: u32,
    ) -> Result<std::cmp::Ordering, VmError> {
        use std::cmp::Ordering;
        match (self.kind(a).clone(), self.kind(b).clone()) {
            (ObjKind::Int(_) | ObjKind::Bool(_), ObjKind::Int(_) | ObjKind::Bool(_)) => {
                // ceval fast path: inline compare.
                let x = self.as_int(a).ok_or_else(|| self.err_here("TypeError: int operand expected"))?;
                let y = self.as_int(b).ok_or_else(|| self.err_here("TypeError: int operand expected"))?;
                self.emit_unbox2(site, a);
                self.emit_unbox2(site + 1, b);
                self.ealu2(site + 2, Category::Execute, 3);
                Ok(x.cmp(&y))
            }
            (x, y)
                if matches!(x, ObjKind::Float(_) | ObjKind::Int(_) | ObjKind::Bool(_))
                    && matches!(y, ObjKind::Float(_) | ObjKind::Int(_) | ObjKind::Bool(_)) =>
            {
                let x = self.as_float(a).ok_or_else(|| self.err_here("TypeError: numeric operand expected"))?;
                let y = self.as_float(b).ok_or_else(|| self.err_here("TypeError: numeric operand expected"))?;
                self.icall(site, 0x9400, false);
                self.emit_unbox2(site + 6, a);
                self.emit_unbox2(site + 7, b);
                self.efp2(site + 8);
                self.iret(site + 10);
                Ok(x.partial_cmp(&y).unwrap_or(Ordering::Equal))
            }
            (ObjKind::Str(x), ObjKind::Str(y)) => {
                self.rcall(site, 0x9440, false);
                // Per-character compare loads, up to the shared prefix.
                let (aa, ba) = (self.obj_addr(a), self.obj_addr(b));
                let shared = x
                    .bytes()
                    .zip(y.bytes())
                    .take_while(|(p, q)| p == q)
                    .count()
                    .min(64);
                for i in 0..=(shared as u64 / 8) {
                    self.eload2(site + 6, Category::Execute, aa + 48 + i * 8);
                    self.eload2(site + 7, Category::Execute, ba + 48 + i * 8);
                }
                self.rret(site + 10);
                Ok(x.as_ref().cmp(y.as_ref()))
            }
            (ObjKind::List(x), ObjKind::List(y)) => self.compare_seq(&x, &y, site),
            (ObjKind::Tuple(x), ObjKind::Tuple(y)) => {
                let x: Vec<ObjRef> = x.iter().copied().collect();
                let y: Vec<ObjRef> = y.iter().copied().collect();
                self.compare_seq(&x, &y, site)
            }
            (ObjKind::None, ObjKind::None) => Ok(Ordering::Equal),
            (ObjKind::None, _) => Ok(Ordering::Less),
            (_, ObjKind::None) => Ok(Ordering::Greater),
            _ => {
                // Identity comparison as the final fallback (CPython 2.x
                // compares by type name; we only need eq/ne to behave).
                self.ealu2(site, Category::Execute, 1);
                Ok(if a == b { Ordering::Equal } else { Ordering::Less })
            }
        }
    }

    fn compare_seq(
        &mut self,
        x: &[ObjRef],
        y: &[ObjRef],
        site: u32,
    ) -> Result<std::cmp::Ordering, VmError> {
        self.rcall(site, 0x9480, false);
        let mut result = x.len().cmp(&y.len());
        for (&p, &q) in x.iter().zip(y.iter()) {
            let ord = self.compare_values(p, q, site + 12)?;
            if ord != std::cmp::Ordering::Equal {
                result = ord;
                break;
            }
        }
        self.rret(site + 20);
        Ok(result)
    }

    /// Pure-semantics equality (no emission) for membership and dict keys.
    pub(crate) fn value_eq(&self, a: ObjRef, b: ObjRef) -> bool {
        match (self.kind(a), self.kind(b)) {
            (ObjKind::Int(x), ObjKind::Int(y)) => x == y,
            (ObjKind::Bool(x), ObjKind::Bool(y)) => x == y,
            (ObjKind::Int(x), ObjKind::Bool(y)) => *x == *y as i64,
            (ObjKind::Bool(x), ObjKind::Int(y)) => *x as i64 == *y,
            (ObjKind::Float(x), ObjKind::Float(y)) => x == y,
            (ObjKind::Int(x), ObjKind::Float(y)) => *x as f64 == *y,
            (ObjKind::Float(x), ObjKind::Int(y)) => *x == *y as f64,
            (ObjKind::Str(x), ObjKind::Str(y)) => x == y,
            (ObjKind::None, ObjKind::None) => true,
            (ObjKind::Tuple(x), ObjKind::Tuple(y)) => {
                x.len() == y.len()
                    && x.iter().zip(y.iter()).all(|(&p, &q)| self.value_eq(p, q))
            }
            (ObjKind::List(x), ObjKind::List(y)) => {
                x.len() == y.len()
                    && x.iter().zip(y.iter()).all(|(&p, &q)| self.value_eq(p, q))
            }
            _ => a == b,
        }
    }

    fn contains(&mut self, container: ObjRef, item: ObjRef) -> Result<bool, VmError> {
        match self.kind(container).clone() {
            ObjKind::Dict(_) => {
                let key = self
                    .key_of(item)
                    .map_err(|m| self.err_here(format!("TypeError: {m}")))?;
                // Program-data lookup: Execute, per the paper's call-site rule.
                Ok(self.dict_lookup(container, &key, Category::Execute).is_some())
            }
            ObjKind::List(items) => {
                let base = self.buffer_addr(container);
                for (i, &e) in items.iter().enumerate() {
                    self.eload2(90, Category::Execute, base + (i as u64) * 8);
                    self.ealu2(91, Category::Execute, 1);
                    if self.value_eq(e, item) {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            ObjKind::Tuple(items) => {
                let base = self.obj_addr(container) + SEQ_HEADER;
                for (i, &e) in items.iter().enumerate() {
                    self.eload2(90, Category::Execute, base + (i as u64) * 8);
                    self.ealu2(91, Category::Execute, 1);
                    if self.value_eq(e, item) {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            ObjKind::Str(s) => {
                let ObjKind::Str(needle) = self.kind(item) else {
                    return Err(self.err_here("TypeError: 'in <string>' requires string"));
                };
                let needle = Rc::clone(needle);
                // Substring scan cost.
                let base = self.obj_addr(container) + 48;
                for i in 0..(s.len() as u64 / 8 + 1).min(64) {
                    self.eload2(92, Category::Execute, base + i * 8);
                }
                Ok(s.contains(needle.as_ref()))
            }
            other => Err(self.err_here(format!(
                "TypeError: argument of type '{}' is not iterable",
                other.type_name()
            ))),
        }
    }

    // ---- dict machinery -----------------------------------------------------------

    /// Probing lookup with per-probe load emission.
    pub(crate) fn dict_lookup(
        &mut self,
        dict: ObjRef,
        key: &Key,
        cat: Category,
    ) -> Option<ObjRef> {
        let mut probes = std::mem::take(&mut self.probes);
        let found = match self.kind(dict) {
            ObjKind::Dict(d) => d.lookup(key, &mut probes),
            _ => None,
        };
        let base = self.buffer_addr(dict);
        for &slot in &probes {
            // Entry load, hash compare, key-pointer compare + key deref.
            self.eload2(100, cat, base + (slot as u64) * DICT_SLOT);
            self.ealu2(101, cat, 2);
            self.eload2(102, cat, base + (slot as u64) * DICT_SLOT + 8);
            self.ealu2(103, cat, 1);
        }
        self.stats.dict_probes += probes.len() as u64;
        self.probes = probes;
        found
    }

    /// Probing insert; takes ownership of `value`, increfs the key object
    /// on first insert, handles buffer growth, and emits barrier traffic.
    pub(crate) fn dict_insert(
        &mut self,
        dict: ObjRef,
        key: Key,
        key_obj: ObjRef,
        value: ObjRef,
        cat: Category,
    ) -> Result<(), VmError> {
        let mut probes = std::mem::take(&mut self.probes);
        let (old, cap_before, cap_after) = {
            let ObjKind::Dict(d) = &mut self.obj_mut(dict).kind else {
                return Err(self.err_here("TypeError: not a dict"));
            };
            let cap_before = d.capacity();
            let old = d.insert(key, key_obj, value, &mut probes);
            (old, cap_before, d.capacity())
        };
        let base = self.buffer_addr(dict);
        for &slot in &probes {
            self.eload2(104, cat, base + (slot as u64) * DICT_SLOT);
            self.ealu2(105, cat, 2);
            self.eload2(109, cat, base + (slot as u64) * DICT_SLOT + 8);
        }
        // The winning slot's writes.
        if let Some(&slot) = probes.last() {
            self.estore2(106, cat, base + (slot as u64) * DICT_SLOT + 8);
            self.estore2(107, cat, base + (slot as u64) * DICT_SLOT + 16);
        }
        self.stats.dict_probes += probes.len() as u64;
        self.probes = probes;
        if old.is_none() {
            self.incref(key_obj);
        }
        if cap_after != cap_before {
            self.grow_dict_buffer(dict, cap_after);
        }
        self.write_barrier(dict, value);
        self.write_barrier(dict, key_obj);
        if let Some(old) = old {
            self.decref(old);
        }
        Ok(())
    }

    /// Probing removal; returns the removed value (owned by the caller) and
    /// decrefs the stored key object.
    pub(crate) fn dict_remove(
        &mut self,
        dict: ObjRef,
        key: &Key,
        cat: Category,
    ) -> Option<ObjRef> {
        // Find the key object first so we can release it.
        let key_obj = {
            let ObjKind::Dict(d) = self.kind(dict) else { return None };
            d.iter()
                .find(|(k, _)| self.key_of(*k).map(|kk| kk == *key).unwrap_or(false))
                .map(|(k, _)| k)
        };
        let mut probes = std::mem::take(&mut self.probes);
        let removed = {
            let ObjKind::Dict(d) = &mut self.obj_mut(dict).kind else {
                return None;
            };
            d.remove(key, &mut probes)
        };
        let base = self.buffer_addr(dict);
        for &slot in probes.iter().take(8) {
            self.eload2(108, cat, base + (slot as u64) * DICT_SLOT);
        }
        self.stats.dict_probes += probes.len() as u64;
        self.probes = probes;
        if removed.is_some() {
            if let Some(k) = key_obj {
                self.decref(k);
            }
        }
        removed
    }

    fn grow_dict_buffer(&mut self, dict: ObjRef, new_capacity: usize) {
        let old_buf = self.obj(dict).buffer;
        let bytes = (new_capacity as u64) * DICT_SLOT;
        self.scratch.push(dict);
        let new_buf = self.alloc_obj(ObjKind::Buffer { bytes });
        self.scratch.pop();
        if let Some(old) = old_buf {
            // Rehash copy: read the old table, write the new.
            let (oa, na) = (self.obj_addr(old), self.obj_addr(new_buf));
            let old_bytes = match self.kind(old) {
                ObjKind::Buffer { bytes } => *bytes,
                _ => 0,
            };
            self.copy_span(110, oa, na, old_bytes.min(1 << 16));
            self.decref(old);
        }
        self.obj_mut(dict).buffer = Some(new_buf);
        self.write_barrier(dict, new_buf);
    }

    /// Address of a container's backing buffer (or inline storage).
    pub(crate) fn buffer_addr(&self, obj: ObjRef) -> u64 {
        match self.obj(obj).buffer {
            Some(b) => self.obj_addr(b),
            None => self.obj_addr(obj) + SEQ_HEADER,
        }
    }

    /// Attaches a list's backing buffer sized for `len` elements.
    pub(crate) fn attach_list_buffer(&mut self, list: ObjRef, len: usize) {
        let cap = (len + (len >> 3) + 6) as u64;
        self.scratch.push(list);
        let buf = self.alloc_obj(ObjKind::Buffer { bytes: cap * 8 });
        self.scratch.pop();
        self.obj_mut(list).buffer = Some(buf);
        self.write_barrier(list, buf);
    }

    /// Attaches a fresh dict's backing buffer.
    pub(crate) fn attach_dict_buffer(&mut self, dict: ObjRef) {
        let cap = match self.kind(dict) {
            ObjKind::Dict(d) => d.capacity() as u64,
            _ => 8,
        };
        self.scratch.push(dict);
        let buf = self.alloc_obj(ObjKind::Buffer { bytes: cap * DICT_SLOT });
        self.scratch.pop();
        self.obj_mut(dict).buffer = Some(buf);
        self.write_barrier(dict, buf);
    }

    /// Grows a list's buffer if needed after an append (CPython growth
    /// pattern), emitting the realloc copy.
    pub(crate) fn maybe_grow_list(&mut self, list: ObjRef) {
        let len = match self.kind(list) {
            ObjKind::List(v) => v.len() as u64,
            _ => return,
        };
        let cap_bytes = match self.obj(list).buffer.map(|b| self.kind(b).clone()) {
            Some(ObjKind::Buffer { bytes }) => bytes,
            _ => 0,
        };
        if len * 8 <= cap_bytes {
            return;
        }
        let new_cap = len + (len >> 3) + 6;
        let old_buf = self.obj(list).buffer;
        self.scratch.push(list);
        let new_buf = self.alloc_obj(ObjKind::Buffer { bytes: new_cap * 8 });
        self.scratch.pop();
        if let Some(old) = old_buf {
            let (oa, na) = (self.obj_addr(old), self.obj_addr(new_buf));
            self.copy_span(112, oa, na, cap_bytes.min(1 << 16));
            self.decref(old);
        }
        self.obj_mut(list).buffer = Some(new_buf);
        self.write_barrier(list, new_buf);
    }

    /// Emits a bounded memcpy (one load+store per 8 bytes, capped so huge
    /// copies don't dominate pathologically).
    pub(crate) fn copy_span(&mut self, site: u32, src: u64, dst: u64, bytes: u64) {
        let words = (bytes / 8).min(4096);
        for i in 0..words {
            self.eload2(site, Category::Execute, src + i * 8);
            self.estore2(site + 1, Category::Execute, dst + i * 8);
        }
    }

    // ---- globals ----------------------------------------------------------------

    /// Resolves a global name (globals, then builtins). Returns a
    /// *borrowed* reference.
    pub(crate) fn load_global(&mut self, name: String) -> Result<ObjRef, VmError> {
        self.icall(120, 0x9500, false);
        let key = Key::Str(Rc::from(name.as_str()));
        let globals = self.globals;
        let found = self.dict_lookup(globals, &key, Category::NameResolution);
        let v = match found {
            Some(v) => v,
            None => {
                let builtins = self.builtins;
                match self.dict_lookup(builtins, &key, Category::NameResolution) {
                    Some(v) => v,
                    None => {
                        return Err(
                            self.err_here(format!("NameError: name '{name}' is not defined"))
                        )
                    }
                }
            }
        };
        self.iret(126);
        Ok(v)
    }

    // ---- subscripts -----------------------------------------------------------------

    fn index_i64(&mut self, idx: ObjRef) -> Result<i64, VmError> {
        self.as_int(idx)
            .ok_or_else(|| self.err_here("TypeError: indices must be integers"))
    }

    fn normalize_index(&mut self, i: i64, len: usize, clamp: bool) -> Result<usize, VmError> {
        let len = len as i64;
        let adjusted = if i < 0 { i + len } else { i };
        self.ealu2(130, Category::ErrorCheck, 1);
        self.ebranch2(131, Category::ErrorCheck, adjusted < 0 || adjusted >= len);
        if clamp {
            Ok(adjusted.clamp(0, len) as usize)
        } else if adjusted < 0 || adjusted >= len {
            Err(self.err_here("IndexError: index out of range"))
        } else {
            Ok(adjusted as usize)
        }
    }

    fn slice_bounds(&mut self, lo: ObjRef, hi: ObjRef, len: usize) -> Result<(usize, usize), VmError> {
        let l = match self.kind(lo) {
            ObjKind::None => 0,
            _ => {
                let v = self.index_i64(lo)?;
                let v = if v < 0 { v + len as i64 } else { v };
                v.clamp(0, len as i64) as usize
            }
        };
        let h = match self.kind(hi) {
            ObjKind::None => len,
            _ => {
                let v = self.index_i64(hi)?;
                let v = if v < 0 { v + len as i64 } else { v };
                v.clamp(0, len as i64) as usize
            }
        };
        Ok((l, h.max(l)))
    }

    /// `obj[idx]` on owned operands; returns an owned result.
    pub(crate) fn subscr(&mut self, obj: ObjRef, idx: ObjRef) -> Result<ObjRef, VmError> {
        self.emit_typecheck2(16, obj);
        self.emit_typecheck2(18, idx);
        let r = match (self.kind(obj).clone(), self.kind(idx).clone()) {
            (ObjKind::List(items), ObjKind::Int(_) | ObjKind::Bool(_)) => {
                // ceval list fast path: inline bounds check + load.
                let i = self.index_i64(idx)?;
                self.emit_unbox2(20, idx);
                let i = self.normalize_index(i, items.len(), false)?;
                let base = self.buffer_addr(obj);
                self.ealu2(21, Category::Execute, 2);
                self.eload2(22, Category::Execute, base + (i as u64) * 8);
                let v = items[i];
                self.incref(v);
                v
            }
            (ObjKind::Tuple(items), ObjKind::Int(_) | ObjKind::Bool(_)) => {
                let i = self.index_i64(idx)?;
                self.emit_unbox2(20, idx);
                let i = self.normalize_index(i, items.len(), false)?;
                let base = self.obj_addr(obj) + SEQ_HEADER;
                self.eload2(22, Category::Execute, base + (i as u64) * 8);
                let v = items[i];
                self.incref(v);
                v
            }
            (ObjKind::Str(s), ObjKind::Int(_) | ObjKind::Bool(_)) => {
                let i = self.index_i64(idx)?;
                self.emit_unbox2(20, idx);
                let bytes = s.as_bytes();
                let i = self.normalize_index(i, bytes.len(), false)?;
                self.eload2(22, Category::Execute, self.obj_addr(obj) + 48 + i as u64);
                let ch: Rc<str> = Rc::from(&s[i..i + 1]);
                self.scratch.push(obj);
                self.scratch.push(idx);
                let r = self.alloc_obj(ObjKind::Str(ch));
                self.scratch.truncate(self.scratch.len() - 2);
                r
            }
            (ObjKind::Dict(_), _) => {
                self.rcall(24, 0x9600, false);
                let key = self
                    .key_of(idx)
                    .map_err(|m| self.err_here(format!("TypeError: {m}")))?;
                let found = self.dict_lookup(obj, &key, Category::Execute);
                self.rret(30);
                match found {
                    Some(v) => {
                        self.incref(v);
                        v
                    }
                    None => {
                        let k = self.display_string(idx);
                        return Err(self.err_here(format!("KeyError: {k}")));
                    }
                }
            }
            (ObjKind::List(items), ObjKind::Slice { lo, hi }) => {
                self.rcall(24, 0x9640, false);
                let (l, h) = self.slice_bounds(lo, hi, items.len())?;
                let slice: Vec<ObjRef> = items[l..h].to_vec();
                for &v in &slice {
                    self.incref(v);
                }
                let n = slice.len();
                self.scratch.push(obj);
                self.scratch.push(idx);
                let r = self.alloc_obj(ObjKind::List(slice));
                self.attach_list_buffer(r, n);
                self.scratch.truncate(self.scratch.len() - 2);
                let src = self.buffer_addr(obj) + (l as u64) * 8;
                let dst = self.buffer_addr(r);
                self.copy_span(26, src, dst, (n as u64) * 8);
                self.rret(30);
                r
            }
            (ObjKind::Str(s), ObjKind::Slice { lo, hi }) => {
                self.rcall(24, 0x9680, false);
                let (l, h) = self.slice_bounds(lo, hi, s.len())?;
                let sub: Rc<str> = Rc::from(&s[l..h]);
                let n = sub.len() as u64;
                self.scratch.push(obj);
                self.scratch.push(idx);
                let r = self.alloc_obj(ObjKind::Str(sub));
                self.scratch.truncate(self.scratch.len() - 2);
                let src = self.obj_addr(obj) + 48 + l as u64;
                let dst = self.obj_addr(r) + 48;
                self.copy_span(26, src, dst, n);
                self.rret(30);
                r
            }
            (ObjKind::Tuple(items), ObjKind::Slice { lo, hi }) => {
                self.rcall(24, 0x96C0, false);
                let (l, h) = self.slice_bounds(lo, hi, items.len())?;
                let slice: Vec<ObjRef> = items[l..h].to_vec();
                for &v in &slice {
                    self.incref(v);
                }
                self.scratch.push(obj);
                self.scratch.push(idx);
                let r = self.alloc_obj(ObjKind::Tuple(slice.into()));
                self.scratch.truncate(self.scratch.len() - 2);
                self.rret(30);
                r
            }
            (o, i) => {
                return Err(self.err_here(format!(
                    "TypeError: '{}' indices must be valid, got '{}'",
                    o.type_name(),
                    i.type_name()
                )))
            }
        };
        self.decref(obj);
        self.decref(idx);
        Ok(r)
    }

    /// `obj[idx] = value` on owned operands.
    pub(crate) fn store_subscr(
        &mut self,
        obj: ObjRef,
        idx: ObjRef,
        value: ObjRef,
    ) -> Result<(), VmError> {
        self.emit_typecheck2(16, obj);
        match self.kind(obj).clone() {
            ObjKind::List(items) => {
                let i = self.index_i64(idx)?;
                self.emit_unbox2(20, idx);
                let i = self.normalize_index(i, items.len(), false)?;
                // The JIT materializes values that escape into the heap.
                self.materialize(value);
                let base = self.buffer_addr(obj);
                self.estore2(22, Category::Execute, base + (i as u64) * 8);
                let old = {
                    let ObjKind::List(v) = &mut self.obj_mut(obj).kind else {
                        return Err(self.err_here("internal error: list changed kind"));
                    };
                    std::mem::replace(&mut v[i], value)
                };
                self.write_barrier(obj, value);
                self.decref(old);
            }
            ObjKind::Dict(_) => {
                self.rcall(24, 0x9700, false);
                self.materialize(value);
                self.materialize(idx);
                let key = self
                    .key_of(idx)
                    .map_err(|m| self.err_here(format!("TypeError: {m}")))?;
                self.dict_insert(obj, key, idx, value, Category::Execute)?;
                self.rret(30);
            }
            other => {
                return Err(self.err_here(format!(
                    "TypeError: '{}' object does not support item assignment",
                    other.type_name()
                )))
            }
        }
        self.decref(obj);
        self.decref(idx);
        Ok(())
    }

    /// `del obj[idx]` on owned operands.
    pub(crate) fn del_subscr(&mut self, obj: ObjRef, idx: ObjRef) -> Result<(), VmError> {
        self.emit_typecheck2(16, obj);
        match self.kind(obj).clone() {
            ObjKind::Dict(_) => {
                self.rcall(24, 0x9740, false);
                let key = self
                    .key_of(idx)
                    .map_err(|m| self.err_here(format!("TypeError: {m}")))?;
                let removed = self.dict_remove(obj, &key, Category::Execute);
                self.rret(30);
                match removed {
                    Some(v) => self.decref(v),
                    None => {
                        let k = self.display_string(idx);
                        return Err(self.err_here(format!("KeyError: {k}")));
                    }
                }
            }
            ObjKind::List(items) => {
                let i = self.index_i64(idx)?;
                let i = self.normalize_index(i, items.len(), false)?;
                let removed = {
                    let ObjKind::List(v) = &mut self.obj_mut(obj).kind else {
                        return Err(self.err_here("internal error: list changed kind"));
                    };
                    v.remove(i)
                };
                // Shift emission.
                let base = self.buffer_addr(obj);
                let len = items.len();
                for j in i..len.saturating_sub(1) {
                    self.eload2(26, Category::Execute, base + (j as u64 + 1) * 8);
                    self.estore2(27, Category::Execute, base + (j as u64) * 8);
                }
                self.decref(removed);
            }
            other => {
                return Err(self.err_here(format!(
                    "TypeError: '{}' object doesn't support item deletion",
                    other.type_name()
                )))
            }
        }
        self.decref(obj);
        self.decref(idx);
        Ok(())
    }

    // ---- attributes --------------------------------------------------------------------

    /// `obj.name` on an owned receiver; returns an owned result.
    pub(crate) fn load_attr(&mut self, obj: ObjRef, name: &str) -> Result<ObjRef, VmError> {
        self.emit_typecheck2(16, obj);
        // PyObject_GetAttr -> tp_getattro (indirect).
        self.rcall(18, 0x9800, false);
        self.icall(24, 0x9840, true);
        let key = Key::Str(Rc::from(name));
        let result = match self.kind(obj).clone() {
            ObjKind::Instance { class, dict } => {
                // Instance dict first.
                if let Some(v) = self.dict_lookup(dict, &key, Category::NameResolution) {
                    self.incref(v);
                    self.decref(obj);
                    v
                } else {
                    // Class chain next.
                    match self.class_chain_lookup(class, &key) {
                        Some(v) => {
                            if matches!(self.kind(v), ObjKind::Func(_) | ObjKind::Native(_)) {
                                // Descriptor bind: allocate a bound method.
                                self.eload2(30, Category::FunctionResolution, self.obj_addr(v));
                                self.ealu2(31, Category::FunctionResolution, 1);
                                self.incref(v);
                                self.scratch.push(obj);
                                self.scratch.push(v);
                                let bm =
                                    self.alloc_obj(ObjKind::BoundMethod { func: v, recv: obj });
                                self.scratch.truncate(self.scratch.len() - 2);
                                // `obj` ownership transfers into the bound method.
                                bm
                            } else {
                                self.incref(v);
                                self.decref(obj);
                                v
                            }
                        }
                        None => {
                            return Err(self.err_here(format!(
                                "AttributeError: instance has no attribute '{name}'"
                            )))
                        }
                    }
                }
            }
            ObjKind::Class(c) => {
                let mut cur = Some(c.dict);
                let mut base = c.base;
                let mut found = None;
                while let Some(d) = cur {
                    if let Some(v) = self.dict_lookup(d, &key, Category::NameResolution) {
                        found = Some(v);
                        break;
                    }
                    cur = match base {
                        Some(b) => match self.kind(b) {
                            ObjKind::Class(bc) => {
                                let next = bc.dict;
                                base = bc.base;
                                Some(next)
                            }
                            _ => None,
                        },
                        None => None,
                    };
                }
                match found {
                    Some(v) => {
                        self.incref(v);
                        self.decref(obj);
                        v
                    }
                    None => {
                        return Err(self.err_here(format!(
                            "AttributeError: type object has no attribute '{name}'"
                        )))
                    }
                }
            }
            kind => {
                // Built-in type method: consult the type's method table.
                match self.natives.method_for(kind.type_name(), name) {
                    Some(native_obj) => {
                        self.eload2(30, Category::FunctionResolution, mem::STATIC_DATA_BASE + 0x800);
                        self.eload2(31, Category::FunctionResolution, self.obj_addr(native_obj));
                        self.incref(native_obj);
                        self.scratch.push(obj);
                        let bm = self
                            .alloc_obj(ObjKind::BoundMethod { func: native_obj, recv: obj });
                        self.scratch.pop();
                        bm
                    }
                    None => {
                        return Err(self.err_here(format!(
                            "AttributeError: '{}' object has no attribute '{name}'",
                            kind.type_name()
                        )))
                    }
                }
            }
        };
        self.iret(36);
        self.rret(40);
        Ok(result)
    }

    /// Walks the class chain for `key`; returns a borrowed reference.
    fn class_chain_lookup(&mut self, class: ObjRef, key: &Key) -> Option<ObjRef> {
        let mut cur = class;
        loop {
            let (dict, base) = match self.kind(cur) {
                ObjKind::Class(c) => (c.dict, c.base),
                _ => return None,
            };
            if let Some(v) = self.dict_lookup(dict, key, Category::NameResolution) {
                return Some(v);
            }
            cur = base?;
        }
    }

    /// `obj.name = value` on owned receiver and value.
    pub(crate) fn store_attr(
        &mut self,
        obj: ObjRef,
        name: &str,
        value: ObjRef,
    ) -> Result<(), VmError> {
        self.emit_typecheck2(16, obj);
        self.icall(18, 0x9880, false);
        let name_obj = self.intern_str(name);
        let key = Key::Str(Rc::from(name));
        match self.kind(obj).clone() {
            ObjKind::Instance { dict, .. } => {
                self.materialize(value);
                self.dict_insert(dict, key, name_obj, value, Category::NameResolution)?;
            }
            ObjKind::Class(c) => {
                self.materialize(value);
                self.dict_insert(c.dict, key, name_obj, value, Category::NameResolution)?;
            }
            other => {
                return Err(self.err_here(format!(
                    "AttributeError: '{}' object has no settable attributes",
                    other.type_name()
                )))
            }
        }
        self.iret(26);
        self.decref(obj);
        Ok(())
    }

    // ---- iterators ----------------------------------------------------------------------

    /// Advances an iterator object; returns the next owned value.
    pub(crate) fn iter_next(&mut self, iter: ObjRef) -> Result<Option<ObjRef>, VmError> {
        let state_addr = self.obj_addr(iter);
        self.eload2(0, Category::Execute, state_addr + 16);
        self.ealu2(1, Category::Execute, 2);
        let state = match self.kind(iter) {
            ObjKind::Iter(s) => s.clone(),
            other => {
                return Err(self.err_here(format!(
                    "TypeError: '{}' is not an iterator",
                    other.type_name()
                )))
            }
        };
        let (next_value, new_state) = match state {
            IterState::Range { next, stop, step } => {
                self.ealu2(2, Category::Execute, 1);
                self.ebranch2(3, Category::ErrorCheck, false);
                let exhausted = if step > 0 { next >= stop } else { next <= stop };
                if exhausted {
                    (None, None)
                } else {
                    // Each iteration boxes a fresh int (CPython churn; the
                    // JIT keeps it virtual).
                    let v = self.make_int(next);
                    self.emit_box(4, v);
                    (Some(v), Some(IterState::Range { next: next + step, stop, step }))
                }
            }
            IterState::Seq { seq, index } => {
                let len = match self.kind(seq) {
                    ObjKind::List(v) => v.len(),
                    ObjKind::Tuple(v) => v.len(),
                    _ => 0,
                };
                self.ealu2(2, Category::ErrorCheck, 1);
                if index >= len {
                    (None, None)
                } else {
                    let v = match self.kind(seq) {
                        ObjKind::List(v) => v[index],
                        ObjKind::Tuple(v) => v[index],
                        _ => return Err(self.err_here("internal error: seq iterator over non-sequence")),
                    };
                    let base = self.buffer_addr(seq);
                    self.eload2(4, Category::Execute, base + (index as u64) * 8);
                    self.incref(v);
                    (Some(v), Some(IterState::Seq { seq, index: index + 1 }))
                }
            }
            IterState::Str { s, index } => {
                let owned = match self.kind(s) {
                    ObjKind::Str(x) => Rc::clone(x),
                    _ => return Err(self.err_here("internal error: str iterator over non-string")),
                };
                if index >= owned.len() {
                    (None, None)
                } else {
                    self.eload2(4, Category::Execute, self.obj_addr(s) + 48 + index as u64);
                    let ch: Rc<str> = Rc::from(&owned[index..index + 1]);
                    self.scratch.push(iter);
                    let v = self.alloc_obj(ObjKind::Str(ch));
                    self.scratch.pop();
                    (Some(v), Some(IterState::Str { s, index: index + 1 }))
                }
            }
            IterState::Keys { keys, index } => {
                self.ealu2(2, Category::ErrorCheck, 1);
                if index >= keys.len() {
                    (None, None)
                } else {
                    let v = keys[index];
                    self.eload2(4, Category::Execute, state_addr + 24);
                    self.incref(v);
                    (Some(v), Some(IterState::Keys { keys, index: index + 1 }))
                }
            }
        };
        if let Some(ns) = new_state {
            self.estore2(6, Category::Execute, state_addr + 16);
            if let ObjKind::Iter(s) = &mut self.obj_mut(iter).kind {
                *s = ns;
            }
        }
        Ok(next_value)
    }

    // ---- calls and returns ------------------------------------------------------------------

    /// `CALL_FUNCTION argc` — pops arguments and callee, then dispatches.
    pub(crate) fn call_function(&mut self, argc: usize) -> Result<StepEvent, VmError> {
        self.stats.calls += 1;
        // Pop args (reversed) and the callee into GC-visible scratch.
        let mark = self.scratch.len();
        for _ in 0..argc {
            let v = self.pop_s(0)?;
            self.scratch.push(v);
        }
        self.scratch[mark..].reverse();
        let callee = self.pop_s(3)?;
        self.scratch.push(callee);
        // CPython: call_function helper.
        self.emit_typecheck2(16, callee);
        self.icall(18, 0x9900, false);

        let ev = self.dispatch_call(callee, mark, argc);
        // Scratch cleanup happens inside dispatch_call paths.
        self.iret(60);
        ev
    }

    /// Dispatches a call; `mark..mark+argc` in scratch are the owned args,
    /// `mark+argc` is the owned callee. Consumes them all.
    fn dispatch_call(
        &mut self,
        callee: ObjRef,
        mark: usize,
        argc: usize,
    ) -> Result<StepEvent, VmError> {
        match self.kind(callee).clone() {
            ObjKind::Func(f) => {
                let args: Vec<ObjRef> = self.scratch[mark..mark + argc].to_vec();
                self.scratch.truncate(mark);
                // `callee` ownership moves into the frame's root slot.
                self.enter_function(f, args, callee, None)?;
                Ok(StepEvent::Continue)
            }
            ObjKind::Native(id) => {
                let args: Vec<ObjRef> = self.scratch[mark..mark + argc].to_vec();
                let result = self.call_native(id, None, &args)?;
                self.scratch.truncate(mark);
                for a in args {
                    self.decref(a);
                }
                self.decref(callee);
                self.push_s(56, result)?;
                Ok(StepEvent::Continue)
            }
            ObjKind::BoundMethod { func, recv } => {
                match self.kind(func).clone() {
                    ObjKind::Func(f) => {
                        self.incref(recv);
                        let mut args = Vec::with_capacity(argc + 1);
                        args.push(recv);
                        args.extend_from_slice(&self.scratch[mark..mark + argc]);
                        self.scratch.truncate(mark);
                        self.incref(func);
                        // The bound method itself is released; the frame
                        // keeps the function alive.
                        self.decref(callee);
                        self.enter_function(f, args, func, None)?;
                        Ok(StepEvent::Continue)
                    }
                    ObjKind::Native(id) => {
                        let args: Vec<ObjRef> = self.scratch[mark..mark + argc].to_vec();
                        let result = self.call_native(id, Some(recv), &args)?;
                        self.scratch.truncate(mark);
                        for a in args {
                            self.decref(a);
                        }
                        self.decref(callee);
                        self.push_s(56, result)?;
                        Ok(StepEvent::Continue)
                    }
                    other => Err(self.err_here(format!(
                        "TypeError: bound method wraps non-callable '{}'",
                        other.type_name()
                    ))),
                }
            }
            ObjKind::Class(_) => {
                // Instantiation: allocate the instance and its dict, then
                // run `__init__` if defined.
                self.ealu2(20, Category::FunctionSetup, 2);
                let dict = self.alloc_obj(ObjKind::Dict(crate::dict::DictObj::new()));
                self.scratch.push(dict);
                self.attach_dict_buffer(dict);
                self.incref(callee);
                let inst = self.alloc_obj(ObjKind::Instance { class: callee, dict });
                self.scratch.pop(); // dict ownership moved into instance
                self.scratch.push(inst);
                let init_key = Key::Str(Rc::from("__init__"));
                let init = self.class_chain_lookup(callee, &init_key);
                match init {
                    Some(init_fn) => {
                        let ObjKind::Func(f) = self.kind(init_fn).clone() else {
                            return Err(self.err_here("TypeError: __init__ must be a function"));
                        };
                        // arg0 = self (one extra ref for the argument).
                        self.incref(inst);
                        let mut args = Vec::with_capacity(argc + 1);
                        args.push(inst);
                        // Ownership of the popped args moves into the vec.
                        args.extend_from_slice(&self.scratch[mark..mark + argc]);
                        self.incref(init_fn);
                        // Our original `inst` reference transfers into the
                        // frame's init_instance slot; scratch entries were
                        // all transferred, so truncate without decref.
                        self.enter_function(f, args, init_fn, Some(inst))?;
                        self.scratch.truncate(mark);
                        self.decref(callee);
                        Ok(StepEvent::Continue)
                    }
                    None => {
                        if argc != 0 {
                            return Err(
                                self.err_here("TypeError: this class takes no arguments")
                            );
                        }
                        // Scratch holds [callee, inst]; inst transfers to the
                        // stack, callee is released.
                        self.scratch.truncate(mark);
                        self.decref(callee);
                        self.push_s(56, inst)?;
                        Ok(StepEvent::Continue)
                    }
                }
            }
            other => Err(self.err_here(format!(
                "TypeError: '{}' object is not callable",
                other.type_name()
            ))),
        }
    }

    /// Pushes a frame for a guest function call.
    fn enter_function(
        &mut self,
        f: FuncObj,
        mut args: Vec<ObjRef>,
        callee: ObjRef,
        init_instance: Option<ObjRef>,
    ) -> Result<(), VmError> {
        let code = Rc::clone(&f.code);
        self.register_code(&code);
        let required = code.argcount - f.defaults.len().min(code.argcount);
        // Argument-count error check.
        self.ealu2(30, Category::ErrorCheck, 1);
        self.ebranch2(31, Category::ErrorCheck, false);
        if args.len() < required || args.len() > code.argcount {
            return Err(self.err_here(format!(
                "TypeError: {}() takes {} arguments ({} given)",
                code.name,
                code.argcount,
                args.len()
            )));
        }
        // Fill defaults for missing trailing parameters.
        let missing = code.argcount - args.len();
        if missing > 0 {
            let start = f.defaults.len() - missing;
            for &d in &f.defaults[start..] {
                self.incref(d);
                args.push(d);
            }
        }
        // Class bodies run with a dict namespace.
        let class_ns = if code.kind == CodeKind::ClassBody {
            for &a in &args {
                self.scratch.push(a);
            }
            let ns = self.alloc_obj(ObjKind::Dict(crate::dict::DictObj::new()));
            self.scratch.push(ns);
            self.attach_dict_buffer(ns);
            self.scratch.pop();
            self.scratch.truncate(self.scratch.len() - args.len());
            Some(ns)
        } else {
            None
        };
        // Function setup: argument processing, defaults handling, flag
        // checks — fast_function + eval frame entry.
        self.ealu2(32, Category::FunctionSetup, 12);
        self.icall(34, 0x9940, false);
        self.icall(40, 0x9980, false);
        // Argument copy into fast locals.
        let nargs = args.len();
        for a in &args {
            self.scratch.push(*a);
        }
        let frame_name = match self.code_meta.get(&code_key(&code)) {
            Some(meta) => std::sync::Arc::clone(&meta.name),
            None => std::sync::Arc::from(code.name.as_str()),
        };
        let frame = self.new_frame(code, Vec::new(), Some(callee), class_ns);
        self.scratch.truncate(self.scratch.len() - nargs);
        self.frames.push(frame);
        self.sink.frame_event(&FrameEvent::Push { name: frame_name });
        let frame_addr = self.frame_addr();
        {
            let fr = self.frame_mut()?;
            for (i, a) in args.into_iter().enumerate() {
                fr.locals[i] = Some(a);
            }
            fr.init_instance = init_instance;
        }
        if self.cost == CostMode::Interp {
            for i in 0..nargs as u64 {
                self.estore(46, Category::FunctionSetup, frame_addr + 96 + i * 8);
            }
            self.ealu(47, Category::FunctionSetup, 4);
        }
        Ok(())
    }

    /// `RETURN_VALUE` — unwinds the current frame.
    pub(crate) fn return_value(&mut self) -> Result<StepEvent, VmError> {
        let is_class_body = self
            .frames
            .last()
            .map(|f| f.class_ns.is_some())
            .unwrap_or(false);
        let retval = if is_class_body {
            let ns = self.frames.last().and_then(|f| f.class_ns).ok_or_else(|| self.err_here("internal error: class body frame lost its namespace"))?;
            self.incref(ns);
            ns
        } else {
            self.pop_s(0)?
        };
        // Function cleanup + frame release: unwinding the call machinery.
        self.ealu2(4, Category::FunctionSetup, 10);
        let frame = self.frames.pop().ok_or_else(|| self.err_here("internal error: no frame to return from"))?;
        self.sink.frame_event(&FrameEvent::Pop);
        for v in frame.locals.into_iter().flatten() {
            self.decref(v);
        }
        for v in frame.stack {
            self.decref(v);
        }
        if let Some(ns) = frame.class_ns {
            self.decref(ns);
        }
        if let Some(c) = frame.callee {
            self.decref(c);
        }
        if let Some(fo) = frame.frame_obj {
            // Frame deallocation: the alloc/free churn of Table II.
            self.decref(fo);
        }
        // Matching returns for the call-entry helpers.
        self.iret(8);
        self.iret(12);
        let retval = match frame.init_instance {
            Some(inst) => {
                // `__init__` frames yield the instance.
                self.decref(retval);
                inst
            }
            None => retval,
        };
        if self.frames.is_empty() {
            if let Some(prev) = self.result.replace(retval) {
                self.decref(prev);
            }
            return Ok(StepEvent::Done);
        }
        self.push_s(16, retval)?;
        Ok(StepEvent::Continue)
    }

    // ---- second-bank emission helpers (same cost-mode switch, avoiding
    // site collisions with interp.rs) --------------------------------------

    pub(crate) fn ealu2(&mut self, site: u32, cat: Category, n: u32) {
        self.ealu(site + 256, cat, n);
    }

    pub(crate) fn efp2(&mut self, site: u32) {
        self.efp(site + 256, Category::Execute);
    }

    pub(crate) fn eload2(&mut self, site: u32, cat: Category, addr: u64) {
        self.eload(site + 256, cat, addr);
    }

    pub(crate) fn estore2(&mut self, site: u32, cat: Category, addr: u64) {
        self.estore(site + 256, cat, addr);
    }

    pub(crate) fn ebranch2(&mut self, site: u32, cat: Category, taken: bool) {
        self.ebranch(site + 256, cat, taken);
    }

    pub(crate) fn emit_typecheck2(&mut self, site: u32, obj: ObjRef) {
        let addr = self.obj_addr(obj);
        self.eload(site + 256, Category::TypeCheck, addr);
        self.ebranch(site + 257, Category::TypeCheck, false);
    }

    pub(crate) fn emit_unbox2(&mut self, site: u32, obj: ObjRef) {
        if self.cost == CostMode::Trace && self.obj(obj).virtual_unboxed {
            return;
        }
        let addr = self.obj_addr(obj);
        self.eload(site + 256, Category::BoxUnbox, addr + 8);
    }

    /// Emits the stores that initialize a freshly boxed number.
    pub(crate) fn emit_box(&mut self, site: u32, obj: ObjRef) {
        if self.cost == CostMode::Trace && self.obj(obj).virtual_unboxed {
            return;
        }
        let addr = self.obj_addr(obj);
        self.estore(site + 256, Category::BoxUnbox, addr + 8);
        self.estore(site + 257, Category::ObjectAllocation, addr);
    }

    pub(crate) fn native_call_marker(&mut self) {
        self.stats.native_calls += 1;
    }
}

fn op_symbol(op: Opcode) -> &'static str {
    match op {
        Opcode::BinaryAdd => "+",
        Opcode::BinarySubtract => "-",
        Opcode::BinaryMultiply => "*",
        Opcode::BinaryDivide => "/",
        Opcode::BinaryFloorDivide => "//",
        Opcode::BinaryModulo => "%",
        Opcode::BinaryPower => "**",
        Opcode::BinaryAnd => "&",
        Opcode::BinaryOr => "|",
        Opcode::BinaryXor => "^",
        Opcode::BinaryLshift => "<<",
        Opcode::BinaryRshift => ">>",
        _ => "?",
    }
}
