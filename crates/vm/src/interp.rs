//! The bytecode interpreter.
//!
//! Each opcode handler performs the guest semantics *and* emits the
//! micro-ops a CPython-style C interpreter would execute for it, tagged
//! with the Table II categories: dispatch (computed-goto style — the
//! indirect jump to the next handler is emitted from the current handler's
//! code, so the BTB sees per-handler target streams), value-stack traffic
//! with `RegTransfer` address math, type checks, (un)boxing, error checks,
//! refcount maintenance, dict-probe name resolution, function
//! setup/cleanup, and the modeled C-calling-convention helper chains that
//! the paper identifies as the single largest overhead.
//!
//! Under [`CostMode::Trace`] the very same handlers emit the residual cost
//! of JIT-compiled code instead: type *guards*, unboxed arithmetic, no
//! dispatch, no stack traffic, virtualized frames — while C calls into the
//! native library remain (Fig. 5).

use crate::dict::Key;
use crate::object::{ClassObj, FuncObj, IterState, ObjKind, ObjRef};
use crate::vm::{code_key, Block, CostMode, Frame, StepEvent, Vm, VmError};
use qoa_frontend::{
    ccj_cmp, ccj_const, ccj_if_true, ccj_target, pair_hi, pair_lo, Cmp, CodeObject, Instr, Opcode,
};
use qoa_model::{mem, Category, FrameEvent, OpKind, OpSink, Pc};
use std::rc::Rc;

/// Byte span reserved per opcode handler in the interpreter code region.
const HANDLER_SPAN: u64 = 0x400;
/// Frame header bytes before the locals array.
const FRAME_HEADER: u64 = 96;

impl<S: OpSink> Vm<S> {
    /// Loads a module code object and pushes its frame. Call
    /// [`Vm::step`] or [`Vm::run`] afterwards.
    ///
    /// Code loaded this way is treated as *unverified*: every dispatch
    /// emits the defensive guard micro-ops (pc/operand-index bounds
    /// re-checks, tagged [`Category::ErrorCheck`]) a CPython-style
    /// interpreter performs on untrusted bytecode. Use
    /// [`Vm::load_verified`] to elide them.
    pub fn load_program(&mut self, code: &Rc<CodeObject>) {
        self.register_code(code);
        let frame = self.new_frame(Rc::clone(code), Vec::new(), None, None);
        self.frames.push(frame);
        let name = std::sync::Arc::clone(&self.code_meta[&code_key(code)].name);
        self.sink.frame_event(&FrameEvent::Push { name });
    }

    /// Loads a statically verified module and elides the per-dispatch
    /// guard checks: the [`qoa_analysis::Verified`] token proves stack
    /// depths, jump targets, and operand indices are in bounds, which is
    /// exactly what the guards re-check dynamically.
    ///
    /// The token is the only way to turn elision on, so the guarded and
    /// elided paths stay separately testable ([`Vm::check_elision`]
    /// reports which one is active).
    pub fn load_verified(&mut self, code: &qoa_analysis::Verified<Rc<CodeObject>>) {
        self.elide_checks = true;
        self.load_program(code.get());
    }

    /// Runs until the program completes.
    ///
    /// # Errors
    ///
    /// Returns the first guest run-time error (or fuel exhaustion).
    pub fn run(&mut self) -> Result<(), VmError> {
        loop {
            match self.step()? {
                StepEvent::Done => return Ok(()),
                _ => continue,
            }
        }
    }

    /// Location key of the next bytecode to execute: (code identity, pc).
    pub fn location(&self) -> Option<(usize, usize)> {
        self.frames.last().map(|f| (code_key(&f.code), f.pc))
    }

    /// Depth of the call stack.
    pub fn frame_depth(&self) -> usize {
        self.frames.len()
    }

    pub(crate) fn new_frame(
        &mut self,
        code: Rc<CodeObject>,
        args: Vec<ObjRef>,
        callee: Option<ObjRef>,
        class_ns: Option<ObjRef>,
    ) -> Frame {
        let nlocals = code.varnames.len();
        let mut locals: Vec<Option<ObjRef>> = vec![None; nlocals];
        for (i, a) in args.into_iter().enumerate() {
            locals[i] = Some(a);
        }
        // The compiler's declared stack bound sizes the frame exactly;
        // hand-built code may declare 0, so keep a small floor.
        let stack_cap = code.max_stack.max(4);
        // Frame objects are heap-allocated per call in the interpreter
        // (Table II: object allocation); JIT traces virtualize them away.
        let frame_obj = if self.cost == CostMode::Interp {
            let bytes = FRAME_HEADER + 8 * (nlocals as u64 + 24);
            Some(self.alloc_obj(ObjKind::Buffer { bytes }))
        } else {
            None
        };
        Frame {
            code,
            pc: 0,
            locals,
            stack: Vec::with_capacity(stack_cap),
            blocks: Vec::new(),
            frame_obj,
            class_ns,
            callee,
            init_instance: None,
        }
    }

    pub(crate) fn frame_addr(&self) -> u64 {
        match self.frames.last().and_then(|f| f.frame_obj) {
            Some(fo) => self.obj_addr(fo),
            None => mem::C_STACK_TOP - 4096,
        }
    }

    fn err(&self, message: impl Into<String>) -> VmError {
        let line = self
            .frames
            .last()
            .and_then(|f| f.code.code.get(f.pc.saturating_sub(1)))
            .map(|i| i.line)
            .unwrap_or(0);
        VmError::runtime(message, line)
    }

    // ---- frame access -----------------------------------------------------

    /// The active frame, or a guest error if execution has no frame. A
    /// missing frame can only come from malformed bytecode (hand-built
    /// [`CodeObject`]s), so it is reported, not panicked on.
    pub(crate) fn frame(&self) -> Result<&Frame, VmError> {
        self.frames.last().ok_or_else(|| VmError::runtime("no active frame", 0))
    }

    /// Mutable access to the active frame (see [`Vm::frame`]).
    pub(crate) fn frame_mut(&mut self) -> Result<&mut Frame, VmError> {
        self.frames.last_mut().ok_or_else(|| VmError::runtime("no active frame", 0))
    }

    // ---- value stack ------------------------------------------------------

    /// Pops a value (ownership moves to the caller).
    ///
    /// # Errors
    ///
    /// A guest error on value-stack underflow (malformed bytecode) rather
    /// than a panic, so one bad workload cannot abort a whole sweep.
    pub(crate) fn pop_s(&mut self, site: u32) -> Result<ObjRef, VmError> {
        let f = self.frame_mut()?;
        let v = f
            .stack
            .pop()
            .ok_or_else(|| VmError::runtime("value stack underflow", 0))?;
        let sp = f.stack.len();
        let nlocals = f.code.varnames.len() as u64;
        if self.cost == CostMode::Interp {
            let addr = self.frame_addr() + FRAME_HEADER + (nlocals + sp as u64) * 8;
            self.ealu(site, Category::RegTransfer, 1);
            self.eload(site + 1, Category::Stack, addr);
            self.ealu(site + 2, Category::Stack, 1);
        }
        Ok(v)
    }

    /// Pushes a value (takes ownership).
    pub(crate) fn push_s(&mut self, site: u32, v: ObjRef) -> Result<(), VmError> {
        let f = self.frame_mut()?;
        let sp = f.stack.len();
        f.stack.push(v);
        let nlocals = f.code.varnames.len() as u64;
        if self.cost == CostMode::Interp {
            let addr = self.frame_addr() + FRAME_HEADER + (nlocals + sp as u64) * 8;
            self.ealu(site, Category::RegTransfer, 1);
            self.estore(site + 1, Category::Stack, addr);
            self.ealu(site + 2, Category::Stack, 1);
        }
        Ok(())
    }

    fn peek_s(&self) -> Result<ObjRef, VmError> {
        self.frame()?
            .stack
            .last()
            .copied()
            .ok_or_else(|| VmError::runtime("value stack underflow", 0))
    }

    /// Reads local slot `idx` for a fused superinstruction: same
    /// micro-ops and same `UnboundLocalError` as a standalone `LoadFast`,
    /// and increfs the value for the caller.
    fn read_fast(&mut self, site: u32, idx: u32) -> Result<ObjRef, VmError> {
        let f = self.frame()?;
        let Some(v) = f.locals.get(idx as usize).copied().flatten() else {
            let name = f
                .code
                .varnames
                .get(idx as usize)
                .cloned()
                .unwrap_or_else(|| format!("<local {idx}>"));
            return Err(self.err(format!(
                "UnboundLocalError: local variable '{name}' referenced before assignment"
            )));
        };
        if self.cost == CostMode::Interp {
            let addr = self.frame_addr() + FRAME_HEADER + (idx as u64) * 8;
            self.ealu(site, Category::RegTransfer, 1);
            // The variable read itself is the program's own work.
            self.eload(site + 1, Category::Execute, addr);
        }
        self.incref(v);
        Ok(v)
    }

    // ---- type checks and unboxing ----------------------------------------------

    /// Emits a type-tag check (interp) or a type guard (trace).
    fn emit_typecheck(&mut self, site: u32, obj: ObjRef) {
        let addr = self.obj_addr(obj);
        self.eload(site, Category::TypeCheck, addr);
        self.ebranch(site + 1, Category::TypeCheck, false);
    }

    /// Emits the read of a numeric payload (unboxing).
    fn emit_unbox(&mut self, site: u32, obj: ObjRef) {
        if self.cost == CostMode::Trace && self.obj(obj).virtual_unboxed {
            return; // already in a register
        }
        let addr = self.obj_addr(obj);
        self.eload(site, Category::BoxUnbox, addr + 8);
    }

    pub(crate) fn as_int(&self, r: ObjRef) -> Option<i64> {
        match self.kind(r) {
            ObjKind::Int(v) => Some(*v),
            ObjKind::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    pub(crate) fn as_float(&self, r: ObjRef) -> Option<f64> {
        match self.kind(r) {
            ObjKind::Float(v) => Some(*v),
            ObjKind::Int(v) => Some(*v as f64),
            ObjKind::Bool(b) => Some(*b as i64 as f64),
            _ => None,
        }
    }

    // ---- the interpreter loop -----------------------------------------------

    /// Executes one bytecode instruction.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on guest errors or fuel exhaustion.
    pub fn step(&mut self) -> Result<StepEvent, VmError> {
        let Some(frame) = self.frames.last() else {
            return Ok(StepEvent::Done);
        };
        if let Some(fault) = self.pending_fault.take() {
            return Err(fault);
        }
        if self.cfg.max_steps != 0 && self.steps >= self.cfg.max_steps {
            return Err(VmError::FuelExhausted { steps: self.steps });
        }
        if self.steps.is_multiple_of(crate::vm::DEADLINE_CHECK_INTERVAL) {
            if let Some(deadline) = self.cfg.deadline {
                if std::time::Instant::now() >= deadline {
                    return Err(VmError::DeadlineExceeded { steps: self.steps });
                }
            }
        }
        // Chaos step boundary: the fault clock ticks on executed bytecodes
        // (never wall time), and step-class injections surface through the
        // same variants their organic counterparts use.
        if let Some(chaos) = self.chaos.as_mut() {
            chaos.on_step();
            if chaos.poll(qoa_chaos::FaultKind::FuelTrip).is_some() {
                return Err(VmError::FuelExhausted { steps: self.steps });
            }
            if chaos.poll(qoa_chaos::FaultKind::DeadlineTrip).is_some() {
                return Err(VmError::DeadlineExceeded { steps: self.steps });
            }
        }
        self.steps += 1;
        self.stats.bytecodes += 1;

        let code = Rc::clone(&frame.code);
        let pc = frame.pc;
        let Some(&instr) = code.code.get(pc) else {
            return Err(self.err(format!("pc {pc} out of bounds (malformed bytecode)")));
        };
        let instr: Instr = instr;
        self.stats.opcodes[instr.op.index()] += 1;
        self.frame_mut()?.pc = pc + 1;

        // Dispatch: read co_code, decode, computed-goto to the handler.
        // Emitted from the *previous* handler's region (computed gotos),
        // so the BTB observes per-handler next-opcode streams.
        let next_handler = mem::INTERP_CODE_BASE + (instr.op.index() as u64) * HANDLER_SPAN;
        if self.cost == CostMode::Interp {
            let meta = &self.code_meta[&code_key(&code)];
            let consts_addr = meta.consts_addr;
            let code_addr = meta.code_addr + (pc as u64) * 4;
            self.eload(240, Category::Dispatch, code_addr);
            self.ealu(241, Category::Dispatch, 2);
            if !self.elide_checks {
                // Defensive re-validation of the decoded instruction on
                // the hot path: pc bound, operand-index range, stack
                // limit. Statically verified code proves these hold, so
                // [`Vm::load_verified`] elides them.
                self.ealu(244, Category::ErrorCheck, 1);
                self.ebranch(245, Category::ErrorCheck, false);
            }
            self.emit(
                243,
                OpKind::Branch { taken: true, target: Pc(next_handler), indirect: true },
                Category::Dispatch,
            );
            self.handler_base = next_handler;
            // Residual handler machinery. The paper's Pin annotation marks
            // specific overhead instructions inside each handler; whatever
            // is left over lands in its `execute` residual (35.1% of
            // cycles on average). This models that unannotated remainder:
            // general register shuffling and C-body code that serves the
            // program's semantics rather than a named overhead.
            self.ealu(248, Category::Execute, 4);
            self.eload(252, Category::Execute, code_addr);
            self.eload(253, Category::Execute, consts_addr);
        }

        self.exec_instr(&code, instr)
    }

    fn exec_instr(&mut self, code: &Rc<CodeObject>, instr: Instr) -> Result<StepEvent, VmError> {
        let arg = instr.arg;
        match instr.op {
            Opcode::Nop => {}
            Opcode::LoadConst => {
                let meta = &self.code_meta[&code_key(code)];
                let v = meta.consts[arg as usize];
                let consts_addr = meta.consts_addr + (arg as u64) * 8;
                if self.cost == CostMode::Interp {
                    self.ealu(0, Category::RegTransfer, 1);
                    self.eload(1, Category::ConstLoad, consts_addr);
                }
                self.incref(v);
                self.push_s(4, v)?;
            }
            Opcode::PopTop => {
                let v = self.pop_s(0)?;
                self.decref(v);
            }
            Opcode::DupTop => {
                let v = self.peek_s()?;
                self.incref(v);
                self.push_s(0, v)?;
            }
            Opcode::DupTopTwo => {
                let f = self.frame()?;
                let n = f.stack.len();
                let a = f.stack[n - 2];
                let b = f.stack[n - 1];
                self.incref(a);
                self.incref(b);
                self.push_s(0, a)?;
                self.push_s(3, b)?;
            }
            Opcode::RotTwo => {
                let f = self.frame_mut()?;
                let n = f.stack.len();
                f.stack.swap(n - 1, n - 2);
                if self.cost == CostMode::Interp {
                    self.ealu(0, Category::Stack, 2);
                }
            }
            Opcode::RotThree => {
                let f = self.frame_mut()?;
                let n = f.stack.len();
                let top = f.stack.remove(n - 1);
                f.stack.insert(n - 3, top);
                if self.cost == CostMode::Interp {
                    self.ealu(0, Category::Stack, 3);
                }
            }
            Opcode::LoadFast => {
                let f = self.frame()?;
                let Some(v) = f.locals[arg as usize] else {
                    let name = f.code.varnames[arg as usize].clone();
                    return Err(self.err(format!(
                        "UnboundLocalError: local variable '{name}' referenced before assignment"
                    )));
                };
                if self.cost == CostMode::Interp {
                    let addr = self.frame_addr() + FRAME_HEADER + (arg as u64) * 8;
                    self.ealu(0, Category::RegTransfer, 1);
                    // The variable read itself is the program's own work.
                    self.eload(1, Category::Execute, addr);
                }
                self.incref(v);
                self.push_s(4, v)?;
            }
            Opcode::StoreFast => {
                let v = self.pop_s(0)?;
                if self.cost == CostMode::Interp {
                    let addr = self.frame_addr() + FRAME_HEADER + (arg as u64) * 8;
                    self.ealu(3, Category::RegTransfer, 1);
                    // The variable write itself is the program's own work.
                    self.estore(4, Category::Execute, addr);
                }
                let f = self.frame_mut()?;
                let old = f.locals[arg as usize].replace(v);
                if let Some(old) = old {
                    self.decref(old);
                }
            }
            Opcode::LoadGlobal => {
                let name = &code.names[arg as usize];
                let v = self.load_global(name.clone())?;
                self.incref(v);
                self.push_s(8, v)?;
            }
            Opcode::StoreGlobal => {
                let v = self.pop_s(0)?;
                let name = code.names[arg as usize].clone();
                let name_obj = self.intern_str(&name);
                let globals = self.globals;
                self.dict_insert(globals, Key::Str(name.into()), name_obj, v, Category::NameResolution)?;
            }
            Opcode::LoadName => {
                // Class-body namespace load, falling back to globals.
                let name = code.names[arg as usize].clone();
                let ns = self.frames.last().and_then(|f| f.class_ns);
                let mut found = None;
                if let Some(ns) = ns {
                    found = self.dict_lookup(ns, &Key::Str(name.clone().into()), Category::NameResolution);
                }
                let v = match found {
                    Some(v) => v,
                    None => self.load_global(name)?,
                };
                self.incref(v);
                self.push_s(8, v)?;
            }
            Opcode::StoreName => {
                let v = self.pop_s(0)?;
                let name = code.names[arg as usize].clone();
                let name_obj = self.intern_str(&name);
                let ns = self
                    .frames
                    .last()
                    .and_then(|f| f.class_ns)
                    .unwrap_or(self.globals);
                self.dict_insert(ns, Key::Str(name.into()), name_obj, v, Category::NameResolution)?;
            }
            Opcode::BinaryAdd
            | Opcode::BinarySubtract
            | Opcode::BinaryMultiply
            | Opcode::BinaryDivide
            | Opcode::BinaryFloorDivide
            | Opcode::BinaryModulo
            | Opcode::BinaryPower
            | Opcode::BinaryAnd
            | Opcode::BinaryOr
            | Opcode::BinaryXor
            | Opcode::BinaryLshift
            | Opcode::BinaryRshift => {
                let b = self.pop_s(0)?;
                let a = self.pop_s(3)?;
                let r = self.binary_op(instr.op, a, b)?;
                self.push_s(6, r)?;
            }
            Opcode::UnaryNegative => {
                let a = self.pop_s(0)?;
                self.emit_typecheck(10, a);
                self.emit_unbox(12, a);
                let r = match self.kind(a).clone() {
                    ObjKind::Int(v) => {
                        self.ealu(13, Category::Execute, 1);
                        let neg = v.checked_neg().ok_or_else(|| self.err("OverflowError"))?;
                        self.scratch.push(a);
                        let r = self.make_int(neg);
                        self.scratch.pop();
                        r
                    }
                    ObjKind::Float(v) => {
                        self.efp(13, Category::Execute);
                        self.scratch.push(a);
                        let r = self.make_float(-v);
                        self.scratch.pop();
                        r
                    }
                    other => {
                        return Err(self.err(format!(
                            "TypeError: bad operand type for unary -: '{}'",
                            other.type_name()
                        )))
                    }
                };
                self.decref(a);
                self.push_s(20, r)?;
            }
            Opcode::UnaryInvert => {
                let a = self.pop_s(0)?;
                self.emit_typecheck(10, a);
                self.emit_unbox(12, a);
                let Some(v) = self.as_int(a) else {
                    return Err(self.err("TypeError: bad operand type for unary ~"));
                };
                self.ealu(13, Category::Execute, 1);
                self.scratch.push(a);
                let r = self.make_int(!v);
                self.scratch.pop();
                self.decref(a);
                self.push_s(20, r)?;
            }
            Opcode::UnaryNot => {
                let a = self.pop_s(0)?;
                self.emit_typecheck(10, a);
                let truthy = self.kind(a).is_truthy();
                self.ealu(12, Category::Execute, 1);
                self.decref(a);
                let r = self.bool_ref(!truthy);
                self.incref(r);
                self.push_s(14, r)?;
            }
            Opcode::CompareOp => {
                let b = self.pop_s(0)?;
                let a = self.pop_s(3)?;
                let r = self.compare_op(Cmp::from_arg(arg), a, b)?;
                self.push_s(6, r)?;
            }
            Opcode::JumpAbsolute => {
                let f = self.frame_mut()?;
                let old = f.pc;
                f.pc = arg as usize;
                if self.cost == CostMode::Interp {
                    self.ealu(0, Category::RichControlFlow, 1);
                }
                if (arg as usize) < old {
                    return Ok(StepEvent::Backedge {
                        code: code_key(code),
                        target: arg as usize,
                    });
                }
            }
            Opcode::PopJumpIfFalse | Opcode::PopJumpIfTrue => {
                let v = self.pop_s(0)?;
                self.emit_typecheck(10, v);
                let truthy = self.kind(v).is_truthy();
                self.decref(v);
                let jump = if instr.op == Opcode::PopJumpIfFalse { !truthy } else { truthy };
                // The guest-visible conditional branch is the program's own
                // control flow; the block/condition management around it is
                // the overhead.
                self.ealu(11, Category::RichControlFlow, 1);
                self.ebranch(12, Category::Execute, jump);
                if jump {
                    let f = self.frame_mut()?;
                    let old = f.pc;
                    f.pc = arg as usize;
                    if (arg as usize) < old {
                        return Ok(StepEvent::Backedge {
                            code: code_key(code),
                            target: arg as usize,
                        });
                    }
                }
            }
            Opcode::JumpIfFalseOrPop | Opcode::JumpIfTrueOrPop => {
                let v = self.peek_s()?;
                self.emit_typecheck(10, v);
                let truthy = self.kind(v).is_truthy();
                let jump = if instr.op == Opcode::JumpIfFalseOrPop { !truthy } else { truthy };
                self.ealu(11, Category::RichControlFlow, 1);
                self.ebranch(12, Category::Execute, jump);
                if jump {
                    self.frame_mut()?.pc = arg as usize;
                } else {
                    let v = self.pop_s(14)?;
                    self.decref(v);
                }
            }
            Opcode::SetupLoop => {
                let f = self.frame_mut()?;
                let depth = f.stack.len();
                f.blocks.push(Block { end: arg as usize, stack_depth: depth });
                if self.cost == CostMode::Interp {
                    // Block-stack push: the "rich control flow" cost.
                    let addr = self.frame_addr() + 32;
                    self.ealu(0, Category::RichControlFlow, 2);
                    self.estore(2, Category::RichControlFlow, addr);
                    self.estore(3, Category::RichControlFlow, addr + 8);
                }
            }
            Opcode::PopBlock => {
                let f = self.frame_mut()?;
                f.blocks
                    .pop()
                    .ok_or_else(|| VmError::runtime("block stack underflow", instr.line))?;
                if self.cost == CostMode::Interp {
                    let addr = self.frame_addr() + 32;
                    self.ealu(0, Category::RichControlFlow, 1);
                    self.eload(1, Category::RichControlFlow, addr);
                }
            }
            Opcode::BreakLoop => {
                let f = self.frame_mut()?;
                let block = f
                    .blocks
                    .pop()
                    .ok_or_else(|| VmError::runtime("break with no enclosing loop", instr.line))?;
                f.pc = block.end;
                let extra: Vec<ObjRef> = f.stack.split_off(block.stack_depth);
                if self.cost == CostMode::Interp {
                    let addr = self.frame_addr() + 32;
                    self.ealu(0, Category::RichControlFlow, 2);
                    self.eload(2, Category::RichControlFlow, addr);
                }
                for v in extra {
                    self.decref(v);
                }
            }
            Opcode::GetIter => {
                let obj = self.pop_s(0)?;
                self.emit_typecheck(10, obj);
                // CPython: PyObject_GetIter via tp_iter function pointer.
                self.c_call(12, mem::INTERP_CODE_BASE + 0x8000, true);
                let state = match self.kind(obj) {
                    ObjKind::List(_) | ObjKind::Tuple(_) => IterState::Seq { seq: obj, index: 0 },
                    ObjKind::Str(_) => IterState::Str { s: obj, index: 0 },
                    ObjKind::Range { start, stop, step } => {
                        let (start, stop, step) = (*start, *stop, *step);
                        self.decref(obj);
                        IterState::Range { next: start, stop, step }
                    }
                    ObjKind::Dict(d) => {
                        let keys: Vec<ObjRef> = d.key_objs();
                        for &k in &keys {
                            self.incref(k);
                        }
                        self.decref(obj);
                        IterState::Keys { keys: keys.into(), index: 0 }
                    }
                    ObjKind::Iter(_) => {
                        // Iterating an iterator: pass through.
                        self.c_return(18);
                        self.push_s(20, obj)?;
                        return Ok(StepEvent::Continue);
                    }
                    other => {
                        return Err(self.err(format!(
                            "TypeError: '{}' object is not iterable",
                            other.type_name()
                        )))
                    }
                };
                // Ownership of `obj` (for Seq/Str) moved into the state.
                let iter = self.alloc_obj(ObjKind::Iter(state));
                self.c_return(18);
                self.push_s(20, iter)?;
            }
            Opcode::ForIter => {
                let iter = self.peek_s()?;
                // CPython: iternext through a function pointer.
                if self.cost == CostMode::Interp {
                    let addr = self.obj_addr(iter);
                    self.eload(0, Category::FunctionResolution, addr);
                    self.c_call(2, mem::INTERP_CODE_BASE + 0x8800, true);
                }
                let next = self.iter_next(iter)?;
                if self.cost == CostMode::Interp {
                    self.c_return(8);
                }
                match next {
                    Some(v) => {
                        // Loop continues: the exhaustion branch is not taken.
                        self.ebranch(12, Category::RichControlFlow, false);
                        self.push_s(14, v)?;
                    }
                    None => {
                        self.ebranch(12, Category::RichControlFlow, true);
                        let it = self.pop_s(14)?;
                        self.decref(it);
                        self.frame_mut()?.pc = arg as usize;
                    }
                }
            }
            Opcode::BinarySubscr => {
                let idx = self.pop_s(0)?;
                let obj = self.pop_s(3)?;
                let r = self.subscr(obj, idx)?;
                self.push_s(6, r)?;
            }
            Opcode::StoreSubscr => {
                // Stack: [value, obj, idx]
                let idx = self.pop_s(0)?;
                let obj = self.pop_s(3)?;
                let value = self.pop_s(6)?;
                self.store_subscr(obj, idx, value)?;
            }
            Opcode::DeleteSubscr => {
                let idx = self.pop_s(0)?;
                let obj = self.pop_s(3)?;
                self.del_subscr(obj, idx)?;
            }
            Opcode::BuildList | Opcode::BuildTuple => {
                let n = arg as usize;
                let start = self.scratch.len();
                for _ in 0..n {
                    let v = self.pop_s(0)?;
                    self.scratch.push(v);
                }
                self.scratch[start..].reverse();
                let items: Vec<ObjRef> = self.scratch[start..].to_vec();
                let r = if instr.op == Opcode::BuildList {
                    let list = self.alloc_obj(ObjKind::List(items));
                    self.attach_list_buffer(list, n);
                    list
                } else {
                    self.alloc_obj(ObjKind::Tuple(items.into()))
                };
                // Element stores into the fresh object.
                let base = self.obj_addr(r);
                for i in 0..n {
                    self.estore(8, Category::Execute, base + 40 + (i as u64) * 8);
                }
                self.scratch.truncate(start);
                self.push_s(12, r)?;
            }
            Opcode::BuildMap => {
                let n = arg as usize;
                let start = self.scratch.len();
                for _ in 0..(2 * n) {
                    let v = self.pop_s(0)?;
                    self.scratch.push(v);
                }
                self.scratch[start..].reverse();
                let d = self.alloc_obj(ObjKind::Dict(crate::dict::DictObj::new()));
                self.attach_dict_buffer(d);
                for i in 0..n {
                    let k = self.scratch[start + 2 * i];
                    let v = self.scratch[start + 2 * i + 1];
                    let key = self.key_of(k).map_err(|m| self.err(format!("TypeError: {m}")))?;
                    self.dict_insert(d, key, k, v, Category::Execute)?;
                }
                self.scratch.truncate(start);
                self.push_s(12, d)?;
            }
            Opcode::BuildSlice => {
                let hi = self.pop_s(0)?;
                let lo = self.pop_s(3)?;
                self.scratch.push(lo);
                self.scratch.push(hi);
                let r = self.alloc_obj(ObjKind::Slice { lo, hi });
                self.scratch.truncate(self.scratch.len() - 2);
                self.push_s(8, r)?;
            }
            Opcode::UnpackSequence => {
                let n = arg as usize;
                let seq = self.pop_s(0)?;
                self.emit_typecheck(10, seq);
                let items: Vec<ObjRef> = match self.kind(seq) {
                    ObjKind::Tuple(t) => t.iter().copied().collect(),
                    ObjKind::List(l) => l.clone(),
                    other => {
                        return Err(self.err(format!(
                            "TypeError: cannot unpack '{}'",
                            other.type_name()
                        )))
                    }
                };
                self.ealu(12, Category::ErrorCheck, 1);
                self.ebranch(13, Category::ErrorCheck, items.len() != n);
                if items.len() != n {
                    return Err(self.err(format!(
                        "ValueError: expected {n} values to unpack, got {}",
                        items.len()
                    )));
                }
                let base = self.obj_addr(seq);
                for (i, &v) in items.iter().enumerate().rev() {
                    self.eload(14, Category::Execute, base + 40 + (i as u64) * 8);
                    self.incref(v);
                    self.push_s(16, v)?;
                }
                self.decref(seq);
            }
            Opcode::LoadAttr => {
                let obj = self.pop_s(0)?;
                let name = code.names[arg as usize].clone();
                let r = self.load_attr(obj, &name)?;
                self.push_s(8, r)?;
            }
            Opcode::StoreAttr => {
                // Stack: [value, obj]
                let obj = self.pop_s(0)?;
                let value = self.pop_s(3)?;
                let name = code.names[arg as usize].clone();
                self.store_attr(obj, &name, value)?;
            }
            Opcode::MakeFunction => {
                let code_obj = self.pop_s(0)?;
                let ObjKind::Code(func_code) = self.kind(code_obj) else {
                    return Err(self.err("MAKE_FUNCTION without code object"));
                };
                let func_code = Rc::clone(func_code);
                let n = arg as usize;
                let start = self.scratch.len();
                for _ in 0..n {
                    let d = self.pop_s(2)?;
                    self.scratch.push(d);
                }
                self.scratch[start..].reverse();
                let defaults: Vec<ObjRef> = self.scratch[start..].to_vec();
                self.register_code(&func_code);
                let f = self.alloc_obj(ObjKind::Func(FuncObj { code: func_code, defaults }));
                self.scratch.truncate(start);
                // Function-object init stores.
                let base = self.obj_addr(f);
                self.estore(8, Category::FunctionSetup, base + 16);
                self.estore(9, Category::FunctionSetup, base + 24);
                self.decref(code_obj);
                self.push_s(12, f)?;
            }
            Opcode::BuildClass => {
                let ns = self.pop_s(0)?;
                let base_obj = self.pop_s(3)?;
                let name: Rc<str> = code.names[arg as usize].clone().into();
                let base = match self.kind(base_obj) {
                    ObjKind::None => None,
                    ObjKind::Class(_) => Some(base_obj),
                    other => {
                        return Err(self.err(format!(
                            "TypeError: base must be a class, not '{}'",
                            other.type_name()
                        )))
                    }
                };
                self.scratch.push(ns);
                self.scratch.push(base_obj);
                let cls = self.alloc_obj(ObjKind::Class(ClassObj { name, dict: ns, base }));
                self.scratch.truncate(self.scratch.len() - 2);
                if base.is_none() {
                    self.decref(base_obj); // the popped None
                }
                self.push_s(8, cls)?;
            }
            Opcode::CallFunction => {
                return self.call_function(arg as usize);
            }
            Opcode::ReturnValue => {
                return self.return_value();
            }
            // Fused superinstructions (emitted only by the qoa-analysis
            // optimizer): one dispatch prologue covers a whole unfused
            // run, and intermediate values skip the value-stack round
            // trip. Guest-observable behavior — values, error messages,
            // error ordering — is bit-for-bit that of the unfused run.
            Opcode::LoadFastLoadFast => {
                let a = self.read_fast(0, pair_lo(arg))?;
                self.push_s(4, a)?;
                let b = match self.read_fast(6, pair_hi(arg)) {
                    Ok(b) => b,
                    Err(e) => {
                        // The unfused error path leaves `a` on the stack
                        // for frame teardown; here it never landed there.
                        self.decref(a);
                        return Err(e);
                    }
                };
                self.push_s(10, b)?;
            }
            Opcode::LoadFastLoadConst => {
                let a = self.read_fast(0, pair_lo(arg))?;
                self.push_s(4, a)?;
                let k = pair_hi(arg);
                let meta = &self.code_meta[&code_key(code)];
                let v = meta.consts[k as usize];
                let consts_addr = meta.consts_addr + (k as u64) * 8;
                if self.cost == CostMode::Interp {
                    self.ealu(6, Category::RegTransfer, 1);
                    self.eload(7, Category::ConstLoad, consts_addr);
                }
                self.incref(v);
                self.push_s(10, v)?;
            }
            Opcode::AddFastFast => {
                let a = self.read_fast(0, pair_lo(arg))?;
                let b = match self.read_fast(6, pair_hi(arg)) {
                    Ok(b) => b,
                    Err(e) => {
                        self.decref(a);
                        return Err(e);
                    }
                };
                // `binary_op` consumes both references, exactly as the
                // unfused BinaryAdd would after its two pops.
                let r = self.binary_op(Opcode::BinaryAdd, a, b)?;
                self.push_s(12, r)?;
            }
            Opcode::ConstCompareJump => {
                // LHS was pushed by earlier code; the constant RHS flows
                // straight from the pool and the bool result is consumed
                // without touching the stack.
                let a = self.pop_s(0)?;
                let kidx = ccj_const(arg);
                let meta = &self.code_meta[&code_key(code)];
                let k = meta.consts[kidx as usize];
                let consts_addr = meta.consts_addr + (kidx as u64) * 8;
                if self.cost == CostMode::Interp {
                    self.ealu(3, Category::RegTransfer, 1);
                    self.eload(4, Category::ConstLoad, consts_addr);
                }
                self.incref(k);
                let r = self.compare_op(Cmp::from_arg(ccj_cmp(arg)), a, k)?;
                let truthy = self.kind(r).is_truthy();
                self.decref(r);
                let jump = if ccj_if_true(arg) { truthy } else { !truthy };
                self.ealu(11, Category::RichControlFlow, 1);
                self.ebranch(12, Category::Execute, jump);
                if jump {
                    let target = ccj_target(arg) as usize;
                    let f = self.frame_mut()?;
                    let old = f.pc;
                    f.pc = target;
                    if target < old {
                        return Ok(StepEvent::Backedge { code: code_key(code), target });
                    }
                }
            }
        }
        Ok(StepEvent::Continue)
    }
}
