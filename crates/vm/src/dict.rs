//! Open-addressing hash table for guest dicts, globals and namespaces.
//!
//! Name resolution in CPython is a dict probe sequence — the *name
//! resolution* overhead of Table II. To make that cost visible to the
//! cache simulator, lookups report exactly which slots they touched; the
//! VM turns each probe into a simulated load of `buffer + slot * 24`
//! (hash, key, value words per slot, like CPython's `PyDictEntry`).
//!
//! Keys are restricted to hashable guest values (ints, strings, bools,
//! `None`, and tuples thereof), captured as a self-contained [`Key`] so
//! equality needs no VM context.

use crate::object::ObjRef;
use std::rc::Rc;

/// A self-contained hashable key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Key {
    /// Integer key (bools hash like ints, as in Python).
    Int(i64),
    /// String key.
    Str(Rc<str>),
    /// `None` key.
    None,
    /// Tuple of hashable keys.
    Tuple(Vec<Key>),
}

impl Key {
    /// A stable 64-bit hash (FNV-1a based).
    pub fn hash(&self) -> u64 {
        fn fnv(bytes: impl Iterator<Item = u8>, seed: u64) -> u64 {
            let mut h = seed;
            for b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            h
        }
        match self {
            Key::Int(v) => fnv(v.to_le_bytes().into_iter(), 0xcbf2_9ce4_8422_2325),
            Key::Str(s) => fnv(s.bytes(), 0xcbf2_9ce4_8422_2325),
            Key::None => 0x517c_c1b7_2722_0a95,
            Key::Tuple(items) => {
                let mut h = 0x345b_91d1_c2f1_a7a3u64;
                for item in items {
                    h = h.rotate_left(13) ^ item.hash();
                }
                h
            }
        }
    }
}

/// Number of slots a probe sequence touched, plus their indices.
pub type Probes = Vec<u32>;

#[derive(Debug, Clone)]
struct Slot {
    hash: u64,
    key: Key,
    /// The guest object used as key (kept alive for iteration and GC).
    key_obj: ObjRef,
    value: ObjRef,
}

/// An open-addressing dict with CPython-style perturbed probing.
#[derive(Debug, Clone)]
pub struct DictObj {
    slots: Vec<Option<Slot>>,
    mask: u64,
    used: usize,
    /// Bumped on every mutation; the tracing JIT guards cached global
    /// lookups on this, exactly like PyPy's dict version tags.
    pub version: u64,
}

impl Default for DictObj {
    fn default() -> Self {
        Self::new()
    }
}

const INITIAL_SLOTS: usize = 8;

impl DictObj {
    /// Creates an empty dict (8 slots, like CPython).
    pub fn new() -> Self {
        DictObj {
            slots: vec![None; INITIAL_SLOTS],
            mask: (INITIAL_SLOTS - 1) as u64,
            used: 0,
            version: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.used
    }

    /// Whether the dict is empty.
    pub fn is_empty(&self) -> bool {
        self.used == 0
    }

    /// Current capacity in slots (for buffer sizing).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Looks up `key`, reporting the probe sequence.
    pub fn lookup(&self, key: &Key, probes: &mut Probes) -> Option<ObjRef> {
        probes.clear();
        let hash = key.hash();
        let mut perturb = hash;
        let mut i = hash & self.mask;
        loop {
            probes.push(i as u32);
            match &self.slots[i as usize] {
                None => return None,
                Some(s) if s.hash == hash && s.key == *key => return Some(s.value),
                _ => {
                    perturb >>= 5;
                    i = (i.wrapping_mul(5).wrapping_add(perturb).wrapping_add(1)) & self.mask;
                }
            }
        }
    }

    /// Inserts or replaces, reporting probes. Returns the previous value.
    pub fn insert(
        &mut self,
        key: Key,
        key_obj: ObjRef,
        value: ObjRef,
        probes: &mut Probes,
    ) -> Option<ObjRef> {
        probes.clear();
        self.version = self.version.wrapping_add(1);
        if (self.used + 1) * 3 >= self.slots.len() * 2 {
            self.grow();
        }
        let hash = key.hash();
        let mut perturb = hash;
        let mut i = hash & self.mask;
        loop {
            probes.push(i as u32);
            match &mut self.slots[i as usize] {
                slot @ None => {
                    *slot = Some(Slot { hash, key, key_obj, value });
                    self.used += 1;
                    return None;
                }
                Some(s) if s.hash == hash && s.key == key => {
                    // Replacement keeps the originally stored key object,
                    // exactly like CPython's dict setitem.
                    let old = s.value;
                    s.value = value;
                    return Some(old);
                }
                _ => {
                    perturb >>= 5;
                    i = (i.wrapping_mul(5).wrapping_add(perturb).wrapping_add(1)) & self.mask;
                }
            }
        }
    }

    /// Removes `key`, reporting probes. Returns the removed value.
    ///
    /// Removal re-inserts the displaced cluster (simpler than tombstones
    /// and equivalent for cost accounting at our load factors).
    pub fn remove(&mut self, key: &Key, probes: &mut Probes) -> Option<ObjRef> {
        probes.clear();
        let hash = key.hash();
        let mut perturb = hash;
        let mut i = hash & self.mask;
        loop {
            probes.push(i as u32);
            match &self.slots[i as usize] {
                None => return None,
                Some(s) if s.hash == hash && s.key == *key => {
                    let removed = self.slots[i as usize].take().expect("slot present");
                    self.used -= 1;
                    self.version = self.version.wrapping_add(1);
                    // Re-insert everything to repair probe chains.
                    let entries: Vec<Slot> =
                        self.slots.iter_mut().filter_map(|s| s.take()).collect();
                    self.used = 0;
                    let mut scratch = Vec::new();
                    for e in entries {
                        self.insert(e.key, e.key_obj, e.value, &mut scratch);
                        self.version = self.version.wrapping_sub(1);
                    }
                    return Some(removed.value);
                }
                _ => {
                    perturb >>= 5;
                    i = (i.wrapping_mul(5).wrapping_add(perturb).wrapping_add(1)) & self.mask;
                }
            }
        }
    }

    fn grow(&mut self) {
        let new_size = (self.slots.len() * 4).max(INITIAL_SLOTS);
        let old = std::mem::replace(&mut self.slots, vec![None; new_size]);
        self.mask = (new_size - 1) as u64;
        self.used = 0;
        let mut scratch = Vec::new();
        for slot in old.into_iter().flatten() {
            self.insert(slot.key, slot.key_obj, slot.value, &mut scratch);
            self.version = self.version.wrapping_sub(1);
        }
    }

    /// Iterates `(key_obj, value)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (ObjRef, ObjRef)> + '_ {
        self.slots
            .iter()
            .flatten()
            .map(|s| (s.key_obj, s.value))
    }

    /// Snapshot of the key objects (for `keys()` / iteration).
    pub fn key_objs(&self) -> Vec<ObjRef> {
        self.slots.iter().flatten().map(|s| s.key_obj).collect()
    }

    /// Snapshot of the values.
    pub fn values(&self) -> Vec<ObjRef> {
        self.slots.iter().flatten().map(|s| s.value).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::Str(Rc::from(s))
    }

    #[test]
    fn insert_lookup_remove_round_trip() {
        let mut d = DictObj::new();
        let mut probes = Vec::new();
        assert_eq!(d.lookup(&k("a"), &mut probes), None);
        assert!(!probes.is_empty());
        d.insert(k("a"), ObjRef(1), ObjRef(10), &mut probes);
        d.insert(k("b"), ObjRef(2), ObjRef(20), &mut probes);
        assert_eq!(d.lookup(&k("a"), &mut probes), Some(ObjRef(10)));
        assert_eq!(d.lookup(&k("b"), &mut probes), Some(ObjRef(20)));
        assert_eq!(d.len(), 2);
        assert_eq!(d.remove(&k("a"), &mut probes), Some(ObjRef(10)));
        assert_eq!(d.lookup(&k("a"), &mut probes), None);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn replacement_returns_old_value() {
        let mut d = DictObj::new();
        let mut probes = Vec::new();
        d.insert(k("x"), ObjRef(1), ObjRef(10), &mut probes);
        let old = d.insert(k("x"), ObjRef(1), ObjRef(11), &mut probes);
        assert_eq!(old, Some(ObjRef(10)));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn growth_preserves_entries() {
        let mut d = DictObj::new();
        let mut probes = Vec::new();
        for i in 0..1000 {
            d.insert(Key::Int(i), ObjRef(i as u32), ObjRef(i as u32 + 1), &mut probes);
        }
        assert_eq!(d.len(), 1000);
        assert!(d.capacity() >= 1500);
        for i in 0..1000 {
            assert_eq!(
                d.lookup(&Key::Int(i), &mut probes),
                Some(ObjRef(i as u32 + 1)),
                "key {i}"
            );
        }
    }

    #[test]
    fn collisions_lengthen_probe_sequences() {
        let mut d = DictObj::new();
        let mut probes = Vec::new();
        for i in 0..6 {
            d.insert(Key::Int(i), ObjRef(i as u32), ObjRef(0), &mut probes);
        }
        let mut max_probes = 0;
        for i in 0..6 {
            d.lookup(&Key::Int(i), &mut probes);
            max_probes = max_probes.max(probes.len());
        }
        assert!(max_probes >= 1);
    }

    #[test]
    fn version_changes_on_mutation_only() {
        let mut d = DictObj::new();
        let mut probes = Vec::new();
        let v0 = d.version;
        d.lookup(&k("nope"), &mut probes);
        assert_eq!(d.version, v0);
        d.insert(k("a"), ObjRef(1), ObjRef(2), &mut probes);
        assert_ne!(d.version, v0);
    }

    #[test]
    fn tuple_keys_work() {
        let mut d = DictObj::new();
        let mut probes = Vec::new();
        let key = Key::Tuple(vec![Key::Int(1), Key::Str(Rc::from("a"))]);
        d.insert(key.clone(), ObjRef(5), ObjRef(6), &mut probes);
        assert_eq!(d.lookup(&key, &mut probes), Some(ObjRef(6)));
        let other = Key::Tuple(vec![Key::Int(1), Key::Str(Rc::from("b"))]);
        assert_eq!(d.lookup(&other, &mut probes), None);
    }

    #[test]
    fn key_hashes_are_stable_and_spread() {
        assert_eq!(Key::Int(7).hash(), Key::Int(7).hash());
        assert_ne!(Key::Int(7).hash(), Key::Int(8).hash());
        assert_ne!(k("a").hash(), k("b").hash());
        assert_ne!(Key::Int(0).hash(), Key::None.hash());
    }

    #[test]
    fn iteration_yields_all_pairs() {
        let mut d = DictObj::new();
        let mut probes = Vec::new();
        for i in 0..20 {
            d.insert(Key::Int(i), ObjRef(i as u32), ObjRef(100 + i as u32), &mut probes);
        }
        let pairs: Vec<_> = d.iter().collect();
        assert_eq!(pairs.len(), 20);
        assert_eq!(d.key_objs().len(), 20);
        assert_eq!(d.values().len(), 20);
    }
}
