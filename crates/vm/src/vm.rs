//! The virtual machine core: object table, memory management, and the
//! micro-op emission helpers shared by the interpreter and the native
//! library.
//!
//! The VM executes Pyl bytecode under one of two memory managers —
//! CPython-style reference counting ([`HeapMode::Rc`]) or the PyPy-style
//! generational collector ([`HeapMode::Gen`]) — and under one of two *cost
//! modes*: [`CostMode::Interp`] emits the full interpreter cost model
//! (dispatch, stack traffic, boxing, C calls, …), while
//! [`CostMode::Trace`] emits the residual cost of JIT-compiled code
//! (guards, unboxed arithmetic, real C calls) with straight-line PCs in
//! the JIT code region. The `qoa-jit` crate flips the cost mode; the
//! semantics never change.

use crate::dict::{DictObj, Key};
use crate::native::NativeRegistry;
use crate::object::{Obj, ObjKind, ObjRef};
use qoa_chaos::{ChaosState, FaultKind, FaultRecord};
use qoa_frontend::{CodeObject, Const, Opcode};
use qoa_heap::{GcConfig, GcStats, GenHeap, ObjId, RcHeap, RcStats, Tracer};
use qoa_model::{mem, Category, Emitter, MicroOp, OpKind, OpSink, Pc, Phase};
use std::collections::HashMap;
use std::rc::Rc;

/// Base PC of the garbage collector / allocator code region.
pub(crate) const GC_CODE_BASE: u64 = mem::INTERP_CODE_BASE + 0x3C_0000;

/// Memory-management strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapMode {
    /// CPython-style reference counting with immediate reclamation.
    Rc,
    /// PyPy-style generational garbage collection.
    Gen(GcConfig),
}

/// VM configuration.
#[derive(Debug, Clone, Copy)]
pub struct VmConfig {
    /// Memory manager.
    pub heap: HeapMode,
    /// Execution fuel: abort after this many bytecodes (0 = unlimited).
    pub max_steps: u64,
    /// Wall-clock cutoff: [`Vm::step`] fails with
    /// [`VmError::DeadlineExceeded`] once this instant passes (checked
    /// every [`DEADLINE_CHECK_INTERVAL`] bytecodes).
    pub deadline: Option<std::time::Instant>,
    /// Simulated-OOM cap on live heap bytes (0 = unlimited). Exceeding it
    /// fails the next step with [`VmError::OutOfMemory`].
    pub max_heap_bytes: u64,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig { heap: HeapMode::Rc, max_steps: 0, deadline: None, max_heap_bytes: 0 }
    }
}

impl VmConfig {
    /// Returns a copy whose deadline is `timeout` from now.
    pub fn with_timeout(mut self, timeout: std::time::Duration) -> Self {
        self.deadline = Some(std::time::Instant::now() + timeout);
        self
    }
}

/// How often (in bytecodes) the interpreter polls the wall clock for
/// [`VmConfig::deadline`].
pub const DEADLINE_CHECK_INTERVAL: u64 = 4096;

/// Cost model in effect (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostMode {
    /// Full interpreter cost model.
    Interp,
    /// JIT-compiled-trace cost model; PCs advance through the trace's
    /// code region.
    Trace,
}

/// Why an execution stopped abnormally.
///
/// Every variant is recoverable from the host's point of view: the
/// experiment harness records it as a structured run failure instead of
/// aborting the sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// The program failed to compile.
    Compile(qoa_frontend::FrontendError),
    /// A guest run-time error (e.g. `TypeError: ...`) at a source line.
    Runtime {
        /// Description (e.g. `TypeError: ...`).
        message: String,
        /// Source line of the faulting bytecode.
        line: u32,
    },
    /// The execution fuel budget ([`VmConfig::max_steps`]) ran out.
    FuelExhausted {
        /// Bytecodes executed when the budget ran out.
        steps: u64,
    },
    /// The wall-clock deadline ([`VmConfig::deadline`]) passed.
    DeadlineExceeded {
        /// Bytecodes executed when the deadline fired.
        steps: u64,
    },
    /// Simulated live heap exceeded [`VmConfig::max_heap_bytes`].
    OutOfMemory {
        /// Live bytes at the failing allocation.
        live_bytes: u64,
        /// The configured cap.
        limit_bytes: u64,
    },
    /// A fault injected by an armed chaos plan that has no organic
    /// counterpart (JIT compile failure, mid-trace abort). Step-class
    /// injections reuse the organic variants; this one exists so the
    /// experiment layer can tell a surfaced synthetic fault apart even
    /// without consulting the chaos state.
    Injected {
        /// [`qoa_chaos::FaultKind::name`] of the injected fault.
        what: &'static str,
        /// Bytecodes executed when it fired.
        steps: u64,
    },
}

impl VmError {
    /// A guest run-time error at `line`.
    pub fn runtime(message: impl Into<String>, line: u32) -> Self {
        VmError::Runtime { message: message.into(), line }
    }

    /// True for errors the guest program itself caused (compile and
    /// run-time errors), false for resource-limit cutoffs.
    pub fn is_guest_fault(&self) -> bool {
        matches!(self, VmError::Compile(_) | VmError::Runtime { .. })
    }
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::Compile(e) => write!(f, "compile error: {e}"),
            VmError::Runtime { message, line } => write!(f, "line {line}: {message}"),
            VmError::FuelExhausted { steps } => {
                write!(f, "execution fuel exhausted after {steps} bytecodes")
            }
            VmError::DeadlineExceeded { steps } => {
                write!(f, "wall-clock deadline exceeded after {steps} bytecodes")
            }
            VmError::OutOfMemory { live_bytes, limit_bytes } => {
                write!(f, "simulated OOM: {live_bytes} live bytes > {limit_bytes} byte cap")
            }
            VmError::Injected { what, steps } => {
                write!(f, "injected fault `{what}` after {steps} bytecodes")
            }
        }
    }
}

impl std::error::Error for VmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VmError::Compile(e) => Some(e),
            _ => None,
        }
    }
}

impl From<qoa_frontend::FrontendError> for VmError {
    fn from(e: qoa_frontend::FrontendError) -> Self {
        VmError::Compile(e)
    }
}

/// Compatibility with older `Result<_, String>` call sites.
impl From<VmError> for String {
    fn from(e: VmError) -> Self {
        e.to_string()
    }
}

/// What one [`Vm::step`] did, from the driver's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// Ordinary instruction.
    Continue,
    /// A backwards jump was taken (a loop iteration completed) — the
    /// tracing JIT keys its hot-loop counters on these.
    Backedge {
        /// Identity of the code object (see `location`).
        code: usize,
        /// Bytecode index of the loop header.
        target: usize,
    },
    /// The program finished.
    Done,
}

/// A loop block on the frame's block stack.
#[derive(Debug, Clone, Copy)]
pub struct Block {
    /// Bytecode index to jump to on `break`.
    pub end: usize,
    /// Value-stack depth to restore.
    pub stack_depth: usize,
}

/// An activation record.
#[derive(Debug, Clone)]
pub struct Frame {
    /// The executing code object.
    pub code: Rc<CodeObject>,
    /// Next instruction index.
    pub pc: usize,
    /// Fast locals (parameters first).
    pub locals: Vec<Option<ObjRef>>,
    /// Value stack.
    pub stack: Vec<ObjRef>,
    /// Loop block stack.
    pub blocks: Vec<Block>,
    /// Simulated frame object (None for virtualized JIT frames).
    pub frame_obj: Option<ObjRef>,
    /// Class-body namespace dict, when executing a class body.
    pub class_ns: Option<ObjRef>,
    /// The callee object that created this frame (kept as a GC root).
    pub callee: Option<ObjRef>,
    /// For `__init__` frames: the instance to yield instead of the return
    /// value.
    pub init_instance: Option<ObjRef>,
}

/// Execution statistics.
#[derive(Debug, Clone)]
pub struct VmStats {
    /// Bytecodes executed.
    pub bytecodes: u64,
    /// Guest objects allocated.
    pub allocations: u64,
    /// Guest function calls.
    pub calls: u64,
    /// Native ("C extension") calls.
    pub native_calls: u64,
    /// Dict probe slots touched (name resolution pressure).
    pub dict_probes: u64,
    /// Dispatch count per opcode, indexed by [`Opcode::index`]
    /// (always `Opcode::COUNT` entries).
    pub opcodes: Vec<u64>,
    /// Reference-counting heap statistics (Rc mode).
    pub rc: RcStats,
    /// Generational-GC statistics (Gen mode).
    pub gc: GcStats,
}

impl Default for VmStats {
    fn default() -> Self {
        VmStats {
            bytecodes: 0,
            allocations: 0,
            calls: 0,
            native_calls: 0,
            dict_probes: 0,
            opcodes: vec![0; Opcode::COUNT],
            rc: RcStats::default(),
            gc: GcStats::default(),
        }
    }
}

#[derive(Clone)]
pub(crate) enum HeapImpl {
    Rc(RcHeap),
    Gen(GenHeap),
}

/// The virtual machine.
///
/// Generic over the micro-op sink `S`, so the same execution can be counted
/// ([`qoa_model::CountingSink`]), captured ([`qoa_uarch::TraceBuffer`]
/// replays) or simulated cycle-by-cycle.
///
/// The whole machine is `Clone` (when the sink is): a clone is a complete
/// mid-run snapshot — interpreter, heap, *and* attribution state — which
/// is what the chaos engine's checkpoint/restore recovery is built on.
/// Guest objects are slab-indexed and code objects are shared `Rc`s whose
/// identity keys (`code_key`) stay valid across the clone, so a restored
/// machine re-executes bit-identically.
#[derive(Clone)]
pub struct Vm<S: OpSink> {
    pub(crate) sink: S,
    pub(crate) cfg: VmConfig,
    pub(crate) phase: Phase,
    pub(crate) cost: CostMode,
    /// Base PC of the current opcode handler (interp mode).
    pub(crate) handler_base: u64,
    /// Cursor through the JIT code region (trace mode).
    pub(crate) trace_pc: u64,
    pub(crate) slab: Vec<Obj>,
    pub(crate) free_slots: Vec<u32>,
    pub(crate) heap: HeapImpl,
    pub(crate) frames: Vec<Frame>,
    /// GC-visible temporaries (mid-instruction).
    pub(crate) scratch: Vec<ObjRef>,
    pub(crate) globals: ObjRef,
    pub(crate) builtins: ObjRef,
    none_ref: ObjRef,
    true_ref: ObjRef,
    false_ref: ObjRef,
    small_ints: Vec<ObjRef>,
    pub(crate) interned_strs: HashMap<Rc<str>, ObjRef>,
    pub(crate) natives: NativeRegistry,
    /// Per-code-object constant object tables and simulated co_code
    /// addresses, keyed by code identity.
    pub(crate) code_meta: HashMap<usize, CodeMeta>,
    next_code_addr: u64,
    static_bump: u64,
    pub(crate) probes: Vec<u32>,
    pub(crate) stats: VmStats,
    pub(crate) steps: u64,
    /// A fault detected mid-instruction (e.g. simulated OOM during an
    /// allocation); surfaced as the result of the next [`Vm::step`].
    pub(crate) pending_fault: Option<VmError>,
    /// Armed fault-injection state (`None` when chaos is off; the hooks
    /// then cost one branch per site and emit nothing).
    pub(crate) chaos: Option<ChaosState>,
    /// Whether the one emergency major collection allowed per
    /// cap-exceed event has already run (reset when usage drops back
    /// under the cap).
    emergency_gc_used: bool,
    /// Modeled C-call nesting depth (for C-stack addresses).
    pub(crate) c_depth: u32,
    /// Captured `print` output.
    pub(crate) output: Vec<String>,
    /// Final value returned by the module frame.
    pub(crate) result: Option<ObjRef>,
    /// Category native-body emissions carry (CLibrary vs Execute).
    pub(crate) lib_cat: Category,
    /// Whether the per-dispatch defensive guard checks are elided. Set
    /// only by [`Vm::load_verified`]: statically verified code has
    /// proved the properties the guards re-check dynamically, so their
    /// simulated cost ([`Category::ErrorCheck`] ops per dispatch) is
    /// skipped. Unverified code keeps the guards.
    pub(crate) elide_checks: bool,
}

/// Registered metadata for one code object.
#[derive(Clone)]
pub(crate) struct CodeMeta {
    /// Constants realized as (immortal) guest objects.
    pub consts: Vec<ObjRef>,
    /// Simulated address of `co_code`.
    pub code_addr: u64,
    /// Simulated address of `co_consts` pointer table.
    pub consts_addr: u64,
    /// Interned function name for frame events (cheap to clone per call;
    /// `Arc` so emitted traces stay shareable across threads).
    pub name: std::sync::Arc<str>,
}

/// Identity key of a code object (Rc pointer address).
pub(crate) fn code_key(code: &Rc<CodeObject>) -> usize {
    Rc::as_ptr(code) as usize
}

const SMALL_INT_MIN: i64 = -5;
const SMALL_INT_MAX: i64 = 256;

impl<S: OpSink> Vm<S> {
    /// Creates a VM with the given configuration and sink.
    pub fn new(cfg: VmConfig, sink: S) -> Self {
        let heap = match cfg.heap {
            HeapMode::Rc => HeapImpl::Rc(RcHeap::new()),
            HeapMode::Gen(gc) => HeapImpl::Gen(GenHeap::new(gc)),
        };
        let mut vm = Vm {
            sink,
            cfg,
            phase: Phase::Interpreter,
            cost: CostMode::Interp,
            handler_base: mem::INTERP_CODE_BASE,
            trace_pc: mem::JIT_CODE_BASE,
            slab: Vec::with_capacity(1024),
            free_slots: Vec::new(),
            heap,
            frames: Vec::new(),
            scratch: Vec::new(),
            globals: ObjRef(0),
            builtins: ObjRef(0),
            none_ref: ObjRef(0),
            true_ref: ObjRef(0),
            false_ref: ObjRef(0),
            small_ints: Vec::new(),
            interned_strs: HashMap::new(),
            natives: NativeRegistry::new(),
            code_meta: HashMap::new(),
            next_code_addr: mem::STATIC_DATA_BASE + 0x10_0000,
            static_bump: mem::STATIC_DATA_BASE + 0x40_0000,
            probes: Vec::new(),
            stats: VmStats::default(),
            steps: 0,
            pending_fault: None,
            chaos: None,
            emergency_gc_used: false,
            c_depth: 0,
            output: Vec::new(),
            result: None,
            lib_cat: Category::CLibrary,
            elide_checks: false,
        };
        vm.none_ref = vm.alloc_immortal(ObjKind::None);
        vm.true_ref = vm.alloc_immortal(ObjKind::Bool(true));
        vm.false_ref = vm.alloc_immortal(ObjKind::Bool(false));
        vm.small_ints = (SMALL_INT_MIN..=SMALL_INT_MAX)
            .map(|v| vm.alloc_immortal(ObjKind::Int(v)))
            .collect();
        vm.globals = vm.alloc_immortal(ObjKind::Dict(DictObj::new()));
        vm.builtins = vm.alloc_immortal(ObjKind::Dict(DictObj::new()));
        vm.install_builtins();
        vm
    }

    /// Consumes the VM and returns the sink plus statistics.
    pub fn finish(mut self) -> (S, VmStats) {
        self.refresh_stats();
        (self.sink, self.stats)
    }

    /// Current statistics (heap counters refreshed).
    pub fn stats(&mut self) -> VmStats {
        self.refresh_stats();
        self.stats.clone()
    }

    fn refresh_stats(&mut self) {
        match &self.heap {
            HeapImpl::Rc(h) => self.stats.rc = h.stats(),
            HeapImpl::Gen(h) => self.stats.gc = h.stats(),
        }
    }

    /// Lines captured from the guest's `print`.
    pub fn output(&self) -> &[String] {
        &self.output
    }

    /// Bytecodes executed so far (the chaos engine's fault clock mirrors
    /// this counter).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    // ---- per-request limits --------------------------------------------------

    /// Replaces the execution fuel budget (0 = unlimited). The serving
    /// layer calls this on a clone restored from a pre-warmed snapshot so
    /// each request carries its own deadline-derived fuel cap without
    /// re-capturing the snapshot.
    pub fn set_fuel(&mut self, max_steps: u64) {
        self.cfg.max_steps = max_steps;
    }

    /// Replaces the wall-clock deadline (`None` = unlimited), for the same
    /// restored-clone use case as [`Vm::set_fuel`].
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.cfg.deadline = deadline;
    }

    // ---- fault injection -----------------------------------------------------

    /// Arms a chaos plan. With chaos disarmed (the default) every hook
    /// below is a single `None` branch and the simulation is bit-identical
    /// to a build without the engine.
    pub fn arm_chaos(&mut self, chaos: ChaosState) {
        self.chaos = Some(chaos);
    }

    /// The armed chaos state, if any.
    pub fn chaos(&self) -> Option<&ChaosState> {
        self.chaos.as_ref()
    }

    /// Mutable access to the armed chaos state (the experiment layer uses
    /// this to disarm a consumed fault point after restoring a snapshot).
    pub fn chaos_mut(&mut self) -> Option<&mut ChaosState> {
        self.chaos.as_mut()
    }

    /// Polls the armed plan for a due fault of `kind`. `None` when chaos
    /// is off or no point is due.
    pub fn chaos_poll(&mut self, kind: FaultKind) -> Option<FaultRecord> {
        self.chaos.as_mut()?.poll(kind)
    }

    /// Whether JIT faults should degrade in place instead of surfacing.
    pub fn chaos_degrade_jit(&self) -> bool {
        self.chaos.as_ref().is_some_and(|c| c.degrade_jit())
    }

    /// Notes a fault recovered in place (degrade mode).
    pub fn chaos_note_recovery(&mut self) {
        if let Some(c) = self.chaos.as_mut() {
            c.note_in_vm_recovery();
        }
    }

    /// Takes the record of the most recent injected fault. The experiment
    /// layer calls this after an error to tell injected faults (recover by
    /// restore) apart from organic ones (surface to the caller).
    pub fn take_injected(&mut self) -> Option<FaultRecord> {
        self.chaos.as_mut()?.take_last_injected()
    }

    /// Whether the per-dispatch guard checks are elided (true only after
    /// `Vm::load_verified`).
    pub fn check_elision(&self) -> bool {
        self.elide_checks
    }

    /// The globals dict object.
    pub fn globals_ref(&self) -> ObjRef {
        self.globals
    }

    /// The `None` singleton.
    pub fn none(&self) -> ObjRef {
        self.none_ref
    }

    /// The `True`/`False` singletons.
    pub fn bool_ref(&self, b: bool) -> ObjRef {
        if b {
            self.true_ref
        } else {
            self.false_ref
        }
    }

    /// Read access to an object.
    ///
    /// # Panics
    ///
    /// Panics if the reference is stale (freed slab slot).
    pub fn obj(&self, r: ObjRef) -> &Obj {
        &self.slab[r.index()]
    }

    /// Mutable access to an object.
    pub fn obj_mut(&mut self, r: ObjRef) -> &mut Obj {
        &mut self.slab[r.index()]
    }

    /// The kind of an object.
    pub fn kind(&self, r: ObjRef) -> &ObjKind {
        &self.slab[r.index()].kind
    }

    /// Current cost mode.
    pub fn cost_mode(&self) -> CostMode {
        self.cost
    }

    /// Switches the cost model (used by the tracing JIT).
    pub fn set_cost_mode(&mut self, cost: CostMode) {
        self.cost = cost;
        self.phase = match cost {
            CostMode::Interp => Phase::Interpreter,
            CostMode::Trace => Phase::JitCode,
        };
        self.sink.phase_change(self.phase);
    }

    /// Sets the JIT-code PC cursor (start of a trace's code region).
    pub fn set_trace_pc(&mut self, pc: u64) {
        self.trace_pc = pc;
    }

    /// Emits the work of compiling a recorded trace: the optimizer reads
    /// the trace IR and writes machine code into the JIT code region
    /// ([`Phase::JitCompile`]). Returns nothing; cost only.
    pub fn emit_jit_compile(&mut self, trace_steps: usize, code_base: u64, code_len: u64) {
        let saved = self.phase;
        self.phase = Phase::JitCompile;
        self.sink.phase_change(Phase::JitCompile);
        let ir_base = mem::STATIC_DATA_BASE + 0x80_0000;
        // Several optimizer passes over the IR, then code emission.
        for pass in 0..3u64 {
            for i in 0..trace_steps as u64 {
                self.eload(960, Category::Execute, ir_base + (i * 3 + pass) % 4096 * 16);
                self.ealu(961, Category::Execute, 6);
            }
        }
        let words = (code_len / 8).min(1 << 16);
        for i in 0..words {
            self.estore(964, Category::Execute, code_base + i * 8);
            self.ealu(965, Category::Execute, 2);
        }
        self.phase = saved;
        self.sink.phase_change(saved);
    }

    /// Emits a deoptimization: reconstructing the interpreter state from
    /// the failed trace (writing back live values, reallocating virtualized
    /// frames).
    pub fn emit_deopt(&mut self) {
        // Materialize any virtual frames so the interpreter can resume.
        let missing: Vec<usize> = self
            .frames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.frame_obj.is_none())
            .map(|(i, _)| i)
            .collect();
        for idx in missing {
            let nlocals = self.frames[idx].locals.len() as u64;
            let bytes = 96 + 8 * (nlocals + 24);
            let fo = self.alloc_obj(ObjKind::Buffer { bytes });
            let addr = self.obj_addr(fo);
            self.frames[idx].frame_obj = Some(fo);
            // Write back the frame's live values.
            for i in 0..(nlocals + 4) {
                self.estore(970, Category::FunctionSetup, addr + 96 + i * 8);
            }
        }
        // Also materialize any virtual numeric values that now live on.
        let live: Vec<crate::object::ObjRef> = self
            .frames
            .iter()
            .flat_map(|f| {
                f.locals
                    .iter()
                    .flatten()
                    .chain(f.stack.iter())
                    .copied()
                    .collect::<Vec<_>>()
            })
            .collect();
        for r in live {
            if self.obj(r).virtual_unboxed {
                self.materialize(r);
            }
        }
        self.ealu(974, Category::RichControlFlow, 8);
    }

    // ---- emission -----------------------------------------------------------

    #[inline]
    pub(crate) fn pc_for(&mut self, site: u32) -> Pc {
        match self.cost {
            CostMode::Interp => Pc(self.handler_base + (site as u64) * 4),
            CostMode::Trace => {
                let p = self.trace_pc;
                self.trace_pc += 4;
                Pc(p)
            }
        }
    }

    #[inline]
    pub(crate) fn emit(&mut self, site: u32, kind: OpKind, category: Category) {
        let pc = self.pc_for(site);
        self.sink.op(MicroOp { pc, kind, category, phase: self.phase });
    }

    #[inline]
    pub(crate) fn ealu(&mut self, site: u32, cat: Category, n: u32) {
        for i in 0..n {
            self.emit(site + i, OpKind::Alu, cat);
        }
    }

    #[inline]
    pub(crate) fn efp(&mut self, site: u32, cat: Category) {
        self.emit(site, OpKind::FpAlu, cat);
    }

    #[inline]
    pub(crate) fn eload(&mut self, site: u32, cat: Category, addr: u64) {
        self.emit(site, OpKind::Load { addr, size: 8 }, cat);
    }

    #[inline]
    pub(crate) fn estore(&mut self, site: u32, cat: Category, addr: u64) {
        self.emit(site, OpKind::Store { addr, size: 8 }, cat);
    }

    #[inline]
    pub(crate) fn ebranch(&mut self, site: u32, cat: Category, taken: bool) {
        let target = self.pc_for(site + 8);
        self.emit(site, OpKind::Branch { taken, target, indirect: false }, cat);
    }

    /// Emits one modeled C call: call + prologue at the callee, tagged
    /// [`Category::CFunctionCall`]. Pair with [`Vm::c_return`].
    pub(crate) fn c_call(&mut self, site: u32, target: u64, indirect: bool) {
        self.emit(site, OpKind::Call { target: Pc(target), indirect }, Category::CFunctionCall);
        // Prologue: push rbp, set up frame, spill callee-saved registers.
        let sp = self.c_stack_ptr();
        self.estore(site + 1, Category::CFunctionCall, sp);
        self.estore(site + 2, Category::CFunctionCall, sp - 8);
        self.estore(site + 3, Category::CFunctionCall, sp - 16);
        self.ealu(site + 4, Category::CFunctionCall, 2);
        self.c_depth += 1;
    }

    /// Emits one modeled C return: epilogue restores + `ret`.
    pub(crate) fn c_return(&mut self, site: u32) {
        self.c_depth = self.c_depth.saturating_sub(1);
        let sp = self.c_stack_ptr();
        self.eload(site, Category::CFunctionCall, sp - 16);
        self.eload(site + 1, Category::CFunctionCall, sp - 8);
        self.eload(site + 2, Category::CFunctionCall, sp);
        self.emit(site + 3, OpKind::Ret, Category::CFunctionCall);
    }

    fn c_stack_ptr(&self) -> u64 {
        mem::C_STACK_TOP - 64 - (self.c_depth as u64) * 48
    }

    // ---- object lifecycle ----------------------------------------------------

    fn alloc_slot(&mut self, obj: Obj) -> ObjRef {
        match self.free_slots.pop() {
            Some(i) => {
                self.slab[i as usize] = obj;
                ObjRef(i)
            }
            None => {
                self.slab.push(obj);
                ObjRef((self.slab.len() - 1) as u32)
            }
        }
    }

    /// Allocates an immortal object at a static address (singletons,
    /// interned constants). Emits nothing.
    pub(crate) fn alloc_immortal(&mut self, kind: ObjKind) -> ObjRef {
        let size = kind.heap_size().max(16).div_ceil(16) * 16;
        let addr = self.static_bump;
        self.static_bump += size;
        let mut obj = Obj::new(kind);
        obj.immortal = true;
        obj.static_addr = addr;
        obj.refcount = u32::MAX / 2;
        self.alloc_slot(obj)
    }

    /// Allocates a mortal guest object, emitting allocator traffic and —
    /// under the generational heap — running collections as needed.
    /// Numeric temporaries under the trace cost model stay *virtual*
    /// (no simulated allocation) until they escape.
    pub(crate) fn alloc_obj(&mut self, kind: ObjKind) -> ObjRef {
        self.stats.allocations += 1;
        if self.cost == CostMode::Trace
            && matches!(kind, ObjKind::Int(_) | ObjKind::Float(_) | ObjKind::Bool(_))
        {
            let mut obj = Obj::new(kind);
            obj.virtual_unboxed = true;
            return self.alloc_slot(obj);
        }
        let size = kind.heap_size();
        let r = self.alloc_slot(Obj::new(kind));
        self.alloc_backing(r, size);
        r
    }

    /// Gives a (possibly virtual) object a simulated allocation.
    pub(crate) fn alloc_backing(&mut self, r: ObjRef, size: u64) {
        // Injected allocation failure: one emergency collection (the
        // recovery attempt the real allocator would make), then the
        // allocation proceeds — allocation stays infallible — and the
        // simulated OOM surfaces at the next step boundary.
        let injected = self
            .chaos
            .as_mut()
            .and_then(|c| c.poll(FaultKind::AllocFault))
            .is_some();
        if injected && matches!(self.heap, HeapImpl::Gen(_)) {
            self.minor_gc();
        }
        match self.cfg.heap {
            HeapMode::Rc => {
                let Vm { heap, sink, phase, .. } = self;
                let HeapImpl::Rc(h) = heap else { unreachable!() };
                let mut e = Emitter::new(sink, *phase, GC_CODE_BASE);
                h.alloc(r.obj_id(), size, Category::ObjectAllocation, &mut e);
            }
            HeapMode::Gen(_) => {
                let needs_minor = {
                    let HeapImpl::Gen(h) = &self.heap else { unreachable!() };
                    h.needs_minor(size)
                };
                if needs_minor {
                    self.minor_gc();
                }
                {
                    let Vm { heap, sink, phase, .. } = self;
                    let HeapImpl::Gen(h) = heap else { unreachable!() };
                    let mut e = Emitter::new(sink, *phase, GC_CODE_BASE);
                    h.alloc(r.obj_id(), size, &mut e);
                }
                let needs_major = {
                    let HeapImpl::Gen(h) = &self.heap else { unreachable!() };
                    h.needs_major()
                };
                if needs_major {
                    self.major_gc();
                }
            }
        }
        self.check_heap_cap();
        if injected && self.pending_fault.is_none() {
            let live = self.live_heap_bytes();
            self.pending_fault = Some(VmError::OutOfMemory {
                live_bytes: live,
                limit_bytes: if self.cfg.max_heap_bytes == 0 {
                    live
                } else {
                    self.cfg.max_heap_bytes
                },
            });
        }
    }

    fn live_heap_bytes(&self) -> u64 {
        match &self.heap {
            HeapImpl::Rc(h) => h.stats().live_bytes,
            HeapImpl::Gen(h) => h.live_bytes(),
        }
    }

    /// Flags a pending [`VmError::OutOfMemory`] when the simulated live
    /// heap exceeds the configured cap. Allocation itself stays infallible;
    /// the fault surfaces at the next [`Vm::step`] boundary. Under the
    /// generational heap, one emergency major collection runs first — if
    /// it brings usage back under the cap the run degrades gracefully
    /// instead of dying.
    fn check_heap_cap(&mut self) {
        if self.cfg.max_heap_bytes == 0 || self.pending_fault.is_some() {
            return;
        }
        let mut live = self.live_heap_bytes();
        if live <= self.cfg.max_heap_bytes {
            self.emergency_gc_used = false;
            return;
        }
        if matches!(self.heap, HeapImpl::Gen(_)) && !self.emergency_gc_used {
            self.emergency_gc_used = true;
            self.major_gc();
            live = self.live_heap_bytes();
            if live <= self.cfg.max_heap_bytes {
                return;
            }
        }
        self.pending_fault = Some(VmError::OutOfMemory {
            live_bytes: live,
            limit_bytes: self.cfg.max_heap_bytes,
        });
    }

    /// Materializes a virtual (trace-register) object into the heap, e.g.
    /// when it escapes the trace into a container, global, or frame.
    pub(crate) fn materialize(&mut self, r: ObjRef) {
        if !self.obj(r).virtual_unboxed {
            return;
        }
        self.obj_mut(r).virtual_unboxed = false;
        let size = self.obj(r).kind.heap_size();
        self.alloc_backing(r, size);
        // Store of the unboxed value + type tag into the fresh object.
        let addr = self.obj_addr(r);
        self.estore(900, Category::BoxUnbox, addr + 8);
        self.estore(901, Category::ObjectAllocation, addr);
    }

    /// The simulated address of an object (static for immortals, heap
    /// otherwise; virtual objects report a scratch-register address).
    pub(crate) fn obj_addr(&self, r: ObjRef) -> u64 {
        let o = &self.slab[r.index()];
        if o.immortal {
            return o.static_addr;
        }
        if o.virtual_unboxed {
            // Virtual values live in (modeled) registers; give them a
            // stack-scratch address so stray accesses stay harmless.
            return mem::C_STACK_TOP - 32;
        }
        match &self.heap {
            HeapImpl::Rc(h) => h.addr_of(r.obj_id()).unwrap_or(mem::STATIC_DATA_BASE),
            HeapImpl::Gen(h) => h.addr_of(r.obj_id()).unwrap_or(mem::STATIC_DATA_BASE),
        }
    }

    /// Increments a reference count (emits under Rc mode).
    pub(crate) fn incref(&mut self, r: ObjRef) {
        let o = &mut self.slab[r.index()];
        if o.immortal {
            // CPython refcounts singletons too; the traffic is real.
            if matches!(self.heap, HeapImpl::Rc(_)) && self.cost == CostMode::Interp {
                let addr = o.static_addr;
                self.estore(912, Category::GarbageCollection, addr);
                self.stats.rc.increfs += 1;
            }
            return;
        }
        o.refcount += 1;
        if matches!(self.heap, HeapImpl::Rc(_)) {
            let Vm { heap, sink, phase, .. } = self;
            let HeapImpl::Rc(h) = heap else { unreachable!() };
            let mut e = Emitter::new(sink, *phase, GC_CODE_BASE);
            h.incref(r.obj_id(), &mut e);
        }
    }

    /// Decrements a reference count; frees (and cascades) at zero under Rc
    /// mode, or reclaims virtual temporaries under the generational heap.
    pub(crate) fn decref(&mut self, r: ObjRef) {
        let mut worklist = vec![r];
        while let Some(r) = worklist.pop() {
            let o = &mut self.slab[r.index()];
            if o.immortal {
                if matches!(self.heap, HeapImpl::Rc(_)) && self.cost == CostMode::Interp {
                    let addr = o.static_addr;
                    self.estore(917, Category::GarbageCollection, addr);
                    self.ebranch(918, Category::GarbageCollection, false);
                    self.stats.rc.decrefs += 1;
                }
                continue;
            }
            debug_assert!(o.refcount > 0, "decref of dead object");
            o.refcount -= 1;
            let now_zero = o.refcount == 0;
            let is_virtual = o.virtual_unboxed;
            match self.cfg.heap {
                HeapMode::Rc => {
                    {
                        let Vm { heap, sink, phase, .. } = self;
                        let HeapImpl::Rc(h) = heap else { unreachable!() };
                        let mut e = Emitter::new(sink, *phase, GC_CODE_BASE);
                        h.decref(r.obj_id(), now_zero, &mut e);
                    }
                    if now_zero {
                        // Children lose a reference; free the object.
                        crate::trace_refs::for_each_child(&self.slab[r.index()], |c| {
                            worklist.push(c)
                        });
                        {
                            let Vm { heap, sink, phase, .. } = self;
                            let HeapImpl::Rc(h) = heap else { unreachable!() };
                            let mut e = Emitter::new(sink, *phase, GC_CODE_BASE);
                            h.free(r.obj_id(), Category::ObjectAllocation, &mut e);
                        }
                        self.release_slot(r);
                    }
                }
                HeapMode::Gen(_) => {
                    // No refcount traffic under the generational heap; only
                    // virtual temporaries are reclaimed eagerly.
                    if now_zero && is_virtual {
                        self.release_slot(r);
                    }
                }
            }
        }
    }

    fn release_slot(&mut self, r: ObjRef) {
        let o = &mut self.slab[r.index()];
        o.kind = ObjKind::None;
        o.buffer = None;
        self.free_slots.push(r.0);
    }

    // ---- garbage collection ----------------------------------------------------

    /// Runs a minor collection now (normally triggered by allocation).
    pub fn minor_gc(&mut self) {
        let Vm { heap, sink, phase, slab, frames, scratch, globals, builtins, interned_strs, .. } =
            self;
        let HeapImpl::Gen(h) = heap else { return };
        let roots = VmRoots {
            slab,
            frames,
            scratch,
            globals: *globals,
            builtins: *builtins,
            interned: interned_strs,
        };
        let mut e = Emitter::new(sink, *phase, GC_CODE_BASE);
        let dead = h.minor_collect(&roots, &mut e);
        for id in dead {
            self.release_slot(ObjRef(id.0));
        }
    }

    /// Runs a major collection now.
    pub fn major_gc(&mut self) {
        let Vm { heap, sink, phase, slab, frames, scratch, globals, builtins, interned_strs, .. } =
            self;
        let HeapImpl::Gen(h) = heap else { return };
        let roots = VmRoots {
            slab,
            frames,
            scratch,
            globals: *globals,
            builtins: *builtins,
            interned: interned_strs,
        };
        let mut e = Emitter::new(sink, *phase, GC_CODE_BASE);
        let dead = h.major_collect(&roots, &mut e);
        for id in dead {
            self.release_slot(ObjRef(id.0));
        }
    }

    /// Emits the generational write barrier for `parent.field = child`.
    pub(crate) fn write_barrier(&mut self, parent: ObjRef, child: ObjRef) {
        if let HeapImpl::Gen(_) = self.heap {
            let Vm { heap, sink, phase, .. } = self;
            let HeapImpl::Gen(h) = heap else { unreachable!() };
            let mut e = Emitter::new(sink, *phase, GC_CODE_BASE);
            h.write_barrier(parent.obj_id(), child.obj_id(), &mut e);
        }
    }

    // ---- constants and interning -------------------------------------------------

    /// Returns the guest object for integer `v` (interned when small).
    pub(crate) fn make_int(&mut self, v: i64) -> ObjRef {
        if (SMALL_INT_MIN..=SMALL_INT_MAX).contains(&v) {
            let r = self.small_ints[(v - SMALL_INT_MIN) as usize];
            self.incref(r);
            return r;
        }
        self.alloc_obj(ObjKind::Int(v))
    }

    /// Returns the guest object for `v`.
    pub(crate) fn make_float(&mut self, v: f64) -> ObjRef {
        self.alloc_obj(ObjKind::Float(v))
    }

    /// Returns an interned immortal string object (names, const strings).
    pub(crate) fn intern_str(&mut self, s: &str) -> ObjRef {
        if let Some(&r) = self.interned_strs.get(s) {
            return r;
        }
        let rc: Rc<str> = Rc::from(s);
        let r = self.alloc_immortal(ObjKind::Str(Rc::clone(&rc)));
        self.interned_strs.insert(rc, r);
        r
    }

    /// Registers a code object: realizes its constants as immortal guest
    /// objects and assigns simulated addresses for `co_code`/`co_consts`.
    pub(crate) fn register_code(&mut self, code: &Rc<CodeObject>) {
        let key = code_key(code);
        if self.code_meta.contains_key(&key) {
            return;
        }
        let code_addr = self.next_code_addr;
        self.next_code_addr += (code.code.len() as u64) * 4 + 64;
        let consts_addr = self.next_code_addr;
        self.next_code_addr += (code.consts.len() as u64) * 8 + 64;
        let consts: Vec<ObjRef> = code
            .consts
            .clone()
            .into_iter()
            .map(|c| match c {
                Const::None => self.none_ref,
                Const::Bool(b) => self.bool_ref(b),
                Const::Int(v) if (SMALL_INT_MIN..=SMALL_INT_MAX).contains(&v) => {
                    self.small_ints[(v - SMALL_INT_MIN) as usize]
                }
                Const::Int(v) => self.alloc_immortal(ObjKind::Int(v)),
                Const::Float(v) => self.alloc_immortal(ObjKind::Float(v)),
                Const::Str(s) => self.intern_str(&s),
                Const::Code(inner) => {
                    self.register_code(&inner);
                    self.alloc_immortal(ObjKind::Code(Rc::clone(&inner)))
                }
            })
            .collect();
        let name: std::sync::Arc<str> = std::sync::Arc::from(code.name.as_str());
        self.code_meta.insert(key, CodeMeta { consts, code_addr, consts_addr, name });
    }

    /// Builds a [`Key`] from a guest object, if it is hashable.
    pub(crate) fn key_of(&self, r: ObjRef) -> Result<Key, String> {
        match &self.slab[r.index()].kind {
            ObjKind::Int(v) => Ok(Key::Int(*v)),
            ObjKind::Bool(b) => Ok(Key::Int(*b as i64)),
            ObjKind::None => Ok(Key::None),
            ObjKind::Str(s) => Ok(Key::Str(Rc::clone(s))),
            ObjKind::Tuple(items) => {
                let keys: Result<Vec<Key>, String> =
                    items.iter().map(|i| self.key_of(*i)).collect();
                Ok(Key::Tuple(keys?))
            }
            other => Err(format!("unhashable type: '{}'", other.type_name())),
        }
    }
}

/// GC root view over the VM's state.
struct VmRoots<'a> {
    slab: &'a [Obj],
    frames: &'a [Frame],
    scratch: &'a [ObjRef],
    globals: ObjRef,
    builtins: ObjRef,
    interned: &'a HashMap<Rc<str>, ObjRef>,
}

impl Tracer for VmRoots<'_> {
    fn roots(&self, visit: &mut dyn FnMut(ObjId)) {
        visit(self.globals.obj_id());
        visit(self.builtins.obj_id());
        for &r in self.scratch {
            visit(r.obj_id());
        }
        for f in self.frames {
            for r in f.locals.iter().flatten() {
                visit(r.obj_id());
            }
            for r in &f.stack {
                visit(r.obj_id());
            }
            if let Some(ns) = f.class_ns {
                visit(ns.obj_id());
            }
            if let Some(c) = f.callee {
                visit(c.obj_id());
            }
            if let Some(fo) = f.frame_obj {
                visit(fo.obj_id());
            }
            if let Some(i) = f.init_instance {
                visit(i.obj_id());
            }
        }
        for &r in self.interned.values() {
            visit(r.obj_id());
        }
    }

    fn refs(&self, id: ObjId, visit: &mut dyn FnMut(ObjId)) {
        if let Some(o) = self.slab.get(id.0 as usize) {
            crate::trace_refs::for_each_child(o, |c| visit(c.obj_id()));
        }
    }
}
