//! The guest object model.
//!
//! Every guest value is a heap object identified by an [`ObjRef`] into the
//! VM's object table (slab). This mirrors CPython, where even integers are
//! boxed `PyObject`s — the *boxing/unboxing* and *object allocation*
//! overheads of Table II exist precisely because of this representation.
//! The slab index doubles as the [`qoa_heap::ObjId`] under which the
//! object's simulated address is tracked, so the cache hierarchy sees every
//! object the guest program touches.

use qoa_frontend::CodeObject;
use std::rc::Rc;

use crate::dict::DictObj;

/// Reference to a guest object (index into the VM slab).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjRef(pub u32);

impl ObjRef {
    /// Dense index of the object.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The heap identity of the object.
    pub fn obj_id(self) -> qoa_heap::ObjId {
        qoa_heap::ObjId(self.0)
    }
}

/// Identifier of a native ("C extension") function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NativeId(pub u16);

/// A guest function object.
#[derive(Debug, Clone)]
pub struct FuncObj {
    /// The compiled body.
    pub code: Rc<CodeObject>,
    /// Default values for trailing parameters.
    pub defaults: Vec<ObjRef>,
}

/// A guest class object.
#[derive(Debug, Clone)]
pub struct ClassObj {
    /// Class name.
    pub name: Rc<str>,
    /// Namespace dict object (methods and class attributes).
    pub dict: ObjRef,
    /// Optional base class.
    pub base: Option<ObjRef>,
}

/// Iterator state for the `for` protocol.
#[derive(Debug, Clone)]
pub enum IterState {
    /// Iterating a list or tuple by index.
    Seq {
        /// The sequence object.
        seq: ObjRef,
        /// Next index.
        index: usize,
    },
    /// Iterating an arithmetic range.
    Range {
        /// Next value.
        next: i64,
        /// Exclusive stop.
        stop: i64,
        /// Step (non-zero).
        step: i64,
    },
    /// Iterating the characters of a string.
    Str {
        /// The string object.
        s: ObjRef,
        /// Next character index.
        index: usize,
    },
    /// Iterating a snapshot of a dict's keys.
    Keys {
        /// Snapshotted keys.
        keys: Rc<[ObjRef]>,
        /// Next index.
        index: usize,
    },
}

/// The kind and payload of a guest object.
#[derive(Debug, Clone)]
pub enum ObjKind {
    /// `None`.
    None,
    /// Boolean.
    Bool(bool),
    /// Machine integer (the guest's `int`; overflow is checked).
    Int(i64),
    /// Double-precision float.
    Float(f64),
    /// Immutable string.
    Str(Rc<str>),
    /// Mutable list.
    List(Vec<ObjRef>),
    /// Immutable tuple.
    Tuple(Rc<[ObjRef]>),
    /// Hash map.
    Dict(DictObj),
    /// `range(start, stop, step)` object.
    Range {
        /// Inclusive start.
        start: i64,
        /// Exclusive stop.
        stop: i64,
        /// Non-zero step.
        step: i64,
    },
    /// Slice object built by `BUILD_SLICE`.
    Slice {
        /// Lower bound (`None` object when open).
        lo: ObjRef,
        /// Upper bound (`None` object when open).
        hi: ObjRef,
    },
    /// Guest function.
    Func(FuncObj),
    /// Native library function.
    Native(NativeId),
    /// Method bound to a receiver.
    BoundMethod {
        /// The underlying function (guest or native).
        func: ObjRef,
        /// The receiver (`self`).
        recv: ObjRef,
    },
    /// Class object.
    Class(ClassObj),
    /// Class instance: its attribute dict.
    Instance {
        /// The instance's class.
        class: ObjRef,
        /// Attribute dict object.
        dict: ObjRef,
    },
    /// Iterator.
    Iter(IterState),
    /// Hidden backing buffer for a list/dict (cache-visible capacity).
    Buffer {
        /// Capacity in bytes.
        bytes: u64,
    },
    /// A code object constant (operand of `MAKE_FUNCTION`).
    Code(Rc<CodeObject>),
}

impl ObjKind {
    /// The guest-visible type name (used in error messages and guards).
    pub fn type_name(&self) -> &'static str {
        match self {
            ObjKind::None => "NoneType",
            ObjKind::Bool(_) => "bool",
            ObjKind::Int(_) => "int",
            ObjKind::Float(_) => "float",
            ObjKind::Str(_) => "str",
            ObjKind::List(_) => "list",
            ObjKind::Tuple(_) => "tuple",
            ObjKind::Dict(_) => "dict",
            ObjKind::Range { .. } => "range",
            ObjKind::Slice { .. } => "slice",
            ObjKind::Func(_) => "function",
            ObjKind::Native(_) => "builtin_function",
            ObjKind::BoundMethod { .. } => "bound_method",
            ObjKind::Class(_) => "type",
            ObjKind::Instance { .. } => "instance",
            ObjKind::Iter(_) => "iterator",
            ObjKind::Buffer { .. } => "buffer",
            ObjKind::Code(_) => "code",
        }
    }

    /// Nominal heap size of an object of this kind (header + inline
    /// payload), used for simulated allocation. Variable-size payloads
    /// (list/dict storage, string bytes) live in separate buffers.
    pub fn heap_size(&self) -> u64 {
        match self {
            ObjKind::None | ObjKind::Bool(_) => 16,
            ObjKind::Int(_) => 24,
            ObjKind::Float(_) => 24,
            ObjKind::Str(s) => 48 + s.len() as u64,
            ObjKind::List(_) => 56,
            ObjKind::Tuple(items) => 40 + 8 * items.len() as u64,
            ObjKind::Dict(_) => 64,
            ObjKind::Range { .. } => 48,
            ObjKind::Slice { .. } => 40,
            ObjKind::Func(f) => 96 + 8 * f.defaults.len() as u64,
            ObjKind::Native(_) => 56,
            ObjKind::BoundMethod { .. } => 40,
            ObjKind::Class(_) => 112,
            ObjKind::Instance { .. } => 40,
            ObjKind::Iter(_) => 48,
            ObjKind::Buffer { bytes } => *bytes,
            ObjKind::Code(_) => 128,
        }
    }

    /// Guest truthiness.
    pub fn is_truthy(&self) -> bool {
        match self {
            ObjKind::None => false,
            ObjKind::Bool(b) => *b,
            ObjKind::Int(v) => *v != 0,
            ObjKind::Float(v) => *v != 0.0,
            ObjKind::Str(s) => !s.is_empty(),
            ObjKind::List(v) => !v.is_empty(),
            ObjKind::Tuple(v) => !v.is_empty(),
            ObjKind::Dict(d) => !d.is_empty(),
            ObjKind::Range { start, stop, step } => {
                if *step > 0 {
                    start < stop
                } else {
                    start > stop
                }
            }
            _ => true,
        }
    }
}

/// A slab entry: the object plus run-time bookkeeping.
#[derive(Debug, Clone)]
pub struct Obj {
    /// Payload.
    pub kind: ObjKind,
    /// CPython-mode reference count (unused under the generational GC).
    pub refcount: u32,
    /// Immortal objects (singletons, interned ints/strings) are never
    /// collected and live at static addresses.
    pub immortal: bool,
    /// Static address for immortal objects.
    pub static_addr: u64,
    /// Under the tracing JIT, numeric temporaries can be *virtual*: not yet
    /// allocated in the simulated heap (the trace keeps them in registers).
    pub virtual_unboxed: bool,
    /// Hidden companion buffer (list/dict storage), if any.
    pub buffer: Option<ObjRef>,
}

impl Obj {
    /// Creates a plain (mortal, non-virtual) object.
    pub fn new(kind: ObjKind) -> Self {
        Obj {
            kind,
            refcount: 1,
            immortal: false,
            static_addr: 0,
            virtual_unboxed: false,
            buffer: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness_matches_python() {
        assert!(!ObjKind::None.is_truthy());
        assert!(!ObjKind::Bool(false).is_truthy());
        assert!(ObjKind::Bool(true).is_truthy());
        assert!(!ObjKind::Int(0).is_truthy());
        assert!(ObjKind::Int(-1).is_truthy());
        assert!(!ObjKind::Str(Rc::from("")).is_truthy());
        assert!(ObjKind::Str(Rc::from("x")).is_truthy());
        assert!(!ObjKind::List(vec![]).is_truthy());
        assert!(ObjKind::Range { start: 0, stop: 5, step: 1 }.is_truthy());
        assert!(!ObjKind::Range { start: 5, stop: 5, step: 1 }.is_truthy());
    }

    #[test]
    fn heap_sizes_scale_with_payload() {
        assert!(ObjKind::Str(Rc::from("0123456789")).heap_size() > ObjKind::Str(Rc::from("")).heap_size());
        let small = ObjKind::Tuple(Rc::from(vec![].into_boxed_slice()));
        let big = ObjKind::Tuple(Rc::from(vec![ObjRef(0); 8].into_boxed_slice()));
        assert!(big.heap_size() > small.heap_size());
    }

    #[test]
    fn type_names_are_stable() {
        assert_eq!(ObjKind::Int(1).type_name(), "int");
        assert_eq!(ObjKind::Dict(DictObj::new()).type_name(), "dict");
    }
}
