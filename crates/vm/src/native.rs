//! The native ("C extension") library.
//!
//! CPython programs spend an average of 7.0% of their time inside C
//! library code — and the pickle/regex benchmark group more than 64%
//! (§IV-C.1). This module models that library: every call crosses the
//! modeled C calling convention (so the paper's headline *C function call*
//! overhead exists inside library-heavy programs too), bodies run in
//! [`Phase::NativeLib`] with their work tagged [`Category::CLibrary`], and
//! data traffic touches the real simulated addresses of the guest objects.
//!
//! The heavyweight modules (JSON, pickle, the backtracking regex engine,
//! checksums, compression) live in [`crate::native_lib`].

use crate::dict::Key;
use crate::object::{IterState, NativeId, ObjKind, ObjRef};
use crate::vm::{CostMode, Vm, VmError};
use qoa_model::{mem, Category, OpSink, Phase};
use std::collections::HashMap;
use std::rc::Rc;

/// Every native function the run-time exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
#[allow(missing_docs)]
pub enum NativeFn {
    // Builtins
    Print = 0,
    Len,
    Range,
    Abs,
    Min,
    Max,
    Sum,
    Ord,
    Chr,
    IntCast,
    FloatCast,
    StrCast,
    // Math module
    Sqrt,
    Sin,
    Cos,
    Exp,
    Log,
    Floor,
    // Deterministic PRNG module
    RandSeed,
    Rand,
    RandInt,
    // Heavy library modules (bodies in `native_lib`)
    JsonDumps,
    JsonLoads,
    PickleDumps,
    PickleLoads,
    ReSearch,
    ReMatch,
    ReFindall,
    Crc32,
    Md5,
    Compress,
    // list methods
    ListAppend,
    ListPop,
    ListSort,
    ListReverse,
    ListExtend,
    ListInsert,
    ListIndex,
    ListCount,
    ListRemove,
    // dict methods
    DictGet,
    DictKeys,
    DictValues,
    DictItems,
    DictUpdate,
    DictPop,
    // str methods
    StrUpper,
    StrLower,
    StrSplit,
    StrJoin,
    StrStrip,
    StrReplace,
    StrFind,
    StrStartswith,
    StrEndswith,
}

impl NativeFn {
    /// Whether this function lives in an *extension module* (pickle, re,
    /// json, zlib, hashing, libm, random) as opposed to a core built-in
    /// type method compiled into the interpreter binary. The paper's "C
    /// library time" (7.0% average, >64% for the pickle/regex group)
    /// counts only the former; core-type method bodies are the program's
    /// own work (`Execute`).
    pub fn is_extension_module(self) -> bool {
        matches!(
            self,
            NativeFn::JsonDumps
                | NativeFn::JsonLoads
                | NativeFn::PickleDumps
                | NativeFn::PickleLoads
                | NativeFn::ReSearch
                | NativeFn::ReMatch
                | NativeFn::ReFindall
                | NativeFn::Crc32
                | NativeFn::Md5
                | NativeFn::Compress
                | NativeFn::Sqrt
                | NativeFn::Sin
                | NativeFn::Cos
                | NativeFn::Exp
                | NativeFn::Log
                | NativeFn::Floor
                | NativeFn::RandSeed
                | NativeFn::Rand
                | NativeFn::RandInt
        )
    }

    /// The id wrapper used in object payloads.
    pub fn id(self) -> NativeId {
        NativeId(self as u16)
    }

    /// Inverse of [`NativeFn::id`].
    ///
    /// # Panics
    ///
    /// Panics on an unknown id.
    pub fn from_id(id: NativeId) -> NativeFn {
        ALL_NATIVES[id.0 as usize].0
    }

    /// Base PC of this function's code in the native-library region.
    pub fn code_base(self) -> u64 {
        mem::NATIVE_CODE_BASE + (self as u16 as u64) * 0x800
    }
}

/// `(function, exposed name, method-receiver type or "" for builtins)`.
const ALL_NATIVES: &[(NativeFn, &str, &str)] = &[
    (NativeFn::Print, "print", ""),
    (NativeFn::Len, "len", ""),
    (NativeFn::Range, "range", ""),
    (NativeFn::Abs, "abs", ""),
    (NativeFn::Min, "min", ""),
    (NativeFn::Max, "max", ""),
    (NativeFn::Sum, "sum", ""),
    (NativeFn::Ord, "ord", ""),
    (NativeFn::Chr, "chr", ""),
    (NativeFn::IntCast, "int", ""),
    (NativeFn::FloatCast, "float", ""),
    (NativeFn::StrCast, "str", ""),
    (NativeFn::Sqrt, "sqrt", ""),
    (NativeFn::Sin, "sin", ""),
    (NativeFn::Cos, "cos", ""),
    (NativeFn::Exp, "exp", ""),
    (NativeFn::Log, "log", ""),
    (NativeFn::Floor, "floor", ""),
    (NativeFn::RandSeed, "rand_seed", ""),
    (NativeFn::Rand, "rand", ""),
    (NativeFn::RandInt, "randint", ""),
    (NativeFn::JsonDumps, "json_dumps", ""),
    (NativeFn::JsonLoads, "json_loads", ""),
    (NativeFn::PickleDumps, "pickle_dumps", ""),
    (NativeFn::PickleLoads, "pickle_loads", ""),
    (NativeFn::ReSearch, "re_search", ""),
    (NativeFn::ReMatch, "re_match", ""),
    (NativeFn::ReFindall, "re_findall", ""),
    (NativeFn::Crc32, "crc32", ""),
    (NativeFn::Md5, "md5", ""),
    (NativeFn::Compress, "compress", ""),
    (NativeFn::ListAppend, "append", "list"),
    (NativeFn::ListPop, "pop", "list"),
    (NativeFn::ListSort, "sort", "list"),
    (NativeFn::ListReverse, "reverse", "list"),
    (NativeFn::ListExtend, "extend", "list"),
    (NativeFn::ListInsert, "insert", "list"),
    (NativeFn::ListIndex, "index", "list"),
    (NativeFn::ListCount, "count", "list"),
    (NativeFn::ListRemove, "remove", "list"),
    (NativeFn::DictGet, "get", "dict"),
    (NativeFn::DictKeys, "keys", "dict"),
    (NativeFn::DictValues, "values", "dict"),
    (NativeFn::DictItems, "items", "dict"),
    (NativeFn::DictUpdate, "update", "dict"),
    (NativeFn::DictPop, "pop", "dict"),
    (NativeFn::StrUpper, "upper", "str"),
    (NativeFn::StrLower, "lower", "str"),
    (NativeFn::StrSplit, "split", "str"),
    (NativeFn::StrJoin, "join", "str"),
    (NativeFn::StrStrip, "strip", "str"),
    (NativeFn::StrReplace, "replace", "str"),
    (NativeFn::StrFind, "find", "str"),
    (NativeFn::StrStartswith, "startswith", "str"),
    (NativeFn::StrEndswith, "endswith", "str"),
];

/// Registry of native function objects and built-in type method tables.
#[derive(Debug, Clone, Default)]
pub struct NativeRegistry {
    methods: HashMap<(&'static str, &'static str), ObjRef>,
    /// Deterministic PRNG state for the `rand*` module.
    pub(crate) rng_state: u64,
}

impl NativeRegistry {
    /// Creates an empty registry (populated by `install_builtins`).
    pub fn new() -> Self {
        NativeRegistry { methods: HashMap::new(), rng_state: 0x9E3779B97F4A7C15 }
    }

    /// Looks up a method of a built-in type.
    pub fn method_for(&self, type_name: &str, attr: &str) -> Option<ObjRef> {
        self.methods.get(&(type_name, attr)).copied()
    }
}

impl<S: OpSink> Vm<S> {
    /// Installs the native library into the builtins namespace. Emits
    /// nothing (run-time initialization happens before measurement).
    pub(crate) fn install_builtins(&mut self) {
        let mut probes = Vec::new();
        for &(f, name, recv_type) in ALL_NATIVES {
            let obj = self.alloc_immortal(ObjKind::Native(f.id()));
            if recv_type.is_empty() {
                let name_obj = self.intern_str(name);
                let builtins = self.builtins;
                let ObjKind::Dict(d) = &mut self.obj_mut(builtins).kind else {
                    unreachable!("builtins is a dict")
                };
                d.insert(Key::Str(Rc::from(name)), name_obj, obj, &mut probes);
            } else {
                // Leak the name into a &'static str via the table constant.
                self.natives.methods.insert((recv_type, name), obj);
            }
        }
        // The builtins dict gets its backing buffer lazily-but-silently.
        let builtins = self.builtins;
        let cap = match self.kind(builtins) {
            ObjKind::Dict(d) => d.capacity() as u64,
            _ => 8,
        };
        let buf = self.alloc_immortal(ObjKind::Buffer { bytes: cap * 24 });
        self.obj_mut(builtins).buffer = Some(buf);
        // Globals buffer too.
        let globals = self.globals;
        let buf = self.alloc_immortal(ObjKind::Buffer { bytes: 8 * 24 });
        self.obj_mut(globals).buffer = Some(buf);
    }

    /// Invokes a native function: crosses the modeled C calling
    /// convention, runs the body in the native-library phase, and returns
    /// an owned result. `recv` and `args` are borrowed.
    pub(crate) fn call_native(
        &mut self,
        id: NativeId,
        recv: Option<ObjRef>,
        args: &[ObjRef],
    ) -> Result<ObjRef, VmError> {
        self.native_call_marker();
        let f = NativeFn::from_id(id);
        // Values that escape into C code must exist in the heap.
        if let Some(r) = recv {
            self.materialize(r);
        }
        for &a in args {
            self.materialize(a);
        }
        // CPython builds an argument tuple for METH_VARARGS functions; the
        // JIT calls the C function directly.
        let args_tuple = if self.cost_mode() == CostMode::Interp {
            for &a in args {
                self.incref(a);
            }
            let t = self.alloc_obj(ObjKind::Tuple(args.to_vec().into()));
            self.scratch.push(t);
            Some(t)
        } else {
            None
        };
        // The call itself: indirect through the method table.
        self.c_call(200, f.code_base(), true);
        let saved_phase = self.phase;
        let saved_cat = self.lib_cat;
        if f.is_extension_module() {
            // Extension-module code is a separate phase and the paper's
            // "C library" time.
            self.phase = Phase::NativeLib;
            self.sink.phase_change(Phase::NativeLib);
            self.lib_cat = Category::CLibrary;
        } else {
            // Core-type method bodies are the program's own work.
            self.lib_cat = Category::Execute;
        }

        let result = self.native_body(f, recv, args);

        self.phase = saved_phase;
        self.lib_cat = saved_cat;
        self.sink.phase_change(saved_phase);
        self.c_return(208);
        if let Some(t) = args_tuple {
            self.scratch.pop();
            self.decref(t);
        }
        result
    }

    /// Emits `n` units of native-body ALU work (tagged `CLibrary` for
    /// extension modules, `Execute` for core-type methods).
    pub(crate) fn lib_work(&mut self, site: u32, n: u32) {
        let cat = self.lib_cat;
        self.ealu(site + 512, cat, n);
    }

    /// Emits a native-body load.
    pub(crate) fn lib_load(&mut self, site: u32, addr: u64) {
        let cat = self.lib_cat;
        self.eload(site + 512, cat, addr);
    }

    /// Emits a native-body store.
    pub(crate) fn lib_store(&mut self, site: u32, addr: u64) {
        let cat = self.lib_cat;
        self.estore(site + 512, cat, addr);
    }

    /// Emits a native-body floating-point op.
    pub(crate) fn lib_fp(&mut self, site: u32) {
        let cat = self.lib_cat;
        self.efp(site + 512, cat);
    }

    /// An internal helper call *within* the C library (the paper: "C
    /// function call overhead exists and is still significant even in the
    /// C library code").
    pub(crate) fn lib_call(&mut self, site: u32, f: NativeFn) {
        self.c_call(site + 512, f.code_base() + 0x100, false);
    }

    /// Matching return for [`Vm::lib_call`].
    pub(crate) fn lib_ret(&mut self, site: u32) {
        self.c_return(site + 512);
    }

    fn arity_err(&self, name: &str, args: &[ObjRef]) -> VmError {
        self.err_here(format!("TypeError: {name}() got {} arguments", args.len()))
    }

    fn native_body(
        &mut self,
        f: NativeFn,
        recv: Option<ObjRef>,
        args: &[ObjRef],
    ) -> Result<ObjRef, VmError> {
        match f {
            NativeFn::Print => {
                let parts: Vec<String> =
                    args.iter().map(|&a| self.display_string(a)).collect();
                let line = parts.join(" ");
                self.lib_work(0, (line.len() as u32).min(256));
                self.output.push(line);
                let n = self.none();
                self.incref(n);
                Ok(n)
            }
            NativeFn::Len => {
                let [a] = args else { return Err(self.arity_err("len", args)) };
                self.lib_load(0, self.obj_addr(*a) + 16);
                let n = match self.kind(*a) {
                    ObjKind::List(v) => v.len() as i64,
                    ObjKind::Tuple(v) => v.len() as i64,
                    ObjKind::Str(s) => s.len() as i64,
                    ObjKind::Dict(d) => d.len() as i64,
                    ObjKind::Range { start, stop, step } => {
                        if *step > 0 {
                            ((stop - start).max(0) + step - 1) / step
                        } else {
                            ((start - stop).max(0) + (-step) - 1) / (-step)
                        }
                    }
                    other => {
                        return Err(self.err_here(format!(
                            "TypeError: object of type '{}' has no len()",
                            other.type_name()
                        )))
                    }
                };
                Ok(self.make_int(n))
            }
            NativeFn::Range => {
                let (start, stop, step) = match args {
                    [stop] => (0, self.need_int(*stop)?, 1),
                    [start, stop] => (self.need_int(*start)?, self.need_int(*stop)?, 1),
                    [start, stop, step] => {
                        let step = self.need_int(*step)?;
                        if step == 0 {
                            return Err(self.err_here("ValueError: range() step must not be zero"));
                        }
                        (self.need_int(*start)?, self.need_int(*stop)?, step)
                    }
                    _ => return Err(self.arity_err("range", args)),
                };
                self.lib_work(0, 3);
                Ok(self.alloc_obj(ObjKind::Range { start, stop, step }))
            }
            NativeFn::Abs => {
                let [a] = args else { return Err(self.arity_err("abs", args)) };
                self.lib_work(0, 1);
                match self.kind(*a).clone() {
                    ObjKind::Int(v) => Ok(self.make_int(v.abs())),
                    ObjKind::Float(v) => Ok(self.make_float(v.abs())),
                    other => Err(self.err_here(format!(
                        "TypeError: bad operand type for abs(): '{}'",
                        other.type_name()
                    ))),
                }
            }
            NativeFn::Min | NativeFn::Max => {
                let items: Vec<ObjRef> = match args {
                    [one] => match self.kind(*one) {
                        ObjKind::List(v) => v.clone(),
                        ObjKind::Tuple(v) => v.iter().copied().collect(),
                        _ => args.to_vec(),
                    },
                    _ => args.to_vec(),
                };
                if items.is_empty() {
                    return Err(self.err_here("ValueError: min()/max() of empty sequence"));
                }
                let mut best = items[0];
                for &x in &items[1..] {
                    self.lib_load(0, self.obj_addr(x) + 8);
                    self.lib_work(1, 1);
                    let take = match (self.as_float(x), self.as_float(best)) {
                        (Some(a), Some(b)) => {
                            if f == NativeFn::Min {
                                a < b
                            } else {
                                a > b
                            }
                        }
                        _ => false,
                    };
                    if take {
                        best = x;
                    }
                }
                self.incref(best);
                Ok(best)
            }
            NativeFn::Sum => {
                let [a] = args else { return Err(self.arity_err("sum", args)) };
                let items: Vec<ObjRef> = match self.kind(*a) {
                    ObjKind::List(v) => v.clone(),
                    ObjKind::Tuple(v) => v.iter().copied().collect(),
                    _ => return Err(self.err_here("TypeError: sum() needs a sequence")),
                };
                let mut int_acc: i64 = 0;
                let mut float_acc: f64 = 0.0;
                let mut is_float = false;
                for &x in &items {
                    self.lib_load(0, self.obj_addr(x) + 8);
                    self.lib_work(1, 1);
                    match self.kind(x) {
                        ObjKind::Int(v) => int_acc = int_acc.wrapping_add(*v),
                        ObjKind::Bool(b) => int_acc += *b as i64,
                        ObjKind::Float(v) => {
                            is_float = true;
                            float_acc += v;
                        }
                        other => {
                            return Err(self.err_here(format!(
                                "TypeError: unsupported sum element '{}'",
                                other.type_name()
                            )))
                        }
                    }
                }
                if is_float {
                    Ok(self.make_float(float_acc + int_acc as f64))
                } else {
                    Ok(self.make_int(int_acc))
                }
            }
            NativeFn::Ord => {
                let [a] = args else { return Err(self.arity_err("ord", args)) };
                let ObjKind::Str(s) = self.kind(*a) else {
                    return Err(self.err_here("TypeError: ord() expects a string"));
                };
                let Some(c) = s.bytes().next() else {
                    return Err(self.err_here("TypeError: ord() expects a character"));
                };
                self.lib_load(0, self.obj_addr(*a) + 48);
                Ok(self.make_int(c as i64))
            }
            NativeFn::Chr => {
                let [a] = args else { return Err(self.arity_err("chr", args)) };
                let v = self.need_int(*a)?;
                if !(0..=127).contains(&v) {
                    return Err(self.err_here("ValueError: chr() arg not in range(128)"));
                }
                self.lib_work(0, 2);
                let s: Rc<str> = Rc::from((v as u8 as char).to_string().as_str());
                Ok(self.alloc_obj(ObjKind::Str(s)))
            }
            NativeFn::IntCast => {
                let [a] = args else { return Err(self.arity_err("int", args)) };
                self.lib_work(0, 2);
                match self.kind(*a).clone() {
                    ObjKind::Int(v) => Ok(self.make_int(v)),
                    ObjKind::Bool(b) => Ok(self.make_int(b as i64)),
                    ObjKind::Float(v) => Ok(self.make_int(v.trunc() as i64)),
                    ObjKind::Str(s) => {
                        self.lib_work(1, s.len().min(32) as u32);
                        let v: i64 = s.trim().parse().map_err(|_| {
                            self.err_here(format!("ValueError: invalid int literal: '{s}'"))
                        })?;
                        Ok(self.make_int(v))
                    }
                    other => Err(self.err_here(format!(
                        "TypeError: int() can't convert '{}'",
                        other.type_name()
                    ))),
                }
            }
            NativeFn::FloatCast => {
                let [a] = args else { return Err(self.arity_err("float", args)) };
                self.lib_work(0, 2);
                match self.kind(*a).clone() {
                    ObjKind::Int(v) => Ok(self.make_float(v as f64)),
                    ObjKind::Bool(b) => Ok(self.make_float(b as i64 as f64)),
                    ObjKind::Float(v) => Ok(self.make_float(v)),
                    ObjKind::Str(s) => {
                        self.lib_work(1, s.len().min(32) as u32);
                        let v: f64 = s.trim().parse().map_err(|_| {
                            self.err_here(format!("ValueError: invalid float literal: '{s}'"))
                        })?;
                        Ok(self.make_float(v))
                    }
                    other => Err(self.err_here(format!(
                        "TypeError: float() can't convert '{}'",
                        other.type_name()
                    ))),
                }
            }
            NativeFn::StrCast => {
                let [a] = args else { return Err(self.arity_err("str", args)) };
                let s = self.display_string(*a);
                self.lib_work(0, (s.len() as u32).min(128));
                Ok(self.alloc_obj(ObjKind::Str(Rc::from(s.as_str()))))
            }
            NativeFn::Sqrt | NativeFn::Sin | NativeFn::Cos | NativeFn::Exp | NativeFn::Log
            | NativeFn::Floor => {
                let [a] = args else { return Err(self.arity_err("math", args)) };
                let Some(v) = self.as_float(*a) else {
                    return Err(self.err_here("TypeError: a float is required"));
                };
                // libm-ish cost.
                for i in 0..8 {
                    self.lib_fp(i);
                }
                let r = match f {
                    NativeFn::Sqrt => {
                        if v < 0.0 {
                            return Err(self.err_here("ValueError: math domain error"));
                        }
                        v.sqrt()
                    }
                    NativeFn::Sin => v.sin(),
                    NativeFn::Cos => v.cos(),
                    NativeFn::Exp => v.exp(),
                    NativeFn::Log => {
                        if v <= 0.0 {
                            return Err(self.err_here("ValueError: math domain error"));
                        }
                        v.ln()
                    }
                    NativeFn::Floor => v.floor(),
                    other => {
                        return Err(self.err_here(format!(
                            "internal error: {other:?} routed to unary float dispatch"
                        )))
                    }
                };
                Ok(self.make_float(r))
            }
            NativeFn::RandSeed => {
                let [a] = args else { return Err(self.arity_err("rand_seed", args)) };
                let v = self.need_int(*a)?;
                self.natives.rng_state = (v as u64) | 1;
                self.lib_work(0, 2);
                let n = self.none();
                self.incref(n);
                Ok(n)
            }
            NativeFn::Rand => {
                let x = self.next_rand();
                self.lib_work(0, 4);
                Ok(self.make_float((x >> 11) as f64 / (1u64 << 53) as f64))
            }
            NativeFn::RandInt => {
                let [lo, hi] = args else { return Err(self.arity_err("randint", args)) };
                let lo = self.need_int(*lo)?;
                let hi = self.need_int(*hi)?;
                if hi < lo {
                    return Err(self.err_here("ValueError: randint range is empty"));
                }
                let x = self.next_rand();
                self.lib_work(0, 5);
                let span = (hi - lo + 1) as u64;
                Ok(self.make_int(lo + (x % span) as i64))
            }
            // Heavy modules in native_lib.rs:
            NativeFn::JsonDumps
            | NativeFn::JsonLoads
            | NativeFn::PickleDumps
            | NativeFn::PickleLoads
            | NativeFn::ReSearch
            | NativeFn::ReMatch
            | NativeFn::ReFindall
            | NativeFn::Crc32
            | NativeFn::Md5
            | NativeFn::Compress => self.native_lib_body(f, args),
            // Methods:
            _ => self.native_method_body(f, recv, args),
        }
    }

    pub(crate) fn next_rand(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.natives.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.natives.rng_state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    pub(crate) fn need_int(&self, r: ObjRef) -> Result<i64, VmError> {
        match self.kind(r) {
            ObjKind::Int(v) => Ok(*v),
            ObjKind::Bool(b) => Ok(*b as i64),
            other => Err(self.err_here(format!(
                "TypeError: an integer is required, got '{}'",
                other.type_name()
            ))),
        }
    }

    pub(crate) fn need_str(&self, r: ObjRef) -> Result<Rc<str>, VmError> {
        match self.kind(r) {
            ObjKind::Str(s) => Ok(Rc::clone(s)),
            other => Err(self.err_here(format!(
                "TypeError: a string is required, got '{}'",
                other.type_name()
            ))),
        }
    }

    fn need_recv(&self, recv: Option<ObjRef>, what: &str) -> Result<ObjRef, VmError> {
        recv.ok_or_else(|| self.err_here(format!("TypeError: {what} method needs a receiver")))
    }

    fn native_method_body(
        &mut self,
        f: NativeFn,
        recv: Option<ObjRef>,
        args: &[ObjRef],
    ) -> Result<ObjRef, VmError> {
        match f {
            // ---- list methods ------------------------------------------------
            NativeFn::ListAppend => {
                let recv = self.need_recv(recv, "list")?;
                let [item] = args else { return Err(self.arity_err("append", args)) };
                self.materialize(*item);
                self.incref(*item);
                {
                    let ObjKind::List(v) = &mut self.obj_mut(recv).kind else {
                        return Err(self.err_here("TypeError: append on non-list"));
                    };
                    v.push(*item);
                }
                let len = match self.kind(recv) {
                    ObjKind::List(v) => v.len() as u64,
                    _ => 0,
                };
                self.maybe_grow_list(recv);
                let base = self.buffer_addr(recv);
                self.lib_store(0, base + (len - 1) * 8);
                self.lib_store(1, self.obj_addr(recv) + 16);
                self.write_barrier(recv, *item);
                let n = self.none();
                self.incref(n);
                Ok(n)
            }
            NativeFn::ListPop => {
                let recv = self.need_recv(recv, "list")?;
                let idx = match args {
                    [] => None,
                    [i] => Some(self.need_int(*i)?),
                    _ => return Err(self.arity_err("pop", args)),
                };
                let popped = {
                    let ObjKind::List(v) = &mut self.obj_mut(recv).kind else {
                        return Err(self.err_here("TypeError: pop on non-list"));
                    };
                    if v.is_empty() {
                        None
                    } else {
                        match idx {
                            None => v.pop(),
                            Some(i) => {
                                let i = if i < 0 { i + v.len() as i64 } else { i };
                                if i < 0 || i >= v.len() as i64 {
                                    None
                                } else {
                                    Some(v.remove(i as usize))
                                }
                            }
                        }
                    }
                };
                let base = self.buffer_addr(recv);
                self.lib_load(0, base);
                self.lib_store(1, self.obj_addr(recv) + 16);
                popped.ok_or_else(|| self.err_here("IndexError: pop from empty list"))
            }
            NativeFn::ListSort => {
                let recv = self.need_recv(recv, "list")?;
                self.list_sort(recv)
            }
            NativeFn::ListReverse => {
                let recv = self.need_recv(recv, "list")?;
                let len = {
                    let ObjKind::List(v) = &mut self.obj_mut(recv).kind else {
                        return Err(self.err_here("TypeError: reverse on non-list"));
                    };
                    v.reverse();
                    v.len() as u64
                };
                let base = self.buffer_addr(recv);
                for i in 0..(len / 2).min(2048) {
                    self.lib_load(0, base + i * 8);
                    self.lib_store(1, base + (len - 1 - i) * 8);
                }
                let n = self.none();
                self.incref(n);
                Ok(n)
            }
            NativeFn::ListExtend => {
                let recv = self.need_recv(recv, "list")?;
                let [other] = args else { return Err(self.arity_err("extend", args)) };
                let items: Vec<ObjRef> = match self.kind(*other) {
                    ObjKind::List(v) => v.clone(),
                    ObjKind::Tuple(v) => v.iter().copied().collect(),
                    _ => return Err(self.err_here("TypeError: extend needs a sequence")),
                };
                for &i in &items {
                    self.materialize(i);
                    self.incref(i);
                    self.write_barrier(recv, i);
                }
                let n_new = items.len() as u64;
                {
                    let ObjKind::List(v) = &mut self.obj_mut(recv).kind else {
                        return Err(self.err_here("TypeError: extend on non-list"));
                    };
                    v.extend(items);
                }
                self.maybe_grow_list(recv);
                let base = self.buffer_addr(recv);
                for i in 0..n_new.min(2048) {
                    self.lib_store(0, base + i * 8);
                }
                let n = self.none();
                self.incref(n);
                Ok(n)
            }
            NativeFn::ListInsert => {
                let recv = self.need_recv(recv, "list")?;
                let [pos, item] = args else { return Err(self.arity_err("insert", args)) };
                let pos = self.need_int(*pos)?;
                self.materialize(*item);
                self.incref(*item);
                let shifted = {
                    let ObjKind::List(v) = &mut self.obj_mut(recv).kind else {
                        return Err(self.err_here("TypeError: insert on non-list"));
                    };
                    let i = pos.clamp(0, v.len() as i64) as usize;
                    v.insert(i, *item);
                    v.len() - i
                };
                self.maybe_grow_list(recv);
                let base = self.buffer_addr(recv);
                for i in 0..(shifted as u64).min(2048) {
                    self.lib_load(0, base + i * 8);
                    self.lib_store(1, base + i * 8 + 8);
                }
                self.write_barrier(recv, *item);
                let n = self.none();
                self.incref(n);
                Ok(n)
            }
            NativeFn::ListIndex => {
                let recv = self.need_recv(recv, "list")?;
                let [item] = args else { return Err(self.arity_err("index", args)) };
                let items = match self.kind(recv) {
                    ObjKind::List(v) => v.clone(),
                    _ => return Err(self.err_here("TypeError: index on non-list")),
                };
                let base = self.buffer_addr(recv);
                for (i, &e) in items.iter().enumerate() {
                    self.lib_load(0, base + (i as u64) * 8);
                    self.lib_work(1, 1);
                    if self.value_eq(e, *item) {
                        return Ok(self.make_int(i as i64));
                    }
                }
                Err(self.err_here("ValueError: value not in list"))
            }
            NativeFn::ListCount => {
                let recv = self.need_recv(recv, "list")?;
                let [item] = args else { return Err(self.arity_err("count", args)) };
                let items = match self.kind(recv) {
                    ObjKind::List(v) => v.clone(),
                    _ => return Err(self.err_here("TypeError: count on non-list")),
                };
                let base = self.buffer_addr(recv);
                let mut n = 0;
                for (i, &e) in items.iter().enumerate() {
                    self.lib_load(0, base + (i as u64) * 8);
                    self.lib_work(1, 1);
                    if self.value_eq(e, *item) {
                        n += 1;
                    }
                }
                Ok(self.make_int(n))
            }
            NativeFn::ListRemove => {
                let recv = self.need_recv(recv, "list")?;
                let [item] = args else { return Err(self.arity_err("remove", args)) };
                let items = match self.kind(recv) {
                    ObjKind::List(v) => v.clone(),
                    _ => return Err(self.err_here("TypeError: remove on non-list")),
                };
                let pos = items.iter().position(|&e| self.value_eq(e, *item));
                let Some(pos) = pos else {
                    return Err(self.err_here("ValueError: list.remove(x): x not in list"));
                };
                let removed = {
                    let ObjKind::List(v) = &mut self.obj_mut(recv).kind else {
                        return Err(self.err_here("internal error: list changed kind"));
                    };
                    v.remove(pos)
                };
                let base = self.buffer_addr(recv);
                for i in pos as u64..(items.len() as u64 - 1).min(pos as u64 + 2048) {
                    self.lib_load(0, base + (i + 1) * 8);
                    self.lib_store(1, base + i * 8);
                }
                self.decref(removed);
                let n = self.none();
                self.incref(n);
                Ok(n)
            }
            // ---- dict methods ------------------------------------------------------
            NativeFn::DictGet => {
                let recv = self.need_recv(recv, "dict")?;
                let (key_obj, default) = match args {
                    [k] => (*k, None),
                    [k, d] => (*k, Some(*d)),
                    _ => return Err(self.arity_err("get", args)),
                };
                let key = self
                    .key_of(key_obj)
                    .map_err(|m| self.err_here(format!("TypeError: {m}")))?;
                let cat = self.lib_cat;
                match self.dict_lookup(recv, &key, cat) {
                    Some(v) => {
                        self.incref(v);
                        Ok(v)
                    }
                    None => {
                        let d = default.unwrap_or(self.none());
                        self.incref(d);
                        Ok(d)
                    }
                }
            }
            NativeFn::DictKeys | NativeFn::DictValues => {
                let recv = self.need_recv(recv, "dict")?;
                let items: Vec<ObjRef> = match self.kind(recv) {
                    ObjKind::Dict(d) => {
                        if f == NativeFn::DictKeys {
                            d.key_objs()
                        } else {
                            d.values()
                        }
                    }
                    _ => return Err(self.err_here("TypeError: keys()/values() on non-dict")),
                };
                let base = self.buffer_addr(recv);
                for (i, &v) in items.iter().enumerate() {
                    self.lib_load(0, base + (i as u64) * 24);
                    self.incref(v);
                }
                let n = items.len();
                let list = self.alloc_obj(ObjKind::List(items));
                self.attach_list_buffer(list, n);
                Ok(list)
            }
            NativeFn::DictItems => {
                let recv = self.need_recv(recv, "dict")?;
                let pairs: Vec<(ObjRef, ObjRef)> = match self.kind(recv) {
                    ObjKind::Dict(d) => d.iter().collect(),
                    _ => return Err(self.err_here("TypeError: items() on non-dict")),
                };
                let base = self.buffer_addr(recv);
                let mut tuples = Vec::with_capacity(pairs.len());
                for (i, (k, v)) in pairs.iter().enumerate() {
                    self.lib_load(0, base + (i as u64) * 24);
                    self.incref(*k);
                    self.incref(*v);
                    self.scratch.push(*k);
                    self.scratch.push(*v);
                    let t = self.alloc_obj(ObjKind::Tuple(vec![*k, *v].into()));
                    self.scratch.truncate(self.scratch.len() - 2);
                    self.scratch.push(t);
                    tuples.push(t);
                }
                let n = tuples.len();
                let list = self.alloc_obj(ObjKind::List(tuples));
                self.scratch.truncate(self.scratch.len() - n);
                self.attach_list_buffer(list, n);
                Ok(list)
            }
            NativeFn::DictUpdate => {
                let recv = self.need_recv(recv, "dict")?;
                let [other] = args else { return Err(self.arity_err("update", args)) };
                let pairs: Vec<(ObjRef, ObjRef)> = match self.kind(*other) {
                    ObjKind::Dict(d) => d.iter().collect(),
                    _ => return Err(self.err_here("TypeError: update needs a dict")),
                };
                for (k, v) in pairs {
                    let key = self
                        .key_of(k)
                        .map_err(|m| self.err_here(format!("TypeError: {m}")))?;
                    self.incref(v);
                    let cat = self.lib_cat;
                    self.dict_insert(recv, key, k, v, cat)?;
                }
                let n = self.none();
                self.incref(n);
                Ok(n)
            }
            NativeFn::DictPop => {
                let recv = self.need_recv(recv, "dict")?;
                let [k] = args else { return Err(self.arity_err("pop", args)) };
                let key = self
                    .key_of(*k)
                    .map_err(|m| self.err_here(format!("TypeError: {m}")))?;
                let cat = self.lib_cat;
                match self.dict_remove(recv, &key, cat) {
                    Some(v) => Ok(v),
                    None => Err(self.err_here("KeyError: pop")),
                }
            }
            // ---- str methods ---------------------------------------------------------
            NativeFn::StrUpper | NativeFn::StrLower => {
                let recv = self.need_recv(recv, "str")?;
                let s = self.need_str(recv)?;
                let base = self.obj_addr(recv) + 48;
                for i in 0..(s.len() as u64 / 8 + 1).min(512) {
                    self.lib_load(0, base + i * 8);
                }
                let out = if f == NativeFn::StrUpper {
                    s.to_uppercase()
                } else {
                    s.to_lowercase()
                };
                Ok(self.alloc_obj(ObjKind::Str(Rc::from(out.as_str()))))
            }
            NativeFn::StrSplit => {
                let recv = self.need_recv(recv, "str")?;
                let s = self.need_str(recv)?;
                let parts: Vec<String> = match args {
                    [] => s.split_whitespace().map(str::to_owned).collect(),
                    [sep] => {
                        let sep = self.need_str(*sep)?;
                        s.split(sep.as_ref()).map(str::to_owned).collect()
                    }
                    _ => return Err(self.arity_err("split", args)),
                };
                let base = self.obj_addr(recv) + 48;
                for i in 0..(s.len() as u64 / 8 + 1).min(512) {
                    self.lib_load(0, base + i * 8);
                }
                let mark = self.scratch.len();
                for p in &parts {
                    let o = self.alloc_obj(ObjKind::Str(Rc::from(p.as_str())));
                    self.scratch.push(o);
                }
                let items: Vec<ObjRef> = self.scratch[mark..].to_vec();
                let n = items.len();
                let list = self.alloc_obj(ObjKind::List(items));
                self.scratch.truncate(mark);
                self.attach_list_buffer(list, n);
                Ok(list)
            }
            NativeFn::StrJoin => {
                let recv = self.need_recv(recv, "str")?;
                let sep = self.need_str(recv)?;
                let [seq] = args else { return Err(self.arity_err("join", args)) };
                let items: Vec<ObjRef> = match self.kind(*seq) {
                    ObjKind::List(v) => v.clone(),
                    ObjKind::Tuple(v) => v.iter().copied().collect(),
                    _ => return Err(self.err_here("TypeError: join needs a sequence")),
                };
                let mut out = String::new();
                for (i, &item) in items.iter().enumerate() {
                    let part = match self.kind(item) {
                        ObjKind::Str(p) => Rc::clone(p),
                        _ => return Err(self.err_here("TypeError: join needs strings")),
                    };
                    if i > 0 {
                        out.push_str(&sep);
                    }
                    out.push_str(&part);
                    self.lib_load(0, self.obj_addr(item) + 48);
                    self.lib_work(1, (part.len() as u32 / 8 + 1).min(64));
                }
                let r = self.alloc_obj(ObjKind::Str(Rc::from(out.as_str())));
                let ra = self.obj_addr(r) + 48;
                for i in 0..(out.len() as u64 / 8).min(512) {
                    self.lib_store(2, ra + i * 8);
                }
                Ok(r)
            }
            NativeFn::StrStrip => {
                let recv = self.need_recv(recv, "str")?;
                let s = self.need_str(recv)?;
                self.lib_work(0, (s.len() as u32 / 4 + 2).min(64));
                Ok(self.alloc_obj(ObjKind::Str(Rc::from(s.trim()))))
            }
            NativeFn::StrReplace => {
                let recv = self.need_recv(recv, "str")?;
                let s = self.need_str(recv)?;
                let [from, to] = args else { return Err(self.arity_err("replace", args)) };
                let from = self.need_str(*from)?;
                let to = self.need_str(*to)?;
                let base = self.obj_addr(recv) + 48;
                for i in 0..(s.len() as u64 / 8 + 1).min(512) {
                    self.lib_load(0, base + i * 8);
                    self.lib_work(1, 1);
                }
                let out = s.replace(from.as_ref(), to.as_ref());
                Ok(self.alloc_obj(ObjKind::Str(Rc::from(out.as_str()))))
            }
            NativeFn::StrFind => {
                let recv = self.need_recv(recv, "str")?;
                let s = self.need_str(recv)?;
                let [needle] = args else { return Err(self.arity_err("find", args)) };
                let needle = self.need_str(*needle)?;
                let base = self.obj_addr(recv) + 48;
                for i in 0..(s.len() as u64 / 8 + 1).min(512) {
                    self.lib_load(0, base + i * 8);
                }
                let pos = s.find(needle.as_ref()).map(|p| p as i64).unwrap_or(-1);
                Ok(self.make_int(pos))
            }
            NativeFn::StrStartswith | NativeFn::StrEndswith => {
                let recv = self.need_recv(recv, "str")?;
                let s = self.need_str(recv)?;
                let [p] = args else { return Err(self.arity_err("startswith", args)) };
                let p = self.need_str(*p)?;
                self.lib_work(0, (p.len() as u32 / 4 + 1).min(32));
                self.lib_load(1, self.obj_addr(recv) + 48);
                let r = if f == NativeFn::StrStartswith {
                    s.starts_with(p.as_ref())
                } else {
                    s.ends_with(p.as_ref())
                };
                let b = self.bool_ref(r);
                self.incref(b);
                Ok(b)
            }
            other => Err(self.err_here(format!("internal: unrouted native {other:?}"))),
        }
    }

    /// In-place merge sort with per-comparison emission.
    fn list_sort(&mut self, recv: ObjRef) -> Result<ObjRef, VmError> {
        let mut items = match self.kind(recv) {
            ObjKind::List(v) => v.clone(),
            _ => return Err(self.err_here("TypeError: sort on non-list")),
        };
        let base = self.buffer_addr(recv);
        // Merge sort so the comparison and movement costs are explicit.
        let mut width = 1;
        let n = items.len();
        let mut buf = items.clone();
        while width < n {
            let mut lo = 0;
            while lo < n {
                let mid = (lo + width).min(n);
                let hi = (lo + 2 * width).min(n);
                let (mut i, mut j, mut k) = (lo, mid, lo);
                while i < mid && j < hi {
                    self.lib_load(0, base + (i as u64 % 4096) * 8);
                    self.lib_load(1, base + (j as u64 % 4096) * 8);
                    self.lib_work(2, 1);
                    let le = self.sort_le(items[i], items[j]);
                    if le {
                        buf[k] = items[i];
                        i += 1;
                    } else {
                        buf[k] = items[j];
                        j += 1;
                    }
                    k += 1;
                }
                while i < mid {
                    buf[k] = items[i];
                    i += 1;
                    k += 1;
                }
                while j < hi {
                    buf[k] = items[j];
                    j += 1;
                    k += 1;
                }
                for x in lo..hi {
                    self.lib_store(3, base + (x as u64 % 4096) * 8);
                }
                lo = hi;
            }
            std::mem::swap(&mut items, &mut buf);
            width *= 2;
        }
        {
            let ObjKind::List(v) = &mut self.obj_mut(recv).kind else {
                return Err(self.err_here("internal error: list changed kind"));
            };
            *v = items;
        }
        let none = self.none();
        self.incref(none);
        Ok(none)
    }

    fn sort_le(&self, a: ObjRef, b: ObjRef) -> bool {
        match (self.kind(a), self.kind(b)) {
            (ObjKind::Str(x), ObjKind::Str(y)) => x <= y,
            (ObjKind::Tuple(x), ObjKind::Tuple(y)) => {
                for (&p, &q) in x.iter().zip(y.iter()) {
                    if self.value_eq(p, q) {
                        continue;
                    }
                    return self.sort_le(p, q);
                }
                x.len() <= y.len()
            }
            _ => match (self.as_float_quiet(a), self.as_float_quiet(b)) {
                (Some(x), Some(y)) => x <= y,
                _ => true,
            },
        }
    }

    fn as_float_quiet(&self, r: ObjRef) -> Option<f64> {
        match self.kind(r) {
            ObjKind::Float(v) => Some(*v),
            ObjKind::Int(v) => Some(*v as f64),
            ObjKind::Bool(b) => Some(*b as i64 as f64),
            _ => None,
        }
    }

    /// Dict-key iteration order snapshot, exposed for `native_lib`.
    pub(crate) fn dict_pairs(&self, dict: ObjRef) -> Vec<(ObjRef, ObjRef)> {
        match self.kind(dict) {
            ObjKind::Dict(d) => d.iter().collect(),
            _ => Vec::new(),
        }
    }

    /// Builds a fresh iterator object over a snapshot (test helper).
    #[doc(hidden)]
    pub fn debug_make_keys_iter(&mut self, keys: Vec<ObjRef>) -> ObjRef {
        self.alloc_obj(ObjKind::Iter(IterState::Keys { keys: keys.into(), index: 0 }))
    }
}
