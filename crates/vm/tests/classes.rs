//! Deeper object-model semantics: inheritance chains, attribute
//! shadowing, bound methods, and the class/instance namespace split.

use qoa_heap::GcConfig;
use qoa_model::CountingSink;
use qoa_vm::{HeapMode, Vm, VmConfig};

fn run(src: &str) -> Vm<CountingSink> {
    qoa_vm::run_source(
        src,
        VmConfig { heap: HeapMode::Rc, max_steps: 20_000_000, ..VmConfig::default() },
        CountingSink::new(),
    )
    .unwrap_or_else(|e| panic!("{e}\n{src}"))
}

fn run_gen(src: &str) -> Vm<CountingSink> {
    qoa_vm::run_source(
        src,
        VmConfig {
            heap: HeapMode::Gen(GcConfig::with_nursery(32 << 10)),
            max_steps: 20_000_000,
            ..VmConfig::default()
        },
        CountingSink::new(),
    )
    .unwrap_or_else(|e| panic!("{e}\n{src}"))
}

#[test]
fn three_level_inheritance_resolves_bottom_up() {
    let src = "
class A:
    def who(self):
        return 1
    def shared(self):
        return 10

class B(A):
    def who(self):
        return 2

class C(B):
    def extra(self):
        return 100

c = C()
r = c.who() * 1000 + c.shared() * 10 + c.extra()
";
    let mut vm = run(src);
    assert_eq!(vm.global_int("r"), Some(2000 + 100 + 100));
}

#[test]
fn instance_attributes_shadow_class_attributes() {
    let src = "
class Config:
    def __init__(self):
        self.limit = 5

class Wide(Config):
    def __init__(self):
        self.limit = 50

a = Config()
b = Wide()
b.limit = 99
r = a.limit * 1000 + b.limit
";
    let mut vm = run(src);
    assert_eq!(vm.global_int("r"), Some(5099));
}

#[test]
fn class_level_values_are_shared_until_shadowed() {
    let src = "
class Counter:
    step = 3
    def __init__(self):
        self.n = 0

c1 = Counter()
c2 = Counter()
a = c1.step + c2.step
c1.step = 10
b = c1.step * 100 + c2.step
r = a * 10000 + b
";
    let mut vm = run(src);
    assert_eq!(vm.global_int("r"), Some(6 * 10000 + 1003));
}

#[test]
fn bound_methods_capture_their_receiver() {
    let src = "
class Box:
    def __init__(self, v):
        self.v = v
    def get(self):
        return self.v

a = Box(7)
b = Box(11)
m = a.get
r = m() * 100 + b.get()
";
    let mut vm = run(src);
    assert_eq!(vm.global_int("r"), Some(711));
}

#[test]
fn methods_calling_methods_through_self() {
    let src = "
class Calc:
    def __init__(self, base):
        self.base = base
    def double(self):
        return self.base * 2
    def quad(self):
        return self.double() + self.double()

r = Calc(6).quad()
";
    let mut vm = run(src);
    assert_eq!(vm.global_int("r"), Some(24));
}

#[test]
fn init_with_defaults() {
    let src = "
class P:
    def __init__(self, x, y=7):
        self.x = x
        self.y = y

a = P(1)
b = P(1, 2)
r = a.y * 10 + b.y
";
    let mut vm = run(src);
    assert_eq!(vm.global_int("r"), Some(72));
}

#[test]
fn instances_as_dict_values_and_graph_cycles_under_gc() {
    // A cyclic object graph (parent <-> child) must survive minor GCs and
    // be fully collectable afterwards without corrupting other state.
    let src = "
class Node:
    def __init__(self, name):
        self.name = name
        self.peer = None

keep = {}
for i in range(2000):
    a = Node(i)
    b = Node(i + 100000)
    a.peer = b
    b.peer = a
    if i % 500 == 0:
        keep[i] = a
total = 0
for k in keep:
    total = total + keep[k].peer.peer.name
r = total
";
    let mut vm = run_gen(src);
    assert_eq!(vm.global_int("r"), Some(500 + 1000 + 1500));
    assert!(vm.stats().gc.minor_collections > 0);
}

#[test]
fn method_resolution_cost_is_name_resolution() {
    // Attribute lookups must be attributed to NameResolution, not Execute.
    use qoa_model::Category;
    let src = "
class T:
    def __init__(self):
        self.a = 1
t = T()
s = 0
for i in range(3000):
    s = s + t.a
r = s
";
    let vm = run(src);
    let (sink, _) = vm.finish();
    assert!(
        sink.by_category[Category::NameResolution] > 3000,
        "attr reads under-attributed: {}",
        sink.by_category[Category::NameResolution]
    );
}

#[test]
fn errors_in_methods_propagate_with_type_names() {
    let err = qoa_vm::run_source(
        "class A:\n    pass\na = A()\nx = a.missing\n",
        VmConfig::default(),
        CountingSink::new(),
    )
    .err()
    .expect("missing attribute must fail");
    assert!(err.to_string().contains("AttributeError"), "{err}");

    let err = qoa_vm::run_source(
        "class A:\n    def f(self):\n        return 1\nx = A(5)\n",
        VmConfig::default(),
        CountingSink::new(),
    )
    .err()
    .expect("argument mismatch must fail");
    assert!(err.to_string().contains("TypeError"), "{err}");
}
