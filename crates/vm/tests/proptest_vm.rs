//! Property-based differential tests: randomly generated guest programs
//! must compute the same values as a Rust-side model, identically under
//! both memory managers.

use proptest::prelude::*;
use qoa_heap::GcConfig;
use qoa_model::CountingSink;
use qoa_vm::{HeapMode, VmConfig};

/// A random arithmetic expression over two variables, with its Rust model.
#[derive(Debug, Clone)]
enum Expr {
    A,
    B,
    Lit(i64),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    FloorDiv(Box<Expr>, Box<Expr>),
    Mod(Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

impl Expr {
    fn render(&self) -> String {
        match self {
            Expr::A => "a".into(),
            Expr::B => "b".into(),
            Expr::Lit(v) => format!("({v})"),
            Expr::Add(l, r) => format!("({} + {})", l.render(), r.render()),
            Expr::Sub(l, r) => format!("({} - {})", l.render(), r.render()),
            Expr::Mul(l, r) => format!("({} * {})", l.render(), r.render()),
            Expr::FloorDiv(l, r) => format!("({} // {})", l.render(), r.render()),
            Expr::Mod(l, r) => format!("({} % {})", l.render(), r.render()),
            Expr::And(l, r) => format!("({} & {})", l.render(), r.render()),
            Expr::Xor(l, r) => format!("({} ^ {})", l.render(), r.render()),
        }
    }

    /// Mirrors the guest's semantics (floor division, euclid-ish mod,
    /// checked everything). `None` means the guest should error or the
    /// value is out of the safe window.
    fn eval(&self, a: i64, b: i64) -> Option<i64> {
        let clamp = |v: i64| {
            if v.abs() > 1 << 40 {
                None
            } else {
                Some(v)
            }
        };
        match self {
            Expr::A => Some(a),
            Expr::B => Some(b),
            Expr::Lit(v) => Some(*v),
            Expr::Add(l, r) => clamp(l.eval(a, b)?.checked_add(r.eval(a, b)?)?),
            Expr::Sub(l, r) => clamp(l.eval(a, b)?.checked_sub(r.eval(a, b)?)?),
            Expr::Mul(l, r) => clamp(l.eval(a, b)?.checked_mul(r.eval(a, b)?)?),
            Expr::FloorDiv(l, r) => {
                let d = r.eval(a, b)?;
                if d == 0 {
                    None
                } else {
                    Some(l.eval(a, b)?.div_euclid(d))
                }
            }
            Expr::Mod(l, r) => {
                let d = r.eval(a, b)?;
                if d == 0 {
                    None
                } else {
                    Some(l.eval(a, b)?.rem_euclid(d))
                }
            }
            Expr::And(l, r) => Some(l.eval(a, b)? & r.eval(a, b)?),
            Expr::Xor(l, r) => Some(l.eval(a, b)? ^ r.eval(a, b)?),
        }
    }
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(Expr::A),
        Just(Expr::B),
        (-1000i64..1000).prop_map(Expr::Lit),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| Expr::Add(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| Expr::Sub(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| Expr::Mul(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| Expr::FloorDiv(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| Expr::Mod(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| Expr::And(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| Expr::Xor(Box::new(l), Box::new(r))),
        ]
    })
}

fn run_guest(src: &str, heap: HeapMode) -> Result<Option<i64>, String> {
    let cfg = VmConfig { heap, max_steps: 2_000_000, ..VmConfig::default() };
    let mut vm = qoa_vm::run_source(src, cfg, CountingSink::new())?;
    Ok(vm.global_int("r"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random integer expressions agree with the Rust model under both
    /// memory managers (or error exactly when the model says so).
    #[test]
    fn arithmetic_matches_model(e in expr_strategy(), a in -999i64..999, b in -999i64..999) {
        let src = format!("a = {a}\nb = {b}\nr = {}\n", e.render());
        let expect = e.eval(a, b);
        for heap in [HeapMode::Rc, HeapMode::Gen(GcConfig::with_nursery(32 << 10))] {
            match (expect, run_guest(&src, heap)) {
                (Some(v), Ok(Some(got))) => prop_assert_eq!(got, v, "{}", src),
                (Some(v), other) => {
                    // Intermediate overflow past the model's clamp window
                    // may legally error in the guest.
                    if v.abs() <= 1 << 40 {
                        prop_assert!(
                            other.is_err(),
                            "expected {v}, got {other:?} for {src}"
                        );
                    }
                }
                (None, Err(_)) => {}
                (None, Ok(got)) => {
                    // The model's clamp is conservative; a successful guest
                    // run is fine as long as both heaps agree (checked by
                    // the loop running both).
                    let _ = got;
                }
            }
        }
    }

    /// A random sequence of list operations matches a Vec model.
    #[test]
    fn list_operations_match_vec_model(
        ops in proptest::collection::vec((0u8..4, 0i64..100), 1..60),
    ) {
        let mut program = String::from("xs = []\n");
        let mut model: Vec<i64> = Vec::new();
        for (op, v) in ops {
            match op {
                0 => {
                    program.push_str(&format!("xs.append({v})\n"));
                    model.push(v);
                }
                1 if !model.is_empty() => {
                    program.push_str("xs.pop()\n");
                    model.pop();
                }
                2 if !model.is_empty() => {
                    let idx = (v as usize) % model.len();
                    program.push_str(&format!("xs[{idx}] = {v}\n"));
                    model[idx] = v;
                }
                _ => {
                    program.push_str(&format!("xs.insert(0, {v})\n"));
                    model.insert(0, v);
                }
            }
        }
        program.push_str("r = len(xs)\ns = sum(xs)\n");
        let cfg = VmConfig { heap: HeapMode::Rc, max_steps: 5_000_000, ..VmConfig::default() };
        let mut vm = qoa_vm::run_source(&program, cfg, CountingSink::new())
            .map_err(|e| TestCaseError::fail(format!("{e}\n{program}")))?;
        prop_assert_eq!(vm.global_int("r"), Some(model.len() as i64));
        prop_assert_eq!(vm.global_int("s"), Some(model.iter().sum::<i64>()));
    }

    /// Random dict insert/delete sequences match a HashMap model.
    #[test]
    fn dict_operations_match_map_model(
        ops in proptest::collection::vec((any::<bool>(), 0u8..30, 0i64..1000), 1..60),
    ) {
        let mut program = String::from("d = {}\n");
        let mut model: std::collections::HashMap<u8, i64> = Default::default();
        for (insert, k, v) in ops {
            if insert {
                program.push_str(&format!("d[{k}] = {v}\n"));
                model.insert(k, v);
            } else if model.contains_key(&k) {
                program.push_str(&format!("del d[{k}]\n"));
                model.remove(&k);
            }
        }
        program.push_str("r = len(d)\ns = 0\nfor k in d:\n    s = s + d[k]\n");
        let cfg = VmConfig { heap: HeapMode::Rc, max_steps: 5_000_000, ..VmConfig::default() };
        let mut vm = qoa_vm::run_source(&program, cfg, CountingSink::new())
            .map_err(|e| TestCaseError::fail(format!("{e}\n{program}")))?;
        prop_assert_eq!(vm.global_int("r"), Some(model.len() as i64));
        prop_assert_eq!(vm.global_int("s"), Some(model.values().sum::<i64>()));
    }

    /// The refcount heap reclaims everything a pure-churn program makes.
    #[test]
    fn churn_is_fully_reclaimed(n in 10usize..200) {
        let src = format!(
            "t = 0\nfor i in range({n}):\n    xs = [i, i + 1]\n    t = t + xs[0]\n"
        );
        let cfg = VmConfig { heap: HeapMode::Rc, max_steps: 5_000_000, ..VmConfig::default() };
        let mut vm = qoa_vm::run_source(&src, cfg, CountingSink::new())
            .map_err(TestCaseError::fail)?;
        let stats = vm.stats();
        let live = stats.rc.allocs - stats.rc.frees;
        prop_assert!(live < 100, "leaked {live} objects");
    }
}
