//! Guest-language semantics tests: every program runs under both memory
//! managers (CPython-style refcounting and the PyPy-style generational
//! collector) and must produce identical results.

use qoa_heap::GcConfig;
use qoa_model::CountingSink;
use qoa_vm::{HeapMode, Vm, VmConfig, VmStats};

fn run_both(src: &str) -> (Vm<CountingSink>, Vm<CountingSink>) {
    let rc_cfg = VmConfig { heap: HeapMode::Rc, max_steps: 50_000_000, ..VmConfig::default() };
    let gen_cfg = VmConfig {
        heap: HeapMode::Gen(GcConfig::with_nursery(64 << 10)),
        max_steps: 50_000_000,
        ..VmConfig::default()
    };
    let rc = qoa_vm::run_source(src, rc_cfg, CountingSink::new())
        .unwrap_or_else(|e| panic!("rc run failed: {e}\n{src}"));
    let gen = qoa_vm::run_source(src, gen_cfg, CountingSink::new())
        .unwrap_or_else(|e| panic!("gen run failed: {e}\n{src}"));
    (rc, gen)
}

fn check_int(src: &str, var: &str, expect: i64) {
    let (mut rc, mut gen) = run_both(src);
    assert_eq!(rc.global_int(var), Some(expect), "rc mode: {var} in\n{src}");
    assert_eq!(gen.global_int(var), Some(expect), "gen mode: {var} in\n{src}");
}

fn check_float(src: &str, var: &str, expect: f64) {
    let (mut rc, mut gen) = run_both(src);
    let a = rc.global_float(var).unwrap_or_else(|| panic!("missing {var}"));
    let b = gen.global_float(var).unwrap_or_else(|| panic!("missing {var}"));
    assert!((a - expect).abs() < 1e-9, "rc: {a} != {expect}");
    assert!((b - expect).abs() < 1e-9, "gen: {b} != {expect}");
}

fn check_str(src: &str, var: &str, expect: &str) {
    let (mut rc, mut gen) = run_both(src);
    assert_eq!(rc.global_str(var).as_deref(), Some(expect), "rc mode");
    assert_eq!(gen.global_str(var).as_deref(), Some(expect), "gen mode");
}

fn check_display(src: &str, var: &str, expect: &str) {
    let (mut rc, mut gen) = run_both(src);
    assert_eq!(rc.global_display(var).as_deref(), Some(expect), "rc mode");
    assert_eq!(gen.global_display(var).as_deref(), Some(expect), "gen mode");
}

// ---- arithmetic and numerics ------------------------------------------------

#[test]
fn integer_arithmetic() {
    check_int("x = 2 + 3 * 4 - 1\n", "x", 13);
    check_int("x = 17 // 5\n", "x", 3);
    check_int("x = 17 % 5\n", "x", 2);
    check_int("x = -17 // 5\n", "x", -4); // Python floor semantics
    check_int("x = -17 % 5\n", "x", 3);
    check_int("x = 2 ** 10\n", "x", 1024);
    check_int("x = -(5)\n", "x", -5);
}

#[test]
fn bit_operations() {
    check_int("x = 0xF0 & 0x3C\n", "x", 0x30);
    check_int("x = 0xF0 | 0x0F\n", "x", 0xFF);
    check_int("x = 0xFF ^ 0x0F\n", "x", 0xF0);
    check_int("x = 1 << 10\n", "x", 1024);
    check_int("x = 1024 >> 3\n", "x", 128);
    check_int("x = ~5\n", "x", -6);
}

#[test]
fn float_arithmetic() {
    check_float("x = 1.5 + 2.25\n", "x", 3.75);
    check_float("x = 10.0 / 4.0\n", "x", 2.5);
    check_float("x = 2 + 0.5\n", "x", 2.5); // int/float promotion
    check_float("x = 7.5 % 2.0\n", "x", 1.5);
    check_float("x = 2.0 ** 8\n", "x", 256.0);
}

#[test]
fn division_errors() {
    let cfg = VmConfig::default();
    let err = qoa_vm::run_source("x = 1 // 0\n", cfg, CountingSink::new())
        .err().expect("div by zero must fail");
    assert!(err.to_string().contains("ZeroDivisionError"), "{err}");
}

#[test]
fn overflow_is_detected() {
    let cfg = VmConfig::default();
    let err = qoa_vm::run_source(
        "x = 4611686018427387904\ny = x * 4\n",
        cfg,
        CountingSink::new(),
    )
    .err().expect("overflow must fail");
    assert!(err.to_string().contains("OverflowError"), "{err}");
}

// ---- comparisons and control flow ----------------------------------------------

#[test]
fn comparison_results() {
    check_display("x = 3 < 5\n", "x", "True");
    check_display("x = 3 > 5\n", "x", "False");
    check_display("x = 'abc' < 'abd'\n", "x", "True");
    check_display("x = [1, 2] == [1, 2]\n", "x", "True");
    check_display("x = (1, 2) < (1, 3)\n", "x", "True");
    check_display("x = 1 < 2 < 3\n", "x", "True");
    check_display("x = 1 < 2 > 3\n", "x", "False");
    check_display("x = 2 in [1, 2, 3]\n", "x", "True");
    check_display("x = 5 not in [1, 2, 3]\n", "x", "True");
    check_display("x = 'b' in 'abc'\n", "x", "True");
}

#[test]
fn short_circuit_evaluation() {
    // `or` must not evaluate the second operand when the first is truthy.
    check_int("def boom():\n    return 1 // 0\nx = 1 or boom()\n", "x", 1);
    check_int("def boom():\n    return 1 // 0\nx = 0 and boom()\n", "x", 0);
}

#[test]
fn if_elif_else() {
    let src = "
def grade(n):
    if n >= 90:
        return 4
    elif n >= 80:
        return 3
    elif n >= 70:
        return 2
    else:
        return 0

a = grade(95)
b = grade(85)
c = grade(75)
d = grade(10)
total = a * 1000 + b * 100 + c * 10 + d
";
    check_int(src, "total", 4320);
}

#[test]
fn while_with_break_continue() {
    let src = "
total = 0
i = 0
while True:
    i = i + 1
    if i > 100:
        break
    if i % 2 == 0:
        continue
    total = total + i
";
    check_int(src, "total", 2500); // sum of odd numbers 1..100
}

#[test]
fn nested_loops_and_breaks() {
    let src = "
count = 0
for i in range(10):
    for j in range(10):
        if j > i:
            break
        count = count + 1
";
    check_int(src, "count", 55);
}

// ---- data structures ---------------------------------------------------------------

#[test]
fn list_operations() {
    let src = "
xs = [1, 2, 3]
xs.append(4)
xs.extend([5, 6])
xs.insert(0, 0)
total = sum(xs)
n = len(xs)
first = xs[0]
last = xs[-1]
xs[2] = 20
mid = xs[2]
";
    check_int(src, "total", 21);
    check_int(src, "n", 7);
    check_int(src, "first", 0);
    check_int(src, "last", 6);
    check_int(src, "mid", 20);
}

#[test]
fn list_slicing_and_methods() {
    let src = "
xs = [5, 3, 8, 1, 9, 2]
ys = xs[1:4]
xs.sort()
smallest = xs[0]
largest = xs[-1]
zs = xs[:3]
sz = sum(zs)
idx = xs.index(8)
xs.reverse()
rev_first = xs[0]
";
    check_display(src, "ys", "[3, 8, 1]");
    check_int(src, "smallest", 1);
    check_int(src, "largest", 9);
    check_int(src, "sz", 6); // 1+2+3
    check_int(src, "idx", 4);
    check_int(src, "rev_first", 9);
}

#[test]
fn dict_operations() {
    let src = "
d = {'a': 1, 'b': 2}
d['c'] = 3
x = d['a'] + d['b'] + d['c']
has = 'b' in d
missing = d.get('zz', 42)
del d['a']
n = len(d)
ks = d.keys()
ks.sort()
";
    check_int(src, "x", 6);
    check_display(src, "has", "True");
    check_int(src, "missing", 42);
    check_int(src, "n", 2);
    check_display(src, "ks", "['b', 'c']");
}

#[test]
fn dict_iteration_and_update() {
    let src = "
d = {}
for i in range(50):
    d[i] = i * i
total = 0
for k in d:
    total = total + d[k]
e = {'x': 1}
e.update({'y': 2})
n = len(e)
";
    check_int(src, "total", (0..50).map(|i| i * i).sum());
    check_int(src, "n", 2);
}

#[test]
fn tuples_and_unpacking() {
    check_int(
        "
def swap(p, q):
    return (q, p)
t = (1, 2, 3)
a, b, c = t
x, y = swap(3, 4)
s = a + b * 10 + c * 100 + x * 1000 + y * 10000
",
        "s",
        1 + 20 + 300 + 4000 + 30000,
    );
}

#[test]
fn tuple_swap_idiom() {
    check_int("a = 1\nb = 2\na, b = b, a\nx = a * 10 + b\n", "x", 21);
}

#[test]
fn strings() {
    let src = "
s = 'hello' + ' ' + 'world'
n = len(s)
up = s.upper()
parts = s.split(' ')
first = parts[0]
joined = '-'.join(parts)
found = s.find('world')
sub = s[0:5]
ch = s[4]
starts = s.startswith('hell')
";
    check_str(src, "s", "hello world");
    check_int(src, "n", 11);
    check_str(src, "up", "HELLO WORLD");
    check_str(src, "first", "hello");
    check_str(src, "joined", "hello-world");
    check_int(src, "found", 6);
    check_str(src, "sub", "hello");
    check_str(src, "ch", "o");
    check_display(src, "starts", "True");
}

#[test]
fn string_formatting() {
    check_str("x = 'v=%d' % 42\n", "x", "v=42");
    check_str("x = '%s-%d' % ('a', 7)\n", "x", "a-7");
    check_str("x = str(3.5)\n", "x", "3.5");
    check_str("x = 'ab' * 3\n", "x", "ababab");
}

// ---- functions ---------------------------------------------------------------------------

#[test]
fn functions_and_recursion() {
    let src = "
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)
x = fib(15)
";
    check_int(src, "x", 610);
}

#[test]
fn default_arguments() {
    let src = "
def add(a, b=10, c=100):
    return a + b + c
x = add(1)
y = add(1, 2)
z = add(1, 2, 3)
s = x * 10000 + y * 100 + z
";
    check_int(src, "s", 111 * 10000 + 103 * 100 + 6);
}

#[test]
fn globals_from_functions() {
    let src = "
counter = 0
def bump():
    global counter
    counter = counter + 1
for i in range(5):
    bump()
";
    check_int(src, "counter", 5);
}

#[test]
fn nested_function_defs() {
    let src = "
def outer(n):
    def double(x):
        return x * 2
    return double(n) + 1
x = outer(20)
";
    check_int(src, "x", 41);
}

#[test]
fn first_class_functions() {
    let src = "
def apply(f, x):
    return f(x)
def square(v):
    return v * v
x = apply(square, 9)
";
    check_int(src, "x", 81);
}

// ---- classes ---------------------------------------------------------------------------------

#[test]
fn classes_and_instances() {
    let src = "
class Point:
    def __init__(self, x, y):
        self.x = x
        self.y = y
    def dist2(self):
        return self.x * self.x + self.y * self.y

p = Point(3, 4)
d = p.dist2()
p.x = 6
d2 = p.dist2()
";
    check_int(src, "d", 25);
    check_int(src, "d2", 52);
}

#[test]
fn class_attributes_and_methods() {
    let src = "
class Counter:
    def __init__(self):
        self.n = 0
    def bump(self, k):
        self.n = self.n + k
        return self.n

c = Counter()
c.bump(5)
c.bump(7)
x = c.n
";
    check_int(src, "x", 12);
}

#[test]
fn inheritance() {
    let src = "
class Animal:
    def __init__(self, name):
        self.name = name
    def legs(self):
        return 4
    def describe(self):
        return self.legs() * 10

class Bird(Animal):
    def legs(self):
        return 2

a = Animal('cat')
b = Bird('crow')
x = a.describe() + b.describe()
";
    check_int(src, "x", 60);
}

#[test]
fn instances_in_containers() {
    let src = "
class Node:
    def __init__(self, v):
        self.v = v

nodes = []
for i in range(10):
    nodes.append(Node(i))
total = 0
for n in nodes:
    total = total + n.v
";
    check_int(src, "total", 45);
}

// ---- iteration -----------------------------------------------------------------------------------

#[test]
fn range_variants() {
    check_int("t = 0\nfor i in range(10):\n    t = t + i\n", "t", 45);
    check_int("t = 0\nfor i in range(2, 10):\n    t = t + i\n", "t", 44);
    check_int("t = 0\nfor i in range(0, 10, 3):\n    t = t + i\n", "t", 18);
    check_int("t = 0\nfor i in range(10, 0, -2):\n    t = t + i\n", "t", 30);
}

#[test]
fn iterate_strings_and_lists() {
    let src = "
count = 0
for ch in 'hello':
    if ch == 'l':
        count = count + 1
total = 0
for v in [10, 20, 30]:
    total = total + v
";
    check_int(src, "count", 2);
    check_int(src, "total", 60);
}

#[test]
fn for_loop_tuple_unpack() {
    let src = "
pairs = [(1, 10), (2, 20), (3, 30)]
total = 0
for a, b in pairs:
    total = total + a * b
";
    check_int(src, "total", 10 + 40 + 90);
}

// ---- native library --------------------------------------------------------------------------------

#[test]
fn math_functions() {
    check_float("x = sqrt(16.0)\n", "x", 4.0);
    check_float("x = floor(3.7)\n", "x", 3.0);
    check_int("x = abs(-7)\n", "x", 7);
    check_int("x = min(4, 2, 8)\n", "x", 2);
    check_int("x = max([4, 2, 8])\n", "x", 8);
    check_int("x = ord('A')\n", "x", 65);
    check_str("x = chr(66)\n", "x", "B");
    check_int("x = int('123')\n", "x", 123);
    check_float("x = float('2.5')\n", "x", 2.5);
}

#[test]
fn deterministic_rng() {
    let src = "
rand_seed(42)
a = randint(0, 100)
b = randint(0, 100)
rand_seed(42)
c = randint(0, 100)
same = 0
if a == c:
    same = 1
";
    check_int(src, "same", 1);
}

#[test]
fn json_round_trip() {
    let src = "
data = {'name': 'qoa', 'vals': [1, 2, 3], 'ok': True, 'pi': 3.5}
text = json_dumps(data)
back = json_loads(text)
n = back['name']
s = sum(back['vals'])
ok = back['ok']
pi = back['pi']
";
    check_str(src, "n", "qoa");
    check_int(src, "s", 6);
    check_display(src, "ok", "True");
    check_float(src, "pi", 3.5);
}

#[test]
fn pickle_round_trip() {
    let src = "
data = [1, 'two', 3.5, [4, 5], {'k': 6}, None, True]
text = pickle_dumps(data)
back = pickle_loads(text)
a = back[0]
b = back[1]
c = back[2]
d = sum(back[3])
e = back[4]['k']
";
    check_int(src, "a", 1);
    check_str(src, "b", "two");
    check_float(src, "c", 3.5);
    check_int(src, "d", 9);
    check_int(src, "e", 6);
}

#[test]
fn regex_functions() {
    let src = "
hit = re_search('[0-9]+', 'abc123def')
miss = re_search('^[0-9]+$', 'abc123')
words = re_findall('[a-z]+', 'one 2 three 4 five')
n = len(words)
first = words[0]
";
    check_display(src, "hit", "True");
    check_display(src, "miss", "False");
    check_int(src, "n", 3);
    check_str(src, "first", "one");
}

#[test]
fn checksums_and_compression() {
    let src = "
c1 = crc32('hello world')
c2 = crc32('hello world')
c3 = crc32('hello worle')
stable = 0
if c1 == c2:
    stable = 1
diff = 0
if c1 != c3:
    diff = 1
h = md5('abc')
z = compress('aaaaaaaaaabbbbbbbbbbcd')
zn = len(z)
";
    check_int(src, "stable", 1);
    check_int(src, "diff", 1);
    let (mut rc, _) = run_both(src);
    assert!(rc.global_int("h").expect("md5 result") > 0);
    assert!(rc.global_int("zn").expect("compressed length") < 22);
}

#[test]
fn print_capture() {
    let (rc, gen) = run_both("print('hello', 42)\nprint([1, 2])\n");
    assert_eq!(rc.output(), &["hello 42".to_string(), "[1, 2]".to_string()]);
    assert_eq!(gen.output(), rc.output());
}

// ---- memory management correctness ------------------------------------------------------------------

#[test]
fn allocation_churn_is_reclaimed_rc() {
    let src = "
total = 0
for i in range(5000):
    xs = [i, i + 1, i + 2]
    total = total + xs[1]
";
    let (mut rc, _) = run_both(src);
    check_int(src, "total", (0..5000).map(|i| i + 1).sum());
    let stats: VmStats = rc.stats();
    // The refcount heap must have freed nearly everything it allocated.
    let live = stats.rc.allocs - stats.rc.frees;
    assert!(live < 200, "leaked {live} objects (of {})", stats.rc.allocs);
}

#[test]
fn generational_gc_collects_garbage() {
    let src = "
keep = []
for i in range(20000):
    tmp = [i, i, i]
    if i % 1000 == 0:
        keep.append(tmp)
n = len(keep)
";
    let gen_cfg = VmConfig {
        heap: HeapMode::Gen(GcConfig::with_nursery(32 << 10)),
        max_steps: 100_000_000,
        ..VmConfig::default()
    };
    let mut vm = qoa_vm::run_source(src, gen_cfg, CountingSink::new()).expect("runs");
    assert_eq!(vm.global_int("n"), Some(20));
    let stats = vm.stats();
    assert!(stats.gc.minor_collections > 10, "{:?}", stats.gc);
    assert!(stats.gc.young_reclaimed > 10_000, "{:?}", stats.gc);
    // Survivors are a small fraction of allocation.
    assert!(stats.gc.survival_rate() < 0.5, "rate {}", stats.gc.survival_rate());
}

#[test]
fn deep_structures_survive_gc() {
    let src = "
root = {}
cur = root
for i in range(200):
    nxt = {}
    cur['child'] = nxt
    cur['v'] = i
    cur = nxt
cur['v'] = 999
walker = root
depth = 0
while 'child' in walker:
    depth = depth + 1
    walker = walker['child']
leaf = walker['v']
";
    let gen_cfg = VmConfig {
        heap: HeapMode::Gen(GcConfig::with_nursery(16 << 10)),
        max_steps: 100_000_000,
        ..VmConfig::default()
    };
    let mut vm = qoa_vm::run_source(src, gen_cfg, CountingSink::new()).expect("runs");
    assert_eq!(vm.global_int("depth"), Some(200));
    assert_eq!(vm.global_int("leaf"), Some(999));
    assert!(vm.stats().gc.minor_collections > 0);
}

// ---- guest errors --------------------------------------------------------------------------------------

#[test]
fn guest_errors_are_reported() {
    let cfg = VmConfig::default();
    for (src, needle) in [
        ("x = undefined_name\n", "NameError"),
        ("x = [1][5]\n", "IndexError"),
        ("x = {}['k']\n", "KeyError"),
        ("x = 1 + 'a'\n", "TypeError"),
        ("def f(a):\n    return a\nx = f(1, 2)\n", "TypeError"),
        ("x = len(5)\n", "TypeError"),
    ] {
        let err = qoa_vm::run_source(src, cfg, CountingSink::new())
            .err().unwrap_or_else(|| panic!("{src} should fail"));
        assert!(err.to_string().contains(needle), "{src} gave {err}");
    }
}

#[test]
fn fuel_exhaustion_is_an_error() {
    let cfg = VmConfig { heap: HeapMode::Rc, max_steps: 1000, ..VmConfig::default() };
    let err = qoa_vm::run_source("while True:\n    pass\n", cfg, CountingSink::new())
        .err().expect("infinite loop must exhaust fuel");
    assert!(err.to_string().contains("fuel"), "{err}");
}
