//! Shared vocabulary for the quantitative overhead analysis stack.
//!
//! This crate defines the types that every other layer of the reproduction
//! speaks: the overhead [`Category`] taxonomy of Table II of *Quantitative
//! Overhead Analysis for Python* (Ismail & Suh, IISWC 2018), the execution
//! [`Phase`] labels used to split PyPy-style runs into interpreter / JIT /
//! GC time, the [`MicroOp`] representation of a single simulated machine
//! instruction, and the simulated [address-space layout](mem) that makes
//! cache behaviour of the run-times observable.
//!
//! The run-time crates (`qoa-vm`, `qoa-jit`, `qoa-heap`) *emit* tagged
//! micro-ops; the simulator crate (`qoa-uarch`) *consumes* them and charges
//! cycles; the analysis crate (`qoa-core`) aggregates cycles by category and
//! phase. This mirrors the paper's methodology, where Pin annotations on the
//! CPython interpreter tag every static x86 instruction with a category and
//! ZSim charges cycles to it.
//!
//! # Example
//!
//! ```
//! use qoa_model::{Category, Group, MicroOp, OpKind, Phase, Pc};
//!
//! let op = MicroOp {
//!     pc: Pc(qoa_model::mem::INTERP_CODE_BASE),
//!     kind: OpKind::Load { addr: 0x5_0000_0040, size: 8 },
//!     category: Category::Dispatch,
//!     phase: Phase::Interpreter,
//! };
//! assert_eq!(op.category.group(), Group::InterpreterOp);
//! assert!(op.kind.is_memory());
//! ```

pub mod category;
pub mod emit;
pub mod mem;
pub mod op;
pub mod phase;

pub use category::{Category, CategoryMap, Group};
pub use emit::Emitter;
pub use mem::Segment;
pub use op::{CountingSink, FrameEvent, MicroOp, NullSink, OpKind, OpSink, Pc};
pub use phase::{Phase, PhaseMap};

/// Identifies which modeled run-time produced a measurement.
///
/// The paper evaluates CPython 2.7 (interpreter only), PyPy 5.3 with the JIT
/// disabled, PyPy 5.3 with the JIT enabled, and Google V8 4.2. The same four
/// configurations exist here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RuntimeKind {
    /// Reference-counted interpreter-only run-time (CPython model).
    CPython,
    /// Generational-GC run-time with the tracing JIT disabled (PyPy w/o JIT).
    PyPyNoJit,
    /// Generational-GC run-time with the tracing JIT enabled (PyPy w/ JIT).
    PyPyJit,
    /// JIT run-time under the V8-flavoured configuration preset.
    V8,
}

impl RuntimeKind {
    /// All four modeled run-times, in the paper's presentation order.
    pub const ALL: [RuntimeKind; 4] = [
        RuntimeKind::CPython,
        RuntimeKind::PyPyNoJit,
        RuntimeKind::PyPyJit,
        RuntimeKind::V8,
    ];

    /// Whether this run-time executes JIT-compiled code.
    pub fn has_jit(self) -> bool {
        matches!(self, RuntimeKind::PyPyJit | RuntimeKind::V8)
    }

    /// Whether this run-time uses the generational garbage collector
    /// (as opposed to CPython-style reference counting).
    pub fn has_generational_gc(self) -> bool {
        !matches!(self, RuntimeKind::CPython)
    }

    /// Human-readable label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            RuntimeKind::CPython => "CPython",
            RuntimeKind::PyPyNoJit => "PyPy w/o JIT",
            RuntimeKind::PyPyJit => "PyPy",
            RuntimeKind::V8 => "V8",
        }
    }
}

impl std::fmt::Display for RuntimeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_kind_properties() {
        assert!(!RuntimeKind::CPython.has_jit());
        assert!(!RuntimeKind::PyPyNoJit.has_jit());
        assert!(RuntimeKind::PyPyJit.has_jit());
        assert!(RuntimeKind::V8.has_jit());
        assert!(!RuntimeKind::CPython.has_generational_gc());
        assert!(RuntimeKind::PyPyNoJit.has_generational_gc());
    }

    #[test]
    fn runtime_kind_labels_are_unique() {
        let labels: Vec<_> = RuntimeKind::ALL.iter().map(|r| r.label()).collect();
        let mut dedup = labels.to_vec();
        dedup.sort();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
    }
}
