//! Simulated address-space layout.
//!
//! All run-time state lives at *simulated* 64-bit addresses so that the
//! cache hierarchy in `qoa-uarch` observes realistic access streams: the
//! interpreter's static code, the JIT code region, the C stack used by the
//! modeled calling convention, the reference-counted heap, and the
//! generational GC's nursery / old space. Segment placement guarantees that
//! distinct kinds of state never alias.

/// Base of the interpreter's static code (the "CPython binary" text section).
pub const INTERP_CODE_BASE: u64 = 0x0040_0000;
/// Size reserved for interpreter code.
pub const INTERP_CODE_SIZE: u64 = 0x0040_0000; // 4 MiB

/// Base of the native "C extension" library code.
pub const NATIVE_CODE_BASE: u64 = 0x0100_0000;
/// Size reserved for native library code.
pub const NATIVE_CODE_SIZE: u64 = 0x0100_0000; // 16 MiB

/// Base of run-time static data (interned names, dispatch tables, profiling
/// counters).
pub const STATIC_DATA_BASE: u64 = 0x0300_0000;
/// Size reserved for static data.
pub const STATIC_DATA_SIZE: u64 = 0x0100_0000; // 16 MiB

/// Base of the JIT code region (traces are laid out sequentially here).
pub const JIT_CODE_BASE: u64 = 0x2000_0000;
/// Size reserved for JIT code.
pub const JIT_CODE_SIZE: u64 = 0x1000_0000; // 256 MiB

/// Base (top) of the simulated C stack; the stack grows down from here.
pub const C_STACK_TOP: u64 = 0x7fff_ffff_f000;
/// Size reserved for the C stack.
pub const C_STACK_SIZE: u64 = 0x0080_0000; // 8 MiB

/// Base of the reference-counted heap (CPython object heap).
pub const RC_HEAP_BASE: u64 = 0x1_0000_0000;
/// Size reserved for the reference-counted heap.
pub const RC_HEAP_SIZE: u64 = 0x1_0000_0000; // 4 GiB

/// Base of the generational GC's nursery.
pub const NURSERY_BASE: u64 = 0x5_0000_0000;
/// Maximum nursery size supported by the layout (the paper sweeps up to
/// 128 MB).
pub const NURSERY_MAX_SIZE: u64 = 0x2000_0000; // 512 MiB headroom

/// Base of the generational GC's old space.
pub const OLD_SPACE_BASE: u64 = 0x6_0000_0000;
/// Size reserved for the old space.
pub const OLD_SPACE_SIZE: u64 = 0x2_0000_0000; // 8 GiB

/// Base of the large-object space (objects allocated outside the nursery).
pub const LARGE_OBJECT_BASE: u64 = 0x9_0000_0000;
/// Size reserved for the large-object space.
pub const LARGE_OBJECT_SIZE: u64 = 0x1_0000_0000; // 4 GiB

/// A named region of the simulated address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Segment {
    /// Interpreter static code.
    InterpCode,
    /// Native library code.
    NativeCode,
    /// Run-time static data.
    StaticData,
    /// JIT-generated code.
    JitCode,
    /// The simulated C stack.
    CStack,
    /// Reference-counted heap.
    RcHeap,
    /// Generational GC nursery.
    Nursery,
    /// Generational GC old space.
    OldSpace,
    /// Large-object space.
    LargeObject,
}

impl Segment {
    /// All segments.
    pub const ALL: [Segment; 9] = [
        Segment::InterpCode,
        Segment::NativeCode,
        Segment::StaticData,
        Segment::JitCode,
        Segment::CStack,
        Segment::RcHeap,
        Segment::Nursery,
        Segment::OldSpace,
        Segment::LargeObject,
    ];

    /// Inclusive base address of the segment.
    pub fn base(self) -> u64 {
        match self {
            Segment::InterpCode => INTERP_CODE_BASE,
            Segment::NativeCode => NATIVE_CODE_BASE,
            Segment::StaticData => STATIC_DATA_BASE,
            Segment::JitCode => JIT_CODE_BASE,
            Segment::CStack => C_STACK_TOP - C_STACK_SIZE,
            Segment::RcHeap => RC_HEAP_BASE,
            Segment::Nursery => NURSERY_BASE,
            Segment::OldSpace => OLD_SPACE_BASE,
            Segment::LargeObject => LARGE_OBJECT_BASE,
        }
    }

    /// Segment size in bytes.
    pub fn size(self) -> u64 {
        match self {
            Segment::InterpCode => INTERP_CODE_SIZE,
            Segment::NativeCode => NATIVE_CODE_SIZE,
            Segment::StaticData => STATIC_DATA_SIZE,
            Segment::JitCode => JIT_CODE_SIZE,
            Segment::CStack => C_STACK_SIZE,
            Segment::RcHeap => RC_HEAP_SIZE,
            Segment::Nursery => NURSERY_MAX_SIZE,
            Segment::OldSpace => OLD_SPACE_SIZE,
            Segment::LargeObject => LARGE_OBJECT_SIZE,
        }
    }

    /// Exclusive end address of the segment.
    pub fn end(self) -> u64 {
        self.base() + self.size()
    }

    /// Whether `addr` falls inside this segment.
    pub fn contains(self, addr: u64) -> bool {
        addr >= self.base() && addr < self.end()
    }

    /// Classifies an address, if it falls in any known segment.
    pub fn of(addr: u64) -> Option<Segment> {
        Segment::ALL.into_iter().find(|s| s.contains(addr))
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Segment::InterpCode => "interp-code",
            Segment::NativeCode => "native-code",
            Segment::StaticData => "static-data",
            Segment::JitCode => "jit-code",
            Segment::CStack => "c-stack",
            Segment::RcHeap => "rc-heap",
            Segment::Nursery => "nursery",
            Segment::OldSpace => "old-space",
            Segment::LargeObject => "large-object",
        }
    }
}

impl std::fmt::Display for Segment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_are_disjoint() {
        for (i, a) in Segment::ALL.iter().enumerate() {
            for b in &Segment::ALL[i + 1..] {
                let disjoint = a.end() <= b.base() || b.end() <= a.base();
                assert!(disjoint, "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn classification_matches_contains() {
        for s in Segment::ALL {
            assert_eq!(Segment::of(s.base()), Some(s));
            assert_eq!(Segment::of(s.end() - 1), Some(s));
        }
        assert_eq!(Segment::of(0), None);
    }

    #[test]
    fn nursery_headroom_covers_paper_sweep() {
        // The paper sweeps nursery sizes 512 kB .. 128 MB.
        assert!(Segment::Nursery.size() >= 128 << 20);
    }
}
