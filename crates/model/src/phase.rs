//! Execution phases.
//!
//! Fig. 7 of the paper breaks PyPy-with-JIT execution into *bytecode
//! interpreter*, *garbage collection*, and *JIT compiled code* phases by
//! annotating PyPy at the function granularity. The same phase labels are
//! carried on every micro-op here, with two extra phases the paper accounts
//! for in prose: time spent inside the JIT compiler itself and time inside
//! native library code.

/// The coarse execution phase a micro-op belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Phase {
    /// Executing the bytecode interpreter loop.
    Interpreter = 0,
    /// Running the JIT compiler (profiling, trace recording, optimization,
    /// code emission).
    JitCompile,
    /// Executing JIT-compiled trace code.
    JitCode,
    /// Minor (nursery) garbage collection.
    GcMinor,
    /// Major (old-space) garbage collection.
    GcMajor,
    /// Executing native "C extension" library code.
    NativeLib,
}

impl Phase {
    /// Number of phases (array-map dimension).
    pub const COUNT: usize = 6;

    /// All phases.
    pub const ALL: [Phase; Self::COUNT] = [
        Phase::Interpreter,
        Phase::JitCompile,
        Phase::JitCode,
        Phase::GcMinor,
        Phase::GcMajor,
        Phase::NativeLib,
    ];

    /// Stable dense index for array-backed maps.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Whether this phase is garbage collection (minor or major).
    pub fn is_gc(self) -> bool {
        matches!(self, Phase::GcMinor | Phase::GcMajor)
    }

    /// Label matching the paper's Fig. 7 legend where applicable.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Interpreter => "Bytecode Interpreter",
            Phase::JitCompile => "JIT Compilation",
            Phase::JitCode => "JIT Compiled Code",
            Phase::GcMinor => "Garbage Collection (minor)",
            Phase::GcMajor => "Garbage Collection (major)",
            Phase::NativeLib => "Native Library",
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A dense map from [`Phase`] to `T`, backed by a fixed array.
///
/// # Example
///
/// ```
/// use qoa_model::{Phase, PhaseMap};
///
/// let mut cycles: PhaseMap<u64> = PhaseMap::default();
/// cycles[Phase::GcMinor] += 7;
/// assert_eq!(cycles.gc_total(), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseMap<T> {
    values: [T; Phase::COUNT],
}

impl<T: Default + Copy> Default for PhaseMap<T> {
    fn default() -> Self {
        PhaseMap {
            values: [T::default(); Phase::COUNT],
        }
    }
}

impl<T> PhaseMap<T> {
    /// Builds a map by evaluating `f` for every phase.
    pub fn from_fn(mut f: impl FnMut(Phase) -> T) -> Self {
        PhaseMap {
            values: Phase::ALL.map(&mut f),
        }
    }

    /// Iterates over `(phase, &value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, &T)> {
        Phase::ALL.iter().copied().zip(self.values.iter())
    }
}

impl PhaseMap<u64> {
    /// Sum across all phases.
    pub fn total(&self) -> u64 {
        self.values.iter().sum()
    }

    /// Sum across the two GC phases.
    pub fn gc_total(&self) -> u64 {
        self[Phase::GcMinor] + self[Phase::GcMajor]
    }

    /// Element-wise accumulation.
    pub fn merge(&mut self, other: &PhaseMap<u64>) {
        for (p, v) in other.iter() {
            self[p] += *v;
        }
    }
}

impl<T> std::ops::Index<Phase> for PhaseMap<T> {
    type Output = T;
    fn index(&self, p: Phase) -> &T {
        &self.values[p.index()]
    }
}

impl<T> std::ops::IndexMut<Phase> for PhaseMap<T> {
    fn index_mut(&mut self, p: Phase) -> &mut T {
        &mut self.values[p.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_indices_are_dense() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn gc_phases() {
        assert!(Phase::GcMinor.is_gc());
        assert!(Phase::GcMajor.is_gc());
        assert!(!Phase::JitCode.is_gc());
    }

    #[test]
    fn phase_map_totals() {
        let mut m: PhaseMap<u64> = PhaseMap::default();
        m[Phase::Interpreter] = 10;
        m[Phase::GcMinor] = 3;
        m[Phase::GcMajor] = 2;
        assert_eq!(m.total(), 15);
        assert_eq!(m.gc_total(), 5);
        let mut n: PhaseMap<u64> = PhaseMap::default();
        n[Phase::Interpreter] = 1;
        m.merge(&n);
        assert_eq!(m[Phase::Interpreter], 11);
    }
}
