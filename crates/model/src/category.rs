//! The overhead taxonomy of Table II, plus the two non-overhead labels the
//! paper reports against it (`Execute` and `CLibrary`).
//!
//! Every simulated machine instruction emitted by the run-times carries
//! exactly one [`Category`]. Categories are grouped exactly as in the paper:
//! *additional language features* (things C simply does not do), *dynamic
//! language features* (things C resolves at compile time), and *interpreter
//! operations* (the cost of emulating a virtual machine). The residual work —
//! the computation a C program would also have to perform — is labeled
//! [`Category::Execute`], and time spent inside the native ("C extension")
//! library is labeled [`Category::CLibrary`], matching the paper's separate
//! accounting of C-library time (7.0% on average, >64% for the pickle/regex
//! group).

/// Category groups, matching the three groups of Table II plus the residual.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Group {
    /// Language features that do not exist in a static language such as C.
    AdditionalLanguage,
    /// Features that exist in C but require run-time work in Python.
    DynamicLanguage,
    /// The cost of emulating a virtual machine on a physical machine.
    InterpreterOp,
    /// Work a C version of the program would also perform.
    Compute,
}

impl Group {
    /// All groups in Table II order.
    pub const ALL: [Group; 4] = [
        Group::AdditionalLanguage,
        Group::DynamicLanguage,
        Group::InterpreterOp,
        Group::Compute,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Group::AdditionalLanguage => "Additional Language Features",
            Group::DynamicLanguage => "Dynamic Language Features",
            Group::InterpreterOp => "Interpreter Operations",
            Group::Compute => "Computation",
        }
    }
}

impl std::fmt::Display for Group {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A single overhead (or residual) attribution label.
///
/// The first fourteen variants are the fourteen rows of Table II; the paper
/// marks `ErrorCheck`, `RegTransfer` and `CFunctionCall` as newly identified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Category {
    // --- Additional language features -----------------------------------
    /// Checks for overflow, out-of-bounds and other errors.
    ErrorCheck = 0,
    /// Automatically freeing unused memory (refcount maintenance, tracing,
    /// copying, sweeping).
    GarbageCollection,
    /// Support for more condition cases and control structures (block
    /// stack management, rich comparisons).
    RichControlFlow,
    // --- Dynamic language features ---------------------------------------
    /// Checking a variable's type to determine the operation.
    TypeCheck,
    /// Wrapping or unwrapping integer or float primitive values.
    BoxUnbox,
    /// Looking up a variable in a map keyed by its name.
    NameResolution,
    /// Dereferencing function pointers to perform an operation.
    FunctionResolution,
    /// Setting up for a function call and cleaning up when finished.
    FunctionSetup,
    // --- Interpreter operations ------------------------------------------
    /// Reading and decoding a bytecode instruction.
    Dispatch,
    /// Reading, writing, and managing the VM value stack.
    Stack,
    /// Loading constants from the constant pool to the stack.
    ConstLoad,
    /// Deallocation immediately followed by reallocation of objects.
    ObjectAllocation,
    /// Calculating the address of VM storage before a real access.
    RegTransfer,
    /// Following the C calling convention inside the interpreter.
    CFunctionCall,
    // --- Residuals ---------------------------------------------------------
    /// The computation the program itself requires (a C program would too).
    Execute,
    /// Work performed inside native "C extension" library code.
    CLibrary,
}

impl Category {
    /// Number of distinct categories (array-map dimension).
    pub const COUNT: usize = 16;

    /// All categories, in Table II order followed by the residuals.
    pub const ALL: [Category; Self::COUNT] = [
        Category::ErrorCheck,
        Category::GarbageCollection,
        Category::RichControlFlow,
        Category::TypeCheck,
        Category::BoxUnbox,
        Category::NameResolution,
        Category::FunctionResolution,
        Category::FunctionSetup,
        Category::Dispatch,
        Category::Stack,
        Category::ConstLoad,
        Category::ObjectAllocation,
        Category::RegTransfer,
        Category::CFunctionCall,
        Category::Execute,
        Category::CLibrary,
    ];

    /// The fourteen overhead categories of Table II (excludes the residuals).
    pub const OVERHEADS: [Category; 14] = [
        Category::ErrorCheck,
        Category::GarbageCollection,
        Category::RichControlFlow,
        Category::TypeCheck,
        Category::BoxUnbox,
        Category::NameResolution,
        Category::FunctionResolution,
        Category::FunctionSetup,
        Category::Dispatch,
        Category::Stack,
        Category::ConstLoad,
        Category::ObjectAllocation,
        Category::RegTransfer,
        Category::CFunctionCall,
    ];

    /// Categories shown in the paper's Fig. 4(a): language features.
    pub const LANGUAGE_FEATURES: [Category; 8] = [
        Category::NameResolution,
        Category::GarbageCollection,
        Category::FunctionResolution,
        Category::FunctionSetup,
        Category::BoxUnbox,
        Category::TypeCheck,
        Category::ErrorCheck,
        Category::RichControlFlow,
    ];

    /// Categories shown in the paper's Fig. 4(b): interpreter operations.
    pub const INTERPRETER_OPERATIONS: [Category; 6] = [
        Category::CFunctionCall,
        Category::ObjectAllocation,
        Category::RegTransfer,
        Category::Dispatch,
        Category::Stack,
        Category::ConstLoad,
    ];

    /// Stable dense index for array-backed maps.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`Category::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= Category::COUNT`.
    pub fn from_index(index: usize) -> Category {
        Self::ALL[index]
    }

    /// The Table II group this category belongs to.
    pub fn group(self) -> Group {
        match self {
            Category::ErrorCheck | Category::GarbageCollection | Category::RichControlFlow => {
                Group::AdditionalLanguage
            }
            Category::TypeCheck
            | Category::BoxUnbox
            | Category::NameResolution
            | Category::FunctionResolution
            | Category::FunctionSetup => Group::DynamicLanguage,
            Category::Dispatch
            | Category::Stack
            | Category::ConstLoad
            | Category::ObjectAllocation
            | Category::RegTransfer
            | Category::CFunctionCall => Group::InterpreterOp,
            Category::Execute | Category::CLibrary => Group::Compute,
        }
    }

    /// Whether this category counts toward the paper's "identified
    /// overheads" total (64.9% on average for CPython).
    pub fn is_overhead(self) -> bool {
        !matches!(self, Category::Execute | Category::CLibrary)
    }

    /// Whether the paper flags this category as newly identified ("NEW" in
    /// Table II).
    pub fn is_new_in_paper(self) -> bool {
        matches!(
            self,
            Category::ErrorCheck | Category::RegTransfer | Category::CFunctionCall
        )
    }

    /// Short label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            Category::ErrorCheck => "Error check",
            Category::GarbageCollection => "Garbage collection",
            Category::RichControlFlow => "Rich control flow",
            Category::TypeCheck => "Type check",
            Category::BoxUnbox => "Boxing/unboxing",
            Category::NameResolution => "Name resolution",
            Category::FunctionResolution => "Function resolution",
            Category::FunctionSetup => "Function setup/cleanup",
            Category::Dispatch => "Dispatch",
            Category::Stack => "Stack",
            Category::ConstLoad => "Const load",
            Category::ObjectAllocation => "Object allocation",
            Category::RegTransfer => "Reg transfer",
            Category::CFunctionCall => "C function call",
            Category::Execute => "Execute",
            Category::CLibrary => "C library",
        }
    }

    /// Table II description text.
    pub fn description(self) -> &'static str {
        match self {
            Category::ErrorCheck => "Check for overflow, out-of-bounds, and other errors",
            Category::GarbageCollection => "Automatically freeing unused memory",
            Category::RichControlFlow => {
                "Support for more condition cases and control structures"
            }
            Category::TypeCheck => "Checking variable type to determine operation",
            Category::BoxUnbox => "Wrapping or unwrapping integer or float types",
            Category::NameResolution => "Looking up variable in a map",
            Category::FunctionResolution => {
                "Dereferencing function pointers to perform an operation"
            }
            Category::FunctionSetup => {
                "Setting up for a function call and cleaning up when finished"
            }
            Category::Dispatch => "Reading and decoding bytecode instruction",
            Category::Stack => "Reading, writing, and managing VM stack",
            Category::ConstLoad => "Reading constants",
            Category::ObjectAllocation => {
                "Inefficient deallocation followed by allocation of objects"
            }
            Category::RegTransfer => "Calculating address of VM storage",
            Category::CFunctionCall => "Following the C calling convention in the interpreter",
            Category::Execute => "Core computation of the program itself",
            Category::CLibrary => "Execution inside native library code",
        }
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A dense map from [`Category`] to `T`, backed by a fixed array.
///
/// # Example
///
/// ```
/// use qoa_model::{Category, CategoryMap};
///
/// let mut cycles: CategoryMap<u64> = CategoryMap::default();
/// cycles[Category::Dispatch] += 10;
/// assert_eq!(cycles[Category::Dispatch], 10);
/// assert_eq!(cycles.iter().count(), Category::COUNT);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CategoryMap<T> {
    values: [T; Category::COUNT],
}

impl<T: Default + Copy> Default for CategoryMap<T> {
    fn default() -> Self {
        CategoryMap {
            values: [T::default(); Category::COUNT],
        }
    }
}

impl<T> CategoryMap<T> {
    /// Builds a map by evaluating `f` for every category.
    pub fn from_fn(mut f: impl FnMut(Category) -> T) -> Self {
        CategoryMap {
            values: Category::ALL.map(&mut f),
        }
    }

    /// Iterates over `(category, &value)` pairs in Table II order.
    pub fn iter(&self) -> impl Iterator<Item = (Category, &T)> {
        Category::ALL.iter().copied().zip(self.values.iter())
    }

    /// Iterates over `(category, &mut value)` pairs in Table II order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (Category, &mut T)> {
        Category::ALL.iter().copied().zip(self.values.iter_mut())
    }
}

impl CategoryMap<u64> {
    /// Sum across all categories.
    pub fn total(&self) -> u64 {
        self.values.iter().sum()
    }

    /// Sum across the fourteen overhead categories only.
    pub fn overhead_total(&self) -> u64 {
        Category::OVERHEADS
            .iter()
            .map(|&c| self[c])
            .sum()
    }

    /// Sum across one Table II group.
    pub fn group_total(&self, group: Group) -> u64 {
        self.iter()
            .filter(|(c, _)| c.group() == group)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Element-wise accumulation.
    pub fn merge(&mut self, other: &CategoryMap<u64>) {
        for (c, v) in other.iter() {
            self[c] += *v;
        }
    }
}

impl CategoryMap<f64> {
    /// Sum across all categories.
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Sum across the fourteen Table II overhead categories only.
    ///
    /// For a map of per-category *shares* this is the paper's "identified
    /// overheads" total (64.9% on average for CPython). This is the single
    /// code path behind `Breakdown::overhead_share`,
    /// `ExecutionStats::overhead_share` and the metrics registry — keep it
    /// that way so figure output and exported metrics cannot drift.
    pub fn overhead_share(&self) -> f64 {
        Category::OVERHEADS.iter().map(|&c| self[c]).sum()
    }

    /// The residual share: `Execute` plus `CLibrary`.
    pub fn compute_share(&self) -> f64 {
        self[Category::Execute] + self[Category::CLibrary]
    }
}

impl<T> std::ops::Index<Category> for CategoryMap<T> {
    type Output = T;
    fn index(&self, c: Category) -> &T {
        &self.values[c.index()]
    }
}

impl<T> std::ops::IndexMut<Category> for CategoryMap<T> {
    fn index_mut(&mut self, c: Category) -> &mut T {
        &mut self.values[c.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_round_trip() {
        for (i, c) in Category::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(Category::from_index(i), *c);
        }
    }

    #[test]
    fn table_ii_has_fourteen_overheads_in_three_groups() {
        assert_eq!(Category::OVERHEADS.len(), 14);
        for c in Category::OVERHEADS {
            assert!(c.is_overhead());
            assert_ne!(c.group(), Group::Compute);
        }
        assert_eq!(Category::Execute.group(), Group::Compute);
        assert_eq!(Category::CLibrary.group(), Group::Compute);
    }

    #[test]
    fn paper_marks_three_new_categories() {
        let new: Vec<_> = Category::ALL
            .iter()
            .filter(|c| c.is_new_in_paper())
            .collect();
        assert_eq!(new.len(), 3);
    }

    #[test]
    fn figure4_panels_partition_the_overheads() {
        let mut all: Vec<Category> = Category::LANGUAGE_FEATURES.to_vec();
        all.extend_from_slice(&Category::INTERPRETER_OPERATIONS);
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 14);
        for c in Category::OVERHEADS {
            assert!(all.contains(&c));
        }
    }

    #[test]
    fn category_map_accumulates_and_groups() {
        let mut m: CategoryMap<u64> = CategoryMap::default();
        m[Category::Dispatch] = 5;
        m[Category::ErrorCheck] = 3;
        m[Category::Execute] = 2;
        assert_eq!(m.total(), 10);
        assert_eq!(m.overhead_total(), 8);
        assert_eq!(m.group_total(Group::InterpreterOp), 5);
        assert_eq!(m.group_total(Group::AdditionalLanguage), 3);
        assert_eq!(m.group_total(Group::Compute), 2);

        let mut other: CategoryMap<u64> = CategoryMap::default();
        other[Category::Dispatch] = 1;
        m.merge(&other);
        assert_eq!(m[Category::Dispatch], 6);
    }

    #[test]
    fn labels_and_descriptions_are_nonempty_and_unique() {
        let mut labels: Vec<&str> = Category::ALL.iter().map(|c| c.label()).collect();
        for l in &labels {
            assert!(!l.is_empty());
        }
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), Category::COUNT);
        for c in Category::ALL {
            assert!(!c.description().is_empty());
        }
    }
}
