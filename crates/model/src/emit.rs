//! Convenience layer for emitting tagged micro-ops.
//!
//! Every run-time component (interpreter, JIT, GC, native library) emits
//! micro-ops from *emission sites* — stable synthetic PCs that play the role
//! of the static instructions of the interpreter binary in the paper's Pin
//! methodology. An [`Emitter`] bundles the sink, the current [`Phase`], and
//! a base PC for the component's code region; call sites pass a small site
//! index that is turned into a stable PC.

use crate::{Category, MicroOp, OpKind, OpSink, Pc, Phase};

/// Emits micro-ops for one code region at a fixed phase.
#[derive(Debug)]
pub struct Emitter<'s, S: OpSink> {
    sink: &'s mut S,
    /// Phase stamped on every emitted op.
    pub phase: Phase,
    /// Base PC of the component's code region.
    pub base: u64,
}

impl<'s, S: OpSink> Emitter<'s, S> {
    /// Creates an emitter for the code region starting at `base`.
    pub fn new(sink: &'s mut S, phase: Phase, base: u64) -> Self {
        sink.phase_change(phase);
        Emitter { sink, phase, base }
    }

    /// PC of emission site `site` (4 bytes per synthetic instruction).
    #[inline]
    pub fn pc(&self, site: u32) -> Pc {
        Pc(self.base + (site as u64) * 4)
    }

    #[inline]
    fn emit(&mut self, site: u32, kind: OpKind, category: Category) {
        self.sink.op(MicroOp { pc: self.pc(site), kind, category, phase: self.phase });
    }

    /// Emits `n` integer ALU ops.
    #[inline]
    pub fn alu(&mut self, site: u32, category: Category, n: u32) {
        for i in 0..n {
            self.emit(site + i, OpKind::Alu, category);
        }
    }

    /// Emits one floating-point op.
    #[inline]
    pub fn fp(&mut self, site: u32, category: Category) {
        self.emit(site, OpKind::FpAlu, category);
    }

    /// Emits one integer multiply.
    #[inline]
    pub fn mul(&mut self, site: u32, category: Category) {
        self.emit(site, OpKind::Mul, category);
    }

    /// Emits one divide.
    #[inline]
    pub fn div(&mut self, site: u32, category: Category) {
        self.emit(site, OpKind::Div, category);
    }

    /// Emits one 8-byte load.
    #[inline]
    pub fn load(&mut self, site: u32, category: Category, addr: u64) {
        self.emit(site, OpKind::Load { addr, size: 8 }, category);
    }

    /// Emits one 8-byte store.
    #[inline]
    pub fn store(&mut self, site: u32, category: Category, addr: u64) {
        self.emit(site, OpKind::Store { addr, size: 8 }, category);
    }

    /// Emits loads covering `bytes` bytes starting at `addr` (8 B per load).
    pub fn load_span(&mut self, site: u32, category: Category, addr: u64, bytes: u64) {
        let mut a = addr;
        let end = addr + bytes;
        while a < end {
            self.emit(site, OpKind::Load { addr: a, size: 8 }, category);
            a += 8;
        }
    }

    /// Emits stores covering `bytes` bytes starting at `addr` (8 B per store).
    pub fn store_span(&mut self, site: u32, category: Category, addr: u64, bytes: u64) {
        let mut a = addr;
        let end = addr + bytes;
        while a < end {
            self.emit(site, OpKind::Store { addr: a, size: 8 }, category);
            a += 8;
        }
    }

    /// Emits a conditional direct branch.
    #[inline]
    pub fn branch(&mut self, site: u32, category: Category, taken: bool, target_site: u32) {
        let target = self.pc(target_site);
        self.emit(site, OpKind::Branch { taken, target, indirect: false }, category);
    }

    /// Emits a taken indirect branch to an arbitrary PC (e.g. the dispatch
    /// switch).
    #[inline]
    pub fn indirect_branch(&mut self, site: u32, category: Category, target: Pc) {
        self.emit(site, OpKind::Branch { taken: true, target, indirect: true }, category);
    }

    /// Emits a direct call.
    #[inline]
    pub fn call(&mut self, site: u32, category: Category, target: Pc) {
        self.emit(site, OpKind::Call { target, indirect: false }, category);
    }

    /// Emits an indirect call through a function pointer.
    #[inline]
    pub fn indirect_call(&mut self, site: u32, category: Category, target: Pc) {
        self.emit(site, OpKind::Call { target, indirect: true }, category);
    }

    /// Emits a return.
    #[inline]
    pub fn ret(&mut self, site: u32, category: Category) {
        self.emit(site, OpKind::Ret, category);
    }

    /// Runs `f` with the phase temporarily switched to `phase`.
    pub fn with_phase<R>(&mut self, phase: Phase, f: impl FnOnce(&mut Self) -> R) -> R {
        let old = self.phase;
        self.phase = phase;
        self.sink.phase_change(phase);
        let r = f(self);
        self.phase = old;
        self.sink.phase_change(old);
        r
    }

    /// Direct access to the underlying sink.
    pub fn sink(&mut self) -> &mut S {
        self.sink
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CountingSink;

    #[test]
    fn sites_map_to_stable_pcs() {
        let mut sink = CountingSink::new();
        let e = Emitter::new(&mut sink, Phase::Interpreter, 0x40_0000);
        assert_eq!(e.pc(0), Pc(0x40_0000));
        assert_eq!(e.pc(3), Pc(0x40_000C));
    }

    #[test]
    fn span_helpers_emit_one_op_per_word() {
        let mut sink = CountingSink::new();
        {
            let mut e = Emitter::new(&mut sink, Phase::GcMinor, 0x40_0000);
            e.load_span(0, Category::GarbageCollection, 0x1000, 32);
            e.store_span(1, Category::GarbageCollection, 0x2000, 17);
        }
        assert_eq!(sink.loads, 4);
        assert_eq!(sink.stores, 3); // ceil(17/8)
        assert_eq!(sink.by_category[Category::GarbageCollection], 7);
    }

    #[test]
    fn with_phase_restores() {
        let mut sink = CountingSink::new();
        let mut e = Emitter::new(&mut sink, Phase::Interpreter, 0x40_0000);
        e.alu(0, Category::Execute, 1);
        e.with_phase(Phase::GcMinor, |e| e.alu(1, Category::GarbageCollection, 2));
        e.alu(2, Category::Execute, 1);
        assert_eq!(e.phase, Phase::Interpreter);
        let _ = e; // release the sink borrow
        assert_eq!(sink.by_phase[Phase::Interpreter], 2);
        assert_eq!(sink.by_phase[Phase::GcMinor], 2);
    }
}
