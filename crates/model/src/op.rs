//! The simulated machine-instruction stream.
//!
//! Run-times emit a stream of [`MicroOp`]s — one per modeled machine
//! instruction — into an [`OpSink`]. The micro-op carries a synthetic
//! program counter (a stable address for the *static* instruction inside the
//! interpreter/JIT/native code, exactly like the paper's per-PC Pin
//! statistics), its operational [`OpKind`], its Table II [`Category`], and
//! the execution [`Phase`] it belongs to.

use crate::{Category, Phase};
use std::sync::Arc;

/// A guest-frame lifecycle event, emitted by the run-times alongside the
/// micro-op stream.
///
/// Frame events carry *semantic* information (which guest function is
/// running) that micro-ops deliberately do not. They cost no simulated
/// cycles and no micro-ops; sinks that do not care inherit a no-op hook.
/// The sampling profiler in `qoa-obs` reconstructs guest call stacks from
/// them at replay time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameEvent {
    /// A guest frame was pushed (a function call was entered).
    Push {
        /// The callee's name. Interned per code object — clones are a
        /// reference-count bump, not a string copy. `Arc` (not `Rc`) so
        /// captured traces can be shared across the parallel sweep
        /// executor's worker threads.
        name: Arc<str>,
    },
    /// The current guest frame was popped (the function returned).
    Pop,
}

/// A synthetic program-counter value inside a simulated code segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Pc(pub u64);

impl Pc {
    /// The raw simulated address of this static instruction.
    pub fn addr(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for Pc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// The operational class of a simulated machine instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Integer ALU operation.
    Alu,
    /// Floating-point operation.
    FpAlu,
    /// Integer multiply.
    Mul,
    /// Integer or floating-point divide.
    Div,
    /// Memory load.
    Load {
        /// Simulated effective address.
        addr: u64,
        /// Access size in bytes.
        size: u8,
    },
    /// Memory store.
    Store {
        /// Simulated effective address.
        addr: u64,
        /// Access size in bytes.
        size: u8,
    },
    /// Conditional or unconditional branch.
    Branch {
        /// Whether the branch was taken.
        taken: bool,
        /// Branch target PC.
        target: Pc,
        /// Whether the target comes from a register/memory (indirect).
        indirect: bool,
    },
    /// Function call.
    Call {
        /// Call target PC.
        target: Pc,
        /// Whether the call goes through a function pointer.
        indirect: bool,
    },
    /// Function return (always indirect via the return address).
    Ret,
}

impl OpKind {
    /// Whether this op accesses data memory.
    pub fn is_memory(self) -> bool {
        matches!(self, OpKind::Load { .. } | OpKind::Store { .. })
    }

    /// Whether this op redirects control flow.
    pub fn is_control(self) -> bool {
        matches!(
            self,
            OpKind::Branch { .. } | OpKind::Call { .. } | OpKind::Ret
        )
    }

    /// Whether the op's control transfer is indirect (BTB-relevant).
    pub fn is_indirect(self) -> bool {
        match self {
            OpKind::Branch { indirect, .. } => indirect,
            OpKind::Call { indirect, .. } => indirect,
            OpKind::Ret => true,
            _ => false,
        }
    }

    /// The data address touched, if any.
    pub fn data_addr(self) -> Option<(u64, u8)> {
        match self {
            OpKind::Load { addr, size } | OpKind::Store { addr, size } => Some((addr, size)),
            _ => None,
        }
    }
}

/// One simulated machine instruction with full attribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroOp {
    /// Synthetic PC of the static instruction that produced this op.
    pub pc: Pc,
    /// Operational class.
    pub kind: OpKind,
    /// Table II attribution label.
    pub category: Category,
    /// Execution phase (interpreter / JIT / GC / native).
    pub phase: Phase,
}

/// Consumer of a micro-op stream.
///
/// Implemented by the cycle-accurate cores in `qoa-uarch` and by cheap
/// counting sinks used in tests. Run-times are generic over the sink so the
/// same execution can be counted, cached-simulated, or discarded.
pub trait OpSink {
    /// Consume one micro-op.
    fn op(&mut self, op: MicroOp);

    /// Called when the run-time switches execution phase. Sinks that keep
    /// per-phase statistics can hook this; the default does nothing.
    fn phase_change(&mut self, _phase: Phase) {}

    /// Called when the run-time pushes or pops a guest frame. Sinks that
    /// reconstruct guest call stacks (e.g. the sampling profiler) hook
    /// this; the default does nothing.
    fn frame_event(&mut self, _event: &FrameEvent) {}
}

/// A sink that counts ops per category and kind but models no timing.
///
/// # Example
///
/// ```
/// use qoa_model::{Category, CountingSink, MicroOp, OpKind, OpSink, Pc, Phase};
///
/// let mut sink = CountingSink::default();
/// sink.op(MicroOp {
///     pc: Pc(0x400000),
///     kind: OpKind::Alu,
///     category: Category::Execute,
///     phase: Phase::Interpreter,
/// });
/// assert_eq!(sink.total(), 1);
/// assert_eq!(sink.by_category[Category::Execute], 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CountingSink {
    /// Instruction count per category.
    pub by_category: crate::CategoryMap<u64>,
    /// Instruction count per phase.
    pub by_phase: crate::PhaseMap<u64>,
    /// Total loads.
    pub loads: u64,
    /// Total stores.
    pub stores: u64,
    /// Total control-flow ops.
    pub branches: u64,
    /// Total indirect control-flow ops.
    pub indirect: u64,
}

impl CountingSink {
    /// Creates an empty counting sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total instructions observed.
    pub fn total(&self) -> u64 {
        self.by_category.total()
    }
}

impl OpSink for CountingSink {
    fn op(&mut self, op: MicroOp) {
        self.by_category[op.category] += 1;
        self.by_phase[op.phase] += 1;
        match op.kind {
            OpKind::Load { .. } => self.loads += 1,
            OpKind::Store { .. } => self.stores += 1,
            k if k.is_control() => {
                self.branches += 1;
                if k.is_indirect() {
                    self.indirect += 1;
                }
            }
            _ => {}
        }
    }
}

/// A sink that discards everything (for pure-semantics runs).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl OpSink for NullSink {
    fn op(&mut self, _op: MicroOp) {}
}

impl<S: OpSink + ?Sized> OpSink for &mut S {
    fn op(&mut self, op: MicroOp) {
        (**self).op(op);
    }
    fn phase_change(&mut self, phase: Phase) {
        (**self).phase_change(phase);
    }
    fn frame_event(&mut self, event: &FrameEvent) {
        (**self).frame_event(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_kind_classification() {
        assert!(OpKind::Load { addr: 0, size: 8 }.is_memory());
        assert!(OpKind::Store { addr: 0, size: 8 }.is_memory());
        assert!(!OpKind::Alu.is_memory());
        assert!(OpKind::Ret.is_control());
        assert!(OpKind::Ret.is_indirect());
        assert!(OpKind::Call { target: Pc(0), indirect: true }.is_indirect());
        assert!(!OpKind::Call { target: Pc(0), indirect: false }.is_indirect());
        assert_eq!(
            OpKind::Load { addr: 42, size: 4 }.data_addr(),
            Some((42, 4))
        );
        assert_eq!(OpKind::Alu.data_addr(), None);
    }

    #[test]
    fn counting_sink_counts() {
        let mut s = CountingSink::new();
        let mk = |kind| MicroOp {
            pc: Pc(1),
            kind,
            category: Category::Dispatch,
            phase: Phase::Interpreter,
        };
        s.op(mk(OpKind::Alu));
        s.op(mk(OpKind::Load { addr: 8, size: 8 }));
        s.op(mk(OpKind::Store { addr: 8, size: 8 }));
        s.op(mk(OpKind::Branch {
            taken: true,
            target: Pc(2),
            indirect: true,
        }));
        assert_eq!(s.total(), 4);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.branches, 1);
        assert_eq!(s.indirect, 1);
        assert_eq!(s.by_phase[Phase::Interpreter], 4);
    }
}
