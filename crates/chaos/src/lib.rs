//! Deterministic fault injection for the QOA stack.
//!
//! A [`FaultPlan`] is a seeded schedule of injection points — each one a
//! [`FaultKind`] armed at a specific [`FaultClock`] tick. The clock counts
//! *simulated* work (executed guest bytecodes), never wall-clock time, so a
//! plan replayed against the same program injects at exactly the same
//! machine state every time. The VM and JIT layers poll [`ChaosState`] at
//! their natural fault sites (step boundary, allocation, trace compile,
//! trace execution); the experiment layer recovers by restoring a
//! [`Snapshot`] taken before the injection and disarming the consumed
//! point, which makes a recovered run byte-identical to a fault-free one
//! by construction.
//!
//! This crate is deliberately dependency-free plain data: the VM embeds a
//! `ChaosState` (or `None` when chaos is off), and everything here is
//! `Clone` so fault bookkeeping snapshots and restores together with the
//! machine it instruments.

/// The kinds of fault the engine can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// Allocation failure in the heap backing store (simulated OOM after
    /// one emergency collection).
    AllocFault,
    /// Fuel (step budget) trips at a step boundary.
    FuelTrip,
    /// Deadline trips at a step boundary.
    DeadlineTrip,
    /// A corrupted code object is presented at load time; the verifier is
    /// the recovery path.
    BytecodeCorrupt,
    /// Trace compilation fails after recording (transient JIT backend
    /// failure).
    JitCompileFault,
    /// A compiled trace aborts mid-execution and must deoptimize.
    TraceAbort,
}

impl FaultKind {
    /// Every kind, in a stable order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::AllocFault,
        FaultKind::FuelTrip,
        FaultKind::DeadlineTrip,
        FaultKind::BytecodeCorrupt,
        FaultKind::JitCompileFault,
        FaultKind::TraceAbort,
    ];

    /// Kinds that can fire under an interpreter-only runtime (no JIT).
    pub const INTERP: [FaultKind; 4] = [
        FaultKind::AllocFault,
        FaultKind::FuelTrip,
        FaultKind::DeadlineTrip,
        FaultKind::BytecodeCorrupt,
    ];

    /// Stable label used for counters, journal records and reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::AllocFault => "alloc",
            FaultKind::FuelTrip => "fuel",
            FaultKind::DeadlineTrip => "deadline",
            FaultKind::BytecodeCorrupt => "bytecode-corrupt",
            FaultKind::JitCompileFault => "jit-compile",
            FaultKind::TraceAbort => "trace-abort",
        }
    }

    /// True for kinds injected inside the VM/JIT step loop (as opposed to
    /// load-time corruption handled by the experiment layer).
    pub fn is_runtime(self) -> bool {
        !matches!(self, FaultKind::BytecodeCorrupt)
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One scheduled injection: fire `kind` once the clock reaches `tick`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPoint {
    /// Simulated-work tick (executed guest bytecodes) at which the fault
    /// arms. The fault fires at the *first poll of the matching site* at
    /// or after this tick, so e.g. an [`FaultKind::AllocFault`] armed at
    /// tick 100 fires at the first allocation from step 100 onward.
    pub tick: u64,
    /// What to inject.
    pub kind: FaultKind,
}

/// A seeded, reproducible schedule of fault points.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed the plan was derived from (0 for hand-built plans).
    pub seed: u64,
    /// Injection points, sorted by tick.
    pub points: Vec<FaultPoint>,
}

impl FaultPlan {
    /// A plan that injects nothing. Arming the engine with it must leave
    /// the simulation bit-identical to running without chaos at all.
    pub fn empty() -> FaultPlan {
        FaultPlan::default()
    }

    /// A single hand-placed fault.
    pub fn single(tick: u64, kind: FaultKind) -> FaultPlan {
        FaultPlan { seed: 0, points: vec![FaultPoint { tick, kind }] }
    }

    /// Derives a plan from `seed`: up to `max_points` faults drawn from
    /// `kinds`, at ticks uniform in `[1, horizon]`. The same
    /// (seed, horizon, kinds) always yields the same plan.
    pub fn seeded(seed: u64, horizon: u64, max_points: usize, kinds: &[FaultKind]) -> FaultPlan {
        let mut rng = SplitMix64::new(seed ^ 0x9e37_79b9_7f4a_7c15);
        let horizon = horizon.max(1);
        let mut points = Vec::new();
        if !kinds.is_empty() {
            let n = if max_points == 0 { 0 } else { 1 + (rng.next() as usize % max_points) };
            for _ in 0..n {
                let tick = 1 + rng.next() % horizon;
                let kind = kinds[rng.next() as usize % kinds.len()];
                points.push(FaultPoint { tick, kind });
            }
        }
        points.sort_by_key(|p| (p.tick, p.kind));
        FaultPlan { seed, points }
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Deterministic clock: ticks once per executed guest bytecode, mirroring
/// the VM's step counter. No wall-clock source feeds it, which is the
/// whole determinism argument — see DESIGN.md §11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultClock {
    ticks: u64,
}

impl FaultClock {
    /// A clock at tick zero.
    pub fn new() -> FaultClock {
        FaultClock::default()
    }

    /// Advances one simulated step.
    pub fn advance(&mut self) {
        self.ticks += 1;
    }

    /// Current tick.
    pub fn now(&self) -> u64 {
        self.ticks
    }
}

/// Record of one injected fault, reported back to the experiment layer so
/// it can disarm the consumed point after restoring a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// Index of the consumed point within the plan.
    pub index: usize,
    /// What fired.
    pub kind: FaultKind,
    /// Clock tick at which it fired.
    pub tick: u64,
}

/// Live injection state embedded in an instrumented machine.
///
/// Everything here is plain data and `Clone`: snapshotting the machine
/// snapshots the chaos bookkeeping with it, so a restore rewinds fault
/// state and machine state together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosState {
    plan: FaultPlan,
    clock: FaultClock,
    /// `consumed[i]` — plan point `i` already fired (or was disarmed).
    consumed: Vec<bool>,
    /// The most recent injection, taken by the experiment layer to decide
    /// whether an error was injected or organic.
    last_injected: Option<FaultRecord>,
    /// When set, JIT faults degrade in place (deopt + continue) instead of
    /// surfacing an error for checkpoint/restore recovery.
    degrade_jit: bool,
    /// Count of faults recovered *inside* the machine (degrade mode).
    in_vm_recoveries: u64,
}

impl ChaosState {
    /// Arms a plan. The clock starts at zero.
    pub fn new(plan: FaultPlan) -> ChaosState {
        let consumed = vec![false; plan.points.len()];
        ChaosState {
            plan,
            clock: FaultClock::new(),
            consumed,
            last_injected: None,
            degrade_jit: false,
            in_vm_recoveries: 0,
        }
    }

    /// Switches JIT faults to degrade-in-place mode.
    pub fn with_degrade_jit(mut self) -> ChaosState {
        self.degrade_jit = true;
        self
    }

    /// Whether JIT faults degrade in place rather than surfacing.
    pub fn degrade_jit(&self) -> bool {
        self.degrade_jit
    }

    /// The armed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Advances the clock one step. Called once per executed bytecode.
    pub fn on_step(&mut self) {
        self.clock.advance();
    }

    /// Current clock tick.
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// Fires the first unconsumed point of `kind` whose tick has been
    /// reached. Consumes the point and remembers it as the last injection.
    pub fn poll(&mut self, kind: FaultKind) -> Option<FaultRecord> {
        let now = self.clock.now();
        for (i, p) in self.plan.points.iter().enumerate() {
            if !self.consumed[i] && p.kind == kind && p.tick <= now {
                self.consumed[i] = true;
                let rec = FaultRecord { index: i, kind, tick: now };
                self.last_injected = Some(rec);
                return Some(rec);
            }
        }
        None
    }

    /// Fires any unconsumed point of `kind` regardless of tick — used for
    /// load-time faults ([`FaultKind::BytecodeCorrupt`]) that precede the
    /// first step.
    pub fn poll_at_load(&mut self, kind: FaultKind) -> Option<FaultRecord> {
        for (i, p) in self.plan.points.iter().enumerate() {
            if !self.consumed[i] && p.kind == kind {
                self.consumed[i] = true;
                let rec = FaultRecord { index: i, kind, tick: self.clock.now() };
                self.last_injected = Some(rec);
                return Some(rec);
            }
        }
        None
    }

    /// Marks a point consumed without firing it. Called on a *restored*
    /// machine so the point that triggered the restore cannot re-fire.
    pub fn disarm(&mut self, index: usize) {
        if let Some(slot) = self.consumed.get_mut(index) {
            *slot = true;
        }
    }

    /// Takes the record of the last injection, if any.
    pub fn take_last_injected(&mut self) -> Option<FaultRecord> {
        self.last_injected.take()
    }

    /// Notes a fault recovered in place (degrade mode).
    pub fn note_in_vm_recovery(&mut self) {
        self.in_vm_recoveries += 1;
        self.last_injected = None;
    }

    /// Faults recovered in place so far.
    pub fn in_vm_recoveries(&self) -> u64 {
        self.in_vm_recoveries
    }

    /// True once every scheduled point has fired or been disarmed.
    pub fn exhausted(&self) -> bool {
        self.consumed.iter().all(|&c| c)
    }
}

/// Version tag of the in-memory snapshot format. Bump when the captured
/// state gains fields that an older restore path would misinterpret.
pub const SNAPSHOT_VERSION: u32 = 1;

/// A versioned mid-run snapshot of an instrumented machine.
///
/// The machine type `M` carries interpreter, heap, *and* attribution state
/// (the op sink is part of the machine), so restoring rewinds the entire
/// simulation — including any micro-ops a failed recovery attempt emitted —
/// to the checkpoint. Deterministic re-execution from there reproduces the
/// fault-free trace byte for byte.
#[derive(Debug, Clone)]
pub struct Snapshot<M> {
    version: u32,
    steps: u64,
    state: M,
}

impl<M: Clone> Snapshot<M> {
    /// Captures `machine` at `steps` executed bytecodes.
    pub fn capture(steps: u64, machine: &M) -> Snapshot<M> {
        Snapshot { version: SNAPSHOT_VERSION, steps, state: machine.clone() }
    }

    /// Snapshot format version.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Executed-bytecode count at capture time.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Restores the captured machine. `None` when the snapshot's format
    /// version is not the one this code writes (cannot happen in-process;
    /// the check guards future serialized snapshots).
    pub fn restore(&self) -> Option<M> {
        (self.version == SNAPSHOT_VERSION).then(|| self.state.clone())
    }
}

/// SplitMix64: tiny, deterministic, and good enough for schedule
/// derivation. Matches the generator used by the vendored proptest shim.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultPlan::seeded(42, 10_000, 4, &FaultKind::ALL);
        let b = FaultPlan::seeded(42, 10_000, 4, &FaultKind::ALL);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.points.iter().all(|p| p.tick >= 1 && p.tick <= 10_000));
        let c = FaultPlan::seeded(43, 10_000, 4, &FaultKind::ALL);
        assert_ne!(a, c, "different seeds should (almost surely) differ");
    }

    #[test]
    fn poll_fires_once_at_or_after_tick() {
        let mut st = ChaosState::new(FaultPlan::single(3, FaultKind::FuelTrip));
        assert_eq!(st.poll(FaultKind::FuelTrip), None, "tick 0 < 3");
        for _ in 0..3 {
            st.on_step();
        }
        assert_eq!(st.poll(FaultKind::DeadlineTrip), None, "kind mismatch");
        let rec = st.poll(FaultKind::FuelTrip).expect("fires at tick 3");
        assert_eq!(rec, FaultRecord { index: 0, kind: FaultKind::FuelTrip, tick: 3 });
        assert_eq!(st.poll(FaultKind::FuelTrip), None, "consumed");
        assert!(st.exhausted());
    }

    #[test]
    fn disarm_prevents_refire_after_restore() {
        let plan = FaultPlan::single(1, FaultKind::AllocFault);
        let mut st = ChaosState::new(plan);
        let pristine = st.clone(); // stands in for the snapshot
        st.on_step();
        let rec = st.poll(FaultKind::AllocFault).expect("fires");
        // Restore: rewind to pristine state, then disarm the consumed point.
        let mut restored = pristine;
        restored.disarm(rec.index);
        restored.on_step();
        assert_eq!(restored.poll(FaultKind::AllocFault), None, "must not re-fire");
    }

    #[test]
    fn load_faults_fire_before_any_step() {
        let mut st = ChaosState::new(FaultPlan::single(500, FaultKind::BytecodeCorrupt));
        assert!(st.poll_at_load(FaultKind::BytecodeCorrupt).is_some());
        assert!(st.poll_at_load(FaultKind::BytecodeCorrupt).is_none());
    }

    #[test]
    fn snapshot_round_trips_state() {
        let st = ChaosState::new(FaultPlan::seeded(7, 100, 3, &FaultKind::INTERP));
        let snap = Snapshot::capture(12, &st);
        assert_eq!(snap.version(), SNAPSHOT_VERSION);
        assert_eq!(snap.steps(), 12);
        assert_eq!(snap.restore(), Some(st));
    }
}
