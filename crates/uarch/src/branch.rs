//! Branch prediction: a two-level adaptive direction predictor, a branch
//! target buffer for indirect transfers, and a return-address stack.
//!
//! Table I specifies a "2-level 2-bit BP with 2048x18b L1, 16384x2b L2":
//! a first-level table of per-branch history registers indexed by PC, whose
//! history selects a 2-bit saturating counter in the second-level pattern
//! history table. The Fig. 7(b) sweep scales both tables (and the BTB)
//! between 0.5x and 8x of this baseline.

use crate::config::BranchConfig;
use qoa_model::Pc;

/// Direction + target prediction statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchStats {
    /// Conditional-direction predictions made.
    pub direction_predictions: u64,
    /// Conditional-direction mispredictions.
    pub direction_mispredicts: u64,
    /// Indirect-target predictions made (indirect branches, calls, returns).
    pub target_predictions: u64,
    /// Indirect-target mispredictions.
    pub target_mispredicts: u64,
}

impl BranchStats {
    /// Overall misprediction rate across directions and targets.
    pub fn mispredict_rate(&self) -> f64 {
        let p = self.direction_predictions + self.target_predictions;
        if p == 0 {
            0.0
        } else {
            (self.direction_mispredicts + self.target_mispredicts) as f64 / p as f64
        }
    }
}

/// Two-level adaptive direction predictor.
#[derive(Debug, Clone)]
pub struct TwoLevelPredictor {
    history: Vec<u32>,
    pht: Vec<u8>,
    history_mask: u32,
    l1_mask: usize,
    l2_mask: usize,
}

impl TwoLevelPredictor {
    /// Builds the predictor from a [`BranchConfig`].
    ///
    /// # Panics
    ///
    /// Panics if the table sizes are not powers of two.
    pub fn new(cfg: &BranchConfig) -> Self {
        assert!(cfg.l1_entries.is_power_of_two());
        assert!(cfg.l2_entries.is_power_of_two());
        TwoLevelPredictor {
            history: vec![0; cfg.l1_entries],
            // Weakly taken: interpreter loops are mostly taken.
            pht: vec![2; cfg.l2_entries],
            history_mask: (1u32 << cfg.history_bits.min(31)) - 1,
            l1_mask: cfg.l1_entries - 1,
            l2_mask: cfg.l2_entries - 1,
        }
    }

    fn pht_index(&self, pc: Pc, history: u32) -> usize {
        // Hash history with the PC so distinct branches sharing history
        // patterns spread across the PHT.
        ((history as usize) ^ ((pc.0 >> 2) as usize)) & self.l2_mask
    }

    /// Predicts the direction of the conditional branch at `pc`.
    pub fn predict(&self, pc: Pc) -> bool {
        let h = self.history[(pc.0 >> 2) as usize & self.l1_mask];
        self.pht[self.pht_index(pc, h)] >= 2
    }

    /// Updates predictor state with the resolved direction.
    pub fn update(&mut self, pc: Pc, taken: bool) {
        let l1 = (pc.0 >> 2) as usize & self.l1_mask;
        let h = self.history[l1];
        let idx = self.pht_index(pc, h);
        let c = &mut self.pht[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history[l1] = ((h << 1) | taken as u32) & self.history_mask;
    }
}

/// Branch target buffer for indirect control transfers.
#[derive(Debug, Clone)]
pub struct Btb {
    entries: Vec<(u64, u64)>, // (tag, target)
    mask: usize,
}

impl Btb {
    /// Builds a direct-mapped BTB with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two());
        Btb {
            entries: vec![(u64::MAX, 0); entries],
            mask: entries - 1,
        }
    }

    /// Predicted target for the transfer at `pc`, if any.
    pub fn predict(&self, pc: Pc) -> Option<Pc> {
        let idx = (pc.0 >> 2) as usize & self.mask;
        let (tag, target) = self.entries[idx];
        (tag == pc.0).then_some(Pc(target))
    }

    /// Records the resolved target.
    pub fn update(&mut self, pc: Pc, target: Pc) {
        let idx = (pc.0 >> 2) as usize & self.mask;
        self.entries[idx] = (pc.0, target.0);
    }
}

/// Return-address stack.
#[derive(Debug, Clone)]
pub struct ReturnStack {
    stack: Vec<u64>,
    depth: usize,
}

impl ReturnStack {
    /// Builds a RAS with the given maximum depth.
    pub fn new(depth: usize) -> Self {
        ReturnStack { stack: Vec::with_capacity(depth), depth }
    }

    /// Pushes a return address at a call.
    pub fn push(&mut self, ret: Pc) {
        if self.stack.len() == self.depth {
            self.stack.remove(0);
        }
        self.stack.push(ret.0);
    }

    /// Pops the predicted return address at a return.
    pub fn pop(&mut self) -> Option<Pc> {
        self.stack.pop().map(Pc)
    }
}

/// Complete front-end predictor: direction + BTB + RAS, with statistics.
#[derive(Debug, Clone)]
pub struct BranchUnit {
    predictor: TwoLevelPredictor,
    btb: Btb,
    ras: ReturnStack,
    stats: BranchStats,
    /// Pipeline refill penalty per mispredict.
    pub mispredict_penalty: u64,
}

impl BranchUnit {
    /// Builds the unit from a [`BranchConfig`].
    pub fn new(cfg: &BranchConfig) -> Self {
        BranchUnit {
            predictor: TwoLevelPredictor::new(cfg),
            btb: Btb::new(cfg.btb_entries),
            ras: ReturnStack::new(cfg.ras_depth),
            stats: BranchStats::default(),
            mispredict_penalty: cfg.mispredict_penalty,
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BranchStats {
        self.stats
    }

    /// Resets statistics (predictor state is preserved).
    pub fn reset_stats(&mut self) {
        self.stats = BranchStats::default();
    }

    /// Resolves a conditional/direct branch; returns `true` on mispredict.
    pub fn branch(&mut self, pc: Pc, taken: bool, target: Pc, indirect: bool) -> bool {
        let mut miss = false;
        self.stats.direction_predictions += 1;
        if self.predictor.predict(pc) != taken {
            self.stats.direction_mispredicts += 1;
            miss = true;
        }
        self.predictor.update(pc, taken);
        if indirect && taken {
            self.stats.target_predictions += 1;
            if self.btb.predict(pc) != Some(target) {
                self.stats.target_mispredicts += 1;
                miss = true;
            }
            self.btb.update(pc, target);
        }
        miss
    }

    /// Resolves a call; returns `true` on mispredict (indirect target miss).
    pub fn call(&mut self, pc: Pc, target: Pc, indirect: bool) -> bool {
        // Return address is the instruction after the call site.
        self.ras.push(Pc(pc.0 + 4));
        if indirect {
            self.stats.target_predictions += 1;
            if self.btb.predict(pc) != Some(target) {
                self.stats.target_mispredicts += 1;
                self.btb.update(pc, target);
                return true;
            }
            self.btb.update(pc, target);
        }
        false
    }

    /// Resolves a return; returns `true` on mispredict (RAS miss).
    pub fn ret(&mut self, actual: Pc) -> bool {
        self.stats.target_predictions += 1;
        match self.ras.pop() {
            Some(predicted) if predicted == actual => false,
            _ => {
                self.stats.target_mispredicts += 1;
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> BranchUnit {
        BranchUnit::new(&BranchConfig::skylake())
    }

    #[test]
    fn learns_always_taken_loop() {
        let mut u = unit();
        let pc = Pc(0x400100);
        let t = Pc(0x400000);
        for _ in 0..8 {
            u.branch(pc, true, t, false);
        }
        let before = u.stats().direction_mispredicts;
        for _ in 0..100 {
            u.branch(pc, true, t, false);
        }
        assert_eq!(u.stats().direction_mispredicts, before);
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut u = unit();
        let pc = Pc(0x400200);
        let t = Pc(0x400000);
        // Warm up the alternating pattern.
        let mut taken = false;
        for _ in 0..64 {
            u.branch(pc, taken, t, false);
            taken = !taken;
        }
        let before = u.stats().direction_mispredicts;
        for _ in 0..100 {
            u.branch(pc, taken, t, false);
            taken = !taken;
        }
        let after = u.stats().direction_mispredicts;
        assert!(after - before <= 2, "missed {} of 100", after - before);
    }

    #[test]
    fn btb_learns_stable_indirect_target() {
        let mut u = unit();
        let pc = Pc(0x400300);
        let t = Pc(0x500000);
        assert!(u.call(pc, t, true)); // cold miss
        assert!(!u.call(pc, t, true)); // learned
        assert!(u.call(pc, Pc(0x600000), true)); // target changed
    }

    #[test]
    fn ras_matches_balanced_calls() {
        let mut u = unit();
        let call_pc = Pc(0x400400);
        u.call(call_pc, Pc(0x500000), false);
        assert!(!u.ret(Pc(call_pc.0 + 4)));
        // Unbalanced return mispredicts.
        assert!(u.ret(Pc(0x999999)));
    }

    #[test]
    fn tiny_tables_alias_badly() {
        // Many distinct alternating branches in a tiny predictor should
        // mispredict far more than in the full-size predictor.
        // 64 indirect call sites, each with its own stable target: a big
        // BTB learns them all, a tiny direct-mapped BTB thrashes on the
        // aliasing sites. This is the paper's "table too small → accuracy
        // suffers" regime.
        let run = |cfg: &BranchConfig| {
            let mut u = BranchUnit::new(cfg);
            let mut misses = 0;
            for _round in 0..200u64 {
                for b in 0..64u64 {
                    let pc = Pc(0x400000 + b * 64);
                    let target = Pc(0x500000 + b * 1024);
                    if u.call(pc, target, true) {
                        misses += 1;
                    }
                }
            }
            misses
        };
        let big = run(&BranchConfig::skylake());
        let small = run(&BranchConfig::skylake().scaled(0.015)); // 16-entry floor
        assert!(small > big, "small={small} big={big}");
    }
}
