//! Main-memory model: flat latency plus a bandwidth-limited channel.
//!
//! Replaces DRAMSim2 in the paper's stack. Each LLC miss transfers one cache
//! line over a channel with finite sustained bandwidth; when the channel is
//! busy the access queues, which is what produces the steep CPI growth at
//! the low end of the paper's Fig. 7(f) bandwidth sweep.

use crate::config::MemConfig;

/// Bandwidth-limited DRAM channel.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: MemConfig,
    line_bytes: u64,
    /// Cycles of channel occupancy per line transfer, in 1/256 cycle units
    /// to keep integer math while supporting fractional rates.
    occupancy_q8: u64,
    /// Cycle (in 1/256 units) at which the channel next becomes free.
    free_at_q8: u64,
    accesses: u64,
    queued_cycles: u64,
}

impl Dram {
    /// Builds a channel for the given memory config and LLC line size.
    pub fn new(cfg: MemConfig, line_bytes: u64) -> Self {
        let bpc = cfg.bytes_per_cycle();
        let occupancy = (line_bytes as f64 / bpc * 256.0).ceil() as u64;
        Dram {
            cfg,
            line_bytes,
            occupancy_q8: occupancy.max(1),
            free_at_q8: 0,
            accesses: 0,
            queued_cycles: 0,
        }
    }

    /// Flat DRAM latency in cycles.
    pub fn latency(&self) -> u64 {
        self.cfg.latency
    }

    /// Performs one line transfer issued at cycle `now`, returning the
    /// queuing delay (cycles spent waiting for the channel).
    pub fn access(&mut self, now: u64) -> u64 {
        self.accesses += 1;
        let now_q8 = now << 8;
        let start = self.free_at_q8.max(now_q8);
        self.free_at_q8 = start + self.occupancy_q8;
        let queue = (start - now_q8) >> 8;
        self.queued_cycles += queue;
        queue
    }

    /// Total line transfers served.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total bytes transferred.
    pub fn bytes_transferred(&self) -> u64 {
        self.accesses * self.line_bytes
    }

    /// Total cycles accesses spent queued behind the channel.
    pub fn queued_cycles(&self) -> u64 {
        self.queued_cycles
    }

    /// Resets statistics and channel state.
    pub fn reset_stats(&mut self) {
        self.accesses = 0;
        self.queued_cycles = 0;
        self.free_at_q8 = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(mbps: u64) -> MemConfig {
        MemConfig { latency: 173, bandwidth_mbps: mbps, clock_hz: 3_400_000_000 }
    }

    #[test]
    fn high_bandwidth_rarely_queues() {
        let mut d = Dram::new(cfg(25600), 64);
        let mut total_queue = 0;
        for now in (0..1000).step_by(20) {
            total_queue += d.access(now);
        }
        assert_eq!(total_queue, 0);
    }

    #[test]
    fn low_bandwidth_queues_back_to_back_accesses() {
        // 200 MB/s at 3.4 GHz ≈ 0.0588 B/cycle → ~1088 cycles per 64 B line.
        let mut d = Dram::new(cfg(200), 64);
        assert_eq!(d.access(0), 0);
        let q = d.access(0);
        assert!(q > 1000, "queue was {q}");
    }

    #[test]
    fn spaced_accesses_do_not_queue() {
        let mut d = Dram::new(cfg(200), 64);
        assert_eq!(d.access(0), 0);
        assert_eq!(d.access(100_000), 0);
    }

    #[test]
    fn byte_accounting() {
        let mut d = Dram::new(cfg(19200), 64);
        d.access(0);
        d.access(0);
        assert_eq!(d.accesses(), 2);
        assert_eq!(d.bytes_transferred(), 128);
    }
}
