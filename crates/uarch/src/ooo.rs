//! Approximate out-of-order core model used for the §V parameter sweeps.
//!
//! A one-pass, trace-driven OOO approximation in the spirit of ZSim's OOO
//! model: dispatch is bounded by issue width, the ROB bounds the in-flight
//! window, loads overlap through a bounded set of miss-status registers,
//! branch mispredicts flush the front end, and instruction fetch stalls on
//! I-cache misses. Dependences between micro-ops are synthesized
//! deterministically from the static PC (interpreter code is chain-heavy,
//! which is what produces the paper's "low instruction-level parallelism"
//! finding — CPI barely improves past a 4-wide issue).
//!
//! Exact per-instruction attribution is *not* well-defined on an OOO
//! pipeline (the paper makes the same observation and uses the simple core
//! for Fig. 4); this core attributes the monotone retire-clock deltas, which
//! is good enough for the per-phase lines of Fig. 7.

use crate::branch::BranchUnit;
use crate::cache::MemoryHierarchy;
use crate::config::UarchConfig;
use crate::stats::ExecutionStats;
use qoa_model::{MicroOp, OpKind, OpSink};

const Q: u64 = 256; // fixed-point scale for fractional dispatch slots

/// Approximate out-of-order core.
#[derive(Debug)]
pub struct OooCore {
    mem: MemoryHierarchy,
    branch: BranchUnit,
    stats: ExecutionStats,
    /// Completion time (cycles, q8) of each ROB slot, indexed by op#%rob.
    rob: Vec<u64>,
    rob_mask: Option<usize>, // Some(mask) when rob size is a power of two
    rob_size: usize,
    ops: u64,
    next_dispatch_q8: u64,
    dispatch_step_q8: u64,
    fetch_ready_q8: u64,
    retire_clock_q8: u64,
    last_fetch_line: u64,
    line_mask: u64,
    mshr: Vec<u64>, // completion times (q8) of outstanding load misses
    load_latency: u64,
}

impl OooCore {
    /// Builds an OOO core from the configuration.
    pub fn new(cfg: &UarchConfig) -> Self {
        cfg.validate();
        let rob_size = cfg.core.rob_size.max(1);
        let mshr_slots = (cfg.core.load_queue / 7).clamp(2, 24);
        OooCore {
            mem: MemoryHierarchy::new(cfg),
            branch: BranchUnit::new(&cfg.branch),
            stats: ExecutionStats::default(),
            rob: vec![0; rob_size],
            rob_mask: rob_size.is_power_of_two().then(|| rob_size - 1),
            rob_size,
            ops: 0,
            next_dispatch_q8: 0,
            dispatch_step_q8: (Q / cfg.core.issue_width as u64).max(1),
            fetch_ready_q8: 0,
            retire_clock_q8: 0,
            last_fetch_line: u64::MAX,
            line_mask: !(cfg.l1i.line - 1),
            mshr: vec![0; mshr_slots],
            load_latency: cfg.l1d.latency.saturating_sub(1).max(1),
        }
    }

    #[inline]
    fn rob_slot(&self, n: u64) -> usize {
        match self.rob_mask {
            Some(mask) => (n as usize) & mask,
            None => (n % self.rob_size as u64) as usize,
        }
    }

    /// Finishes the run and returns the accumulated statistics.
    pub fn finish(mut self) -> ExecutionStats {
        self.stats.cycles = self.retire_clock_q8 >> 8;
        self.stats.l1i = self.mem.l1i_stats();
        self.stats.l1d = self.mem.l1d_stats();
        self.stats.l2 = self.mem.l2_stats();
        self.stats.llc = self.mem.llc_stats();
        self.stats.branch = self.branch.stats();
        self.stats.dram_bytes = self.mem.dram_bytes();
        self.stats
    }

    /// Read-only view of statistics accumulated so far (cycles and cache
    /// counters are folded in by [`OooCore::finish`]).
    pub fn stats(&self) -> &ExecutionStats {
        &self.stats
    }

    /// Current cycle estimate (for progress reporting).
    pub fn cycles_so_far(&self) -> u64 {
        self.retire_clock_q8 >> 8
    }
}

impl OpSink for OooCore {
    fn op(&mut self, op: MicroOp) {
        let n = self.ops;
        self.ops += 1;
        let slot = self.rob_slot(n);

        // --- Front end ----------------------------------------------------
        let mut dispatch = self.next_dispatch_q8.max(self.fetch_ready_q8);
        // ROB full: cannot dispatch until the op that owns this slot retires.
        let rob_ready = self.rob[slot];
        if rob_ready > dispatch {
            dispatch = rob_ready;
        }
        let now_cycles = dispatch >> 8;
        // Instruction fetch, once per new line.
        let line = op.pc.0 & self.line_mask;
        if line != self.last_fetch_line {
            self.last_fetch_line = line;
            let fetch = self.mem.fetch(op.pc.0, now_cycles);
            if fetch.penalty > 0 {
                // Fetch bubble: front end stalls for the miss.
                self.fetch_ready_q8 = dispatch + (fetch.penalty << 8);
                dispatch = self.fetch_ready_q8;
            }
        }
        self.next_dispatch_q8 = dispatch + self.dispatch_step_q8;

        // --- Dependences ---------------------------------------------------
        // Synthetic producer at distance 1..=3, derived from the static PC:
        // the same static instruction always has the same dependence shape.
        let dist = 1 + ((op.pc.0 >> 2) % 3);
        let mut start = dispatch;
        if n >= dist {
            let dep_done = self.rob[self.rob_slot(n - dist)];
            if dep_done > start {
                start = dep_done;
            }
        }

        // --- Execute --------------------------------------------------------
        let mut latency: u64 = match op.kind {
            OpKind::Alu => 1,
            OpKind::FpAlu => 3,
            OpKind::Mul => 3,
            OpKind::Div => 16,
            OpKind::Load { .. } => self.load_latency,
            OpKind::Store { .. } => 1,
            OpKind::Branch { .. } | OpKind::Call { .. } | OpKind::Ret => 1,
        };
        match op.kind {
            OpKind::Load { addr, .. } => {
                let acc = self.mem.data(addr, start >> 8);
                if acc.penalty > 0 {
                    // Need a free MSHR slot to overlap the miss.
                    let (idx, &earliest) = self
                        .mshr
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &t)| t)
                        .expect("mshr is non-empty");
                    if earliest > start {
                        start = earliest;
                    }
                    let done = start + (acc.penalty << 8);
                    self.mshr[idx] = done;
                    latency += acc.penalty;
                }
            }
            OpKind::Store { addr, .. } => {
                // The store itself retires through the store buffer, but a
                // write-allocate miss occupies a miss-status register and
                // DRAM bandwidth; once the MSHRs saturate, dispatch stalls.
                // This is what makes allocation streams that overflow the
                // LLC expensive (the paper's nursery-size cliff).
                let acc = self.mem.data(addr, start >> 8);
                if acc.penalty > 0 {
                    let (idx, &earliest) = self
                        .mshr
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &t)| t)
                        .expect("mshr is non-empty");
                    if earliest > start {
                        start = earliest;
                    }
                    self.mshr[idx] = start + (acc.penalty << 8);
                }
            }
            OpKind::Branch { .. } | OpKind::Call { .. } | OpKind::Ret => {
                // The predictor is always consulted (and trained); only a
                // mispredict stalls the front end.
                let mispredicted = match op.kind {
                    OpKind::Branch { taken, target, indirect } => {
                        self.branch.branch(op.pc, taken, target, indirect)
                    }
                    OpKind::Call { target, indirect } => self.branch.call(op.pc, target, indirect),
                    _ => self.branch.ret(op.pc),
                };
                if mispredicted {
                    let resolve = start + (1 << 8);
                    self.fetch_ready_q8 =
                        resolve + (self.branch.mispredict_penalty << 8);
                }
            }
            _ => {}
        }

        let complete = start + (latency << 8);
        self.rob[slot] = complete;

        // --- Retire-clock attribution ---------------------------------------
        self.stats.instructions += 1;
        self.stats.instructions_by_category[op.category] += 1;
        self.stats.instructions_by_phase[op.phase] += 1;
        if complete > self.retire_clock_q8 {
            let delta = (complete >> 8) - (self.retire_clock_q8 >> 8);
            self.retire_clock_q8 = complete;
            self.stats.cycles_by_category[op.category] += delta;
            self.stats.cycles_by_phase[op.phase] += delta;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoa_model::{Category, Pc, Phase};

    fn exec_op(pc: u64, kind: OpKind) -> MicroOp {
        MicroOp { pc: Pc(pc), kind, category: Category::Execute, phase: Phase::Interpreter }
    }

    /// A synthetic hot loop: mix of ALU, loads to a small working set, and a
    /// well-predicted loop branch.
    fn run_loop(cfg: &UarchConfig, iters: u64, spread: u64) -> ExecutionStats {
        let mut core = OooCore::new(cfg);
        for i in 0..iters {
            for j in 0..8u64 {
                core.op(exec_op(0x400000 + j * 4, OpKind::Alu));
            }
            core.op(exec_op(
                0x400020,
                OpKind::Load { addr: 0x5_0000_0000 + (i * 64) % spread, size: 8 },
            ));
            core.op(exec_op(
                0x400024,
                OpKind::Branch { taken: true, target: Pc(0x400000), indirect: false },
            ));
        }
        core.finish()
    }

    #[test]
    fn wider_issue_helps_then_saturates() {
        let base = UarchConfig::skylake();
        let cpi2 = run_loop(&base.clone().with_issue_width(2), 2000, 4096).cpi();
        let cpi4 = run_loop(&base.clone().with_issue_width(4), 2000, 4096).cpi();
        let cpi16 = run_loop(&base.clone().with_issue_width(16), 2000, 4096).cpi();
        let cpi32 = run_loop(&base.with_issue_width(32), 2000, 4096).cpi();
        assert!(cpi2 >= cpi4, "2-wide {cpi2} should be >= 4-wide {cpi4}");
        // Low ILP: going from 16 to 32 must change almost nothing.
        assert!((cpi16 - cpi32).abs() / cpi16 < 0.02, "16w={cpi16} 32w={cpi32}");
    }

    #[test]
    fn large_working_set_raises_cpi() {
        let cfg = UarchConfig::skylake();
        let small = run_loop(&cfg, 4000, 16 << 10).cpi();
        let large = run_loop(&cfg, 4000, 64 << 20).cpi();
        assert!(large > small * 1.2, "small={small} large={large}");
    }

    #[test]
    fn slower_memory_raises_cpi_only_when_missing() {
        let fast = UarchConfig::skylake().with_mem_latency(50);
        let slow = UarchConfig::skylake().with_mem_latency(400);
        // Small working set: only cold misses see the latency.
        let f_small = run_loop(&fast, 50_000, 4 << 10).cpi();
        let s_small = run_loop(&slow, 50_000, 4 << 10).cpi();
        // Large working set: every iteration misses.
        let f_large = run_loop(&fast, 2000, 64 << 20).cpi();
        let s_large = run_loop(&slow, 2000, 64 << 20).cpi();
        assert!(s_large > f_large * 1.3, "fast={f_large} slow={s_large}");
        // Relative sensitivity must be far higher when missing (the paper's
        // actual claim shape).
        let sens_small = s_small / f_small;
        let sens_large = s_large / f_large;
        assert!(
            sens_large > sens_small * 1.2,
            "small sens {sens_small}, large sens {sens_large}"
        );
        assert!(sens_small < 1.15, "small working set too sensitive: {sens_small}");
    }

    #[test]
    fn low_bandwidth_throttles_streaming() {
        let wide = UarchConfig::skylake().with_mem_bandwidth(25600);
        let narrow = UarchConfig::skylake().with_mem_bandwidth(200);
        let w = run_loop(&wide, 2000, 64 << 20).cpi();
        let n = run_loop(&narrow, 2000, 64 << 20).cpi();
        assert!(n > w * 2.0, "wide={w} narrow={n}");
    }

    #[test]
    fn mispredicted_indirect_branches_cost_cycles() {
        let cfg = UarchConfig::skylake();
        let run = |targets: u64| {
            let mut core = OooCore::new(&cfg);
            for i in 0..4000u64 {
                core.op(exec_op(0x400000, OpKind::Alu));
                // Indirect branch cycling through `targets` distinct targets.
                core.op(exec_op(
                    0x400100,
                    OpKind::Branch {
                        taken: true,
                        target: Pc(0x410000 + (i % targets) * 256),
                        indirect: true,
                    },
                ));
            }
            core.finish()
        };
        let stable = run(1).cpi();
        let wild = run(13).cpi();
        assert!(wild > stable * 1.3, "stable={stable} wild={wild}");
    }

    #[test]
    fn streaming_stores_beyond_llc_are_throttled() {
        // Write-allocate misses occupy MSHRs: a store stream that
        // overflows the LLC (a too-large nursery) must cost more than one
        // that stays resident.
        let cfg = UarchConfig::skylake();
        let run = |span: u64| {
            let mut core = OooCore::new(&cfg);
            for pass in 0..4u64 {
                let _ = pass;
                for i in 0..40_000u64 {
                    core.op(exec_op(0x400000, OpKind::Alu));
                    core.op(exec_op(
                        0x400004,
                        OpKind::Store { addr: 0x5_0000_0000 + (i * 64) % span, size: 8 },
                    ));
                }
            }
            core.finish().cpi()
        };
        let resident = run(512 << 10); // fits the 2 MB LLC
        let streaming = run(64 << 20); // overflows it
        assert!(
            streaming > resident * 1.15,
            "resident={resident} streaming={streaming}"
        );
    }

    #[test]
    fn instruction_and_cycle_accounting_consistent() {
        let s = run_loop(&UarchConfig::skylake(), 500, 4096);
        assert_eq!(s.instructions, 500 * 10);
        assert_eq!(s.cycles_by_phase.total(), s.cycles);
        assert_eq!(s.cycles_by_category.total(), s.cycles);
        assert!(s.cpi() >= 0.25, "cpi = {}", s.cpi());
    }
}
