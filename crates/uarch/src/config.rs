//! Simulator configuration, defaulting to the paper's Table I.
//!
//! Table I (ZSim configuration, Intel Skylake-like):
//!
//! | Component | Setting |
//! |---|---|
//! | Core | 4-way OOO, 16B fetch, 3.40 GHz, 2-level 2-bit BP with 2048x18b L1, 16384x2b L2, 224 ROB, 72 Load-Q, 56 Store-Q |
//! | L1I | 64 kB, 8-way, 4-cycle latency |
//! | L1D | 64 kB, 8-way, 4-cycle latency |
//! | L2 | 256 kB, 4-way, 12-cycle latency |
//! | L3 | 2 MB (per-core quarter of 8 MB), 16-way, 42-cycle latency |
//! | Memory | 16 GB DDR4-2400, 173-cycle latency |

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes (power of two).
    pub size: u64,
    /// Associativity (ways).
    pub assoc: usize,
    /// Line size in bytes (power of two).
    pub line: u64,
    /// Access latency in cycles, charged when this level satisfies a miss
    /// from the level above.
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`CacheConfig::validate`]).
    pub fn sets(&self) -> usize {
        self.validate();
        (self.size / (self.line * self.assoc as u64)) as usize
    }

    /// Checks size/line/associativity consistency.
    ///
    /// # Panics
    ///
    /// Panics if size or line are not powers of two, if associativity is
    /// zero, or if the division does not yield at least one set.
    pub fn validate(&self) {
        assert!(self.size.is_power_of_two(), "cache size must be a power of two");
        assert!(self.line.is_power_of_two(), "line size must be a power of two");
        assert!(self.assoc > 0, "associativity must be positive");
        assert!(
            self.size >= self.line * self.assoc as u64,
            "cache must hold at least one set"
        );
    }
}

/// Branch-predictor sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchConfig {
    /// Entries in the first-level (per-branch history) table.
    pub l1_entries: usize,
    /// History bits kept per first-level entry.
    pub history_bits: u32,
    /// Entries in the second-level pattern history table of 2-bit counters.
    pub l2_entries: usize,
    /// Entries in the branch target buffer (indirect branches and calls).
    pub btb_entries: usize,
    /// Return-address-stack depth.
    pub ras_depth: usize,
    /// Pipeline refill penalty on a mispredict, in cycles.
    pub mispredict_penalty: u64,
}

impl BranchConfig {
    /// Table I sizing: 2048x18b L1, 16384x2b L2.
    pub fn skylake() -> Self {
        BranchConfig {
            l1_entries: 2048,
            history_bits: 18,
            l2_entries: 16384,
            btb_entries: 4096,
            ras_depth: 32,
            mispredict_penalty: 14,
        }
    }

    /// Scales the predictor tables relative to the baseline, as in the
    /// paper's Fig. 7(b) sweep (0.5x – 8x). The BTB scales with the tables.
    pub fn scaled(&self, factor: f64) -> Self {
        let scale = |n: usize| ((n as f64 * factor).round() as usize).max(16).next_power_of_two();
        BranchConfig {
            l1_entries: scale(self.l1_entries),
            history_bits: self.history_bits,
            l2_entries: scale(self.l2_entries),
            btb_entries: scale(self.btb_entries),
            ras_depth: self.ras_depth,
            mispredict_penalty: self.mispredict_penalty,
        }
    }
}

/// Main-memory model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemConfig {
    /// Flat access latency in CPU cycles (Table I: 173).
    pub latency: u64,
    /// Sustained bandwidth in MB/s (DDR4-2400 ≈ 19200 MB/s per channel; the
    /// paper sweeps 200 – 25600).
    pub bandwidth_mbps: u64,
    /// Core clock in Hz, used to convert bandwidth to bytes/cycle.
    pub clock_hz: u64,
}

impl MemConfig {
    /// Table I memory: DDR4-2400, 173-cycle latency, 3.4 GHz core clock.
    pub fn ddr4_2400() -> Self {
        MemConfig {
            latency: 173,
            bandwidth_mbps: 19200,
            clock_hz: 3_400_000_000,
        }
    }

    /// Bytes transferable per core cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        (self.bandwidth_mbps as f64 * 1_000_000.0) / self.clock_hz as f64
    }
}

/// Out-of-order core parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Issue (dispatch) width in ops/cycle.
    pub issue_width: usize,
    /// Fetch width in bytes/cycle (Table I: 16B).
    pub fetch_bytes: u64,
    /// Reorder-buffer entries.
    pub rob_size: usize,
    /// Load-queue entries (bounds memory-level parallelism).
    pub load_queue: usize,
    /// Store-queue entries.
    pub store_queue: usize,
}

impl CoreConfig {
    /// Table I core: 4-way OOO, 16B fetch, 224 ROB, 72 LQ, 56 SQ.
    pub fn skylake() -> Self {
        CoreConfig {
            issue_width: 4,
            fetch_bytes: 16,
            rob_size: 224,
            load_queue: 72,
            store_queue: 56,
        }
    }
}

/// Complete simulator configuration (core + predictor + caches + memory).
#[derive(Debug, Clone, PartialEq)]
pub struct UarchConfig {
    /// Core parameters.
    pub core: CoreConfig,
    /// Branch predictor parameters.
    pub branch: BranchConfig,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Last-level cache (per-core share).
    pub l3: CacheConfig,
    /// Main memory.
    pub mem: MemConfig,
}

impl UarchConfig {
    /// The paper's Table I configuration.
    pub fn skylake() -> Self {
        UarchConfig {
            core: CoreConfig::skylake(),
            branch: BranchConfig::skylake(),
            l1i: CacheConfig { size: 64 << 10, assoc: 8, line: 64, latency: 4 },
            l1d: CacheConfig { size: 64 << 10, assoc: 8, line: 64, latency: 4 },
            l2: CacheConfig { size: 256 << 10, assoc: 4, line: 64, latency: 12 },
            l3: CacheConfig { size: 2 << 20, assoc: 16, line: 64, latency: 42 },
            mem: MemConfig::ddr4_2400(),
        }
    }

    /// Returns a copy with the given issue width (Fig. 7a sweep: 2–32).
    pub fn with_issue_width(mut self, width: usize) -> Self {
        self.core.issue_width = width;
        self
    }

    /// Returns a copy with branch tables scaled relative to baseline
    /// (Fig. 7b sweep: 0.5x – 8x).
    pub fn with_branch_scale(mut self, factor: f64) -> Self {
        self.branch = BranchConfig::skylake().scaled(factor);
        self
    }

    /// Returns a copy with the given LLC size (Fig. 7c sweep: 256 kB – 16 MB).
    pub fn with_llc_size(mut self, size: u64) -> Self {
        self.l3.size = size;
        self
    }

    /// Returns a copy with the given line size applied to every cache level
    /// (Fig. 7d sweep: 64 B – 4096 B).
    pub fn with_line_size(mut self, line: u64) -> Self {
        self.l1i.line = line;
        self.l1d.line = line;
        self.l2.line = line;
        self.l3.line = line;
        // Keep at least one set per level by growing associativity-adjusted
        // minimum sizes if a huge line would underflow the geometry.
        for c in [&mut self.l1i, &mut self.l1d, &mut self.l2, &mut self.l3] {
            let min = c.line * c.assoc as u64;
            if c.size < min {
                c.size = min;
            }
        }
        self
    }

    /// Returns a copy with the given memory latency in cycles (Fig. 7e
    /// sweep: 50 – 400).
    pub fn with_mem_latency(mut self, latency: u64) -> Self {
        self.mem.latency = latency;
        self
    }

    /// Returns a copy with the given memory bandwidth in MB/s (Fig. 7f
    /// sweep: 200 – 25600).
    pub fn with_mem_bandwidth(mut self, mbps: u64) -> Self {
        self.mem.bandwidth_mbps = mbps;
        self
    }

    /// Validates every cache level.
    ///
    /// # Panics
    ///
    /// Panics if any level has inconsistent geometry.
    pub fn validate(&self) {
        self.l1i.validate();
        self.l1d.validate();
        self.l2.validate();
        self.l3.validate();
        assert!(self.core.issue_width > 0);
    }
}

impl Default for UarchConfig {
    fn default() -> Self {
        UarchConfig::skylake()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skylake_matches_table_i() {
        let c = UarchConfig::skylake();
        assert_eq!(c.core.issue_width, 4);
        assert_eq!(c.core.rob_size, 224);
        assert_eq!(c.core.load_queue, 72);
        assert_eq!(c.core.store_queue, 56);
        assert_eq!(c.branch.l1_entries, 2048);
        assert_eq!(c.branch.history_bits, 18);
        assert_eq!(c.branch.l2_entries, 16384);
        assert_eq!(c.l1i.size, 64 << 10);
        assert_eq!(c.l1d.latency, 4);
        assert_eq!(c.l2.size, 256 << 10);
        assert_eq!(c.l2.latency, 12);
        assert_eq!(c.l3.size, 2 << 20);
        assert_eq!(c.l3.assoc, 16);
        assert_eq!(c.l3.latency, 42);
        assert_eq!(c.mem.latency, 173);
        c.validate();
    }

    #[test]
    fn cache_sets_geometry() {
        let c = CacheConfig { size: 64 << 10, assoc: 8, line: 64, latency: 4 };
        assert_eq!(c.sets(), 128);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn invalid_cache_size_panics() {
        CacheConfig { size: 3000, assoc: 8, line: 64, latency: 4 }.validate();
    }

    #[test]
    fn branch_scaling_is_monotone() {
        let base = BranchConfig::skylake();
        let half = base.scaled(0.5);
        let oct = base.scaled(8.0);
        assert!(half.l2_entries < base.l2_entries);
        assert!(oct.l2_entries > base.l2_entries);
        assert_eq!(oct.l2_entries, 16384 * 8);
    }

    #[test]
    fn line_size_sweep_keeps_geometry_valid() {
        for line in [64, 128, 256, 512, 1024, 2048, 4096] {
            let c = UarchConfig::skylake().with_line_size(line);
            c.validate();
        }
    }

    #[test]
    fn bandwidth_conversion() {
        let m = MemConfig::ddr4_2400();
        let bpc = m.bytes_per_cycle();
        assert!(bpc > 5.0 && bpc < 6.0, "bpc = {bpc}");
    }
}
