//! Set-associative caches and the three-level hierarchy.
//!
//! The hierarchy mirrors ZSim's: private L1I/L1D backed by a unified L2,
//! backed by a last-level cache slice, backed by DRAM. Fills propagate to
//! every level on the way back (inclusive), replacement is true LRU, and
//! stores allocate on miss (write-allocate, write-back), which is what makes
//! nursery-allocation streaming visible to the LLC exactly as in the paper's
//! Fig. 10.

use crate::config::{CacheConfig, MemConfig, UarchConfig};
use crate::dram::Dram;

/// Hit/miss statistics for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses (loads + stores + fills from above).
    pub accesses: u64,
    /// Misses at this level.
    pub misses: u64,
}

impl CacheStats {
    /// Miss rate in [0, 1]; zero when there were no accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// One set-associative, true-LRU cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// `sets * assoc` tags; `u64::MAX` marks an empty way.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    clock: u64,
    sets: usize,
    line_shift: u32,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent.
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate();
        let sets = cfg.sets();
        Cache {
            tags: vec![u64::MAX; sets * cfg.assoc],
            stamps: vec![0; sets * cfg.assoc],
            clock: 0,
            sets,
            line_shift: cfg.line.trailing_zeros(),
            cfg,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Looks up the line containing `addr`, filling it on a miss.
    /// Returns `true` on a hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.stats.accesses += 1;
        self.clock += 1;
        let line = addr >> self.line_shift;
        let set = (line as usize) & (self.sets - 1);
        let base = set * self.cfg.assoc;
        let ways = &mut self.tags[base..base + self.cfg.assoc];
        if let Some(way) = ways.iter().position(|&t| t == line) {
            self.stamps[base + way] = self.clock;
            return true;
        }
        self.stats.misses += 1;
        // Choose victim: empty way first, else LRU.
        let victim = match ways.iter().position(|&t| t == u64::MAX) {
            Some(w) => w,
            None => {
                let mut lru = 0;
                let mut lru_stamp = u64::MAX;
                for (w, &s) in self.stamps[base..base + self.cfg.assoc].iter().enumerate() {
                    if s < lru_stamp {
                        lru_stamp = s;
                        lru = w;
                    }
                }
                lru
            }
        };
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
        false
    }

    /// Returns `true` if the line containing `addr` is resident, without
    /// touching LRU state or statistics.
    pub fn probe(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line as usize) & (self.sets - 1);
        let base = set * self.cfg.assoc;
        self.tags[base..base + self.cfg.assoc].contains(&line)
    }

    /// Number of resident (non-empty) lines.
    pub fn resident_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != u64::MAX).count()
    }
}

/// The level of the hierarchy that satisfied an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// Hit in the first-level cache.
    L1,
    /// Satisfied by the unified L2.
    L2,
    /// Satisfied by the last-level cache.
    L3,
    /// Went to main memory.
    Memory,
}

/// Result of a hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Which level satisfied the access.
    pub level: HitLevel,
    /// Additional cycles beyond a first-level hit (0 for an L1 hit). For a
    /// DRAM access this includes bandwidth queuing delay.
    pub penalty: u64,
}

/// Three-level cache hierarchy plus DRAM.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l3: Cache,
    dram: Dram,
    l2_latency: u64,
    l3_latency: u64,
}

impl MemoryHierarchy {
    /// Builds the hierarchy described by `cfg`.
    pub fn new(cfg: &UarchConfig) -> Self {
        MemoryHierarchy {
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            l3: Cache::new(cfg.l3),
            dram: Dram::new(cfg.mem, cfg.l3.line),
            l2_latency: cfg.l2.latency,
            l3_latency: cfg.l3.latency,
        }
    }

    fn walk(&mut self, addr: u64, instruction: bool, now: u64) -> Access {
        let l1 = if instruction { &mut self.l1i } else { &mut self.l1d };
        if l1.access(addr) {
            return Access { level: HitLevel::L1, penalty: 0 };
        }
        if self.l2.access(addr) {
            return Access { level: HitLevel::L2, penalty: self.l2_latency };
        }
        if self.l3.access(addr) {
            return Access { level: HitLevel::L3, penalty: self.l3_latency };
        }
        let queue = self.dram.access(now);
        Access {
            level: HitLevel::Memory,
            penalty: self.l3_latency + self.dram.latency() + queue,
        }
    }

    /// Instruction-fetch access at `pc`.
    pub fn fetch(&mut self, pc: u64, now: u64) -> Access {
        self.walk(pc, true, now)
    }

    /// Data access (load or store; write-allocate makes them equivalent for
    /// residence).
    pub fn data(&mut self, addr: u64, now: u64) -> Access {
        self.walk(addr, false, now)
    }

    /// L1I statistics.
    pub fn l1i_stats(&self) -> CacheStats {
        self.l1i.stats()
    }

    /// L1D statistics.
    pub fn l1d_stats(&self) -> CacheStats {
        self.l1d.stats()
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Last-level-cache statistics (the paper's Fig. 10 metric).
    pub fn llc_stats(&self) -> CacheStats {
        self.l3.stats()
    }

    /// Total bytes transferred from DRAM.
    pub fn dram_bytes(&self) -> u64 {
        self.dram.bytes_transferred()
    }

    /// Resets all statistics (warm contents are preserved).
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.l3.reset_stats();
        self.dram.reset_stats();
    }
}

/// Memory-model parameters view used by cores.
pub fn mem_config(cfg: &UarchConfig) -> MemConfig {
    cfg.mem
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Cache {
        Cache::new(CacheConfig { size: 256, assoc: 2, line: 64, latency: 1 })
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = small_cache();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small_cache(); // 2 sets, 2 ways
        // These three lines all map to set 0 (line numbers 0, 2, 4).
        assert!(!c.access(0));
        assert!(!c.access(128));
        assert!(c.access(0)); // renew line 0
        assert!(!c.access(256)); // evicts line 128 (LRU)
        assert!(c.access(0));
        assert!(!c.access(128)); // was evicted
    }

    #[test]
    fn probe_does_not_disturb() {
        let mut c = small_cache();
        c.access(0);
        let before = c.stats();
        assert!(c.probe(0));
        assert!(!c.probe(512));
        assert_eq!(c.stats(), before);
    }

    #[test]
    fn resident_line_count_bounded_by_capacity() {
        let mut c = small_cache();
        for i in 0..100 {
            c.access(i * 64);
        }
        assert_eq!(c.resident_lines(), 4); // 256 B / 64 B lines
    }

    #[test]
    fn hierarchy_latencies_match_levels() {
        let cfg = UarchConfig::skylake();
        let mut h = MemoryHierarchy::new(&cfg);
        let a1 = h.data(0x1000, 0);
        assert_eq!(a1.level, HitLevel::Memory);
        assert!(a1.penalty >= cfg.l3.latency + cfg.mem.latency);
        let a2 = h.data(0x1000, 1000);
        assert_eq!(a2.level, HitLevel::L1);
        assert_eq!(a2.penalty, 0);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        // Tiny L1, big L2: thrash L1 but stay in L2.
        let mut cfg = UarchConfig::skylake();
        cfg.l1d = CacheConfig { size: 128, assoc: 1, line: 64, latency: 4 };
        let mut h = MemoryHierarchy::new(&cfg);
        h.data(0, 0);
        h.data(128, 0); // evicts line 0 in direct-mapped L1 set 0
        let a = h.data(0, 0);
        assert_eq!(a.level, HitLevel::L2);
        assert_eq!(a.penalty, cfg.l2.latency);
    }

    #[test]
    fn working_set_larger_than_llc_misses() {
        let cfg = UarchConfig::skylake(); // 2 MB LLC
        let mut h = MemoryHierarchy::new(&cfg);
        let span = 8 << 20; // 8 MB working set
        // Two passes: second pass should still miss at LLC because the
        // working set does not fit.
        for pass in 0..2 {
            let mut misses = 0;
            for addr in (0..span).step_by(64) {
                if h.data(0x5_0000_0000 + addr, 0).level == HitLevel::Memory {
                    misses += 1;
                }
            }
            if pass == 1 {
                assert!(misses > span / 64 / 2, "LLC absorbed too much");
            }
        }
    }

    #[test]
    fn working_set_smaller_than_llc_hits_on_second_pass() {
        let cfg = UarchConfig::skylake();
        let mut h = MemoryHierarchy::new(&cfg);
        let span = 512 << 10; // 512 kB fits in 2 MB LLC
        for addr in (0..span).step_by(64) {
            h.data(0x5_0000_0000 + addr, 0);
        }
        let mut mem_hits = 0;
        for addr in (0..span).step_by(64) {
            if h.data(0x5_0000_0000 + addr, 0).level == HitLevel::Memory {
                mem_hits += 1;
            }
        }
        assert_eq!(mem_hits, 0);
    }
}
