//! Aggregated execution statistics shared by both core models.

use crate::branch::BranchStats;
use crate::cache::CacheStats;
use qoa_model::{CategoryMap, PhaseMap};

/// Cycle- and instruction-level result of simulating one run.
///
/// Every field is an exact integer counter, so `==` is the byte-identical
/// comparison the chaos engine's differential oracle is specified in
/// terms of.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutionStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Total retired micro-ops.
    pub instructions: u64,
    /// Cycles attributed to each Table II category.
    pub cycles_by_category: CategoryMap<u64>,
    /// Instructions attributed to each Table II category.
    pub instructions_by_category: CategoryMap<u64>,
    /// Cycles attributed to each execution phase.
    pub cycles_by_phase: PhaseMap<u64>,
    /// Instructions attributed to each execution phase.
    pub instructions_by_phase: PhaseMap<u64>,
    /// L1 instruction cache statistics.
    pub l1i: CacheStats,
    /// L1 data cache statistics.
    pub l1d: CacheStats,
    /// Unified L2 statistics.
    pub l2: CacheStats,
    /// Last-level cache statistics.
    pub llc: CacheStats,
    /// Branch predictor statistics.
    pub branch: BranchStats,
    /// Bytes transferred from DRAM.
    pub dram_bytes: u64,
}

impl ExecutionStats {
    /// Cycles per instruction; zero when nothing ran.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// Fraction of cycles spent in each category, summing to 1.
    pub fn category_shares(&self) -> CategoryMap<f64> {
        let total = self.cycles.max(1) as f64;
        CategoryMap::from_fn(|c| self.cycles_by_category[c] as f64 / total)
    }

    /// Share of cycles across the fourteen Table II overheads.
    /// Delegates to [`CategoryMap::overhead_share`] — the single share
    /// code path shared with `qoa-core::attribution::Breakdown`.
    pub fn overhead_share(&self) -> f64 {
        self.category_shares().overhead_share()
    }

    /// The residual `Execute` + C-library share.
    pub fn compute_share(&self) -> f64 {
        self.category_shares().compute_share()
    }

    /// Fraction of cycles spent in garbage collection.
    pub fn gc_share(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.cycles_by_phase.gc_total() as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoa_model::{Category, Phase};

    #[test]
    fn cpi_and_shares() {
        let mut s = ExecutionStats::default();
        assert_eq!(s.cpi(), 0.0);
        s.cycles = 100;
        s.instructions = 50;
        s.cycles_by_category[Category::Dispatch] = 25;
        s.cycles_by_category[Category::Execute] = 75;
        s.cycles_by_phase[Phase::GcMinor] = 10;
        assert_eq!(s.cpi(), 2.0);
        let shares = s.category_shares();
        assert!((shares[Category::Dispatch] - 0.25).abs() < 1e-12);
        assert!((s.gc_share() - 0.10).abs() < 1e-12);
    }
}
