//! Trace capture and replay.
//!
//! The paper's microarchitecture sweeps (Fig. 7–9) re-simulate the *same*
//! program execution under many hardware configurations. Because simulated
//! timing never feeds back into run-time behaviour (just as with Pin+ZSim),
//! the micro-op stream can be captured once per (benchmark, run-time) pair
//! and replayed through each configuration — the standard trace-driven
//! simulation methodology.

use crate::stats::ExecutionStats;
use crate::{OooCore, SimpleCore, UarchConfig};
use qoa_model::{MicroOp, OpSink, Phase};

/// An in-memory micro-op trace.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    ops: Vec<MicroOp>,
}

impl TraceBuffer {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty trace with pre-reserved capacity.
    pub fn with_capacity(ops: usize) -> Self {
        TraceBuffer { ops: Vec::with_capacity(ops) }
    }

    /// Number of captured micro-ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The captured ops.
    pub fn ops(&self) -> &[MicroOp] {
        &self.ops
    }

    /// Replays the trace into any sink.
    pub fn replay<S: OpSink>(&self, sink: &mut S) {
        let mut phase = None;
        for op in &self.ops {
            if phase != Some(op.phase) {
                phase = Some(op.phase);
                sink.phase_change(op.phase);
            }
            sink.op(*op);
        }
    }

    /// Replays through a fresh [`SimpleCore`] built from `cfg`.
    pub fn simulate_simple(&self, cfg: &UarchConfig) -> ExecutionStats {
        let mut core = SimpleCore::new(cfg);
        self.replay(&mut core);
        core.finish()
    }

    /// Replays through a fresh [`OooCore`] built from `cfg`.
    pub fn simulate_ooo(&self, cfg: &UarchConfig) -> ExecutionStats {
        let mut core = OooCore::new(cfg);
        self.replay(&mut core);
        core.finish()
    }
}

impl OpSink for TraceBuffer {
    fn op(&mut self, op: MicroOp) {
        self.ops.push(op);
    }

    fn phase_change(&mut self, _phase: Phase) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoa_model::{Category, CountingSink, OpKind, Pc};

    fn sample_trace() -> TraceBuffer {
        let mut t = TraceBuffer::new();
        for i in 0..100u64 {
            t.op(MicroOp {
                pc: Pc(0x400000 + (i % 8) * 4),
                kind: if i % 3 == 0 {
                    OpKind::Load { addr: 0x5_0000_0000 + i * 8, size: 8 }
                } else {
                    OpKind::Alu
                },
                category: Category::Execute,
                phase: if i < 50 { Phase::Interpreter } else { Phase::GcMinor },
            });
        }
        t
    }

    #[test]
    fn capture_then_replay_preserves_counts() {
        let t = sample_trace();
        assert_eq!(t.len(), 100);
        let mut sink = CountingSink::new();
        t.replay(&mut sink);
        assert_eq!(sink.total(), 100);
        assert_eq!(sink.by_phase[Phase::Interpreter], 50);
        assert_eq!(sink.by_phase[Phase::GcMinor], 50);
    }

    #[test]
    fn replay_is_deterministic_across_cores() {
        let t = sample_trace();
        let cfg = UarchConfig::skylake();
        let a = t.simulate_ooo(&cfg);
        let b = t.simulate_ooo(&cfg);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.instructions, b.instructions);
        let s = t.simulate_simple(&cfg);
        assert_eq!(s.instructions, 100);
    }
}
