//! Trace capture and replay.
//!
//! The paper's microarchitecture sweeps (Fig. 7–9) re-simulate the *same*
//! program execution under many hardware configurations. Because simulated
//! timing never feeds back into run-time behaviour (just as with Pin+ZSim),
//! the micro-op stream can be captured once per (benchmark, run-time) pair
//! and replayed through each configuration — the standard trace-driven
//! simulation methodology.

use crate::stats::ExecutionStats;
use crate::{OooCore, SimpleCore, UarchConfig};
use qoa_model::{FrameEvent, MicroOp, OpSink, Phase};

/// An in-memory micro-op trace.
///
/// Optionally records guest [`FrameEvent`]s alongside the ops (see
/// [`TraceBuffer::with_frame_capture`]); replay interleaves them at the
/// exact op positions where they were observed, so a replay sink sees the
/// same call-stack evolution the live run produced. Frame capture is off
/// by default: the figure paths never pay for it.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    ops: Vec<MicroOp>,
    /// `(op_index, event)`: the event fired just before `ops[op_index]`
    /// (or after the last op when `op_index == ops.len()`).
    frames: Vec<(u64, FrameEvent)>,
    capture_frames: bool,
}

impl TraceBuffer {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty trace with pre-reserved capacity.
    pub fn with_capacity(ops: usize) -> Self {
        TraceBuffer { ops: Vec::with_capacity(ops), ..Self::default() }
    }

    /// Creates an empty trace that also records guest frame events.
    pub fn with_frame_capture() -> Self {
        TraceBuffer { capture_frames: true, ..Self::default() }
    }

    /// Number of captured micro-ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The captured ops.
    pub fn ops(&self) -> &[MicroOp] {
        &self.ops
    }

    /// The captured guest frame events, as `(op_index, event)` pairs.
    /// Empty unless built via [`TraceBuffer::with_frame_capture`].
    pub fn frame_events(&self) -> &[(u64, FrameEvent)] {
        &self.frames
    }

    /// Replays the trace into any sink, re-delivering frame events at the
    /// op positions where they were captured.
    pub fn replay<S: OpSink>(&self, sink: &mut S) {
        let mut phase = None;
        let mut frames = self.frames.iter().peekable();
        for (i, op) in self.ops.iter().enumerate() {
            while frames.peek().is_some_and(|(at, _)| *at as usize <= i) {
                if let Some((_, event)) = frames.next() {
                    sink.frame_event(event);
                }
            }
            if phase != Some(op.phase) {
                phase = Some(op.phase);
                sink.phase_change(op.phase);
            }
            sink.op(*op);
        }
        for (_, event) in frames {
            sink.frame_event(event);
        }
    }

    /// Replays through a fresh [`SimpleCore`] built from `cfg`.
    pub fn simulate_simple(&self, cfg: &UarchConfig) -> ExecutionStats {
        let mut core = SimpleCore::new(cfg);
        self.replay(&mut core);
        core.finish()
    }

    /// Replays through a fresh [`OooCore`] built from `cfg`.
    pub fn simulate_ooo(&self, cfg: &UarchConfig) -> ExecutionStats {
        let mut core = OooCore::new(cfg);
        self.replay(&mut core);
        core.finish()
    }
}

impl OpSink for TraceBuffer {
    fn op(&mut self, op: MicroOp) {
        self.ops.push(op);
    }

    fn phase_change(&mut self, _phase: Phase) {}

    fn frame_event(&mut self, event: &FrameEvent) {
        if self.capture_frames {
            self.frames.push((self.ops.len() as u64, event.clone()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoa_model::{Category, CountingSink, FrameEvent, OpKind, Pc};

    fn sample_trace() -> TraceBuffer {
        let mut t = TraceBuffer::new();
        for i in 0..100u64 {
            t.op(MicroOp {
                pc: Pc(0x400000 + (i % 8) * 4),
                kind: if i % 3 == 0 {
                    OpKind::Load { addr: 0x5_0000_0000 + i * 8, size: 8 }
                } else {
                    OpKind::Alu
                },
                category: Category::Execute,
                phase: if i < 50 { Phase::Interpreter } else { Phase::GcMinor },
            });
        }
        t
    }

    #[test]
    fn capture_then_replay_preserves_counts() {
        let t = sample_trace();
        assert_eq!(t.len(), 100);
        let mut sink = CountingSink::new();
        t.replay(&mut sink);
        assert_eq!(sink.total(), 100);
        assert_eq!(sink.by_phase[Phase::Interpreter], 50);
        assert_eq!(sink.by_phase[Phase::GcMinor], 50);
    }

    #[test]
    fn frame_events_replay_at_their_op_positions() {
        struct Recorder {
            log: Vec<(usize, String)>,
            ops: usize,
        }
        impl OpSink for Recorder {
            fn op(&mut self, _op: MicroOp) {
                self.ops += 1;
            }
            fn frame_event(&mut self, event: &FrameEvent) {
                let label = match event {
                    FrameEvent::Push { name } => format!("push {name}"),
                    FrameEvent::Pop => "pop".to_string(),
                };
                self.log.push((self.ops, label));
            }
        }

        let mk = |i: u64| MicroOp {
            pc: Pc(0x400000 + i * 4),
            kind: OpKind::Alu,
            category: Category::Execute,
            phase: Phase::Interpreter,
        };
        let mut t = TraceBuffer::with_frame_capture();
        t.frame_event(&FrameEvent::Push { name: "<module>".into() });
        t.op(mk(0));
        t.frame_event(&FrameEvent::Push { name: "f".into() });
        t.op(mk(1));
        t.op(mk(2));
        t.frame_event(&FrameEvent::Pop);
        t.frame_event(&FrameEvent::Pop);
        assert_eq!(t.frame_events().len(), 4);

        let mut r = Recorder { log: Vec::new(), ops: 0 };
        t.replay(&mut r);
        assert_eq!(r.ops, 3);
        assert_eq!(
            r.log,
            vec![
                (0, "push <module>".to_string()),
                (1, "push f".to_string()),
                (3, "pop".to_string()),
                (3, "pop".to_string()),
            ]
        );

        // Default buffers ignore frame events entirely.
        let mut plain = TraceBuffer::new();
        plain.frame_event(&FrameEvent::Pop);
        assert!(plain.frame_events().is_empty());
    }

    #[test]
    fn replay_is_deterministic_across_cores() {
        let t = sample_trace();
        let cfg = UarchConfig::skylake();
        let a = t.simulate_ooo(&cfg);
        let b = t.simulate_ooo(&cfg);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.instructions, b.instructions);
        let s = t.simulate_simple(&cfg);
        assert_eq!(s.instructions, 100);
    }
}
