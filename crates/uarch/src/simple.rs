//! The simple in-order core model used for overhead attribution.
//!
//! Mirrors §IV-B.2 of the paper: *"we use the simple core model and use the
//! number of cycles each instruction takes to execute. In the simple core
//! model, instruction latency is only affected by misses in the instruction
//! and data caches. Otherwise, an instruction takes a single cycle."*
//! Because each instruction's cycles are independent of its neighbours, the
//! per-category attribution is exact — which is why the paper (and this
//! reproduction) use it for the Fig. 4/5/6 breakdowns.

use crate::cache::MemoryHierarchy;
use crate::config::UarchConfig;
use crate::stats::ExecutionStats;
use qoa_model::{MicroOp, OpKind, OpSink};

/// In-order, one-op-per-cycle core with cache-miss stalls.
#[derive(Debug)]
pub struct SimpleCore {
    mem: MemoryHierarchy,
    stats: ExecutionStats,
    last_fetch_line: u64,
    line_mask: u64,
}

impl SimpleCore {
    /// Builds a simple core over the hierarchy described by `cfg`.
    ///
    /// The core/branch parts of the configuration are ignored: the simple
    /// core has no pipeline or predictor, exactly like ZSim's simple model.
    pub fn new(cfg: &UarchConfig) -> Self {
        cfg.validate();
        SimpleCore {
            mem: MemoryHierarchy::new(cfg),
            stats: ExecutionStats::default(),
            last_fetch_line: u64::MAX,
            line_mask: !(cfg.l1i.line - 1),
        }
    }

    /// Finishes the run and returns the accumulated statistics.
    pub fn finish(mut self) -> ExecutionStats {
        self.stats.l1i = self.mem.l1i_stats();
        self.stats.l1d = self.mem.l1d_stats();
        self.stats.l2 = self.mem.l2_stats();
        self.stats.llc = self.mem.llc_stats();
        self.stats.dram_bytes = self.mem.dram_bytes();
        self.stats
    }

    /// Read-only view of the statistics accumulated so far (cache counters
    /// are only folded in by [`SimpleCore::finish`]).
    pub fn stats(&self) -> &ExecutionStats {
        &self.stats
    }
}

impl OpSink for SimpleCore {
    fn op(&mut self, op: MicroOp) {
        let mut cycles = 1u64;
        // Instruction fetch: charged once per new line, matching a simple
        // fetch unit that streams within a line.
        let line = op.pc.0 & self.line_mask;
        if line != self.last_fetch_line {
            self.last_fetch_line = line;
            cycles += self.mem.fetch(op.pc.0, self.stats.cycles).penalty;
        }
        // Data access.
        if let OpKind::Load { addr, .. } | OpKind::Store { addr, .. } = op.kind {
            cycles += self.mem.data(addr, self.stats.cycles).penalty;
        }
        self.stats.cycles += cycles;
        self.stats.instructions += 1;
        self.stats.cycles_by_category[op.category] += cycles;
        self.stats.instructions_by_category[op.category] += 1;
        self.stats.cycles_by_phase[op.phase] += cycles;
        self.stats.instructions_by_phase[op.phase] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoa_model::{Category, Pc, Phase};

    fn op(pc: u64, kind: OpKind, category: Category) -> MicroOp {
        MicroOp { pc: Pc(pc), kind, category, phase: Phase::Interpreter }
    }

    #[test]
    fn alu_ops_on_same_line_take_one_cycle_after_warmup() {
        let mut core = SimpleCore::new(&UarchConfig::skylake());
        core.op(op(0x400000, OpKind::Alu, Category::Execute)); // cold fetch
        let warm_start = core.stats().cycles;
        for i in 0..10 {
            core.op(op(0x400004 + i * 4, OpKind::Alu, Category::Execute));
        }
        let s = core.finish();
        assert_eq!(s.cycles - warm_start, 10);
        assert_eq!(s.instructions, 11);
    }

    #[test]
    fn cache_miss_charges_cycles_to_the_ops_category() {
        let mut core = SimpleCore::new(&UarchConfig::skylake());
        // Warm the fetch line with an Execute op.
        core.op(op(0x400000, OpKind::Alu, Category::Execute));
        core.op(op(
            0x400004,
            OpKind::Load { addr: 0x5_0000_0000, size: 8 },
            Category::Dispatch,
        ));
        let s = core.finish();
        // The cold load went to memory: 1 + L3 + DRAM latency at least.
        assert!(s.cycles_by_category[Category::Dispatch] > 200);
        assert_eq!(s.instructions_by_category[Category::Dispatch], 1);
    }

    #[test]
    fn attribution_is_exact_per_category() {
        let mut core = SimpleCore::new(&UarchConfig::skylake());
        for i in 0..100 {
            let cat = if i % 2 == 0 { Category::Stack } else { Category::Execute };
            core.op(op(0x400000 + (i % 4) * 4, OpKind::Alu, cat));
        }
        let s = core.finish();
        assert_eq!(
            s.cycles,
            s.cycles_by_category.total(),
            "category cycles must sum to total cycles"
        );
        assert_eq!(s.instructions, 100);
    }

    #[test]
    fn phase_attribution_sums_to_total() {
        let mut core = SimpleCore::new(&UarchConfig::skylake());
        for i in 0..50 {
            let phase = if i < 25 { Phase::Interpreter } else { Phase::GcMinor };
            core.op(MicroOp {
                pc: Pc(0x400000 + i * 4),
                kind: OpKind::Alu,
                category: Category::Execute,
                phase,
            });
        }
        let s = core.finish();
        assert_eq!(s.cycles_by_phase.total(), s.cycles);
        assert!(s.cycles_by_phase[Phase::GcMinor] > 0);
    }
}
