//! Trace-driven microarchitecture simulator (the ZSim + DRAMSim2 substitute).
//!
//! Consumes the tagged [`qoa_model::MicroOp`] streams emitted by the
//! run-time crates and charges cycles under a configurable Skylake-like
//! machine (Table I of the paper):
//!
//! * [`SimpleCore`] — in-order, one cycle per op plus cache-miss stalls;
//!   gives *exact* per-category attribution and is what the Fig. 4/5/6
//!   overhead breakdowns run on, exactly as in §IV-B.2 of the paper.
//! * [`OooCore`] — approximate out-of-order model (issue width, ROB,
//!   bounded memory-level parallelism, branch mispredict flushes); used for
//!   the Fig. 7–9 parameter sweeps.
//! * [`MemoryHierarchy`] — L1I/L1D + L2 + LLC with true LRU and
//!   write-allocate, backed by a bandwidth-limited [`Dram`] channel.
//! * [`BranchUnit`] — two-level direction predictor + BTB + return stack,
//!   sweepable between 0.5× and 8× of the Table I sizing.
//! * [`TraceBuffer`] — capture a run once, replay it under many configs.
//!
//! # Example
//!
//! ```
//! use qoa_model::{Category, MicroOp, OpKind, OpSink, Pc, Phase};
//! use qoa_uarch::{SimpleCore, UarchConfig};
//!
//! let mut core = SimpleCore::new(&UarchConfig::skylake());
//! core.op(MicroOp {
//!     pc: Pc(0x400000),
//!     kind: OpKind::Alu,
//!     category: Category::Execute,
//!     phase: Phase::Interpreter,
//! });
//! let stats = core.finish();
//! assert_eq!(stats.instructions, 1);
//! ```

pub mod branch;
pub mod cache;
pub mod config;
pub mod dram;
pub mod ooo;
pub mod simple;
pub mod stats;
pub mod trace;

pub use branch::{BranchStats, BranchUnit, Btb, ReturnStack, TwoLevelPredictor};
pub use cache::{Access, Cache, CacheStats, HitLevel, MemoryHierarchy};
pub use config::{BranchConfig, CacheConfig, CoreConfig, MemConfig, UarchConfig};
pub use dram::Dram;
pub use ooo::OooCore;
pub use simple::SimpleCore;
pub use stats::ExecutionStats;
pub use trace::TraceBuffer;
