//! Property-based tests for the cache hierarchy and branch predictors.

use proptest::prelude::*;
use qoa_uarch::{BranchConfig, BranchUnit, Cache, CacheConfig, UarchConfig};

fn small_cache_config() -> impl Strategy<Value = CacheConfig> {
    (0u32..4, 0usize..3, 0u32..2).prop_map(|(size_pow, assoc_idx, line_pow)| CacheConfig {
        size: 256 << size_pow,
        assoc: [1, 2, 4][assoc_idx],
        line: 32 << line_pow,
        latency: 4,
    })
}

proptest! {
    /// Misses never exceed accesses, and the resident line count never
    /// exceeds the capacity, for any access sequence and geometry.
    #[test]
    fn cache_counters_are_sane(
        cfg in small_cache_config(),
        addrs in proptest::collection::vec(0u64..8192, 1..400),
    ) {
        let mut c = Cache::new(cfg);
        for a in addrs {
            c.access(a);
        }
        let stats = c.stats();
        prop_assert!(stats.misses <= stats.accesses);
        prop_assert!(c.resident_lines() as u64 <= cfg.size / cfg.line);
    }

    /// Immediately repeated accesses always hit.
    #[test]
    fn repeat_access_hits(
        cfg in small_cache_config(),
        addrs in proptest::collection::vec(0u64..8192, 1..200),
    ) {
        let mut c = Cache::new(cfg);
        for a in addrs {
            c.access(a);
            prop_assert!(c.access(a), "second access to {a} must hit");
        }
    }

    /// A working set no larger than one set's associativity never misses
    /// after the first pass (true LRU guarantees retention).
    #[test]
    fn lru_retains_within_associativity(passes in 2usize..6) {
        let cfg = CacheConfig { size: 1024, assoc: 4, line: 64, latency: 1 };
        let mut c = Cache::new(cfg);
        // 4 lines, all mapping to set 0 (stride = line * sets).
        let sets = cfg.sets() as u64;
        let addrs: Vec<u64> = (0..4).map(|i| i * 64 * sets).collect();
        for a in &addrs {
            c.access(*a);
        }
        let cold = c.stats().misses;
        for _ in 0..passes {
            for a in &addrs {
                prop_assert!(c.access(*a));
            }
        }
        prop_assert_eq!(c.stats().misses, cold);
    }

    /// Constant-direction branches converge to near-perfect prediction.
    #[test]
    fn predictor_learns_constant_direction(taken in any::<bool>(), pc in 0u64..1u64<<20) {
        let mut u = BranchUnit::new(&BranchConfig::skylake());
        let pc = qoa_model::Pc(0x40_0000 + pc * 4);
        for _ in 0..16 {
            u.branch(pc, taken, qoa_model::Pc(0x40_0000), false);
        }
        let before = u.stats().direction_mispredicts;
        for _ in 0..64 {
            u.branch(pc, taken, qoa_model::Pc(0x40_0000), false);
        }
        prop_assert_eq!(u.stats().direction_mispredicts, before);
    }

    /// Every sweepable configuration is internally consistent.
    #[test]
    fn sweep_configs_validate(
        width in 1usize..64,
        llc_pow in 18u32..25,
        line_pow in 6u32..13,
        lat in 10u64..1000,
        bw in 100u64..30000,
    ) {
        let cfg = UarchConfig::skylake()
            .with_issue_width(width)
            .with_llc_size(1 << llc_pow)
            .with_line_size(1 << line_pow)
            .with_mem_latency(lat)
            .with_mem_bandwidth(bw);
        cfg.validate();
    }

    /// The simple core's per-category cycles always sum to the total, for
    /// arbitrary op streams.
    #[test]
    fn simple_core_attribution_is_exact(
        ops in proptest::collection::vec((0u64..64, 0u64..1u64<<16, 0u8..4), 1..300),
    ) {
        use qoa_model::{Category, MicroOp, OpKind, OpSink, Pc, Phase};
        use qoa_uarch::SimpleCore;
        let mut core = SimpleCore::new(&UarchConfig::skylake());
        for (pc, addr, kind) in ops {
            let kind = match kind {
                0 => OpKind::Alu,
                1 => OpKind::Load { addr: 0x5_0000_0000 + addr, size: 8 },
                2 => OpKind::Store { addr: 0x5_0000_0000 + addr, size: 8 },
                _ => OpKind::Branch { taken: true, target: Pc(0x40_0000), indirect: false },
            };
            core.op(MicroOp {
                pc: Pc(0x40_0000 + pc * 4),
                kind,
                category: Category::from_index((pc % 16) as usize),
                phase: Phase::Interpreter,
            });
        }
        let s = core.finish();
        prop_assert_eq!(s.cycles_by_category.total(), s.cycles);
        prop_assert_eq!(s.cycles_by_phase.total(), s.cycles);
    }
}
