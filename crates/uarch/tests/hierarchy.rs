//! Hierarchy-level behaviour: level interaction, DRAM queuing under the
//! bandwidth sweep, and replay equivalence between capture paths.

use qoa_model::{Category, MicroOp, OpKind, OpSink, Pc, Phase};
use qoa_uarch::{HitLevel, MemoryHierarchy, OooCore, TraceBuffer, UarchConfig};

fn mk_load(i: u64, addr: u64) -> MicroOp {
    MicroOp {
        pc: Pc(0x40_0000 + (i % 64) * 4),
        kind: OpKind::Load { addr, size: 8 },
        category: Category::Execute,
        phase: Phase::Interpreter,
    }
}

#[test]
fn levels_fill_on_the_way_back() {
    let cfg = UarchConfig::skylake();
    let mut h = MemoryHierarchy::new(&cfg);
    // First touch goes to memory and fills every level.
    assert_eq!(h.data(0x1000, 0).level, HitLevel::Memory);
    // Second touch hits L1.
    assert_eq!(h.data(0x1000, 10).level, HitLevel::L1);
    assert_eq!(h.l1d_stats().accesses, 2);
    assert_eq!(h.l2_stats().misses, 1);
    assert_eq!(h.llc_stats().misses, 1);
}

#[test]
fn dram_byte_accounting_matches_llc_misses() {
    let cfg = UarchConfig::skylake();
    let mut h = MemoryHierarchy::new(&cfg);
    for i in 0..100u64 {
        h.data(0x5_0000_0000 + i * 4096, 0);
    }
    assert_eq!(h.dram_bytes(), 100 * 64, "one line per distinct page touch");
}

#[test]
fn bandwidth_sweep_is_monotone_for_streaming_loads() {
    // Lower bandwidth must never make a DRAM-bound loop faster.
    let mut trace = TraceBuffer::new();
    for i in 0..60_000u64 {
        trace.op(mk_load(i, 0x5_0000_0000 + i * 64));
    }
    let mut last = 0u64;
    for bw in [200u64, 800, 3200, 12800, 25600] {
        let cfg = UarchConfig::skylake().with_mem_bandwidth(bw);
        let cycles = trace.simulate_ooo(&cfg).cycles;
        if last != 0 {
            assert!(
                cycles <= last + last / 100,
                "{bw} MB/s took {cycles}, slower than previous {last}"
            );
        }
        last = cycles;
    }
    // And the sweep's extremes must differ substantially.
    let slow = trace
        .simulate_ooo(&UarchConfig::skylake().with_mem_bandwidth(200))
        .cycles;
    let fast = trace
        .simulate_ooo(&UarchConfig::skylake().with_mem_bandwidth(25600))
        .cycles;
    assert!(slow > fast * 3, "slow {slow} vs fast {fast}");
}

#[test]
fn direct_sink_and_trace_replay_agree() {
    // Feeding a core directly and replaying a captured trace must give
    // identical statistics.
    let ops: Vec<MicroOp> = (0..20_000u64)
        .map(|i| mk_load(i, 0x5_0000_0000 + (i * 64) % (8 << 20)))
        .collect();
    let cfg = UarchConfig::skylake();

    let mut direct = OooCore::new(&cfg);
    for op in &ops {
        direct.op(*op);
    }
    let direct_stats = direct.finish();

    let mut trace = TraceBuffer::with_capacity(ops.len());
    for op in &ops {
        trace.op(*op);
    }
    let replay_stats = trace.simulate_ooo(&cfg);

    assert_eq!(direct_stats.cycles, replay_stats.cycles);
    assert_eq!(direct_stats.instructions, replay_stats.instructions);
    assert_eq!(direct_stats.llc.misses, replay_stats.llc.misses);
}

#[test]
fn larger_llc_never_hurts_a_fixed_trace() {
    let mut trace = TraceBuffer::new();
    // Mixed working set around 4 MB.
    for i in 0..120_000u64 {
        trace.op(mk_load(i, 0x5_0000_0000 + (i * 640) % (4 << 20)));
    }
    let mut last = u64::MAX;
    for llc in [256u64 << 10, 1 << 20, 4 << 20, 16 << 20] {
        let cfg = UarchConfig::skylake().with_llc_size(llc);
        let cycles = trace.simulate_ooo(&cfg).cycles;
        assert!(
            cycles <= last.saturating_add(last / 50),
            "LLC {llc} made things worse: {cycles} vs {last}"
        );
        last = cycles;
    }
}
