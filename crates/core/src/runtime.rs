//! Running guest programs under the paper's four run-time configurations.

use crate::error::QoaError;
use qoa_analysis::Verified;
use qoa_frontend::CodeObject;
use qoa_jit::{JitConfig, JitStats, PyPyVm};
use qoa_model::{OpSink, RuntimeKind};
use qoa_obs::{ObsConfig, Observability};
use qoa_uarch::TraceBuffer;
use qoa_vm::{HeapMode, Vm, VmConfig, VmStats};
use std::rc::Rc;

/// Default execution fuel for experiment runs (guards against accidental
/// infinite loops in workload programs).
pub const DEFAULT_FUEL: u64 = 2_000_000_000;

/// A fully specified run-time configuration.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Which of the paper's run-times to model.
    pub kind: RuntimeKind,
    /// Nursery size override for the generational run-times (bytes).
    pub nursery: Option<u64>,
    /// Execution fuel (0 = unlimited).
    pub max_steps: u64,
    /// Wall-clock deadline for the run (`None` = unlimited). The VM
    /// polls this cooperatively every few thousand bytecodes.
    pub deadline: Option<std::time::Instant>,
    /// Simulated live-heap cap in bytes (0 = unlimited).
    pub max_heap_bytes: u64,
    /// Verify bytecode up front and elide the interpreter's dynamic
    /// guards (the default). When false the VM keeps its per-dispatch
    /// guard micro-ops and the verifier is skipped entirely.
    pub elide_checks: bool,
    /// Observability toggle. Disabled by default, which keeps the figure
    /// paths overhead-free: no frame capture, no spans, no sampling.
    pub obs: ObsConfig,
    /// Static optimization level (0 = off, the default). Levels map to
    /// [`qoa_analysis::Passes::for_level`]: 1 enables constant folding +
    /// dead-code elimination, 2 adds global→fast promotion and
    /// superinstruction fusion. Optimized code is always re-verified;
    /// a re-verification failure aborts the run (`QoaError::Verify`).
    pub opt_level: u8,
}

impl RuntimeConfig {
    /// Configuration for `kind` with its default nursery.
    pub fn new(kind: RuntimeKind) -> Self {
        RuntimeConfig {
            kind,
            nursery: None,
            max_steps: DEFAULT_FUEL,
            deadline: None,
            max_heap_bytes: 0,
            elide_checks: true,
            obs: ObsConfig::default(),
            opt_level: 0,
        }
    }

    /// Returns a copy with the nursery size set (ignored by CPython).
    pub fn with_nursery(mut self, bytes: u64) -> Self {
        self.nursery = Some(bytes);
        self
    }

    /// Returns a copy with the wall-clock deadline set (or cleared).
    pub fn with_deadline(mut self, deadline: Option<std::time::Instant>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Returns a copy with the simulated live-heap cap set.
    pub fn with_heap_cap(mut self, bytes: u64) -> Self {
        self.max_heap_bytes = bytes;
        self
    }

    /// Returns a copy with check elision switched on or off.
    pub fn with_check_elision(mut self, on: bool) -> Self {
        self.elide_checks = on;
        self
    }

    /// Returns a copy with the observability configuration set.
    pub fn with_observability(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// Returns a copy with the static optimization level set.
    pub fn with_opt_level(mut self, level: u8) -> Self {
        self.opt_level = level;
        self
    }

    pub(crate) fn jit_config(&self, enabled: bool) -> JitConfig {
        let base = if self.kind == RuntimeKind::V8 {
            JitConfig::v8()
        } else {
            JitConfig::default()
        };
        JitConfig {
            enabled,
            nursery_size: self.nursery.unwrap_or(base.nursery_size),
            max_steps: self.max_steps,
            deadline: self.deadline,
            max_heap_bytes: self.max_heap_bytes,
            ..base
        }
    }
}

/// Everything captured from one guest-program run: the micro-op trace
/// (replayable under any hardware configuration) plus run-time statistics.
#[derive(Debug)]
pub struct CapturedRun {
    /// The micro-op stream.
    pub trace: TraceBuffer,
    /// Interpreter/allocator statistics.
    pub vm: VmStats,
    /// JIT statistics (zeroed for CPython).
    pub jit: JitStats,
    /// Captured guest `print` output.
    pub output: Vec<String>,
    /// Rendered value of the workload's `result` global, for verification.
    pub result: Option<String>,
}

/// Runs `source` under `rt`, capturing the full micro-op trace.
///
/// # Errors
///
/// Returns the typed [`QoaError`]: compile error, guest run-time error,
/// or resource cutoff (fuel, deadline, simulated OOM).
pub fn capture(source: &str, rt: &RuntimeConfig) -> Result<CapturedRun, QoaError> {
    let trace = if rt.obs.enabled {
        TraceBuffer::with_frame_capture()
    } else {
        TraceBuffer::new()
    };
    run_with_sink(source, rt, trace).map(
        |(trace, vm, jit, output, result)| CapturedRun { trace, vm, jit, output, result },
    )
}

/// Runs `source` under `rt` with wall-clock spans recorded into `obs`
/// for every pipeline stage (parse, compile, verify, execute) and guest
/// frame events captured in the trace for the sampling profiler.
///
/// The captured trace and statistics are identical to [`capture`] with
/// observability enabled — this entry point only adds the wall spans.
///
/// # Errors
///
/// Returns the typed [`QoaError`]: compile error, guest run-time error,
/// or resource cutoff (fuel, deadline, simulated OOM).
pub fn capture_observed(
    source: &str,
    rt: &RuntimeConfig,
    obs: &mut Observability,
) -> Result<CapturedRun, QoaError> {
    let module = obs
        .wall_span("parse", || qoa_frontend::parse(source))
        .map_err(qoa_frontend::FrontendError::from)?;
    let code = obs
        .wall_span("compile", || qoa_frontend::compile_module(&module))
        .map_err(qoa_frontend::FrontendError::from)?;
    let (code, verified) = if rt.opt_level > 0 {
        let (v, _report) = obs.wall_span("optimize", || qoa_analysis::optimize(&code, rt.opt_level))?;
        let code = Rc::clone(v.get());
        (code, rt.elide_checks.then_some(v))
    } else {
        let verified = if rt.elide_checks {
            Some(obs.wall_span("verify", || qoa_analysis::verify(&code))?)
        } else {
            None
        };
        (code, verified)
    };
    obs.wall_span("execute", || {
        run_compiled(&code, verified.as_ref(), rt, TraceBuffer::with_frame_capture())
    })
    .map(|(trace, vm, jit, output, result)| CapturedRun { trace, vm, jit, output, result })
}

/// Runs `source` under `rt` with an arbitrary sink (e.g. a core model
/// directly, when trace memory is a concern).
///
/// # Errors
///
/// Returns the typed [`QoaError`]: compile error, guest run-time error,
/// or resource cutoff (fuel, deadline, simulated OOM).
/// Everything a runtime execution yields besides the trace: the sink,
/// VM and JIT statistics, guest stdout, and the `result` global.
pub type SinkRun<S> = (S, VmStats, JitStats, Vec<String>, Option<String>);

pub fn run_with_sink<S: OpSink>(
    source: &str,
    rt: &RuntimeConfig,
    sink: S,
) -> Result<SinkRun<S>, QoaError> {
    let code = qoa_frontend::compile(source)?;
    let (code, verified) = prepare(code, rt)?;
    run_compiled(&code, verified.as_ref(), rt, sink)
}

/// The code to load plus the elision token, when check elision is on.
pub(crate) type Prepared = (Rc<CodeObject>, Option<Verified<Rc<CodeObject>>>);

/// Optimizes (when `opt_level > 0`) and verifies compiled code per `rt`.
/// Optimized code is *always* re-verified — the [`Verified`] token is
/// simply dropped when check elision is off.
pub(crate) fn prepare(code: Rc<CodeObject>, rt: &RuntimeConfig) -> Result<Prepared, QoaError> {
    if rt.opt_level > 0 {
        let (v, _report) = qoa_analysis::optimize(&code, rt.opt_level)?;
        let code = Rc::clone(v.get());
        Ok((code, rt.elide_checks.then_some(v)))
    } else {
        let verified = if rt.elide_checks { Some(qoa_analysis::verify(&code)?) } else { None };
        Ok((code, verified))
    }
}

/// Executes already-compiled (and optionally verified) code under `rt`.
fn run_compiled<S: OpSink>(
    code: &Rc<CodeObject>,
    verified: Option<&Verified<Rc<CodeObject>>>,
    rt: &RuntimeConfig,
    sink: S,
) -> Result<SinkRun<S>, QoaError> {
    match rt.kind {
        RuntimeKind::CPython => {
            let cfg = VmConfig {
                heap: HeapMode::Rc,
                max_steps: rt.max_steps,
                deadline: rt.deadline,
                max_heap_bytes: rt.max_heap_bytes,
            };
            let mut vm = Vm::new(cfg, sink);
            match verified {
                Some(v) => vm.load_verified(v),
                None => vm.load_program(code),
            }
            vm.run().map_err(QoaError::from)?;
            let result = vm.global_display("result");
            let output = vm.output().to_vec();
            let stats = vm.stats();
            let (sink, _) = vm.finish();
            Ok((sink, stats, JitStats::default(), output, result))
        }
        RuntimeKind::PyPyNoJit | RuntimeKind::PyPyJit | RuntimeKind::V8 => {
            let enabled = rt.kind != RuntimeKind::PyPyNoJit;
            let mut vm = PyPyVm::new(rt.jit_config(enabled), sink);
            match verified {
                Some(v) => vm.load_verified(v),
                None => vm.load_program(code),
            }
            vm.run().map_err(QoaError::from)?;
            let jit = vm.jit_stats();
            let result = vm.vm.global_display("result");
            let output = vm.vm.output().to_vec();
            let stats = vm.vm.stats();
            let (sink, _) = vm.vm.finish();
            Ok((sink, stats, jit, output, result))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "total = 0\nfor i in range(500):\n    total = total + i\nresult = total\n";

    #[test]
    fn all_runtimes_capture_and_agree() {
        let mut results = Vec::new();
        for kind in RuntimeKind::ALL {
            let run = capture(SRC, &RuntimeConfig::new(kind)).expect("runs");
            assert!(!run.trace.is_empty(), "{kind}: empty trace");
            results.push(run.result.expect("result"));
        }
        results.dedup();
        assert_eq!(results.len(), 1, "runtimes disagree: {results:?}");
    }

    #[test]
    fn guarded_and_elided_paths_agree() {
        let elided = capture(SRC, &RuntimeConfig::new(RuntimeKind::CPython)).expect("runs");
        let guarded = capture(
            SRC,
            &RuntimeConfig::new(RuntimeKind::CPython).with_check_elision(false),
        )
        .expect("runs");
        assert_eq!(elided.result, guarded.result);
        assert!(
            guarded.trace.len() > elided.trace.len(),
            "guards emit extra micro-ops: guarded {} vs elided {}",
            guarded.trace.len(),
            elided.trace.len()
        );
    }

    #[test]
    fn opt_levels_agree_and_shrink_dispatch() {
        let base = RuntimeConfig::new(RuntimeKind::CPython);
        let plain = capture(SRC, &base).expect("runs");
        for level in 1..=qoa_analysis::MAX_OPT_LEVEL {
            let opt = capture(SRC, &base.with_opt_level(level)).expect("runs");
            assert_eq!(opt.result, plain.result, "level {level} result");
            assert_eq!(opt.output, plain.output, "level {level} output");
            assert!(
                opt.vm.bytecodes <= plain.vm.bytecodes,
                "level {level}: {} > {} bytecodes",
                opt.vm.bytecodes,
                plain.vm.bytecodes
            );
        }
        // Level 2 promotes + fuses the module loop, so it must strictly
        // reduce executed bytecodes (dispatches).
        let l2 = capture(SRC, &base.with_opt_level(2)).expect("runs");
        assert!(l2.vm.bytecodes < plain.vm.bytecodes);
    }

    #[test]
    fn jit_runtimes_report_jit_stats() {
        let hot = "t = 0\nfor i in range(3000):\n    t = t + i\nresult = t\n";
        let run = capture(hot, &RuntimeConfig::new(RuntimeKind::PyPyJit)).expect("runs");
        assert!(run.jit.traces_compiled > 0);
        let run = capture(hot, &RuntimeConfig::new(RuntimeKind::PyPyNoJit)).expect("runs");
        assert_eq!(run.jit.traces_compiled, 0);
    }

    #[test]
    fn nursery_override_is_honored() {
        let alloc_heavy =
            "xs = []\nfor i in range(30000):\n    xs.append((i, i))\n    if len(xs) > 64:\n        xs.pop(0)\nresult = len(xs)\n";
        let small = capture(
            alloc_heavy,
            &RuntimeConfig::new(RuntimeKind::PyPyNoJit).with_nursery(256 << 10),
        )
        .expect("runs");
        let big = capture(
            alloc_heavy,
            &RuntimeConfig::new(RuntimeKind::PyPyNoJit).with_nursery(64 << 20),
        )
        .expect("runs");
        assert!(
            small.vm.gc.minor_collections > big.vm.gc.minor_collections,
            "small {:?} vs big {:?}",
            small.vm.gc,
            big.vm.gc
        );
    }
}
