//! The chaos runner: deterministic fault injection with mid-run
//! checkpoint/restore recovery.
//!
//! [`capture_chaos`] runs a workload exactly like
//! [`crate::runtime::capture`], but with a [`FaultPlan`] armed and the
//! machine driven step by step so it can be snapshotted every
//! `checkpoint_every` bytecodes. When an *injected* fault surfaces, the
//! runner restores the most recent [`Snapshot`] — interpreter, heap, JIT
//! driver, *and* attribution state all rewind together — disarms the
//! consumed fault point, and resumes. Because execution is deterministic
//! (the fault clock counts simulated steps, never wall time), the
//! recovered run re-executes the rewound span identically and finishes
//! with a trace **byte-identical** to the fault-free baseline: that is
//! the differential oracle [`oracle_check`] asserts.
//!
//! Organic errors (guest faults, real fuel/deadline/OOM) are *not*
//! recovered — they surface as the same typed [`QoaError`] the plain
//! runner reports.

use crate::error::QoaError;
use crate::journal::{CellMetrics, Metric};
use crate::runtime::{CapturedRun, RuntimeConfig};
use qoa_chaos::{ChaosState, FaultKind, FaultPlan, FaultRecord, Snapshot};
use qoa_frontend::CodeObject;
use qoa_jit::PyPyVm;
use qoa_model::{OpSink, RuntimeKind};
use qoa_obs::metrics::Registry;
use qoa_uarch::{ExecutionStats, TraceBuffer, UarchConfig};
use qoa_vm::{HeapMode, StepEvent, Vm, VmConfig, VmError};
use std::collections::BTreeMap;

/// How to run a workload under fault injection.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// The seeded fault schedule.
    pub plan: FaultPlan,
    /// Snapshot cadence in executed bytecodes.
    pub checkpoint_every: u64,
    /// Degrade JIT faults in place (deopt + continue) instead of
    /// recovering them by restore. The run then completes with correct
    /// guest results but a legitimately different trace, so the
    /// differential oracle does not apply.
    pub degrade_jit: bool,
}

impl ChaosOptions {
    /// Options for `plan` with the default checkpoint cadence.
    pub fn new(plan: FaultPlan) -> ChaosOptions {
        ChaosOptions { plan, checkpoint_every: 4096, degrade_jit: false }
    }

    /// Returns a copy with the checkpoint cadence set.
    pub fn with_checkpoint_every(mut self, steps: u64) -> ChaosOptions {
        self.checkpoint_every = steps;
        self
    }

    /// Returns a copy with degrade-in-place JIT recovery enabled.
    pub fn with_degrade_jit(mut self) -> ChaosOptions {
        self.degrade_jit = true;
        self
    }
}

/// What the chaos engine did during one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosOutcome {
    /// Faults injected, by [`FaultKind::name`].
    pub injected: BTreeMap<&'static str, u64>,
    /// Faults recovered (by restore or in place), by kind name.
    pub recoveries: BTreeMap<&'static str, u64>,
    /// Snapshots captured.
    pub checkpoints_written: u64,
    /// Snapshots restored (one per recovered runtime fault).
    pub restores: u64,
    /// Corrupted code objects the verifier rejected (its job).
    pub verifier_caught: u64,
    /// Corrupted code objects the verifier failed to reject. The run
    /// still loads pristine code (preserving the oracle); the miss is
    /// reported so lint coverage can close the gap.
    pub verifier_missed: u64,
}

impl ChaosOutcome {
    /// Total faults injected across all kinds.
    pub fn faults_injected_total(&self) -> u64 {
        self.injected.values().sum()
    }

    /// Total faults recovered across all kinds.
    pub fn recoveries_total(&self) -> u64 {
        self.recoveries.values().sum()
    }

    fn note(&mut self, kind: FaultKind, recovered: bool) {
        *self.injected.entry(kind.name()).or_insert(0) += 1;
        if recovered {
            *self.recoveries.entry(kind.name()).or_insert(0) += 1;
        }
    }

    /// Flattens the counters into journal metrics (the v3 `"chaos"`
    /// object).
    pub fn to_metrics(&self) -> CellMetrics {
        let mut m = CellMetrics::new();
        m.insert(
            "faults_injected_total".into(),
            Metric::Int(self.faults_injected_total() as i64),
        );
        for (kind, n) in &self.injected {
            m.insert(format!("faults_injected_total{{kind=\"{kind}\"}}"), Metric::Int(*n as i64));
        }
        for (kind, n) in &self.recoveries {
            m.insert(format!("recoveries_total{{kind=\"{kind}\"}}"), Metric::Int(*n as i64));
        }
        m.insert("checkpoints_written_total".into(), Metric::Int(self.checkpoints_written as i64));
        m.insert("restores_total".into(), Metric::Int(self.restores as i64));
        m.insert("verifier_caught_total".into(), Metric::Int(self.verifier_caught as i64));
        m.insert("verifier_missed_total".into(), Metric::Int(self.verifier_missed as i64));
        m
    }

    /// Exports the counters into a metrics registry, under the same names
    /// the rest of the stack exposes via Prometheus text exposition.
    pub fn export(&self, reg: &mut Registry) {
        let injected = reg.counter(
            "qoa_chaos_faults_injected_total",
            "Faults injected by the chaos engine",
        );
        reg.add(injected, self.faults_injected_total());
        for (kind, n) in &self.recoveries {
            let id = reg.labeled_counter(
                "qoa_chaos_recoveries_total",
                "Injected faults recovered (restore or in-place)",
                "kind",
                kind,
            );
            reg.add(id, *n);
        }
        if self.recoveries.is_empty() {
            // Register the family even when nothing fired so the
            // exposition always carries the name.
            reg.labeled_counter(
                "qoa_chaos_recoveries_total",
                "Injected faults recovered (restore or in-place)",
                "kind",
                "none",
            );
        }
        let checkpoints = reg.counter(
            "qoa_chaos_checkpoints_written_total",
            "Mid-run machine snapshots captured",
        );
        reg.add(checkpoints, self.checkpoints_written);
        let restores =
            reg.counter("qoa_chaos_restores_total", "Mid-run machine snapshots restored");
        reg.add(restores, self.restores);
    }
}

/// The step-drive interface [`capture_chaos`] needs from a machine: both
/// [`Vm`] and [`PyPyVm`] provide it (with the whole machine `Clone`-able
/// for snapshots).
trait ChaosMachine: Clone {
    /// Executes one driver step. `Ok(true)` when the program finished.
    fn step_once(&mut self) -> Result<bool, VmError>;
    /// Bytecodes executed so far.
    fn steps(&self) -> u64;
    /// Takes the record of the most recent injected fault.
    fn take_injected(&mut self) -> Option<FaultRecord>;
    /// The armed chaos state.
    fn chaos_mut(&mut self) -> Option<&mut ChaosState>;
}

impl<S: OpSink + Clone> ChaosMachine for Vm<S> {
    fn step_once(&mut self) -> Result<bool, VmError> {
        Ok(matches!(self.step()?, StepEvent::Done))
    }

    fn steps(&self) -> u64 {
        Vm::steps(self)
    }

    fn take_injected(&mut self) -> Option<FaultRecord> {
        Vm::take_injected(self)
    }

    fn chaos_mut(&mut self) -> Option<&mut ChaosState> {
        Vm::chaos_mut(self)
    }
}

impl<S: OpSink + Clone> ChaosMachine for PyPyVm<S> {
    fn step_once(&mut self) -> Result<bool, VmError> {
        self.step_driver()
    }

    fn steps(&self) -> u64 {
        PyPyVm::steps(self)
    }

    fn take_injected(&mut self) -> Option<FaultRecord> {
        PyPyVm::take_injected(self)
    }

    fn chaos_mut(&mut self) -> Option<&mut ChaosState> {
        self.vm.chaos_mut()
    }
}

/// Drives `machine` to completion, checkpointing every `every` bytecodes
/// and recovering injected faults by restore-and-disarm.
fn drive<M: ChaosMachine>(
    mut machine: M,
    every: u64,
    out: &mut ChaosOutcome,
) -> Result<M, QoaError> {
    let every = every.max(1);
    let mut snap: Option<Snapshot<M>> = None;
    // Every fault point recovered so far. A snapshot captured *before* a
    // fault fired knows nothing of its consumption, so each restore must
    // re-disarm the full set — otherwise two faults inside one checkpoint
    // window re-arm each other and the run livelocks.
    let mut disarmed: Vec<usize> = Vec::new();
    loop {
        // Checkpoint only while unconsumed fault points remain: once the
        // plan is exhausted nothing can trigger a restore, so further
        // snapshots would be pure overhead.
        let pending = machine.chaos_mut().is_some_and(|c| !c.exhausted());
        let due = match &snap {
            None => true,
            Some(s) => machine.steps().saturating_sub(s.steps()) >= every,
        };
        if pending && due {
            snap = Some(Snapshot::capture(machine.steps(), &machine));
            out.checkpoints_written += 1;
        }
        match machine.step_once() {
            Ok(true) => {
                // Degrade-mode recoveries happened inside the machine;
                // fold them into the counters before the machine is
                // consumed for extraction.
                if let Some(chaos) = machine.chaos_mut() {
                    let n = chaos.in_vm_recoveries();
                    if n > 0 {
                        *out.injected.entry("jit").or_insert(0) += n;
                        *out.recoveries.entry("jit").or_insert(0) += n;
                    }
                }
                return Ok(machine);
            }
            Ok(false) => {}
            Err(e) => match machine.take_injected() {
                Some(rec) => {
                    // A fault can only fire during a step, and a snapshot
                    // is guaranteed before any step with pending faults;
                    // restore() is None only on a version mismatch.
                    let Some(mut restored) = snap.as_ref().and_then(Snapshot::restore) else {
                        return Err(QoaError::Injected { what: rec.kind.name(), steps: rec.tick });
                    };
                    disarmed.push(rec.index);
                    if let Some(chaos) = restored.chaos_mut() {
                        for &i in &disarmed {
                            chaos.disarm(i);
                        }
                    }
                    machine = restored;
                    out.restores += 1;
                    out.note(rec.kind, true);
                }
                None => return Err(QoaError::from(e)),
            },
        }
    }
}

/// Deterministically corrupts a copy of `code` (seeded instruction-arg
/// mutation), modeling a bad bytecode load.
fn corrupt_code(code: &CodeObject, seed: u64) -> CodeObject {
    let mut bad = code.clone();
    if !bad.code.is_empty() {
        let idx = (seed as usize) % bad.code.len();
        // An absurd operand index: out of range for every operand table.
        bad.code[idx].arg ^= 0x00ff_fff0;
    }
    bad
}

/// The fault kinds a run-time can meaningfully absorb: JIT run-times
/// get the full set (including compile faults and trace aborts),
/// interpreter-only run-times the interpreter subset. Seeded plans built
/// for supervised chaos cells use this so a `CPython` cell never wastes
/// injection points on JIT-only faults that can't fire.
pub fn fault_kinds_for(kind: RuntimeKind) -> &'static [FaultKind] {
    if kind.has_jit() {
        &FaultKind::ALL
    } else {
        &FaultKind::INTERP
    }
}

/// Runs `source` under `rt` with the fault plan in `opts` armed,
/// recovering injected faults so that — when the run completes — the
/// captured trace is byte-identical to a fault-free [`capture`].
///
/// [`capture`]: crate::runtime::capture
///
/// # Errors
///
/// Returns the typed [`QoaError`] for organic failures (compile, guest,
/// fuel, deadline, OOM); injected faults are recovered, not returned,
/// unless snapshot restore is impossible.
pub fn capture_chaos(
    source: &str,
    rt: &RuntimeConfig,
    opts: &ChaosOptions,
) -> Result<(CapturedRun, ChaosOutcome), QoaError> {
    let mut out = ChaosOutcome::default();
    let code = qoa_frontend::compile(source)?;

    let mut chaos = ChaosState::new(opts.plan.clone());
    if opts.degrade_jit {
        chaos = chaos.with_degrade_jit();
    }

    // Load-time faults: present a corrupted code object; the verifier is
    // the recovery path. Whether or not it catches the corruption, the
    // pristine code is what loads — the oracle must hold — but a miss is
    // counted so the verifier's coverage gap is visible.
    let mut corrupt_salt = 0u64;
    while let Some(rec) = {
        let c = &mut chaos;
        c.poll_at_load(FaultKind::BytecodeCorrupt)
    } {
        corrupt_salt = corrupt_salt.wrapping_add(1);
        let bad = corrupt_code(&code, opts.plan.seed.wrapping_add(corrupt_salt));
        match qoa_analysis::verify_code(&bad) {
            Err(_) => out.verifier_caught += 1,
            Ok(_) => out.verifier_missed += 1,
        }
        out.note(rec.kind, true);
        // The injection is fully handled here; don't let it linger as
        // "last injected" into the run.
        let _ = chaos.take_last_injected();
    }

    // Optimization happens after the load-time corruption probes: the
    // corruption/verifier drill exercises the pristine compiler output,
    // while the code that actually loads is the optimized form, so the
    // chaos oracle also covers the optimizer.
    let (code, verified) = crate::runtime::prepare(code, rt)?;
    let trace = if rt.obs.enabled {
        TraceBuffer::with_frame_capture()
    } else {
        TraceBuffer::new()
    };

    match rt.kind {
        RuntimeKind::CPython => {
            let cfg = VmConfig {
                heap: HeapMode::Rc,
                max_steps: rt.max_steps,
                deadline: rt.deadline,
                max_heap_bytes: rt.max_heap_bytes,
            };
            let mut vm = Vm::new(cfg, trace);
            match verified.as_ref() {
                Some(v) => vm.load_verified(v),
                None => vm.load_program(&code),
            }
            vm.arm_chaos(chaos);
            let mut vm = drive(vm, opts.checkpoint_every, &mut out)?;
            let result = vm.global_display("result");
            let output = vm.output().to_vec();
            let stats = vm.stats();
            let (trace, _) = vm.finish();
            Ok((
                CapturedRun {
                    trace,
                    vm: stats,
                    jit: qoa_jit::JitStats::default(),
                    output,
                    result,
                },
                out,
            ))
        }
        RuntimeKind::PyPyNoJit | RuntimeKind::PyPyJit | RuntimeKind::V8 => {
            let enabled = rt.kind != RuntimeKind::PyPyNoJit;
            let mut vm = PyPyVm::new(rt.jit_config(enabled), trace);
            match verified.as_ref() {
                Some(v) => vm.load_verified(v),
                None => vm.load_program(&code),
            }
            vm.arm_chaos(chaos);
            let mut vm = drive(vm, opts.checkpoint_every, &mut out)?;
            let jit = vm.jit_stats();
            let result = vm.vm.global_display("result");
            let output = vm.vm.output().to_vec();
            let stats = vm.vm.stats();
            let (trace, _) = vm.vm.finish();
            Ok((CapturedRun { trace, vm: stats, jit, output, result }, out))
        }
    }
}

/// The differential oracle: asserts a faulted-then-recovered run is
/// byte-identical to the fault-free baseline. Returns `None` when it
/// holds, or a description of the first divergence.
///
/// "Byte-identical" covers the guest-visible results (value of `result`,
/// printed output), the micro-op trace length, and the full
/// [`ExecutionStats`] of simulating both traces on the same core model —
/// every counter, including per-category and per-phase attribution,
/// compared exactly.
pub fn oracle_check(
    baseline: &CapturedRun,
    recovered: &CapturedRun,
    uarch: &UarchConfig,
) -> Option<String> {
    if baseline.result != recovered.result {
        return Some(format!(
            "guest result diverged: {:?} vs {:?}",
            baseline.result, recovered.result
        ));
    }
    if baseline.output != recovered.output {
        return Some("guest output diverged".to_string());
    }
    if baseline.trace.len() != recovered.trace.len() {
        return Some(format!(
            "micro-op count diverged: {} vs {}",
            baseline.trace.len(),
            recovered.trace.len()
        ));
    }
    let a = baseline.trace.simulate_simple(uarch);
    let b = recovered.trace.simulate_simple(uarch);
    stats_divergence(&a, &b)
}

/// Compares two [`ExecutionStats`] exactly, returning a description of
/// the first differing counter.
pub fn stats_divergence(a: &ExecutionStats, b: &ExecutionStats) -> Option<String> {
    if a == b {
        return None;
    }
    if a.cycles != b.cycles {
        return Some(format!("cycles diverged: {} vs {}", a.cycles, b.cycles));
    }
    if a.instructions != b.instructions {
        return Some(format!("instructions diverged: {} vs {}", a.instructions, b.instructions));
    }
    for (c, &cycles) in a.cycles_by_category.iter() {
        if b.cycles_by_category[c] != cycles {
            return Some(format!(
                "category {c:?} cycles diverged: {} vs {}",
                cycles, b.cycles_by_category[c]
            ));
        }
    }
    Some("cache/branch/phase counters diverged".to_string())
}
