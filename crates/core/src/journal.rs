//! The JSON-lines run journal.
//!
//! Every completed measurement cell — success or failure — is one line
//! under `results/<figure>.journal.jsonl`, keyed by (figure, workload,
//! runtime, parameter, value, configuration hash). Rerunning a figure
//! binary skips cells already journaled under the same configuration, so
//! a killed sweep resumes where it left off and a finished sweep re-renders
//! instantly from recorded metrics.
//!
//! The file is rewritten atomically (temp file + rename) on every record;
//! a crash mid-write can never leave a half-line behind. There is no
//! `serde` in the dependency tree, so the tiny JSON subset used here
//! (flat objects of strings, integers and floats) is encoded and parsed
//! by hand. Floats are written with Rust's shortest round-trip `Display`,
//! which makes a resumed figure byte-identical to an uninterrupted one.

use crate::error::QoaError;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Journal line format version.
///
/// * v1 (unversioned lines): figure/config/key/status/metrics.
/// * v2: adds the explicit `"version"` field and the optional `"obs"`
///   object — a flattened metrics-registry snapshot for the cell.
/// * v3: adds the optional `"chaos"` object (fault-injection and
///   checkpoint/restore counters for the cell) and the optional
///   `"location"` field on failed lines (panic site `file:line:column`).
/// * v4: adds the `"shed"` status (admission control / circuit breaker
///   declined the cell — recorded distinctly from `"failed"`, with a
///   `"reason"` field), plus the optional supervision fields written by
///   the parallel executor: `"attempts"` (how many times the cell ran,
///   counting retries) and `"breaker"` (the cell's runtime circuit-breaker
///   state at commit: `closed`, `open` or `half-open`).
///
/// Lines without a `version` field are read as v1; lines with a version
/// above [`JOURNAL_VERSION`] are skipped (the cell reruns) rather than
/// misread.
pub const JOURNAL_VERSION: i64 = 4;

/// One journaled measurement value.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// An exact integer (cycle counts, collection counts).
    Int(i64),
    /// A float, stored with shortest round-trip formatting.
    Num(f64),
    /// A label (e.g. a formatted best-nursery size).
    Str(String),
}

impl Metric {
    /// The value as f64 (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Metric::Int(v) => Some(*v as f64),
            Metric::Num(v) => Some(*v),
            Metric::Str(_) => None,
        }
    }

    /// The value as i64.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Metric::Int(v) => Some(*v),
            _ => None,
        }
    }
}

/// Named metrics of one successful cell, in insertion-stable order.
pub type CellMetrics = BTreeMap<String, Metric>;

/// The identity of one measurement cell within a figure.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CellKey {
    /// Workload name (the figure x-axis entry).
    pub workload: String,
    /// Runtime kind (`CPython`, `PyPyJit`, ...).
    pub runtime: String,
    /// Swept parameter name (`nursery`, `IssueWidth`, ...).
    pub param: String,
    /// The parameter value, already formatted.
    pub value: String,
}

impl CellKey {
    /// Builds a key from displayable parts.
    pub fn new(
        workload: impl Into<String>,
        runtime: impl Into<String>,
        param: impl Into<String>,
        value: impl Into<String>,
    ) -> Self {
        CellKey {
            workload: workload.into(),
            runtime: runtime.into(),
            param: param.into(),
            value: value.into(),
        }
    }
}

impl std::fmt::Display for CellKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{} {}={}", self.workload, self.runtime, self.param, self.value)
    }
}

/// What the journal remembers about a completed cell.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome {
    /// The cell succeeded with these metrics.
    Ok(CellMetrics),
    /// The cell failed.
    Failed {
        /// [`QoaError::kind`] tag.
        kind: String,
        /// Rendered error message.
        message: String,
        /// Panic site (`file:line:column`) when the failure was a caught
        /// panic whose hook saw a location. (v3)
        location: Option<String>,
    },
    /// The supervised executor declined to run the cell: load shedding
    /// under a budget gate, or a runtime whose circuit breaker was open.
    /// Distinct from `Failed` — nothing about the cell itself is known to
    /// be wrong, and a later run under a lighter load may measure it. (v4)
    Shed {
        /// Why admission was denied (`budget`, `breaker`).
        reason: String,
    },
}

/// Supervision metadata the parallel executor records beside a cell's
/// outcome (the v4 `"attempts"`/`"breaker"` fields).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Supervision {
    /// Times the cell actually ran (1 = no retries; 0 = shed, never ran).
    pub attempts: u32,
    /// The cell's runtime circuit-breaker state at commit time
    /// (`closed`, `open`, `half-open`).
    pub breaker: String,
}

/// A figure binary's persistent record of completed cells.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    figure: String,
    config: String,
    entries: BTreeMap<CellKey, CellOutcome>,
    /// Per-cell observability snapshots (v2 `"obs"` field), kept beside
    /// the outcome so old readers that only know `metrics` still work.
    obs: BTreeMap<CellKey, CellMetrics>,
    /// Per-cell chaos counters (v3 `"chaos"` field): faults injected,
    /// recoveries by kind, checkpoints written, restores.
    chaos: BTreeMap<CellKey, CellMetrics>,
    /// Per-cell supervision metadata (v4 `"attempts"`/`"breaker"`
    /// fields), written by the parallel executor.
    supervision: BTreeMap<CellKey, Supervision>,
}

impl Journal {
    /// Opens (or starts) the journal for `figure` under `dir`.
    ///
    /// Existing entries are honored only when their configuration hash
    /// matches `config`; `fresh` ignores the journal's prior contents
    /// entirely (they are overwritten on the first record).
    ///
    /// # Errors
    ///
    /// Returns [`QoaError::Journal`] when the journal file exists but
    /// cannot be read.
    pub fn open(
        dir: &Path,
        figure: &str,
        config: impl Into<String>,
        fresh: bool,
    ) -> Result<Journal, QoaError> {
        let config = config.into();
        let path = dir.join(format!("{figure}.journal.jsonl"));
        let mut journal = Journal {
            path,
            figure: figure.to_string(),
            config,
            entries: BTreeMap::new(),
            obs: BTreeMap::new(),
            chaos: BTreeMap::new(),
            supervision: BTreeMap::new(),
        };
        if fresh || !journal.path.exists() {
            return Ok(journal);
        }
        let text = std::fs::read_to_string(&journal.path)
            .map_err(|e| QoaError::journal(format!("reading {}", journal.path.display()), e))?;
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            // A malformed line (old format, manual edit) is skipped, not
            // fatal: the cell simply reruns.
            if let Some(parsed) = journal.parse_line(line) {
                if let Some(snapshot) = parsed.obs {
                    journal.obs.insert(parsed.key.clone(), snapshot);
                }
                if let Some(counters) = parsed.chaos {
                    journal.chaos.insert(parsed.key.clone(), counters);
                }
                if let Some(sup) = parsed.supervision {
                    journal.supervision.insert(parsed.key.clone(), sup);
                }
                journal.entries.insert(parsed.key, parsed.outcome);
            }
        }
        Ok(journal)
    }

    /// Where the journal lives on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of entries currently honored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no cells are recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a completed cell.
    pub fn get(&self, key: &CellKey) -> Option<&CellOutcome> {
        self.entries.get(key)
    }

    /// Records a completed cell and persists the journal atomically.
    ///
    /// # Errors
    ///
    /// Returns [`QoaError::Journal`] when the temp file cannot be written
    /// or renamed into place.
    pub fn record(&mut self, key: CellKey, outcome: CellOutcome) -> Result<(), QoaError> {
        self.record_with_obs(key, outcome, None)
    }

    /// Records a completed cell with an optional observability snapshot
    /// (a flattened metrics-registry view, embedded as the line's `"obs"`
    /// object) and persists the journal atomically.
    ///
    /// # Errors
    ///
    /// Returns [`QoaError::Journal`] when the temp file cannot be written
    /// or renamed into place.
    pub fn record_with_obs(
        &mut self,
        key: CellKey,
        outcome: CellOutcome,
        obs: Option<CellMetrics>,
    ) -> Result<(), QoaError> {
        match obs {
            Some(snapshot) => {
                self.obs.insert(key.clone(), snapshot);
            }
            None => {
                self.obs.remove(&key);
            }
        }
        self.entries.insert(key, outcome);
        self.persist()
    }

    /// Records a completed cell with chaos-engine counters (faults
    /// injected, recoveries, checkpoints — the line's v3 `"chaos"` object)
    /// and persists the journal atomically.
    ///
    /// # Errors
    ///
    /// Returns [`QoaError::Journal`] when the temp file cannot be written
    /// or renamed into place.
    pub fn record_with_chaos(
        &mut self,
        key: CellKey,
        outcome: CellOutcome,
        chaos: Option<CellMetrics>,
    ) -> Result<(), QoaError> {
        match chaos {
            Some(counters) => {
                self.chaos.insert(key.clone(), counters);
            }
            None => {
                self.chaos.remove(&key);
            }
        }
        self.entries.insert(key, outcome);
        self.persist()
    }

    /// Records a completed cell with the supervision metadata the
    /// parallel executor tracked for it (attempt count and circuit-breaker
    /// state — the line's v4 `"attempts"`/`"breaker"` fields) and persists
    /// the journal atomically.
    ///
    /// # Errors
    ///
    /// Returns [`QoaError::Journal`] when the temp file cannot be written
    /// or renamed into place.
    pub fn record_supervised(
        &mut self,
        key: CellKey,
        outcome: CellOutcome,
        supervision: Supervision,
    ) -> Result<(), QoaError> {
        self.supervision.insert(key.clone(), supervision);
        self.entries.insert(key, outcome);
        self.persist()
    }

    /// The observability snapshot recorded with a cell, if any.
    pub fn obs_snapshot(&self, key: &CellKey) -> Option<&CellMetrics> {
        self.obs.get(key)
    }

    /// The supervision metadata recorded with a cell, if any.
    pub fn supervision(&self, key: &CellKey) -> Option<&Supervision> {
        self.supervision.get(key)
    }

    /// The chaos counters recorded with a cell, if any.
    pub fn chaos_snapshot(&self, key: &CellKey) -> Option<&CellMetrics> {
        self.chaos.get(key)
    }

    fn persist(&self) -> Result<(), QoaError> {
        if let Some(dir) = self.path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| QoaError::journal(format!("creating {}", dir.display()), e))?;
        }
        let mut text = String::new();
        for (key, outcome) in &self.entries {
            self.encode_line(&mut text, key, outcome);
        }
        let tmp = self.path.with_extension("jsonl.tmp");
        std::fs::write(&tmp, text)
            .map_err(|e| QoaError::journal(format!("writing {}", tmp.display()), e))?;
        std::fs::rename(&tmp, &self.path)
            .map_err(|e| QoaError::journal(format!("renaming into {}", self.path.display()), e))?;
        Ok(())
    }

    // ---- encoding --------------------------------------------------------

    fn encode_line(&self, out: &mut String, key: &CellKey, outcome: &CellOutcome) {
        out.push('{');
        for (name, value) in [
            ("figure", self.figure.as_str()),
            ("config", self.config.as_str()),
        ] {
            encode_str(out, name);
            out.push(':');
            encode_str(out, value);
            out.push(',');
        }
        let _ = write!(out, "\"version\":{JOURNAL_VERSION},");
        for (name, value) in [
            ("workload", key.workload.as_str()),
            ("runtime", key.runtime.as_str()),
            ("param", key.param.as_str()),
            ("value", key.value.as_str()),
        ] {
            encode_str(out, name);
            out.push(':');
            encode_str(out, value);
            out.push(',');
        }
        match outcome {
            CellOutcome::Ok(metrics) => {
                out.push_str("\"status\":\"ok\",\"metrics\":");
                encode_metrics(out, metrics);
            }
            CellOutcome::Failed { kind, message, location } => {
                out.push_str("\"status\":\"failed\",\"kind\":");
                encode_str(out, kind);
                out.push_str(",\"error\":");
                encode_str(out, message);
                if let Some(at) = location {
                    out.push_str(",\"location\":");
                    encode_str(out, at);
                }
            }
            CellOutcome::Shed { reason } => {
                out.push_str("\"status\":\"shed\",\"reason\":");
                encode_str(out, reason);
            }
        }
        if let Some(sup) = self.supervision.get(key) {
            let _ = write!(out, ",\"attempts\":{},", sup.attempts);
            out.push_str("\"breaker\":");
            encode_str(out, &sup.breaker);
        }
        if let Some(snapshot) = self.obs.get(key) {
            out.push_str(",\"obs\":");
            encode_metrics(out, snapshot);
        }
        if let Some(counters) = self.chaos.get(key) {
            out.push_str(",\"chaos\":");
            encode_metrics(out, counters);
        }
        out.push_str("}\n");
    }

    // ---- decoding --------------------------------------------------------

    fn parse_line(&self, line: &str) -> Option<ParsedLine> {
        let fields = parse_object(line)?;
        if fields.get("figure")?.str()? != self.figure
            || fields.get("config")?.str()? != self.config
        {
            return None;
        }
        // Unversioned lines are v1; anything newer than this reader is
        // skipped rather than misread.
        match fields.get("version") {
            None => {}
            Some(Json::Int(v)) if (1..=JOURNAL_VERSION).contains(v) => {}
            Some(_) => return None,
        }
        let key = CellKey::new(
            fields.get("workload")?.str()?,
            fields.get("runtime")?.str()?,
            fields.get("param")?.str()?,
            fields.get("value")?.str()?,
        );
        let outcome = match fields.get("status")?.str()? {
            "ok" => {
                let Json::Object(raw) = fields.get("metrics")? else { return None };
                CellOutcome::Ok(parse_metrics(raw)?)
            }
            "failed" => CellOutcome::Failed {
                kind: fields.get("kind")?.str()?.to_string(),
                message: fields.get("error")?.str()?.to_string(),
                location: match fields.get("location") {
                    Some(v) => Some(v.str()?.to_string()),
                    None => None,
                },
            },
            "shed" => CellOutcome::Shed {
                reason: fields.get("reason")?.str()?.to_string(),
            },
            _ => return None,
        };
        let obs = match fields.get("obs") {
            Some(Json::Object(raw)) => Some(parse_metrics(raw)?),
            Some(_) => return None,
            None => None,
        };
        let chaos = match fields.get("chaos") {
            Some(Json::Object(raw)) => Some(parse_metrics(raw)?),
            Some(_) => return None,
            None => None,
        };
        let supervision = match (fields.get("attempts"), fields.get("breaker")) {
            (Some(Json::Int(n)), Some(b)) => Some(Supervision {
                attempts: u32::try_from(*n).ok()?,
                breaker: b.str()?.to_string(),
            }),
            (None, None) => None,
            // A line carrying only half the supervision pair (or a
            // mistyped field) is malformed; skip it so the cell reruns.
            _ => return None,
        };
        Some(ParsedLine { key, outcome, obs, chaos, supervision })
    }
}

/// One successfully decoded journal line.
struct ParsedLine {
    key: CellKey,
    outcome: CellOutcome,
    obs: Option<CellMetrics>,
    chaos: Option<CellMetrics>,
    supervision: Option<Supervision>,
}

fn encode_metrics(out: &mut String, metrics: &CellMetrics) {
    out.push('{');
    let mut first = true;
    for (name, metric) in metrics {
        if !first {
            out.push(',');
        }
        first = false;
        encode_str(out, name);
        out.push(':');
        match metric {
            Metric::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Metric::Num(v) => encode_f64(out, *v),
            Metric::Str(s) => encode_str(out, s),
        }
    }
    out.push('}');
}

fn parse_metrics(raw: &BTreeMap<String, Json>) -> Option<CellMetrics> {
    let mut metrics = CellMetrics::new();
    for (name, v) in raw {
        let metric = match v {
            Json::Int(i) => Metric::Int(*i),
            Json::Num(f) => Metric::Num(*f),
            Json::Str(s) => Metric::Str(s.clone()),
            Json::Object(_) => return None,
        };
        metrics.insert(name.clone(), metric);
    }
    Some(metrics)
}

fn encode_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn encode_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Shortest round-trip representation; re-parsing yields the same
        // bits, which is what makes resumed figures byte-identical.
        let mut s = format!("{v}");
        if !s.contains(['.', 'e', 'E']) {
            // "1" would re-parse as an Int; keep the float marker.
            s.push_str(".0");
        }
        out.push_str(&s);
    } else {
        // NaN/inf can't appear in JSON; preserve them as tagged strings.
        let _ = write!(out, "\"!f64:{v}\"");
    }
}

/// The JSON subset the journal uses.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Str(String),
    Int(i64),
    Num(f64),
    Object(BTreeMap<String, Json>),
}

impl Json {
    fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

fn parse_object(text: &str) -> Option<BTreeMap<String, Json>> {
    let mut chars = text.trim().char_indices().peekable();
    let (value, rest) = parse_value(text.trim(), &mut chars)?;
    if !rest.trim().is_empty() {
        return None;
    }
    match value {
        Json::Object(map) => Some(map),
        _ => None,
    }
}

type CharIter<'a> = std::iter::Peekable<std::str::CharIndices<'a>>;

fn skip_ws(chars: &mut CharIter) {
    while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
        chars.next();
    }
}

fn parse_value<'a>(text: &'a str, chars: &mut CharIter<'a>) -> Option<(Json, &'a str)> {
    skip_ws(chars);
    let &(start, c) = chars.peek()?;
    match c {
        '{' => {
            chars.next();
            let mut map = BTreeMap::new();
            skip_ws(chars);
            if matches!(chars.peek(), Some((_, '}'))) {
                chars.next();
            } else {
                loop {
                    skip_ws(chars);
                    let (key, _) = parse_value(text, chars)?;
                    let key = match key {
                        Json::Str(s) => s,
                        _ => return None,
                    };
                    skip_ws(chars);
                    match chars.next() {
                        Some((_, ':')) => {}
                        _ => return None,
                    }
                    let (value, _) = parse_value(text, chars)?;
                    map.insert(key, value);
                    skip_ws(chars);
                    match chars.next() {
                        Some((_, ',')) => continue,
                        Some((_, '}')) => break,
                        _ => return None,
                    }
                }
            }
            let rest_at = chars.peek().map_or(text.len(), |&(i, _)| i);
            Some((Json::Object(map), &text[rest_at..]))
        }
        '"' => {
            chars.next();
            let mut s = String::new();
            loop {
                let (_, c) = chars.next()?;
                match c {
                    '"' => break,
                    '\\' => {
                        let (_, esc) = chars.next()?;
                        match esc {
                            '"' => s.push('"'),
                            '\\' => s.push('\\'),
                            'n' => s.push('\n'),
                            't' => s.push('\t'),
                            'r' => s.push('\r'),
                            'u' => {
                                let mut code = 0u32;
                                for _ in 0..4 {
                                    let (_, h) = chars.next()?;
                                    code = code * 16 + h.to_digit(16)?;
                                }
                                s.push(char::from_u32(code)?);
                            }
                            _ => return None,
                        }
                    }
                    c => s.push(c),
                }
            }
            let rest_at = chars.peek().map_or(text.len(), |&(i, _)| i);
            // A tagged non-finite float round-trips back to a number.
            if let Some(tag) = s.strip_prefix("!f64:") {
                if let Ok(v) = tag.parse::<f64>() {
                    return Some((Json::Num(v), &text[rest_at..]));
                }
            }
            Some((Json::Str(s), &text[rest_at..]))
        }
        _ => {
            // Number: consume until a structural delimiter.
            let mut end = start;
            while let Some(&(i, c)) = chars.peek() {
                if c == ',' || c == '}' || c.is_whitespace() {
                    break;
                }
                end = i + c.len_utf8();
                chars.next();
            }
            let token = &text[start..end];
            if !token.contains(['.', 'e', 'E']) {
                if let Ok(v) = token.parse::<i64>() {
                    return Some((Json::Int(v), &text[end..]));
                }
            }
            token.parse::<f64>().ok().map(|v| (Json::Num(v), &text[end..]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qoa-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    fn sample_metrics() -> CellMetrics {
        let mut m = CellMetrics::new();
        m.insert("cycles".into(), Metric::Int(123_456_789));
        m.insert("miss_rate".into(), Metric::Num(0.017_345_812_234));
        m.insert("best".into(), Metric::Str("2MB \"quoted\"".into()));
        m
    }

    #[test]
    fn record_and_reload_round_trips() {
        let dir = tmp_dir("roundtrip");
        let key = CellKey::new("go", "PyPyJit", "nursery", "1048576");
        {
            let mut j = Journal::open(&dir, "fig10", "cfg1", false).expect("open");
            j.record(key.clone(), CellOutcome::Ok(sample_metrics())).expect("record");
            j.record(
                CellKey::new("telco", "PyPyJit", "nursery", "1048576"),
                CellOutcome::Failed {
                    kind: "panic".into(),
                    message: "boom\nline2".into(),
                    location: Some("crates/vm/src/interp.rs:241:9".into()),
                },
            )
            .expect("record");
        }
        let j = Journal::open(&dir, "fig10", "cfg1", false).expect("reopen");
        assert_eq!(j.len(), 2);
        assert_eq!(j.get(&key), Some(&CellOutcome::Ok(sample_metrics())));
        let failed = j.get(&CellKey::new("telco", "PyPyJit", "nursery", "1048576"));
        assert!(matches!(failed, Some(CellOutcome::Failed { kind, .. }) if kind == "panic"));
        assert!(matches!(
            failed,
            Some(CellOutcome::Failed { location: Some(at), .. }) if at.contains("interp.rs:241")
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_mismatch_invalidates_entries() {
        let dir = tmp_dir("config");
        let key = CellKey::new("go", "CPython", "nursery", "1");
        {
            let mut j = Journal::open(&dir, "fig10", "old", false).expect("open");
            j.record(key.clone(), CellOutcome::Ok(CellMetrics::new())).expect("record");
        }
        let j = Journal::open(&dir, "fig10", "new", false).expect("reopen");
        assert!(j.get(&key).is_none(), "stale-config entry must not be honored");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_ignores_prior_entries() {
        let dir = tmp_dir("fresh");
        let key = CellKey::new("go", "CPython", "nursery", "1");
        {
            let mut j = Journal::open(&dir, "fig10", "cfg", false).expect("open");
            j.record(key.clone(), CellOutcome::Ok(CellMetrics::new())).expect("record");
        }
        let j = Journal::open(&dir, "fig10", "cfg", true).expect("fresh open");
        assert!(j.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn floats_round_trip_bit_for_bit() {
        for v in [0.1, 1.0, -0.0, 1e-17, 123456.75, f64::NAN, f64::INFINITY] {
            let mut out = String::new();
            encode_f64(&mut out, v);
            let line = format!("{{\"x\":{out}}}");
            let map = parse_object(&line).expect("parses");
            let got = match map.get("x").expect("x") {
                Json::Num(f) => *f,
                Json::Int(i) => *i as f64,
                other => panic!("unexpected {other:?}"),
            };
            assert!(
                got.to_bits() == v.to_bits() || (got.is_nan() && v.is_nan()),
                "{v} -> {line} -> {got}"
            );
        }
    }

    #[test]
    fn v1_lines_without_version_are_still_read() {
        // A hand-written line in the original (pre-version) format: no
        // "version" field, no "obs" object.
        let dir = tmp_dir("v1compat");
        let path = dir.join("fig10.journal.jsonl");
        let v1 = "{\"figure\":\"fig10\",\"config\":\"cfg\",\"workload\":\"go\",\
                  \"runtime\":\"PyPyJit\",\"param\":\"nursery\",\"value\":\"4096\",\
                  \"status\":\"ok\",\"metrics\":{\"cycles\":42}}\n";
        std::fs::write(&path, v1).expect("write");
        let j = Journal::open(&dir, "fig10", "cfg", false).expect("open");
        let key = CellKey::new("go", "PyPyJit", "nursery", "4096");
        let Some(CellOutcome::Ok(metrics)) = j.get(&key) else {
            panic!("v1 line not honored: {:?}", j.get(&key));
        };
        assert_eq!(metrics.get("cycles"), Some(&Metric::Int(42)));
        assert!(j.obs_snapshot(&key).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn future_version_lines_are_skipped() {
        let dir = tmp_dir("v99");
        let path = dir.join("fig10.journal.jsonl");
        let v99 = "{\"figure\":\"fig10\",\"config\":\"cfg\",\"version\":99,\
                   \"workload\":\"go\",\"runtime\":\"CPython\",\"param\":\"p\",\
                   \"value\":\"1\",\"status\":\"ok\",\"metrics\":{}}\n";
        std::fs::write(&path, v99).expect("write");
        let j = Journal::open(&dir, "fig10", "cfg", false).expect("open");
        assert!(j.is_empty(), "future-version line must rerun, not misread");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn obs_snapshots_round_trip() {
        let dir = tmp_dir("obs");
        let key = CellKey::new("go", "CPython", "scale", "small");
        let mut obs = CellMetrics::new();
        obs.insert("qoa_sim_cycles_total".into(), Metric::Num(123456.0));
        obs.insert("qoa_vm_dispatch_total{opcode=\"BinaryAdd\"}".into(), Metric::Num(7.0));
        {
            let mut j = Journal::open(&dir, "prof", "cfg", false).expect("open");
            j.record_with_obs(key.clone(), CellOutcome::Ok(sample_metrics()), Some(obs.clone()))
                .expect("record");
        }
        let j = Journal::open(&dir, "prof", "cfg", false).expect("reopen");
        assert_eq!(j.get(&key), Some(&CellOutcome::Ok(sample_metrics())));
        assert_eq!(j.obs_snapshot(&key), Some(&obs));
        // The line self-describes with the current version.
        let text = std::fs::read_to_string(j.path()).expect("read");
        assert!(text.contains("\"version\":4,"), "line: {text}");
        assert!(text.contains("\"obs\":{"), "line: {text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_snapshots_round_trip() {
        let dir = tmp_dir("chaos");
        let key = CellKey::new("go", "CPython", "seed", "7");
        let mut chaos = CellMetrics::new();
        chaos.insert("faults_injected_total".into(), Metric::Int(3));
        chaos.insert("recoveries_total{kind=\"fuel\"}".into(), Metric::Int(2));
        chaos.insert("checkpoints_written_total".into(), Metric::Int(11));
        {
            let mut j = Journal::open(&dir, "chaos", "cfg", false).expect("open");
            j.record_with_chaos(key.clone(), CellOutcome::Ok(sample_metrics()), Some(chaos.clone()))
                .expect("record");
        }
        let j = Journal::open(&dir, "chaos", "cfg", false).expect("reopen");
        assert_eq!(j.get(&key), Some(&CellOutcome::Ok(sample_metrics())));
        assert_eq!(j.chaos_snapshot(&key), Some(&chaos));
        let text = std::fs::read_to_string(j.path()).expect("read");
        assert!(text.contains("\"chaos\":{"), "line: {text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn v2_lines_without_chaos_or_location_are_still_read() {
        let dir = tmp_dir("v2compat");
        let path = dir.join("fig10.journal.jsonl");
        let v2 = "{\"figure\":\"fig10\",\"config\":\"cfg\",\"version\":2,\
                  \"workload\":\"go\",\"runtime\":\"PyPyJit\",\"param\":\"nursery\",\
                  \"value\":\"4096\",\"status\":\"failed\",\"kind\":\"panic\",\
                  \"error\":\"boom\"}\n";
        std::fs::write(&path, v2).expect("write");
        let j = Journal::open(&dir, "fig10", "cfg", false).expect("open");
        let key = CellKey::new("go", "PyPyJit", "nursery", "4096");
        let Some(CellOutcome::Failed { kind, location, .. }) = j.get(&key) else {
            panic!("v2 line not honored: {:?}", j.get(&key));
        };
        assert_eq!(kind, "panic");
        assert_eq!(location.as_deref(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shed_and_supervision_fields_round_trip() {
        let dir = tmp_dir("v4roundtrip");
        let shed_key = CellKey::new("go", "PyPyJit", "nursery", "4096");
        let ok_key = CellKey::new("float", "PyPyJit", "nursery", "4096");
        {
            let mut j = Journal::open(&dir, "fig10", "cfg", false).expect("open");
            j.record_supervised(
                shed_key.clone(),
                CellOutcome::Shed { reason: "breaker".into() },
                Supervision { attempts: 0, breaker: "open".into() },
            )
            .expect("record shed");
            j.record_supervised(
                ok_key.clone(),
                CellOutcome::Ok(sample_metrics()),
                Supervision { attempts: 3, breaker: "closed".into() },
            )
            .expect("record ok");
        }
        let j = Journal::open(&dir, "fig10", "cfg", false).expect("reopen");
        assert_eq!(j.get(&shed_key), Some(&CellOutcome::Shed { reason: "breaker".into() }));
        assert_eq!(
            j.supervision(&shed_key),
            Some(&Supervision { attempts: 0, breaker: "open".into() })
        );
        assert_eq!(j.get(&ok_key), Some(&CellOutcome::Ok(sample_metrics())));
        assert_eq!(
            j.supervision(&ok_key),
            Some(&Supervision { attempts: 3, breaker: "closed".into() })
        );
        let text = std::fs::read_to_string(j.path()).expect("read");
        assert!(text.contains("\"status\":\"shed\",\"reason\":\"breaker\""), "line: {text}");
        assert!(text.contains("\"attempts\":3,\"breaker\":\"closed\""), "line: {text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn v1_through_v3_fixture_lines_are_all_honored() {
        // One hand-written line per historical version, mixed in a single
        // journal file: the v4 reader must honor every one of them.
        let dir = tmp_dir("backcompat");
        let path = dir.join("fig10.journal.jsonl");
        let v1 = "{\"figure\":\"fig10\",\"config\":\"cfg\",\"workload\":\"w1\",\
                  \"runtime\":\"CPython\",\"param\":\"p\",\"value\":\"1\",\
                  \"status\":\"ok\",\"metrics\":{\"cycles\":1}}\n";
        let v2 = "{\"figure\":\"fig10\",\"config\":\"cfg\",\"version\":2,\
                  \"workload\":\"w2\",\"runtime\":\"CPython\",\"param\":\"p\",\
                  \"value\":\"1\",\"status\":\"ok\",\"metrics\":{\"cycles\":2},\
                  \"obs\":{\"qoa_sim_cycles_total\":2.0}}\n";
        let v3 = "{\"figure\":\"fig10\",\"config\":\"cfg\",\"version\":3,\
                  \"workload\":\"w3\",\"runtime\":\"CPython\",\"param\":\"p\",\
                  \"value\":\"1\",\"status\":\"failed\",\"kind\":\"panic\",\
                  \"error\":\"boom\",\"location\":\"interp.rs:1:1\",\
                  \"chaos\":{\"faults_injected_total\":3}}\n";
        std::fs::write(&path, format!("{v1}{v2}{v3}")).expect("write");
        let j = Journal::open(&dir, "fig10", "cfg", false).expect("open");
        assert_eq!(j.len(), 3, "all three historical versions must parse");
        let k1 = CellKey::new("w1", "CPython", "p", "1");
        let k2 = CellKey::new("w2", "CPython", "p", "1");
        let k3 = CellKey::new("w3", "CPython", "p", "1");
        assert!(matches!(j.get(&k1), Some(CellOutcome::Ok(m)) if m.get("cycles") == Some(&Metric::Int(1))));
        assert!(j.obs_snapshot(&k2).is_some());
        assert!(matches!(
            j.get(&k3),
            Some(CellOutcome::Failed { kind, location: Some(at), .. })
                if kind == "panic" && at == "interp.rs:1:1"
        ));
        assert!(j.chaos_snapshot(&k3).is_some());
        // Pre-v4 lines carry no supervision metadata.
        assert!(j.supervision(&k1).is_none());
        assert!(j.supervision(&k2).is_none());
        assert!(j.supervision(&k3).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn half_written_supervision_fields_invalidate_the_line() {
        let dir = tmp_dir("v4half");
        let path = dir.join("fig10.journal.jsonl");
        // "attempts" without "breaker": malformed, must rerun not misread.
        let bad = "{\"figure\":\"fig10\",\"config\":\"cfg\",\"version\":4,\
                   \"workload\":\"go\",\"runtime\":\"CPython\",\"param\":\"p\",\
                   \"value\":\"1\",\"status\":\"ok\",\"metrics\":{},\"attempts\":2}\n";
        std::fs::write(&path, bad).expect("write");
        let j = Journal::open(&dir, "fig10", "cfg", false).expect("open");
        assert!(j.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_lines_are_skipped_not_fatal() {
        let dir = tmp_dir("malformed");
        let path = dir.join("figX.journal.jsonl");
        std::fs::write(&path, "this is not json\n{\"figure\":\"figX\"\n").expect("write");
        let j = Journal::open(&dir, "figX", "cfg", false).expect("open");
        assert!(j.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
