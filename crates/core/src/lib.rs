//! Experiment API: the paper's contribution as a reusable library.
//!
//! Glues the stack together — workload programs ([`qoa_workloads`]),
//! run-times ([`qoa_vm`] / [`qoa_jit`]), and the trace-driven simulator
//! ([`qoa_uarch`]) — into the three studies of *Quantitative Overhead
//! Analysis for Python* (IISWC 2018):
//!
//! * [`attribution`] — §IV: per-category cycle breakdowns on the simple
//!   core (Fig. 4/5/6, Table II).
//! * [`sweeps`] — §V-A: microarchitecture parameter sweeps on the OOO core
//!   (Fig. 7/8/9), and §V-B: nursery sweeps (Fig. 10–17).
//! * [`runtime`] — run/capture any program under any of the four modeled
//!   run-times.
//! * [`report`] — text/CSV tables printed by the `qoa-bench` figure
//!   binaries.
//!
//! # Example: a one-benchmark overhead breakdown
//!
//! ```
//! use qoa_core::attribution::attribute_workload;
//! use qoa_core::runtime::RuntimeConfig;
//! use qoa_model::{Category, RuntimeKind};
//! use qoa_uarch::UarchConfig;
//! use qoa_workloads::{by_name, Scale};
//!
//! let w = by_name("unpack_seq").expect("workload exists");
//! let b = attribute_workload(
//!     w,
//!     Scale::Tiny,
//!     &RuntimeConfig::new(RuntimeKind::CPython),
//!     &UarchConfig::skylake(),
//! )
//! .expect("runs");
//! assert!(b.shares[Category::CFunctionCall] > 0.0);
//! ```

pub mod attribution;
pub mod benchsnap;
pub mod chaos;
pub mod error;
pub mod executor;
pub mod harness;
pub mod isolate;
pub mod journal;
pub mod report;
pub mod runtime;
pub mod sweeps;

pub use attribution::{attribute_suite, attribute_workload, average_shares, Breakdown};
pub use benchsnap::{render_bench_json, write_bench_json, BenchEntry};
pub use chaos::{
    capture_chaos, fault_kinds_for, oracle_check, stats_divergence, ChaosOptions, ChaosOutcome,
};
pub use error::QoaError;
pub use executor::{
    available_jobs, cell_seed, run_supervised, BreakerCore, BreakerOptions, BreakerState,
    CellVerdict, CommittedCell, ExecutorOptions, ExecutorStats, RetryPolicy, ShedReason,
    SupervisedCell,
};
pub use harness::{
    best_nursery_cell, breakdown_cell, breakdown_spec, nursery_cell, nursery_cells,
    nursery_cells_tagged, nursery_spec, shared_trace_cache, sweep_param_cell, sweep_param_spec,
    CellChaos, FailureNote, Harness, HarnessOptions, NurseryCell, SharedTraceCache,
    SweepCellPoint,
};
pub use isolate::{run_isolated, RunFailure, RunOutcome};
pub use journal::{CellKey, CellMetrics, CellOutcome, Journal, Metric, JOURNAL_VERSION};
pub use report::Table;
pub use runtime::{capture, capture_observed, run_with_sink, CapturedRun, RuntimeConfig};
pub use sweeps::{
    best_nursery, nursery_sweep, sweep_trace, NurseryPoint, SweepParam, SweepPoint,
    NURSERY_SIZES,
};
