//! The resumable experiment harness.
//!
//! A figure binary opens one [`Harness`] and funnels every measurement
//! through [`Harness::cell`]. Each cell:
//!
//! * is **skipped** when the journal already holds its result under the
//!   current configuration (so a killed sweep resumes where it left off,
//!   and a finished one re-renders instantly);
//! * otherwise runs under [`run_isolated`] — a panic, guest error, fuel
//!   exhaustion, wall-clock deadline or simulated OOM becomes a recorded
//!   [`RunFailure`](crate::isolate::RunFailure) instead of aborting the
//!   sweep's sibling cells;
//! * is journaled (success metrics or failure) atomically.
//!
//! [`Harness::finish`] prints the failure annotations under the figure
//! and returns a process exit code: nonzero only when the failure rate
//! exceeds the configured threshold.

use crate::chaos::{capture_chaos, fault_kinds_for, ChaosOptions};
use crate::error::QoaError;
use crate::executor::{
    cell_seed, run_supervised, CellVerdict, ExecutorOptions, ExecutorStats, SupervisedCell,
};
use crate::isolate::run_isolated;
use crate::journal::{CellKey, CellMetrics, CellOutcome, Journal, Metric, Supervision};
use crate::runtime::{capture, CapturedRun, RuntimeConfig};
use crate::sweeps::SweepParam;
use crate::Breakdown;
use qoa_chaos::FaultPlan;
use qoa_model::{Category, CategoryMap, Phase};
use qoa_uarch::{TraceBuffer, UarchConfig};
use qoa_workloads::{Scale, Workload};
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Harness construction options (one per figure binary invocation).
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// Figure tag (`fig10`, `table2`, ...): the journal file name.
    pub figure: String,
    /// Directory for journals (default `results/`).
    pub journal_dir: PathBuf,
    /// Ignore the journal's prior contents.
    pub fresh: bool,
    /// Per-cell wall-clock deadline.
    pub deadline: Option<Duration>,
    /// Failure rate above which [`Harness::finish`] exits nonzero.
    pub max_failure_rate: f64,
    /// Configuration fingerprint; journal entries recorded under a
    /// different fingerprint are ignored.
    pub config: String,
}

impl HarnessOptions {
    /// Defaults for `figure` under configuration fingerprint `config`.
    pub fn new(figure: impl Into<String>, config: impl Into<String>) -> Self {
        HarnessOptions {
            figure: figure.into(),
            journal_dir: PathBuf::from("results"),
            fresh: false,
            deadline: None,
            max_failure_rate: 0.25,
            config: config.into(),
        }
    }
}

/// One annotated failure, kept for the end-of-run report.
#[derive(Debug, Clone)]
pub struct FailureNote {
    /// Which cell failed.
    pub key: CellKey,
    /// [`QoaError::kind`] tag.
    pub kind: String,
    /// Rendered error.
    pub message: String,
}

/// The journal-backed, fault-isolated measurement driver.
#[derive(Debug)]
pub struct Harness {
    journal: Journal,
    deadline: Option<Duration>,
    max_failure_rate: f64,
    cells_total: usize,
    cells_skipped: usize,
    failures: Vec<FailureNote>,
    /// Cells the supervised executor declined (budget gate or open
    /// circuit breaker), with the shed reason. Not failures: they don't
    /// count toward the failure-rate exit gate.
    shed: Vec<(CellKey, String)>,
    journal_error: Option<QoaError>,
}

impl Harness {
    /// Opens the journal and builds the harness.
    ///
    /// # Errors
    ///
    /// Returns [`QoaError::Journal`] when an existing journal cannot be
    /// read.
    pub fn open(opts: HarnessOptions) -> Result<Harness, QoaError> {
        let journal = Journal::open(&opts.journal_dir, &opts.figure, opts.config, opts.fresh)?;
        Ok(Harness {
            journal,
            deadline: opts.deadline,
            max_failure_rate: opts.max_failure_rate,
            cells_total: 0,
            cells_skipped: 0,
            failures: Vec::new(),
            shed: Vec::new(),
            journal_error: None,
        })
    }

    /// Runs (or skips) one measurement cell.
    ///
    /// `f` receives the absolute deadline for this cell (when one is
    /// configured) and returns the cell's metrics. A `None` return means
    /// the cell failed — now or in a previous journaled run — and its
    /// annotation is queued for [`Harness::finish`].
    pub fn cell(
        &mut self,
        key: CellKey,
        f: impl FnOnce(Option<Instant>) -> Result<CellMetrics, QoaError>,
    ) -> Option<CellMetrics> {
        self.cells_total += 1;
        match self.journal.get(&key) {
            Some(CellOutcome::Ok(metrics)) => {
                self.cells_skipped += 1;
                return Some(metrics.clone());
            }
            Some(CellOutcome::Failed { kind, message, .. }) => {
                self.cells_skipped += 1;
                self.failures.push(FailureNote {
                    key,
                    kind: kind.clone(),
                    message: message.clone(),
                });
                return None;
            }
            Some(CellOutcome::Shed { reason }) => {
                self.cells_skipped += 1;
                self.shed.push((key, reason.clone()));
                return None;
            }
            None => {}
        }
        let deadline = self.deadline.map(|d| Instant::now() + d);
        match run_isolated(|| f(deadline)) {
            Ok(metrics) => {
                self.record(key, CellOutcome::Ok(metrics.clone()));
                Some(metrics)
            }
            Err(failure) => {
                let note = FailureNote {
                    key: key.clone(),
                    kind: failure.error.kind().to_string(),
                    message: failure.error.to_string(),
                };
                self.record(
                    key,
                    CellOutcome::Failed {
                        kind: note.kind.clone(),
                        message: note.message.clone(),
                        location: failure.error.location().map(str::to_string),
                    },
                );
                self.failures.push(note);
                None
            }
        }
    }

    fn record(&mut self, key: CellKey, outcome: CellOutcome) {
        if self.journal_error.is_some() {
            return; // already broken; keep measuring, report at the end
        }
        if let Err(e) = self.journal.record(key, outcome) {
            self.journal_error = Some(e);
        }
    }

    /// Runs a batch of cell specs through the supervised parallel
    /// executor and journals every committed outcome, so the figure's
    /// subsequent (sequential) render loop answers each cell from the
    /// journal without re-running anything.
    ///
    /// Specs whose cells the journal already holds are dropped up front —
    /// a resumed sweep only prewarms what is still missing. When `opts`
    /// carries no cell deadline, the harness's own per-cell deadline is
    /// used (which also arms the hung-worker watchdog).
    ///
    /// Outcome mapping into the journal:
    ///
    /// * success → `ok` with the attempt count and breaker state;
    /// * failure (after retries) → `failed`, same metadata;
    /// * shed by the budget gate or an open breaker → `shed` (not a
    ///   failure; excluded from the failure-rate exit gate, rerun with
    ///   `--fresh` to measure);
    /// * lost to a hung worker → `failed` with kind `lost`.
    ///
    /// Returns the scheduler statistics for optional metrics export.
    pub fn prewarm(
        &mut self,
        specs: Vec<SupervisedCell<CellMetrics>>,
        opts: &ExecutorOptions,
    ) -> ExecutorStats {
        let todo: Vec<SupervisedCell<CellMetrics>> =
            specs.into_iter().filter(|s| self.journal.get(&s.key).is_none()).collect();
        let mut exec = opts.clone();
        if exec.cell_deadline.is_none() {
            exec.cell_deadline = self.deadline;
        }
        let (committed, stats) = run_supervised(todo, &exec);
        for cell in committed {
            let breaker = cell.breaker.name().to_string();
            let (outcome, attempts) = match cell.verdict {
                CellVerdict::Ok { value, attempts } => (CellOutcome::Ok(value), attempts),
                CellVerdict::Failed { kind, message, location, attempts } => {
                    (CellOutcome::Failed { kind, message, location }, attempts)
                }
                CellVerdict::Shed { reason } => {
                    (CellOutcome::Shed { reason: reason.name().to_string() }, 0)
                }
                CellVerdict::Lost { attempts } => (
                    CellOutcome::Failed {
                        kind: "lost".to_string(),
                        message: "worker hung past the cell deadline; abandoned by the watchdog"
                            .to_string(),
                        location: None,
                    },
                    attempts,
                ),
            };
            if self.journal_error.is_none() {
                if let Err(e) = self.journal.record_supervised(
                    cell.key,
                    outcome,
                    Supervision { attempts, breaker },
                ) {
                    self.journal_error = Some(e);
                }
            }
        }
        stats
    }

    /// Cells presented so far (run or skipped).
    pub fn cells_total(&self) -> usize {
        self.cells_total
    }

    /// Cells answered from the journal without re-running.
    pub fn cells_skipped(&self) -> usize {
        self.cells_skipped
    }

    /// Failures observed so far (including journaled ones).
    pub fn failures(&self) -> &[FailureNote] {
        &self.failures
    }

    /// Cells the supervised executor shed (budget gate, open breaker).
    pub fn shed(&self) -> &[(CellKey, String)] {
        &self.shed
    }

    /// Prints the failure annotations and returns the process exit code:
    /// `0` when the failure rate is within the threshold, `1` otherwise
    /// (or when the journal itself could not be written).
    pub fn finish(self) -> i32 {
        if let Some(e) = &self.journal_error {
            eprintln!("warning: journal unusable, results not persisted: {e}");
        }
        if !self.failures.is_empty() {
            println!(
                "-- {} of {} cells failed (results above exclude them) --",
                self.failures.len(),
                self.cells_total
            );
            for note in &self.failures {
                println!("  {}: [{}] {}", note.key, note.kind, note.message);
            }
        }
        if !self.shed.is_empty() {
            println!(
                "-- {} of {} cells shed by the supervisor (not failures; rerun with --fresh or a \
                 lighter load to measure them) --",
                self.shed.len(),
                self.cells_total
            );
            for (key, reason) in &self.shed {
                println!("  {key}: shed ({reason})");
            }
        }
        let rate = if self.cells_total == 0 {
            0.0
        } else {
            self.failures.len() as f64 / self.cells_total as f64
        };
        if self.journal_error.is_some() || rate > self.max_failure_rate {
            1
        } else {
            0
        }
    }
}

// ---- typed cell wrappers ---------------------------------------------------

fn metric_i64(m: &CellMetrics, name: &str) -> Option<i64> {
    m.get(name)?.as_i64()
}

fn metric_f64(m: &CellMetrics, name: &str) -> Option<f64> {
    m.get(name)?.as_f64()
}

// ---- shared measurement bodies ---------------------------------------------
//
// Each figure cell exists in two forms — the sequential `*_cell` wrapper
// (journal-resumable, used by the render loop) and the `*_spec` builder
// (a `Send + 'static` closure for the supervised parallel executor). Both
// call the same `measure_*` body, so a cell measures identically no
// matter which path ran it.

/// Per-cell fault injection for supervised prewarm: when set, every cell
/// captures under a chaos plan seeded from `(seed, cell key)` — a pure
/// function of the two, so the plan is identical regardless of which
/// worker runs the cell. Recovered runs produce traces byte-identical to
/// fault-free capture (the differential oracle), which is how the
/// executor's determinism contract is validated under fault load.
#[derive(Debug, Clone, Copy)]
pub struct CellChaos {
    /// Batch chaos seed, mixed with each cell's key.
    pub seed: u64,
    /// Fault-tick horizon in executed bytecodes.
    pub horizon: u64,
    /// Maximum injection points per plan.
    pub points: usize,
}

/// Captures `source` under `rt`, plainly or under a seeded per-cell
/// fault plan.
///
/// This is the capture primitive behind the spec builders; binaries with
/// bespoke cells use it directly so `--chaos-seed` covers them too. The
/// plan seed depends only on the batch seed and the cell key, so the
/// schedule is identical for any worker count.
pub fn capture_cell(
    source: &str,
    rt: &RuntimeConfig,
    chaos: Option<CellChaos>,
    key: &CellKey,
) -> Result<CapturedRun, QoaError> {
    match chaos {
        None => capture(source, rt),
        Some(c) => {
            let plan = FaultPlan::seeded(
                cell_seed(c.seed, key),
                c.horizon,
                c.points,
                fault_kinds_for(rt.kind),
            );
            let (run, _outcome) = capture_chaos(source, rt, &ChaosOptions::new(plan))?;
            Ok(run)
        }
    }
}

fn measure_nursery(
    w: &Workload,
    scale: Scale,
    rt: RuntimeConfig, // nursery already applied
    uarch: &UarchConfig,
    deadline: Option<Instant>,
    chaos: Option<CellChaos>,
    key: &CellKey,
) -> Result<CellMetrics, QoaError> {
    let rt = rt.with_deadline(deadline);
    let run = capture_cell(&w.source(scale), &rt, chaos, key)?;
    let stats = run.trace.simulate_ooo(uarch);
    let mut m = CellMetrics::new();
    m.insert("cycles".into(), Metric::Int(stats.cycles as i64));
    m.insert(
        "gc_cycles".into(),
        Metric::Int(
            (stats.cycles_by_phase[Phase::GcMinor] + stats.cycles_by_phase[Phase::GcMajor]) as i64,
        ),
    );
    m.insert("llc_miss_rate".into(), Metric::Num(stats.llc.miss_rate()));
    m.insert("minor_collections".into(), Metric::Int(run.vm.gc.minor_collections as i64));
    Ok(m)
}

fn measure_breakdown(
    w: &Workload,
    scale: Scale,
    rt: RuntimeConfig,
    uarch: &UarchConfig,
    deadline: Option<Instant>,
    chaos: Option<CellChaos>,
    key: &CellKey,
) -> Result<CellMetrics, QoaError> {
    let rt = rt.with_deadline(deadline);
    let run = capture_cell(&w.source(scale), &rt, chaos, key)?;
    let stats = run.trace.simulate_simple(uarch);
    let b = Breakdown::from_stats(w.name, &stats);
    let mut m = CellMetrics::new();
    m.insert("cycles".into(), Metric::Int(b.cycles as i64));
    m.insert("instructions".into(), Metric::Int(b.instructions as i64));
    for c in Category::ALL {
        m.insert(format!("share.{c:?}"), Metric::Num(b.shares[c]));
    }
    Ok(m)
}

/// Replays one captured trace across a parameter sweep and flattens the
/// points into journal metrics.
fn sweep_metrics(trace: &TraceBuffer, param: SweepParam, base: &UarchConfig) -> CellMetrics {
    let mut m = CellMetrics::new();
    for p in crate::sweeps::sweep_trace(trace, param, base) {
        m.insert(format!("cpi@{}", p.value), Metric::Num(p.cpi));
        m.insert(format!("interp@{}", p.value), Metric::Num(p.phase_cpi[Phase::Interpreter]));
        m.insert(
            format!("gc@{}", p.value),
            Metric::Num(p.phase_cpi[Phase::GcMinor] + p.phase_cpi[Phase::GcMajor]),
        );
        m.insert(format!("jit@{}", p.value), Metric::Num(p.phase_cpi[Phase::JitCode]));
    }
    m
}

/// One journaled nursery-sweep point: the [`NurseryPoint`]
/// (crate::sweeps::NurseryPoint) fields the figure binaries consume.
#[derive(Debug, Clone, PartialEq)]
pub struct NurseryCell {
    /// Nursery size in bytes.
    pub nursery: u64,
    /// Total cycles on the OOO core.
    pub cycles: u64,
    /// Cycles spent in garbage collection.
    pub gc_cycles: u64,
    /// LLC miss rate.
    pub llc_miss_rate: f64,
    /// Minor collections run.
    pub minor_collections: u64,
}

impl NurseryCell {
    /// Cycles outside garbage collection. Saturating: a journaled cell
    /// written by a run that faulted between metric updates can carry
    /// `gc_cycles > cycles`, and a report row must print as n/a rather
    /// than take down the whole figure on underflow.
    pub fn non_gc_cycles(&self) -> u64 {
        self.cycles.saturating_sub(self.gc_cycles)
    }

    /// GC share of total time.
    pub fn gc_share(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.gc_cycles as f64 / self.cycles as f64
        }
    }

    fn from_metrics(nursery: u64, m: &CellMetrics) -> Option<Self> {
        Some(NurseryCell {
            nursery,
            cycles: metric_i64(m, "cycles")? as u64,
            gc_cycles: metric_i64(m, "gc_cycles")? as u64,
            llc_miss_rate: metric_f64(m, "llc_miss_rate")?,
            minor_collections: metric_i64(m, "minor_collections")? as u64,
        })
    }
}

/// Runs (or resumes) one nursery point of `w` under `rt`.
///
/// `tag` disambiguates cells measured under non-default hardware (e.g.
/// `"@llc=4MB"` when the figure sweeps the LLC size too); pass `""` for
/// the baseline configuration.
pub fn nursery_cell(
    h: &mut Harness,
    w: &Workload,
    scale: Scale,
    rt: &RuntimeConfig,
    uarch: &UarchConfig,
    nursery: u64,
    tag: &str,
) -> Option<NurseryCell> {
    let key = CellKey::new(
        w.name,
        format!("{:?}", rt.kind),
        format!("nursery{tag}"),
        nursery.to_string(),
    );
    let mkey = key.clone();
    let metrics = h.cell(key, |deadline| {
        measure_nursery(w, scale, rt.with_nursery(nursery), uarch, deadline, None, &mkey)
    })?;
    NurseryCell::from_metrics(nursery, &metrics)
}

/// The parallel-executor form of [`nursery_cell`]: the same key and the
/// same measurement body, packaged as a supervised cell spec for
/// [`Harness::prewarm`].
pub fn nursery_spec(
    w: &'static Workload,
    scale: Scale,
    rt: &RuntimeConfig,
    uarch: &UarchConfig,
    nursery: u64,
    tag: &str,
    chaos: Option<CellChaos>,
) -> SupervisedCell<CellMetrics> {
    let key = CellKey::new(
        w.name,
        format!("{:?}", rt.kind),
        format!("nursery{tag}"),
        nursery.to_string(),
    );
    let rt = rt.with_nursery(nursery);
    let uarch = uarch.clone();
    let mkey = key.clone();
    SupervisedCell::new(key, move |deadline| {
        measure_nursery(w, scale, rt, &uarch, deadline, chaos, &mkey)
    })
}

/// Runs (or resumes) a whole nursery sweep, one isolated cell per size.
/// Failed points come back as `None` without aborting their siblings.
pub fn nursery_cells(
    h: &mut Harness,
    w: &Workload,
    scale: Scale,
    rt: &RuntimeConfig,
    uarch: &UarchConfig,
    sizes: &[u64],
) -> Vec<Option<NurseryCell>> {
    sizes.iter().map(|&n| nursery_cell(h, w, scale, rt, uarch, n, "")).collect()
}

/// [`nursery_cells`] under non-default hardware, keyed with `tag`.
pub fn nursery_cells_tagged(
    h: &mut Harness,
    w: &Workload,
    scale: Scale,
    rt: &RuntimeConfig,
    uarch: &UarchConfig,
    sizes: &[u64],
    tag: &str,
) -> Vec<Option<NurseryCell>> {
    sizes.iter().map(|&n| nursery_cell(h, w, scale, rt, uarch, n, tag)).collect()
}

/// Picks the lowest-cycle successful point of a fault-isolated sweep.
pub fn best_nursery_cell(points: &[Option<NurseryCell>]) -> Option<&NurseryCell> {
    points.iter().flatten().min_by_key(|p| p.cycles)
}

/// Runs (or resumes) one simple-core attribution cell.
pub fn breakdown_cell(
    h: &mut Harness,
    w: &Workload,
    scale: Scale,
    rt: &RuntimeConfig,
    uarch: &UarchConfig,
) -> Option<Breakdown> {
    let key = CellKey::new(w.name, format!("{:?}", rt.kind), "attribution", "simple-core");
    let mkey = key.clone();
    let metrics = h.cell(key, |deadline| {
        measure_breakdown(w, scale, *rt, uarch, deadline, None, &mkey)
    })?;
    let shares = CategoryMap::from_fn(|c| {
        metric_f64(&metrics, &format!("share.{c:?}")).unwrap_or(0.0)
    });
    Some(Breakdown {
        name: w.name.to_string(),
        shares,
        cycles: metric_i64(&metrics, "cycles")? as u64,
        instructions: metric_i64(&metrics, "instructions")? as u64,
    })
}

/// The parallel-executor form of [`breakdown_cell`].
pub fn breakdown_spec(
    w: &'static Workload,
    scale: Scale,
    rt: &RuntimeConfig,
    uarch: &UarchConfig,
    chaos: Option<CellChaos>,
) -> SupervisedCell<CellMetrics> {
    let key = CellKey::new(w.name, format!("{:?}", rt.kind), "attribution", "simple-core");
    let rt = *rt;
    let uarch = uarch.clone();
    let mkey = key.clone();
    SupervisedCell::new(key, move |deadline| {
        measure_breakdown(w, scale, rt, &uarch, deadline, chaos, &mkey)
    })
}

/// One journaled microarchitecture-sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCellPoint {
    /// The raw sweep value.
    pub value: u64,
    /// Overall CPI.
    pub cpi: f64,
    /// Bytecode-interpreter phase CPI contribution.
    pub interp_cpi: f64,
    /// GC (minor + major) phase CPI contribution.
    pub gc_cpi: f64,
    /// JIT-compiled-code phase CPI contribution.
    pub jit_cpi: f64,
}

/// Runs (or resumes) one (workload, runtime, parameter) sweep cell.
///
/// The expensive capture is shared across the six parameters of a
/// figure via `trace_cache`: the first cell that actually needs to run
/// captures the trace, later cells replay it. Fully-journaled cells
/// never touch the cache, so a completed figure re-renders without a
/// single guest execution.
pub fn sweep_param_cell(
    h: &mut Harness,
    w: &Workload,
    scale: Scale,
    rt: &RuntimeConfig,
    base: &UarchConfig,
    param: SweepParam,
    trace_cache: &mut Option<Rc<TraceBuffer>>,
) -> Option<Vec<SweepCellPoint>> {
    let key = CellKey::new(w.name, format!("{:?}", rt.kind), format!("{param:?}"), "sweep");
    let mkey = key.clone();
    let metrics = h.cell(key, |deadline| {
        let trace = match trace_cache {
            Some(t) => Rc::clone(t),
            None => {
                let rt = rt.with_deadline(deadline);
                let run = capture_cell(&w.source(scale), &rt, None, &mkey)?;
                let t = Rc::new(run.trace);
                *trace_cache = Some(Rc::clone(&t));
                t
            }
        };
        Ok(sweep_metrics(&trace, param, base))
    })?;
    param
        .values()
        .into_iter()
        .map(|value| {
            Some(SweepCellPoint {
                value,
                cpi: metric_f64(&metrics, &format!("cpi@{value}"))?,
                interp_cpi: metric_f64(&metrics, &format!("interp@{value}"))?,
                gc_cpi: metric_f64(&metrics, &format!("gc@{value}"))?,
                jit_cpi: metric_f64(&metrics, &format!("jit@{value}"))?,
            })
        })
        .collect()
}

/// The cross-thread trace cache shared by the sweep specs of one
/// (workload, runtime) pair: whichever worker reaches the pair first
/// captures the trace, the other parameters replay it. Capture is
/// deterministic, so the cached trace is identical no matter which cell
/// won the race.
pub type SharedTraceCache = Arc<Mutex<Option<Arc<TraceBuffer>>>>;

/// A fresh, empty [`SharedTraceCache`].
pub fn shared_trace_cache() -> SharedTraceCache {
    Arc::new(Mutex::new(None))
}

/// The parallel-executor form of [`sweep_param_cell`]: same key, same
/// measurement, with the per-pair capture shared through `trace_cache`.
pub fn sweep_param_spec(
    w: &'static Workload,
    scale: Scale,
    rt: &RuntimeConfig,
    base: &UarchConfig,
    param: SweepParam,
    trace_cache: &SharedTraceCache,
    chaos: Option<CellChaos>,
) -> SupervisedCell<CellMetrics> {
    let key = CellKey::new(w.name, format!("{:?}", rt.kind), format!("{param:?}"), "sweep");
    let rt = *rt;
    let base = base.clone();
    let cache = Arc::clone(trace_cache);
    let mkey = key.clone();
    SupervisedCell::new(key, move |deadline| {
        // Holding the lock across capture also deduplicates it: sibling
        // params of the same pair wait instead of re-capturing.
        let mut slot = cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let trace = match &*slot {
            Some(t) => Arc::clone(t),
            None => {
                let rt = rt.with_deadline(deadline);
                let run = capture_cell(&w.source(scale), &rt, chaos, &mkey)?;
                let t = Arc::new(run.trace);
                *slot = Some(Arc::clone(&t));
                t
            }
        };
        drop(slot);
        Ok(sweep_metrics(&trace, param, &base))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoa_model::RuntimeKind;

    fn tmp_options(tag: &str) -> HarnessOptions {
        let dir = std::env::temp_dir().join(format!("qoa-harness-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut opts = HarnessOptions::new("figtest", "cfg");
        opts.journal_dir = dir;
        opts
    }

    #[test]
    fn failed_cells_do_not_abort_siblings() {
        let opts = tmp_options("siblings");
        let dir = opts.journal_dir.clone();
        let mut h = Harness::open(opts).expect("open");
        let bad = h.cell(CellKey::new("w1", "CPython", "p", "1"), |_| {
            panic!("cell exploded")
        });
        assert!(bad.is_none());
        let good = h.cell(CellKey::new("w2", "CPython", "p", "1"), |_| {
            let mut m = CellMetrics::new();
            m.insert("x".into(), Metric::Int(7));
            Ok(m)
        });
        assert_eq!(metric_i64(&good.expect("runs"), "x"), Some(7));
        assert_eq!(h.failures().len(), 1);
        assert_eq!(h.failures()[0].kind, "panic");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journaled_cells_are_skipped_on_rerun() {
        let opts = tmp_options("skip");
        let dir = opts.journal_dir.clone();
        let key = CellKey::new("w", "CPython", "p", "1");
        {
            let mut h = Harness::open(opts.clone()).expect("open");
            h.cell(key.clone(), |_| {
                let mut m = CellMetrics::new();
                m.insert("x".into(), Metric::Int(1));
                Ok(m)
            });
        }
        let mut h = Harness::open(opts).expect("reopen");
        let ran = std::cell::Cell::new(false);
        let cached = h.cell(key, |_| {
            ran.set(true);
            Ok(CellMetrics::new())
        });
        assert!(!ran.get(), "journaled cell must not re-run");
        assert_eq!(metric_i64(&cached.expect("cached"), "x"), Some(1));
        assert_eq!(h.cells_skipped(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exit_code_reflects_failure_threshold() {
        let opts = tmp_options("exitcode");
        let dir = opts.journal_dir.clone();
        let mut h = Harness::open(opts.clone()).expect("open");
        for i in 0..4 {
            h.cell(CellKey::new("w", "CPython", "p", i.to_string()), |_| Ok(CellMetrics::new()));
        }
        h.cell(CellKey::new("w", "CPython", "p", "bad"), |_| {
            Err(QoaError::FuelExhausted { steps: 1 })
        });
        // 1/5 = 20% <= 25% threshold.
        assert_eq!(h.finish(), 0);
        let _ = std::fs::remove_dir_all(&dir);

        let opts2 = tmp_options("exitcode2");
        let dir2 = opts2.journal_dir.clone();
        let mut h = Harness::open(opts2).expect("open");
        h.cell(CellKey::new("w", "CPython", "p", "bad"), |_| {
            Err(QoaError::FuelExhausted { steps: 1 })
        });
        assert_eq!(h.finish(), 1, "100% failures must exit nonzero");
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn nursery_cell_round_trips_through_the_journal() {
        let opts = tmp_options("nursery");
        let dir = opts.journal_dir.clone();
        let w = qoa_workloads::by_name("tuple_gc").expect("workload");
        let rt = RuntimeConfig::new(RuntimeKind::PyPyNoJit);
        let uarch = UarchConfig::skylake();
        let first = {
            let mut h = Harness::open(opts.clone()).expect("open");
            nursery_cell(&mut h, w, Scale::Tiny, &rt, &uarch, 256 << 10, "").expect("runs")
        };
        let mut h = Harness::open(opts).expect("reopen");
        let resumed =
            nursery_cell(&mut h, w, Scale::Tiny, &rt, &uarch, 256 << 10, "").expect("cached");
        assert_eq!(h.cells_skipped(), 1);
        assert_eq!(first, resumed, "journaled point must reproduce exactly");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
