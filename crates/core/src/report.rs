//! Plain-text and CSV rendering for experiment results.
//!
//! The figure binaries in `qoa-bench` print these tables; each reproduces
//! the rows/series of one of the paper's tables or figures.

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Title printed above the table.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (each must have `columns.len()` cells).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&self.title);
            out.push('\n');
            out.push_str(&"=".repeat(self.title.len()));
            out.push('\n');
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // Right-align numeric-looking cells, left-align labels.
                let numeric = cell
                    .chars()
                    .all(|c| c.is_ascii_digit() || ".%-+xkMBe".contains(c));
                if numeric && i > 0 {
                    line.push_str(&format!("{cell:>width$}", width = widths[i]));
                } else {
                    line.push_str(&format!("{cell:<width$}", width = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.columns, &widths));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("--"),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.columns.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_and_underlines() {
        let mut t = Table::new("Demo", &["name", "cpi"]);
        t.row(vec!["fannkuch".into(), "1.52".into()]);
        t.row(vec!["go".into(), "12.00".into()]);
        let s = t.render();
        assert!(s.contains("Demo\n====\n"));
        assert!(s.contains("fannkuch"));
        let lines: Vec<&str> = s.lines().collect();
        // header, separator, two rows, plus title lines
        assert_eq!(lines.len(), 6);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_enforced() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(vec!["x,y".into(), "2".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\",2"));
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.184), "18.4%");
        assert_eq!(f2(1.239), "1.24");
        assert_eq!(f3(0.1234), "0.123");
    }
}
