//! Parameter sweeps: the §V methodology.
//!
//! Microarchitecture sweeps (Fig. 7–9) capture each (workload, run-time)
//! trace once and replay it through the out-of-order model under every
//! hardware configuration — timing never feeds back into run-time
//! behaviour, exactly as with Pin + ZSim. Nursery sweeps (Fig. 10–17)
//! re-*execute* the program per nursery size, because the nursery changes
//! GC behaviour itself.

use crate::error::QoaError;
use crate::runtime::{capture, RuntimeConfig};
use qoa_model::{Phase, PhaseMap, RuntimeKind};
use qoa_uarch::{ExecutionStats, TraceBuffer, UarchConfig};
use qoa_workloads::{Scale, Workload};

/// One sweepable microarchitecture parameter with the paper's value grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepParam {
    /// Fig. 7(a): issue width 2–32.
    IssueWidth,
    /// Fig. 7(b): branch-table scale 0.5×–8×.
    BranchScale,
    /// Fig. 7(c): LLC size 256 kB – 16 MB.
    CacheSize,
    /// Fig. 7(d): line size 64 B – 4096 B.
    LineSize,
    /// Fig. 7(e): memory latency 50–400 cycles.
    MemLatency,
    /// Fig. 7(f): memory bandwidth 200–25600 MB/s.
    MemBandwidth,
}

impl SweepParam {
    /// All six parameters, in the paper's panel order.
    pub const ALL: [SweepParam; 6] = [
        SweepParam::IssueWidth,
        SweepParam::BranchScale,
        SweepParam::CacheSize,
        SweepParam::LineSize,
        SweepParam::MemLatency,
        SweepParam::MemBandwidth,
    ];

    /// The paper's sweep values for this parameter (as raw u64 points;
    /// `BranchScale` values are fixed-point halves: 1 ⇒ 0.5×).
    pub fn values(self) -> Vec<u64> {
        match self {
            SweepParam::IssueWidth => vec![2, 4, 8, 16, 32],
            SweepParam::BranchScale => vec![1, 2, 4, 8, 16], // halves: 0.5x..8x
            SweepParam::CacheSize => vec![
                256 << 10,
                512 << 10,
                1 << 20,
                2 << 20,
                4 << 20,
                8 << 20,
                16 << 20,
            ],
            SweepParam::LineSize => vec![64, 128, 256, 512, 1024, 2048, 4096],
            SweepParam::MemLatency => vec![50, 100, 200, 400],
            SweepParam::MemBandwidth => {
                vec![200, 400, 800, 1600, 3200, 6400, 12800, 25600]
            }
        }
    }

    /// Applies a sweep value to the baseline configuration.
    pub fn apply(self, base: &UarchConfig, value: u64) -> UarchConfig {
        let base = base.clone();
        match self {
            SweepParam::IssueWidth => base.with_issue_width(value as usize),
            SweepParam::BranchScale => base.with_branch_scale(value as f64 / 2.0),
            SweepParam::CacheSize => base.with_llc_size(value),
            SweepParam::LineSize => base.with_line_size(value),
            SweepParam::MemLatency => base.with_mem_latency(value),
            SweepParam::MemBandwidth => base.with_mem_bandwidth(value),
        }
    }

    /// Axis label matching the paper's panels.
    pub fn label(self) -> &'static str {
        match self {
            SweepParam::IssueWidth => "Issue Width",
            SweepParam::BranchScale => "Branch Table Size (Relative to Baseline)",
            SweepParam::CacheSize => "Cache Size",
            SweepParam::LineSize => "Cache Line Size (B)",
            SweepParam::MemLatency => "Memory Latency (CPU Cycles)",
            SweepParam::MemBandwidth => "Memory Bandwidth (MBps)",
        }
    }

    /// Human-readable rendering of one sweep value.
    pub fn format_value(self, value: u64) -> String {
        match self {
            SweepParam::BranchScale => format!("{}x", value as f64 / 2.0),
            SweepParam::CacheSize => format_bytes(value),
            _ => value.to_string(),
        }
    }
}

/// Renders a byte count the way the paper labels its axes.
pub fn format_bytes(b: u64) -> String {
    if b >= 1 << 20 && b.is_multiple_of(1 << 20) {
        format!("{}MB", b >> 20)
    } else if b >= 1 << 10 {
        format!("{}kB", b >> 10)
    } else {
        format!("{b}B")
    }
}

/// CPI measured at one sweep point, with the per-phase split used by the
/// paper's Fig. 7 PyPy lines.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The raw sweep value.
    pub value: u64,
    /// Overall CPI.
    pub cpi: f64,
    /// CPI contribution per execution phase (cycles_phase / instructions).
    pub phase_cpi: PhaseMap<f64>,
    /// Full execution statistics, for deeper inspection.
    pub stats: ExecutionStats,
}

/// Replays one captured trace across a parameter sweep (OOO core).
pub fn sweep_trace(trace: &TraceBuffer, param: SweepParam, base: &UarchConfig) -> Vec<SweepPoint> {
    param
        .values()
        .into_iter()
        .map(|value| {
            let cfg = param.apply(base, value);
            let stats = trace.simulate_ooo(&cfg);
            let instr = stats.instructions.max(1) as f64;
            let phase_cpi =
                PhaseMap::from_fn(|p| stats.cycles_by_phase[p] as f64 / instr);
            SweepPoint { value, cpi: stats.cpi(), phase_cpi, stats }
        })
        .collect()
}

/// The nursery sizes of the paper's Fig. 10–17 sweeps (512 kB – 128 MB).
pub const NURSERY_SIZES: [u64; 9] = [
    512 << 10,
    1 << 20,
    2 << 20,
    4 << 20,
    8 << 20,
    16 << 20,
    32 << 20,
    64 << 20,
    128 << 20,
];

/// Scaled nursery axis used by the figure binaries (64 kB – 16 MB).
///
/// The paper's workloads run for minutes and allocate gigabytes, so a
/// 512 kB – 128 MB axis exercises the GC-frequency / cache-residency
/// trade-off. Our laptop-scale workload instances allocate megabytes, so
/// the same *trade-off* lives one order of magnitude lower on the axis;
/// this grid keeps the LLC (2 MB) in the middle of the sweep, exactly as
/// in the paper, and keeps the 1 MB (= half-LLC) normalization baseline.
pub const NURSERY_SIZES_SCALED: [u64; 9] = [
    256 << 10,
    512 << 10,
    1 << 20,
    2 << 20,
    4 << 20,
    8 << 20,
    16 << 20,
    32 << 20,
    64 << 20,
];

/// Scaled default nursery for the non-sweep PyPy/V8 experiment runs
/// (Fig. 7–9, 13): the proportional analog of PyPy's multi-megabyte
/// default for our smaller workload instances.
pub const SCALED_DEFAULT_NURSERY: u64 = 512 << 10;

/// One point of a nursery sweep.
#[derive(Debug, Clone)]
pub struct NurseryPoint {
    /// Nursery size in bytes.
    pub nursery: u64,
    /// Total cycles (OOO core under `uarch`).
    pub cycles: u64,
    /// Cycles spent in garbage collection.
    pub gc_cycles: u64,
    /// LLC miss rate (the paper's Fig. 10 metric).
    pub llc_miss_rate: f64,
    /// Minor collections run.
    pub minor_collections: u64,
    /// Full execution statistics.
    pub stats: ExecutionStats,
}

impl NurseryPoint {
    /// Cycles outside garbage collection (Fig. 11's "Non-GC" component).
    pub fn non_gc_cycles(&self) -> u64 {
        // Saturating for the same reason as `NurseryCell::non_gc_cycles`:
        // fault-affected journal data must degrade to n/a, not panic.
        self.cycles.saturating_sub(self.gc_cycles)
    }

    /// GC share of total time (Fig. 13's metric).
    pub fn gc_share(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.gc_cycles as f64 / self.cycles as f64
        }
    }
}

/// Re-executes `w` under `rt` for every nursery size, simulating each run
/// on the OOO core under `uarch`.
///
/// # Errors
///
/// Propagates the first run failure.
pub fn nursery_sweep(
    w: &Workload,
    scale: Scale,
    rt: &RuntimeConfig,
    uarch: &UarchConfig,
    sizes: &[u64],
) -> Result<Vec<NurseryPoint>, QoaError> {
    sizes
        .iter()
        .map(|&nursery| {
            let run = capture(&w.source(scale), &rt.with_nursery(nursery))?;
            let stats = run.trace.simulate_ooo(uarch);
            Ok(NurseryPoint {
                nursery,
                cycles: stats.cycles,
                gc_cycles: stats.cycles_by_phase[Phase::GcMinor]
                    + stats.cycles_by_phase[Phase::GcMajor],
                llc_miss_rate: stats.llc.miss_rate(),
                minor_collections: run.vm.gc.minor_collections,
                stats,
            })
        })
        .collect()
}

/// Picks the nursery size with the lowest total cycles (Fig. 17's
/// "best nursery per application"), or `None` for an empty sweep —
/// which happens when every point of a fault-isolated sweep failed.
pub fn best_nursery(points: &[NurseryPoint]) -> Option<&NurseryPoint> {
    points.iter().min_by_key(|p| p.cycles)
}

/// Convenience bundle for Fig. 7's three run-time lines.
pub fn fig7_runtimes() -> [RuntimeConfig; 3] {
    [
        RuntimeConfig::new(RuntimeKind::CPython),
        RuntimeConfig::new(RuntimeKind::PyPyNoJit),
        RuntimeConfig::new(RuntimeKind::PyPyJit),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoa_workloads::by_name;

    #[test]
    fn sweep_values_match_the_paper() {
        assert_eq!(SweepParam::IssueWidth.values(), vec![2, 4, 8, 16, 32]);
        assert_eq!(SweepParam::MemLatency.values(), vec![50, 100, 200, 400]);
        assert_eq!(SweepParam::CacheSize.values().len(), 7);
        assert_eq!(SweepParam::LineSize.values().len(), 7);
        assert_eq!(SweepParam::MemBandwidth.values().len(), 8);
        assert_eq!(NURSERY_SIZES.len(), 9);
        assert_eq!(NURSERY_SIZES[0], 512 << 10);
        assert_eq!(NURSERY_SIZES[8], 128 << 20);
    }

    #[test]
    fn apply_produces_valid_configs() {
        let base = UarchConfig::skylake();
        for p in SweepParam::ALL {
            for v in p.values() {
                p.apply(&base, v).validate();
            }
        }
    }

    #[test]
    fn value_formatting() {
        assert_eq!(SweepParam::CacheSize.format_value(2 << 20), "2MB");
        assert_eq!(SweepParam::CacheSize.format_value(512 << 10), "512kB");
        assert_eq!(SweepParam::BranchScale.format_value(1), "0.5x");
        assert_eq!(SweepParam::BranchScale.format_value(16), "8x");
    }

    #[test]
    fn trace_sweep_produces_one_point_per_value() {
        let w = by_name("unpack_seq").expect("workload");
        let run = capture(
            &w.source_with_n(50),
            &RuntimeConfig::new(RuntimeKind::CPython),
        )
        .expect("runs");
        let pts = sweep_trace(&run.trace, SweepParam::MemLatency, &UarchConfig::skylake());
        assert_eq!(pts.len(), 4);
        for p in &pts {
            assert!(p.cpi > 0.0);
            let phase_total: f64 = Phase::ALL.iter().map(|&ph| p.phase_cpi[ph]).sum();
            assert!((phase_total - p.cpi).abs() < 1e-9);
        }
    }

    #[test]
    fn nursery_sweep_reduces_gc_frequency_with_size() {
        let w = by_name("tuple_gc").expect("workload");
        let pts = nursery_sweep(
            w,
            Scale::Tiny,
            &RuntimeConfig::new(RuntimeKind::PyPyNoJit),
            &UarchConfig::skylake(),
            &[256 << 10, 8 << 20],
        )
        .expect("sweeps");
        assert_eq!(pts.len(), 2);
        assert!(
            pts[0].minor_collections > pts[1].minor_collections,
            "{} vs {}",
            pts[0].minor_collections,
            pts[1].minor_collections
        );
        let best = best_nursery(&pts).expect("non-empty sweep");
        assert!(best.cycles <= pts[0].cycles.min(pts[1].cycles));
        assert!(best_nursery(&[]).is_none());
    }
}
