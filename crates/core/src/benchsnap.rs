//! Per-PR perf snapshots: `BENCH_<name>.json`.
//!
//! The ROADMAP tracks a perf trajectory across PRs; every tool that can
//! measure something writes one small JSON file per run through this
//! module so the files stay diffable and uniformly shaped. Each entry
//! pairs a *wall* measurement (host-dependent, trend only) with a
//! *simulated-cycle* measurement (deterministic, regression-gateable).

use crate::error::QoaError;
use std::path::{Path, PathBuf};

/// One measured workload class.
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// Class label, e.g. `richards/full`.
    pub class: String,
    /// Wall nanoseconds (host-dependent; trend only).
    pub wall_nanos: u64,
    /// Simulated cycles (micro-ops) — deterministic.
    pub cycles: u64,
}

/// Renders the snapshot body. Entry order is preserved; only the
/// `wall_nanos` values vary across hosts.
pub fn render_bench_json(bench: &str, tool: &str, seed: u64, entries: &[BenchEntry]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{bench}\",\n"));
    out.push_str(&format!("  \"tool\": \"{tool}\",\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str("  \"classes\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"class\": \"{}\", \"wall_nanos\": {}, \"cycles\": {}}}{}\n",
            e.class, e.wall_nanos, e.cycles, sep
        ));
    }
    out.push_str("  ],\n");
    let wall: u64 = entries.iter().map(|e| e.wall_nanos).sum();
    let cycles: u64 = entries.iter().map(|e| e.cycles).sum();
    out.push_str(&format!(
        "  \"totals\": {{\"wall_nanos\": {wall}, \"cycles\": {cycles}}}\n"
    ));
    out.push_str("}\n");
    out
}

/// Writes `BENCH_<name>.json` under `dir`, creating the directory.
///
/// # Errors
///
/// [`QoaError::Journal`] on I/O failure.
pub fn write_bench_json(
    dir: &Path,
    name: &str,
    tool: &str,
    seed: u64,
    entries: &[BenchEntry],
) -> Result<PathBuf, QoaError> {
    let io = |context: String| {
        move |source: std::io::Error| QoaError::Journal { context, source }
    };
    std::fs::create_dir_all(dir)
        .map_err(io(format!("creating bench dir {}", dir.display())))?;
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, render_bench_json(name, tool, seed, entries))
        .map_err(io(format!("writing {}", path.display())))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_shape_is_stable() {
        let entries = vec![
            BenchEntry { class: "go/full".into(), wall_nanos: 10, cycles: 100 },
            BenchEntry { class: "go/checked".into(), wall_nanos: 20, cycles: 300 },
        ];
        let body = render_bench_json("serve", "qoa-loadgen", 7, &entries);
        assert!(body.contains("\"bench\": \"serve\""));
        assert!(body.contains("\"class\": \"go/full\""));
        assert!(body.contains("\"totals\": {\"wall_nanos\": 30, \"cycles\": 400}"));
    }

    #[test]
    fn writes_under_bench_prefix() {
        let dir = std::env::temp_dir().join("qoa-benchsnap-test");
        let path = write_bench_json(&dir, "unit", "test", 1, &[]).expect("writes");
        assert!(path.ends_with("BENCH_unit.json"));
        assert!(path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
