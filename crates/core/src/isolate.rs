//! Fault isolation for experiment cells.
//!
//! [`run_isolated`] executes one measurement under `catch_unwind`, so a
//! panic in any layer of the stack (front end, interpreter, JIT driver,
//! simulator) becomes a structured [`RunFailure`] instead of aborting the
//! whole sweep. Wall-clock deadlines and fuel budgets are enforced
//! *inside* the VM (see [`qoa_vm::VmConfig`]); this layer only converts
//! their typed errors — plus panics — into one uniform outcome.

use crate::error::QoaError;
use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::time::{Duration, Instant};

thread_local! {
    /// `file:line:column` of the most recent panic on this thread,
    /// written by the suppressed hook while [`run_isolated`] is active.
    /// Thread-local because the hook itself is process-global: a panic on
    /// another thread records *its* location without clobbering ours.
    static PANIC_LOCATION: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// One failed measurement cell: the typed error plus how long the run
/// held the harness before failing.
#[derive(Debug)]
pub struct RunFailure {
    /// Why the cell failed.
    pub error: QoaError,
    /// Wall-clock time spent before the failure surfaced.
    pub wall: Duration,
}

impl std::fmt::Display for RunFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {} (after {:.1?})", self.error.kind(), self.error, self.wall)
    }
}

/// The outcome of one isolated measurement: the success value, or a
/// structured failure.
pub type RunOutcome<T> = Result<T, RunFailure>;

/// Renders a panic payload into a message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f` under a panic boundary, converting panics and typed errors
/// into a [`RunFailure`].
///
/// The default panic hook is suppressed for the duration of the call so
/// an isolated failure doesn't spray a backtrace over the report; the
/// panic message — and the panic site's `file:line:column`, which only
/// the hook can observe — are preserved in [`QoaError::Panic`].
///
/// `AssertUnwindSafe` is sound here because the failed run's state (VM,
/// trace buffer) is discarded wholesale — nothing torn is observed.
pub fn run_isolated<T>(f: impl FnOnce() -> Result<T, QoaError>) -> RunOutcome<T> {
    let start = Instant::now();
    let prev_hook = panic::take_hook();
    panic::set_hook(Box::new(|info| {
        let location = info.location().map(|l| format!("{}:{}:{}", l.file(), l.line(), l.column()));
        PANIC_LOCATION.with(|slot| *slot.borrow_mut() = location);
    }));
    PANIC_LOCATION.with(|slot| *slot.borrow_mut() = None);
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    panic::set_hook(prev_hook);
    match result {
        Ok(Ok(v)) => Ok(v),
        Ok(Err(error)) => Err(RunFailure { error, wall: start.elapsed() }),
        Err(payload) => Err(RunFailure {
            error: QoaError::Panic {
                message: panic_message(payload),
                location: PANIC_LOCATION.with(|slot| slot.borrow_mut().take()),
            },
            wall: start.elapsed(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_passes_through() {
        let out = run_isolated(|| Ok::<_, QoaError>(41 + 1));
        assert_eq!(out.unwrap(), 42);
    }

    #[test]
    fn typed_errors_become_failures() {
        let out = run_isolated(|| Err::<(), _>(QoaError::FuelExhausted { steps: 7 }));
        let failure = out.unwrap_err();
        assert_eq!(failure.error.kind(), "fuel");
    }

    #[test]
    fn panics_are_caught_with_their_message() {
        let out: RunOutcome<()> = run_isolated(|| panic!("boom at cell 3"));
        let failure = out.unwrap_err();
        assert_eq!(failure.error.kind(), "panic");
        assert!(failure.error.to_string().contains("boom at cell 3"));
    }

    #[test]
    fn panic_location_is_captured() {
        let out: RunOutcome<()> = run_isolated(|| panic!("located"));
        let failure = out.unwrap_err();
        let loc = failure.error.location().expect("location captured");
        assert!(loc.contains("isolate.rs"), "unexpected location {loc}");
    }

    #[test]
    fn a_panicking_cell_does_not_poison_the_next() {
        let _ = run_isolated(|| -> Result<(), QoaError> { panic!("first") });
        let ok = run_isolated(|| Ok::<_, QoaError>("second"));
        assert_eq!(ok.unwrap(), "second");
    }
}
