//! Fault isolation for experiment cells.
//!
//! [`run_isolated`] executes one measurement under `catch_unwind`, so a
//! panic in any layer of the stack (front end, interpreter, JIT driver,
//! simulator) becomes a structured [`RunFailure`] instead of aborting the
//! whole sweep. Wall-clock deadlines and fuel budgets are enforced
//! *inside* the VM (see [`qoa_vm::VmConfig`]); this layer only converts
//! their typed errors — plus panics — into one uniform outcome.
//!
//! The panic hook is installed **once** for the whole process (the first
//! time any thread enters [`run_isolated`]) and routes per-panic state
//! through thread-locals. The earlier design swapped the process-global
//! hook around every call, which raced under concurrent `run_isolated`:
//! thread A's `take_hook` could capture thread B's suppression hook as
//! "previous" and re-install it permanently, silencing panics forever —
//! or restore the default hook while B's cell was still isolated,
//! spraying a backtrace and dropping B's panic location. The parallel
//! sweep executor runs many isolated cells concurrently, so the hook must
//! be installation-order independent.

use crate::error::QoaError;
use std::cell::{Cell, RefCell};
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;
use std::time::{Duration, Instant};

thread_local! {
    /// `file:line:column` of the most recent panic on this thread,
    /// written by the suppressing hook while [`run_isolated`] is active.
    /// Thread-local because the hook itself is process-global: a panic on
    /// another thread records *its* location without clobbering ours.
    static PANIC_LOCATION: RefCell<Option<String>> = const { RefCell::new(None) };

    /// Whether this thread is currently inside [`run_isolated`]. The
    /// process-global hook suppresses output only for isolated threads;
    /// everyone else still gets the pre-existing hook's behaviour.
    static ISOLATED: Cell<bool> = const { Cell::new(false) };
}

/// Installs the process-global isolation-aware panic hook exactly once.
///
/// The previously installed hook (normally std's backtrace printer) is
/// captured and delegated to for panics on threads that are *not* inside
/// [`run_isolated`], so isolation never changes behaviour for the rest of
/// the process.
fn install_hook_once() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if ISOLATED.with(Cell::get) {
                let location =
                    info.location().map(|l| format!("{}:{}:{}", l.file(), l.line(), l.column()));
                PANIC_LOCATION.with(|slot| *slot.borrow_mut() = location);
            } else {
                previous(info);
            }
        }));
    });
}

/// One failed measurement cell: the typed error plus how long the run
/// held the harness before failing.
#[derive(Debug)]
pub struct RunFailure {
    /// Why the cell failed.
    pub error: QoaError,
    /// Wall-clock time spent before the failure surfaced.
    pub wall: Duration,
}

impl std::fmt::Display for RunFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {} (after {:.1?})", self.error.kind(), self.error, self.wall)
    }
}

/// The outcome of one isolated measurement: the success value, or a
/// structured failure.
pub type RunOutcome<T> = Result<T, RunFailure>;

/// Renders a panic payload into a message.
///
/// `&str` and `String` payloads (every `panic!` with a message) pass
/// through verbatim. Boxed errors thrown via `panic_any` render through
/// their `Display`. Anything else is described by the best type evidence
/// a type-erased payload can offer: a probe across the common primitive
/// payload types, falling back to the payload's `TypeId` (the `dyn Any`
/// contract exposes no type *name* for arbitrary types).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        return (*s).to_string();
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return s.clone();
    }
    if let Some(e) = payload.downcast_ref::<Box<dyn std::error::Error + Send + Sync>>() {
        return format!("boxed error: {e}");
    }
    if let Some(e) = payload.downcast_ref::<Box<dyn std::error::Error + Send>>() {
        return format!("boxed error: {e}");
    }
    if let Some(e) = payload.downcast_ref::<QoaError>() {
        return format!("typed error payload ({}): {e}", e.kind());
    }
    if let Some(e) = payload.downcast_ref::<std::io::Error>() {
        return format!("I/O error payload: {e}");
    }
    macro_rules! probe_primitive {
        ($($ty:ty),*) => {
            $(if let Some(v) = payload.downcast_ref::<$ty>() {
                return format!("non-string panic payload ({}: {v})", stringify!($ty));
            })*
        };
    }
    probe_primitive!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize, f32, f64, bool, char);
    format!("non-string panic payload ({:?})", payload.type_id())
}

/// Runs `f` under a panic boundary, converting panics and typed errors
/// into a [`RunFailure`].
///
/// The default panic hook is suppressed for the duration of the call so
/// an isolated failure doesn't spray a backtrace over the report; the
/// panic message — and the panic site's `file:line:column`, which only
/// the hook can observe — are preserved in [`QoaError::Panic`].
///
/// Safe to call from any number of threads concurrently: the hook is
/// installed once for the process and keyed by a thread-local "isolated"
/// flag, so parallel cells never race on hook installation and panics on
/// non-harness threads keep their normal behaviour.
///
/// `AssertUnwindSafe` is sound here because the failed run's state (VM,
/// trace buffer) is discarded wholesale — nothing torn is observed.
pub fn run_isolated<T>(f: impl FnOnce() -> Result<T, QoaError>) -> RunOutcome<T> {
    let start = Instant::now();
    install_hook_once();
    PANIC_LOCATION.with(|slot| *slot.borrow_mut() = None);
    let was_isolated = ISOLATED.with(|flag| flag.replace(true));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    ISOLATED.with(|flag| flag.set(was_isolated));
    match result {
        Ok(Ok(v)) => Ok(v),
        Ok(Err(error)) => Err(RunFailure { error, wall: start.elapsed() }),
        Err(payload) => Err(RunFailure {
            error: QoaError::Panic {
                message: panic_message(payload),
                location: PANIC_LOCATION.with(|slot| slot.borrow_mut().take()),
            },
            wall: start.elapsed(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_passes_through() {
        let out = run_isolated(|| Ok::<_, QoaError>(41 + 1));
        assert_eq!(out.expect("isolated success"), 42);
    }

    #[test]
    fn typed_errors_become_failures() {
        let out = run_isolated(|| Err::<(), _>(QoaError::FuelExhausted { steps: 7 }));
        let failure = out.unwrap_err();
        assert_eq!(failure.error.kind(), "fuel");
    }

    #[test]
    fn panics_are_caught_with_their_message() {
        let out: RunOutcome<()> = run_isolated(|| panic!("boom at cell 3"));
        let failure = out.unwrap_err();
        assert_eq!(failure.error.kind(), "panic");
        assert!(failure.error.to_string().contains("boom at cell 3"));
    }

    #[test]
    fn panic_location_is_captured() {
        let out: RunOutcome<()> = run_isolated(|| panic!("located"));
        let failure = out.unwrap_err();
        let loc = failure.error.location().expect("location captured");
        assert!(loc.contains("isolate.rs"), "unexpected location {loc}");
    }

    #[test]
    fn a_panicking_cell_does_not_poison_the_next() {
        let _ = run_isolated(|| -> Result<(), QoaError> { panic!("first") });
        let ok = run_isolated(|| Ok::<_, QoaError>("second"));
        assert_eq!(ok.expect("cell after a panic"), "second");
    }

    #[test]
    fn boxed_error_payloads_render_their_display() {
        let out: RunOutcome<()> = run_isolated(|| {
            let e: Box<dyn std::error::Error + Send + Sync> = "disk on fire".into();
            std::panic::panic_any(e)
        });
        let msg = out.unwrap_err().error.to_string();
        assert!(msg.contains("boxed error: disk on fire"), "got: {msg}");
    }

    #[test]
    fn primitive_payloads_render_their_type_and_value() {
        let out: RunOutcome<()> = run_isolated(|| std::panic::panic_any(42u32));
        let msg = out.unwrap_err().error.to_string();
        assert!(msg.contains("u32: 42"), "got: {msg}");
    }

    #[test]
    fn opaque_payloads_fall_back_to_type_id() {
        #[derive(Debug)]
        struct Opaque;
        let out: RunOutcome<()> = run_isolated(|| std::panic::panic_any(Opaque));
        let msg = out.unwrap_err().error.to_string();
        assert!(msg.contains("non-string panic payload"), "got: {msg}");
    }

    #[test]
    fn concurrent_isolated_panics_keep_their_own_locations() {
        // The regression this module's Once-installed hook fixes: under
        // the old per-call set_hook/take_hook swap, concurrent cells
        // could permanently clobber the process hook or lose locations.
        let threads: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let out: RunOutcome<()> = if i % 2 == 0 {
                            run_isolated(|| panic!("even worker"))
                        } else {
                            run_isolated(|| panic!("odd worker"))
                        };
                        let failure = out.unwrap_err();
                        assert_eq!(failure.error.kind(), "panic");
                        let loc = failure.error.location().expect("location under concurrency");
                        assert!(loc.contains("isolate.rs"), "unexpected location {loc}");
                        let expect = if i % 2 == 0 { "even worker" } else { "odd worker" };
                        assert!(failure.error.to_string().contains(expect));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("worker thread");
        }
        // And a clean run afterwards still works on the main thread.
        let ok = run_isolated(|| Ok::<_, QoaError>(1));
        assert_eq!(ok.expect("clean run after the storm"), 1);
    }
}
