//! Overhead attribution: the paper's §IV methodology.
//!
//! A workload's captured trace is replayed through the **simple core**
//! model (exact per-category cycle attribution, §IV-B.2) and summarized
//! into a per-category share breakdown — the data behind Fig. 4 (CPython),
//! Fig. 5 (PyPy) and Fig. 6 (V8).

use crate::error::QoaError;
use crate::runtime::{capture, RuntimeConfig};
use qoa_model::{CategoryMap, RuntimeKind};
use qoa_uarch::{ExecutionStats, UarchConfig};
use qoa_workloads::{Scale, Workload};

/// Per-benchmark attribution result.
#[derive(Debug, Clone)]
pub struct Breakdown {
    /// Benchmark name.
    pub name: String,
    /// Fraction of total cycles per category (sums to 1).
    pub shares: CategoryMap<f64>,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Total simulated instructions.
    pub instructions: u64,
}

impl Breakdown {
    /// Builds a breakdown from simple-core execution statistics.
    pub fn from_stats(name: impl Into<String>, stats: &ExecutionStats) -> Self {
        Breakdown {
            name: name.into(),
            shares: stats.category_shares(),
            cycles: stats.cycles,
            instructions: stats.instructions,
        }
    }

    /// Share of cycles across the fourteen Table II overheads.
    ///
    /// Delegates to [`CategoryMap::overhead_share`], the single share code
    /// path also used by `ExecutionStats` and the `qoa-obs` metrics
    /// registry, so figure output and exported metrics cannot drift.
    pub fn overhead_share(&self) -> f64 {
        self.shares.overhead_share()
    }

    /// The residual `execute` + C-library share.
    pub fn compute_share(&self) -> f64 {
        self.shares.compute_share()
    }
}

/// Runs one workload and attributes its cycles (simple core, §IV style).
///
/// # Errors
///
/// Propagates the typed compile/run error.
pub fn attribute_workload(
    w: &Workload,
    scale: Scale,
    rt: &RuntimeConfig,
    uarch: &UarchConfig,
) -> Result<Breakdown, QoaError> {
    let run = capture(&w.source(scale), rt)?;
    let stats = run.trace.simulate_simple(uarch);
    Ok(Breakdown::from_stats(w.name, &stats))
}

/// Attributes every workload in `suite` under `rt`.
///
/// # Errors
///
/// Propagates the first failing workload's error.
pub fn attribute_suite(
    suite: &[Workload],
    scale: Scale,
    rt: &RuntimeConfig,
    uarch: &UarchConfig,
) -> Result<Vec<Breakdown>, QoaError> {
    suite
        .iter()
        .map(|w| attribute_workload(w, scale, rt, uarch))
        .collect()
}

/// Arithmetic-mean category shares across breakdowns (the paper's "AVG"
/// bars).
pub fn average_shares(breakdowns: &[Breakdown]) -> CategoryMap<f64> {
    let n = breakdowns.len().max(1) as f64;
    CategoryMap::from_fn(|c| breakdowns.iter().map(|b| b.shares[c]).sum::<f64>() / n)
}

/// Convenience: the default CPython attribution setup of Fig. 4.
///
/// # Errors
///
/// Propagates workload errors.
pub fn figure4_breakdowns(scale: Scale) -> Result<Vec<Breakdown>, QoaError> {
    attribute_suite(
        qoa_workloads::python_suite(),
        scale,
        &RuntimeConfig::new(RuntimeKind::CPython),
        &UarchConfig::skylake(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoa_model::Category;
    use qoa_workloads::by_name;

    fn quick(name: &str, kind: RuntimeKind) -> Breakdown {
        let w = by_name(name).expect("workload");
        attribute_workload(
            w,
            Scale::Tiny,
            &RuntimeConfig::new(kind),
            &UarchConfig::skylake(),
        )
        .expect("attribution")
    }

    #[test]
    fn shares_sum_to_one() {
        let b = quick("fannkuch", RuntimeKind::CPython);
        let total: f64 = Category::ALL.iter().map(|&c| b.shares[c]).sum();
        assert!((total - 1.0).abs() < 1e-9, "sum = {total}");
        assert!((b.overhead_share() + b.compute_share() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cpython_overheads_dominate_compute() {
        // The paper: identified overheads average 64.9% on CPython.
        let b = quick("richards", RuntimeKind::CPython);
        assert!(b.overhead_share() > 0.45, "overhead {}", b.overhead_share());
        assert!(b.shares[Category::CFunctionCall] > 0.05);
        assert!(b.shares[Category::Dispatch] > 0.03);
    }

    #[test]
    fn native_heavy_benchmarks_live_in_the_c_library() {
        // The paper: pickle/regex spend >64% in C library code.
        let b = quick("pickle", RuntimeKind::CPython);
        assert!(
            b.shares[Category::CLibrary] > 0.4,
            "CLibrary share {}",
            b.shares[Category::CLibrary]
        );
    }

    #[test]
    fn pypy_jit_has_lower_c_call_share_than_cpython() {
        // Fig. 5 vs Fig. 4b: 7.5% vs 18.4% on average.
        let c = quick("nqueens", RuntimeKind::CPython);
        let p = quick("nqueens", RuntimeKind::PyPyJit);
        assert!(
            p.shares[Category::CFunctionCall] < c.shares[Category::CFunctionCall],
            "pypy {} vs cpython {}",
            p.shares[Category::CFunctionCall],
            c.shares[Category::CFunctionCall]
        );
    }

    #[test]
    fn averaging_matches_manual_mean() {
        let a = quick("tuple_gc", RuntimeKind::CPython);
        let b = quick("unpack_seq", RuntimeKind::CPython);
        let avg = average_shares(&[a.clone(), b.clone()]);
        let expect = (a.shares[Category::Dispatch] + b.shares[Category::Dispatch]) / 2.0;
        assert!((avg[Category::Dispatch] - expect).abs() < 1e-12);
    }
}
