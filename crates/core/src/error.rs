//! The experiment-level error taxonomy.
//!
//! Every way a measurement cell can fail is one variant of [`QoaError`],
//! so harness code can decide *policy* (retry, annotate, abort) from the
//! error's kind rather than by string matching. Guest-level failures map
//! from [`qoa_vm::VmError`]; the harness adds the two failure modes the
//! VM cannot see about itself: a caught panic and journal I/O.

use qoa_vm::VmError;

/// Everything that can go wrong while producing one experiment cell.
#[derive(Debug)]
pub enum QoaError {
    /// The guest program failed to compile.
    Compile(qoa_frontend::FrontendError),
    /// Compiled bytecode failed static verification (span + opcode +
    /// reason live in the wrapped diagnostic).
    Verify(qoa_analysis::VerifyError),
    /// A guest run-time error (`TypeError: ...`) at a source line.
    Guest {
        /// Description, e.g. `ZeroDivisionError: ...`.
        message: String,
        /// Source line of the faulting bytecode.
        line: u32,
    },
    /// The execution fuel budget ran out.
    FuelExhausted {
        /// Bytecodes executed when the budget ran out.
        steps: u64,
    },
    /// The wall-clock deadline passed.
    DeadlineExceeded {
        /// Bytecodes executed when the deadline fired.
        steps: u64,
    },
    /// Simulated live heap exceeded the configured cap.
    OutOfMemory {
        /// Live bytes at the failing allocation.
        live_bytes: u64,
        /// The configured cap.
        limit_bytes: u64,
    },
    /// The run panicked and was caught at the isolation boundary.
    Panic {
        /// The panic payload, when it was a string.
        message: String,
        /// `file:line:column` of the panic site, when the hook saw it.
        /// Journaled so a chaos failure is diagnosable without rerunning.
        location: Option<String>,
    },
    /// A fault injected by an armed chaos plan surfaced without being
    /// recovered (no checkpoint to restore, or recovery disabled).
    Injected {
        /// [`qoa_chaos::FaultKind::name`] of the injected fault.
        what: &'static str,
        /// Bytecodes executed when it fired.
        steps: u64,
    },
    /// Reading or writing the run journal failed.
    Journal {
        /// What the journal was doing.
        context: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
}

impl QoaError {
    /// Short machine-readable kind tag, used in journal entries and
    /// failure annotations.
    pub fn kind(&self) -> &'static str {
        match self {
            QoaError::Compile(_) => "compile",
            QoaError::Verify(_) => "verify",
            QoaError::Guest { .. } => "guest",
            QoaError::FuelExhausted { .. } => "fuel",
            QoaError::DeadlineExceeded { .. } => "deadline",
            QoaError::OutOfMemory { .. } => "oom",
            QoaError::Panic { .. } => "panic",
            QoaError::Injected { .. } => "injected",
            QoaError::Journal { .. } => "journal",
        }
    }

    /// The failure's source location, when one was captured (panics only).
    pub fn location(&self) -> Option<&str> {
        match self {
            QoaError::Panic { location, .. } => location.as_deref(),
            _ => None,
        }
    }

    /// True for errors the guest program itself caused; false for
    /// resource cutoffs and harness-level failures.
    pub fn is_guest_fault(&self) -> bool {
        matches!(self, QoaError::Compile(_) | QoaError::Verify(_) | QoaError::Guest { .. })
    }

    /// True for failures worth retrying: a caught panic (possibly a
    /// transient harness bug or environmental hiccup) and a wall-clock
    /// deadline miss (machine load, not the cell itself). Everything
    /// deterministic — guest faults, verification failures, fuel and
    /// simulated-OOM cutoffs, unrecovered injected faults — reproduces
    /// identically on retry, so the supervised executor does not waste
    /// attempts on it.
    pub fn is_transient(&self) -> bool {
        matches!(self, QoaError::Panic { .. } | QoaError::DeadlineExceeded { .. })
    }

    /// Journal I/O failure with context.
    pub fn journal(context: impl Into<String>, source: std::io::Error) -> Self {
        QoaError::Journal { context: context.into(), source }
    }
}

impl std::fmt::Display for QoaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QoaError::Compile(e) => write!(f, "compile error: {e}"),
            QoaError::Verify(e) => write!(f, "{e}"),
            QoaError::Guest { message, line } => write!(f, "line {line}: {message}"),
            QoaError::FuelExhausted { steps } => {
                write!(f, "execution fuel exhausted after {steps} bytecodes")
            }
            QoaError::DeadlineExceeded { steps } => {
                write!(f, "wall-clock deadline exceeded after {steps} bytecodes")
            }
            QoaError::OutOfMemory { live_bytes, limit_bytes } => {
                write!(f, "simulated OOM: {live_bytes} live bytes > {limit_bytes} byte cap")
            }
            QoaError::Panic { message, location } => match location {
                Some(at) => write!(f, "panicked at {at}: {message}"),
                None => write!(f, "panicked: {message}"),
            },
            QoaError::Injected { what, steps } => {
                write!(f, "injected fault `{what}` after {steps} bytecodes")
            }
            QoaError::Journal { context, source } => {
                write!(f, "journal I/O failed while {context}: {source}")
            }
        }
    }
}

impl std::error::Error for QoaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QoaError::Compile(e) => Some(e),
            QoaError::Verify(e) => Some(e),
            QoaError::Journal { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<VmError> for QoaError {
    fn from(e: VmError) -> Self {
        match e {
            VmError::Compile(e) => QoaError::Compile(e),
            VmError::Runtime { message, line } => QoaError::Guest { message, line },
            VmError::FuelExhausted { steps } => QoaError::FuelExhausted { steps },
            VmError::DeadlineExceeded { steps } => QoaError::DeadlineExceeded { steps },
            VmError::OutOfMemory { live_bytes, limit_bytes } => {
                QoaError::OutOfMemory { live_bytes, limit_bytes }
            }
            VmError::Injected { what, steps } => QoaError::Injected { what, steps },
        }
    }
}

impl From<qoa_frontend::FrontendError> for QoaError {
    fn from(e: qoa_frontend::FrontendError) -> Self {
        QoaError::Compile(e)
    }
}

impl From<qoa_analysis::VerifyError> for QoaError {
    fn from(e: qoa_analysis::VerifyError) -> Self {
        QoaError::Verify(e)
    }
}

impl From<qoa_analysis::OptError> for QoaError {
    fn from(e: qoa_analysis::OptError) -> Self {
        // Both optimizer failure modes carry a verifier diagnostic: an
        // unverifiable input, or pass output that fails re-verification.
        QoaError::Verify(e.into_verify_error())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vm_errors_map_variant_for_variant() {
        let cases: [(VmError, &str); 4] = [
            (VmError::runtime("TypeError: x", 3), "guest"),
            (VmError::FuelExhausted { steps: 10 }, "fuel"),
            (VmError::DeadlineExceeded { steps: 10 }, "deadline"),
            (VmError::OutOfMemory { live_bytes: 2, limit_bytes: 1 }, "oom"),
        ];
        for (vm, kind) in cases {
            assert_eq!(QoaError::from(vm).kind(), kind);
        }
    }

    #[test]
    fn guest_fault_classification() {
        assert!(QoaError::Guest { message: "x".into(), line: 1 }.is_guest_fault());
        assert!(!QoaError::FuelExhausted { steps: 1 }.is_guest_fault());
        assert!(!QoaError::Panic { message: "x".into(), location: None }.is_guest_fault());
        assert!(!QoaError::Injected { what: "fuel", steps: 1 }.is_guest_fault());
    }

    #[test]
    fn transient_classification_drives_retry_policy() {
        // Retryable: panics and deadline misses.
        assert!(QoaError::Panic { message: "x".into(), location: None }.is_transient());
        assert!(QoaError::DeadlineExceeded { steps: 9 }.is_transient());
        // Deterministic: reproduce identically, never retried.
        assert!(!QoaError::Guest { message: "x".into(), line: 1 }.is_transient());
        assert!(!QoaError::FuelExhausted { steps: 1 }.is_transient());
        assert!(!QoaError::OutOfMemory { live_bytes: 2, limit_bytes: 1 }.is_transient());
        assert!(!QoaError::Injected { what: "fuel", steps: 1 }.is_transient());
    }

    #[test]
    fn verify_errors_are_guest_faults_with_their_own_kind() {
        let mut code = (*qoa_frontend::compile("x = 1\n").expect("compiles")).clone();
        code.code[0].arg = 999; // out-of-range const index
        let err = qoa_analysis::verify_code(&code).expect_err("rejects");
        let err = QoaError::from(err);
        assert_eq!(err.kind(), "verify");
        assert!(err.is_guest_fault());
        assert!(std::error::Error::source(&err).is_some());
    }
}
