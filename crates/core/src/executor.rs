//! The supervised parallel sweep executor.
//!
//! A figure is a grid of hundreds of independent (workload × runtime ×
//! parameter) cells. [`run_supervised`] executes such a batch on a pool
//! of N worker threads — each cell isolated through
//! [`run_isolated`](crate::isolate::run_isolated) — under four layers of
//! supervision:
//!
//! * **Retry with seeded backoff** — a cell whose failure is classified
//!   transient by [`QoaError::is_transient`] (caught panics, wall-clock
//!   deadline misses) is retried up to [`RetryPolicy::max_attempts`]
//!   times, sleeping an exponentially growing, jittered delay between
//!   attempts. The whole schedule is a pure function of the executor
//!   seed and the cell key, so a rerun retries on exactly the same
//!   schedule regardless of thread interleaving.
//! * **Per-runtime circuit breakers** — K consecutive committed failures
//!   for one runtime open its breaker; subsequent cells of that runtime
//!   are shed (recorded as `shed`, not `failed`) until a cooldown has
//!   passed, then a single probe cell runs half-open and decides whether
//!   the breaker closes again.
//! * **Admission control / load shedding** — when a batch cost budget is
//!   configured, the gate admits cells highest-priority-first and sheds
//!   the rest up front, again as `shed`, never `failed`.
//! * **A watchdog** — when cells carry a wall-clock deadline, a watchdog
//!   thread scans the worker pool; a worker stuck past its cell's
//!   deadline plus a grace period has the cell marked **lost**, the
//!   worker abandoned (never joined), and a replacement worker spawned —
//!   the process and the rest of the sweep keep going.
//!
//! # Determinism contract
//!
//! For a fixed seed and batch, the committed outcome of every cell is
//! identical regardless of `jobs` and of scheduling order. The executor
//! achieves this by splitting *execution* from *commitment*: workers run
//! cells speculatively in any order, but outcomes are **committed
//! strictly in submission order**, and all supervision state that couples
//! cells together — the circuit breakers — advances only at commit time,
//! driven purely by the (deterministic) per-cell results. A worker may
//! consult the committed breaker board to *skip* running a cell whose
//! runtime looks open, but that is an execution-saving hint only: if the
//! commit pass disagrees, the cell is re-dispatched and run for real. The
//! one exception is the watchdog: losing a cell depends on wall-clock
//! behaviour, which is inherently nondeterministic — watchdog supervision
//! only activates when a wall-clock cell deadline is configured, which is
//! itself a nondeterministic mode.

use crate::error::QoaError;
use crate::isolate::run_isolated;
use crate::journal::CellKey;
use qoa_obs::metrics::Registry;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Locks a mutex, recovering the guard if a worker panicked while
/// holding it (supervision state stays usable; the poisoned cell itself
/// was already isolated).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Worker threads available on this machine (the `--jobs` default).
pub fn available_jobs() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

// ---- deterministic scheduling RNG -----------------------------------------

/// FNV-1a over a cell key's display form: the per-cell seed component.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Derives a per-cell seed from a batch seed and the cell's key: a pure
/// function of the two, so any thread deriving it for the same cell gets
/// the same value. Used to seed per-cell chaos fault plans.
pub fn cell_seed(seed: u64, key: &CellKey) -> u64 {
    SplitMix64::new(seed ^ fnv1a(&key.to_string())).next()
}

/// SplitMix64: tiny, deterministic, and good enough for backoff jitter.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---- retry policy ----------------------------------------------------------

/// Retry policy for transiently failing cells.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Times a cell may run in total (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base: Duration,
    /// Upper clamp on the exponential term (applied before jitter).
    pub cap: Duration,
    /// Jitter fraction `j` in `[0, 1]`: each delay is scaled by a factor
    /// drawn uniformly from `[1 - j, 1 + j]`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base: Duration::from_millis(25),
            cap: Duration::from_secs(1),
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_attempts: 1, ..RetryPolicy::default() }
    }

    /// The backoff delay slept after failed attempt `attempt` (1-based).
    ///
    /// A pure function of `(seed, key, attempt)`: thread interleaving,
    /// sibling cells, and wall time never influence the schedule.
    pub fn backoff(&self, seed: u64, key: &CellKey, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32.checked_shl(attempt.saturating_sub(1)).unwrap_or(u32::MAX))
            .min(self.cap);
        let jitter = self.jitter.clamp(0.0, 1.0);
        let mut rng =
            SplitMix64::new(seed ^ fnv1a(&key.to_string()) ^ (u64::from(attempt) << 32));
        let factor = 1.0 - jitter + 2.0 * jitter * rng.next_f64();
        exp.mul_f64(factor)
    }

    /// The full deterministic retry schedule for one cell: the delay
    /// slept after each failed attempt `1..max_attempts`.
    pub fn schedule(&self, seed: u64, key: &CellKey) -> Vec<Duration> {
        (1..self.max_attempts).map(|attempt| self.backoff(seed, key, attempt)).collect()
    }
}

// ---- circuit breaker -------------------------------------------------------

/// Circuit-breaker tuning for one runtime.
#[derive(Debug, Clone)]
pub struct BreakerOptions {
    /// Consecutive committed failures that open the breaker.
    pub failure_threshold: u32,
    /// Cells shed while open before the breaker half-opens and probes.
    pub cooldown_sheds: u32,
}

impl Default for BreakerOptions {
    fn default() -> Self {
        BreakerOptions { failure_threshold: 5, cooldown_sheds: 8 }
    }
}

/// The classic three-state breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: cells run, consecutive failures are counted.
    Closed,
    /// Tripped: cells of this runtime are shed without running.
    Open,
    /// Cooled down: the next cell runs as a probe and decides.
    HalfOpen,
}

impl BreakerState {
    /// The journal/metrics label (`closed`, `open`, `half-open`).
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// The breaker state machine itself, advanced strictly by committed
/// outcomes. The executor keeps one per runtime group and advances it
/// only in the ordered commit pass; longer-lived layers (the serving
/// daemon's per-tenant breakers) embed the same machine and advance it
/// across batches, so "breaker semantics" mean exactly one thing in the
/// whole stack. Each `on_*` method returns the transition it caused, if
/// any.
#[derive(Debug, Clone)]
pub struct BreakerCore {
    state: BreakerState,
    consecutive_failures: u32,
    sheds_while_open: u32,
    opts: BreakerOptions,
}

impl BreakerCore {
    /// A closed breaker with the given tuning.
    pub fn new(opts: BreakerOptions) -> BreakerCore {
        BreakerCore {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            sheds_while_open: 0,
            opts,
        }
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// A committed success: closes a half-open breaker, resets the
    /// failure streak.
    pub fn on_success(&mut self) -> Option<BreakerState> {
        self.consecutive_failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Closed;
            return Some(self.state);
        }
        None
    }

    /// A committed failure: trips a closed breaker at the threshold and
    /// re-opens a half-open one immediately.
    pub fn on_failure(&mut self) -> Option<BreakerState> {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.opts.failure_threshold {
                    self.state = BreakerState::Open;
                    self.sheds_while_open = 0;
                    return Some(self.state);
                }
                None
            }
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open;
                self.sheds_while_open = 0;
                Some(self.state)
            }
            BreakerState::Open => None,
        }
    }

    /// A cell shed while open: after the cooldown, half-open for a probe.
    pub fn on_shed(&mut self) -> Option<BreakerState> {
        if self.state == BreakerState::Open {
            self.sheds_while_open += 1;
            if self.sheds_while_open >= self.opts.cooldown_sheds {
                self.state = BreakerState::HalfOpen;
                return Some(self.state);
            }
        }
        None
    }
}

// ---- options, cells, verdicts ---------------------------------------------

/// How to run one supervised batch.
#[derive(Debug, Clone)]
pub struct ExecutorOptions {
    /// Worker threads (clamped to at least 1).
    pub jobs: usize,
    /// Seed for the deterministic retry schedules.
    pub seed: u64,
    /// Retry policy for transient failures.
    pub retry: RetryPolicy,
    /// Per-runtime circuit-breaker tuning.
    pub breaker: BreakerOptions,
    /// Admission budget in cell cost units (`None` = admit everything).
    pub budget: Option<u64>,
    /// Per-attempt wall-clock deadline handed to each cell. Also arms
    /// the watchdog: a worker stuck past `deadline + watchdog_grace` has
    /// its cell marked lost.
    pub cell_deadline: Option<Duration>,
    /// Watchdog slack past the cell deadline before a worker is declared
    /// hung.
    pub watchdog_grace: Duration,
    /// Bounded work-queue capacity (0 = `4 × jobs`).
    pub queue_capacity: usize,
}

impl ExecutorOptions {
    /// Defaults for `jobs` worker threads.
    pub fn new(jobs: usize) -> ExecutorOptions {
        ExecutorOptions {
            jobs,
            seed: 0,
            retry: RetryPolicy::default(),
            breaker: BreakerOptions::default(),
            budget: None,
            cell_deadline: None,
            watchdog_grace: Duration::from_secs(2),
            queue_capacity: 0,
        }
    }
}

impl Default for ExecutorOptions {
    fn default() -> Self {
        ExecutorOptions::new(available_jobs())
    }
}

/// The measurement closure of one cell. `FnMut` because retries re-run
/// it; each invocation receives that attempt's absolute deadline.
pub type CellJobFn<T> = Box<dyn FnMut(Option<Instant>) -> Result<T, QoaError> + Send>;

/// One cell submitted to the executor.
pub struct SupervisedCell<T> {
    /// Journal identity of the cell.
    pub key: CellKey,
    /// Circuit-breaker group (defaults to the key's runtime).
    pub runtime: String,
    /// Admission priority: higher survives the budget gate longer.
    pub priority: i64,
    /// Admission cost in budget units.
    pub cost: u64,
    /// The measurement itself.
    pub job: CellJobFn<T>,
}

impl<T> SupervisedCell<T> {
    /// A cell with default priority 0 and cost 1, grouped by the key's
    /// runtime.
    pub fn new(
        key: CellKey,
        job: impl FnMut(Option<Instant>) -> Result<T, QoaError> + Send + 'static,
    ) -> SupervisedCell<T> {
        let runtime = key.runtime.clone();
        SupervisedCell { key, runtime, priority: 0, cost: 1, job: Box::new(job) }
    }

    /// Returns the cell with its admission priority set.
    pub fn with_priority(mut self, priority: i64) -> Self {
        self.priority = priority;
        self
    }

    /// Returns the cell with its admission cost set.
    pub fn with_cost(mut self, cost: u64) -> Self {
        self.cost = cost;
        self
    }
}

impl<T> std::fmt::Debug for SupervisedCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SupervisedCell")
            .field("key", &self.key)
            .field("runtime", &self.runtime)
            .field("priority", &self.priority)
            .field("cost", &self.cost)
            .finish_non_exhaustive()
    }
}

/// Why a cell was shed instead of run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The admission budget was exhausted by higher-priority cells.
    Budget,
    /// The cell's runtime circuit breaker was open at commit time.
    Breaker,
}

impl ShedReason {
    /// The journal/metrics label.
    pub fn name(self) -> &'static str {
        match self {
            ShedReason::Budget => "budget",
            ShedReason::Breaker => "breaker",
        }
    }
}

/// The committed outcome of one supervised cell.
#[derive(Debug)]
pub enum CellVerdict<T> {
    /// The cell succeeded (possibly after retries).
    Ok {
        /// The measurement.
        value: T,
        /// Times the cell ran.
        attempts: u32,
    },
    /// The cell failed after exhausting its retry budget (or with a
    /// non-transient error on the first attempt).
    Failed {
        /// [`QoaError::kind`] tag.
        kind: String,
        /// Rendered error.
        message: String,
        /// Panic site, when captured.
        location: Option<String>,
        /// Times the cell ran.
        attempts: u32,
    },
    /// Admission was denied; the cell never produced a result.
    Shed {
        /// Which gate declined it.
        reason: ShedReason,
    },
    /// The watchdog declared the worker hung past the cell deadline.
    Lost {
        /// Attempts started before the worker was abandoned.
        attempts: u32,
    },
}

/// One cell's commit record, in submission order.
#[derive(Debug)]
pub struct CommittedCell<T> {
    /// The cell's journal identity.
    pub key: CellKey,
    /// Its breaker group.
    pub runtime: String,
    /// The outcome.
    pub verdict: CellVerdict<T>,
    /// The runtime breaker state the commit decision was made under.
    pub breaker: BreakerState,
}

// ---- scheduler statistics --------------------------------------------------

/// Counters describing what the supervisor did, exported through
/// `qoa-obs` under the `qoa_executor_*` metric families.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Worker threads the batch ran on.
    pub jobs: u64,
    /// Cells submitted.
    pub cells_submitted: u64,
    /// Cells committed successful.
    pub cells_ok: u64,
    /// Cells committed failed.
    pub cells_failed: u64,
    /// Cells shed by the admission budget gate.
    pub cells_shed_budget: u64,
    /// Cells shed by an open circuit breaker.
    pub cells_shed_breaker: u64,
    /// Cells lost to hung workers.
    pub cells_lost: u64,
    /// Total cell executions (first attempts + retries).
    pub attempts: u64,
    /// Retries alone.
    pub retries: u64,
    /// Breaker transitions into open.
    pub breaker_opened: u64,
    /// Breaker transitions into half-open.
    pub breaker_half_opened: u64,
    /// Breaker transitions into closed (successful probes).
    pub breaker_closed: u64,
    /// Deepest the bounded work queue got.
    pub queue_depth_peak: u64,
    /// Speculative results discarded because the ordered commit shed or
    /// lost the cell first.
    pub speculative_discards: u64,
    /// Breaker-skip hints that the commit pass overruled (cell was
    /// re-dispatched and run for real).
    pub redispatches: u64,
}

impl ExecutorStats {
    /// Exports the counters into a metrics registry under the same
    /// conventions the chaos and VM layers use.
    pub fn export(&self, reg: &mut Registry) {
        let jobs = reg.gauge("qoa_executor_jobs", "Worker threads in the supervised executor");
        reg.set(jobs, self.jobs as f64);
        for (outcome, n) in [
            ("ok", self.cells_ok),
            ("failed", self.cells_failed),
            ("shed_budget", self.cells_shed_budget),
            ("shed_breaker", self.cells_shed_breaker),
            ("lost", self.cells_lost),
        ] {
            let id = reg.labeled_counter(
                "qoa_executor_cells_total",
                "Supervised cells committed, by outcome",
                "outcome",
                outcome,
            );
            reg.add(id, n);
        }
        let attempts =
            reg.counter("qoa_executor_attempts_total", "Cell executions including retries");
        reg.add(attempts, self.attempts);
        let retries = reg.counter("qoa_executor_retries_total", "Cell retries after transient failures");
        reg.add(retries, self.retries);
        for (state, n) in [
            ("open", self.breaker_opened),
            ("half-open", self.breaker_half_opened),
            ("closed", self.breaker_closed),
        ] {
            let id = reg.labeled_counter(
                "qoa_executor_breaker_transitions_total",
                "Circuit-breaker state transitions, by destination state",
                "to",
                state,
            );
            reg.add(id, n);
        }
        let depth = reg.gauge(
            "qoa_executor_queue_depth_peak",
            "Deepest the bounded work queue got during the batch",
        );
        reg.set(depth, self.queue_depth_peak as f64);
        let discards = reg.counter(
            "qoa_executor_speculative_discards_total",
            "Speculative results discarded by the ordered commit pass",
        );
        reg.add(discards, self.speculative_discards);
        let redispatches = reg.counter(
            "qoa_executor_redispatches_total",
            "Breaker-skip hints overruled by the commit pass",
        );
        reg.add(redispatches, self.redispatches);
    }
}

// ---- shared executor state -------------------------------------------------

/// Immutable per-cell metadata workers and the committer both read.
struct CellMeta {
    key: CellKey,
    runtime: String,
    runtime_idx: usize,
}

struct WorkItem {
    index: usize,
    /// A forced item must run even if the breaker board looks open (the
    /// commit pass decided it needs the real result).
    forced: bool,
}

struct QueueState {
    items: VecDeque<WorkItem>,
    /// False once the batch is fully committed: workers drain and exit.
    open: bool,
    depth_peak: usize,
}

/// A hung-worker watch entry.
#[derive(Default)]
struct WatchSlot {
    /// `(cell index, watch deadline, attempts started)` while a job runs.
    in_flight: Option<(usize, Option<Instant>, u32)>,
    /// Set by the watchdog: the worker is considered hung; it must exit
    /// after its current job and its results are ignored.
    abandoned: bool,
}

enum WorkerVerdict<T> {
    Ok { value: T, attempts: u32 },
    Failed { kind: String, message: String, location: Option<String>, attempts: u32 },
    /// Skipped on an open-breaker hint; the job is still in its slot.
    NotRun,
    /// Declared hung by the watchdog.
    Lost { attempts: u32 },
}

struct Report<T> {
    index: usize,
    verdict: WorkerVerdict<T>,
}

struct Shared<T> {
    queue: Mutex<QueueState>,
    available: Condvar,
    /// Each cell's job, taken by the worker that runs it.
    slots: Vec<Mutex<Option<CellJobFn<T>>>>,
    meta: Vec<CellMeta>,
    /// Committed-state hint per runtime: true while the breaker is open.
    breaker_open: Vec<AtomicBool>,
    /// Set once a cell commits: a queued item for it is stale, skip it.
    done: Vec<AtomicBool>,
    watch: Mutex<Vec<WatchSlot>>,
    attempts: AtomicU64,
    retries: AtomicU64,
}

#[derive(Clone)]
struct WorkerOpts {
    retry: RetryPolicy,
    seed: u64,
    cell_deadline: Option<Duration>,
    watchdog_grace: Duration,
}

struct WorkerHandle {
    wid: usize,
    handle: std::thread::JoinHandle<()>,
}

fn spawn_worker<T: Send + 'static>(
    shared: &Arc<Shared<T>>,
    opts: &WorkerOpts,
    tx: &Sender<Report<T>>,
    handles: &Arc<Mutex<Vec<WorkerHandle>>>,
) {
    let wid = {
        let mut watch = lock(&shared.watch);
        watch.push(WatchSlot::default());
        watch.len() - 1
    };
    let shared = Arc::clone(shared);
    let opts = opts.clone();
    let tx = tx.clone();
    let handle = std::thread::spawn(move || worker_loop(&shared, wid, &opts, &tx));
    lock(handles).push(WorkerHandle { wid, handle });
}

fn worker_loop<T: Send>(
    shared: &Arc<Shared<T>>,
    wid: usize,
    opts: &WorkerOpts,
    tx: &Sender<Report<T>>,
) {
    loop {
        // Pull the next work item from the bounded queue.
        let item = {
            let mut q = lock(&shared.queue);
            loop {
                if let Some(item) = q.items.pop_front() {
                    break item;
                }
                if !q.open {
                    return;
                }
                q = shared
                    .available
                    .wait(q)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        let meta = &shared.meta[item.index];
        if shared.done[item.index].load(Ordering::Acquire) {
            continue; // committed (shed) while queued; nothing to do
        }
        // Work-saving hint only: the committed breaker may disagree, in
        // which case the committer re-dispatches this cell as forced.
        if !item.forced && shared.breaker_open[meta.runtime_idx].load(Ordering::Relaxed) {
            let _ = tx.send(Report { index: item.index, verdict: WorkerVerdict::NotRun });
            continue;
        }
        let Some(mut job) = lock(&shared.slots[item.index]).take() else {
            continue; // another worker already ran it (stale duplicate)
        };
        let mut attempts = 0u32;
        let verdict = loop {
            attempts += 1;
            shared.attempts.fetch_add(1, Ordering::Relaxed);
            let deadline = opts.cell_deadline.map(|d| Instant::now() + d);
            {
                let mut watch = lock(&shared.watch);
                watch[wid].in_flight =
                    Some((item.index, deadline.map(|d| d + opts.watchdog_grace), attempts));
            }
            let outcome = run_isolated(|| job(deadline));
            {
                let mut watch = lock(&shared.watch);
                watch[wid].in_flight = None;
            }
            match outcome {
                Ok(value) => break WorkerVerdict::Ok { value, attempts },
                Err(failure) => {
                    if failure.error.is_transient() && attempts < opts.retry.max_attempts {
                        shared.retries.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(opts.retry.backoff(opts.seed, &meta.key, attempts));
                        continue;
                    }
                    break WorkerVerdict::Failed {
                        kind: failure.error.kind().to_string(),
                        message: failure.error.to_string(),
                        location: failure.error.location().map(str::to_string),
                        attempts,
                    };
                }
            }
        };
        let _ = tx.send(Report { index: item.index, verdict });
        if lock(&shared.watch)[wid].abandoned {
            return; // a replacement already took over this worker's seat
        }
    }
}

/// The watchdog: scans worker in-flight slots and declares cells lost
/// when a worker overruns its deadline plus grace. Abandons the hung
/// worker (its eventual result is ignored, its thread never joined) and
/// spawns a replacement so pool capacity is maintained.
fn watchdog_loop<T: Send + 'static>(
    shared: &Arc<Shared<T>>,
    opts: &WorkerOpts,
    tx: &Sender<Report<T>>,
    handles: &Arc<Mutex<Vec<WorkerHandle>>>,
    stop: &Arc<AtomicBool>,
) {
    while !stop.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(10));
        let now = Instant::now();
        let mut lost: Vec<(usize, u32)> = Vec::new();
        {
            let mut watch = lock(&shared.watch);
            for slot in watch.iter_mut() {
                if slot.abandoned {
                    continue;
                }
                if let Some((index, Some(deadline), attempts)) = slot.in_flight {
                    if now > deadline {
                        slot.abandoned = true;
                        lost.push((index, attempts));
                    }
                }
            }
        }
        for (index, attempts) in lost {
            let _ = tx.send(Report { index, verdict: WorkerVerdict::Lost { attempts } });
            spawn_worker(shared, opts, tx, handles);
        }
    }
}

// ---- the executor ----------------------------------------------------------

/// Runs a batch of supervised cells and returns every cell's committed
/// outcome **in submission order**, plus the scheduler statistics.
///
/// See the module docs for the supervision layers and the determinism
/// contract.
pub fn run_supervised<T: Send + 'static>(
    cells: Vec<SupervisedCell<T>>,
    opts: &ExecutorOptions,
) -> (Vec<CommittedCell<T>>, ExecutorStats) {
    let n = cells.len();
    let jobs = opts.jobs.max(1);
    let mut stats = ExecutorStats {
        jobs: jobs as u64,
        cells_submitted: n as u64,
        ..ExecutorStats::default()
    };
    if n == 0 {
        return (Vec::new(), stats);
    }

    // Admission pass: highest priority first (ties broken by submission
    // order), shedding whatever the budget cannot carry.
    let mut admitted = vec![true; n];
    if let Some(budget) = opts.budget {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(cells[i].priority), i));
        let mut used = 0u64;
        for &i in &order {
            let cost = cells[i].cost;
            if used.saturating_add(cost) <= budget {
                used = used.saturating_add(cost);
            } else {
                admitted[i] = false;
            }
        }
    }

    // Runtime → breaker index.
    let mut runtime_idx: BTreeMap<String, usize> = BTreeMap::new();
    for cell in &cells {
        let next = runtime_idx.len();
        runtime_idx.entry(cell.runtime.clone()).or_insert(next);
    }
    let runtimes = runtime_idx.len();

    // Split the cells into shared metadata + job slots.
    let mut meta = Vec::with_capacity(n);
    let mut slots = Vec::with_capacity(n);
    for cell in cells {
        meta.push(CellMeta {
            runtime_idx: runtime_idx[&cell.runtime],
            key: cell.key,
            runtime: cell.runtime,
        });
        slots.push(Mutex::new(Some(cell.job)));
    }

    let shared = Arc::new(Shared {
        queue: Mutex::new(QueueState {
            items: VecDeque::new(),
            open: true,
            depth_peak: 0,
        }),
        available: Condvar::new(),
        slots,
        meta,
        breaker_open: (0..runtimes).map(|_| AtomicBool::new(false)).collect(),
        done: (0..n).map(|_| AtomicBool::new(false)).collect(),
        watch: Mutex::new(Vec::new()),
        attempts: AtomicU64::new(0),
        retries: AtomicU64::new(0),
    });
    let worker_opts = WorkerOpts {
        retry: opts.retry.clone(),
        seed: opts.seed,
        cell_deadline: opts.cell_deadline,
        watchdog_grace: opts.watchdog_grace,
    };
    let (tx, rx): (Sender<Report<T>>, Receiver<Report<T>>) = mpsc::channel();
    let handles: Arc<Mutex<Vec<WorkerHandle>>> = Arc::new(Mutex::new(Vec::new()));
    for _ in 0..jobs {
        spawn_worker(&shared, &worker_opts, &tx, &handles);
    }
    let watchdog_stop = Arc::new(AtomicBool::new(false));
    let watchdog = opts.cell_deadline.map(|_| {
        let shared = Arc::clone(&shared);
        let worker_opts = worker_opts.clone();
        let tx = tx.clone();
        let handles = Arc::clone(&handles);
        let stop = Arc::clone(&watchdog_stop);
        std::thread::spawn(move || watchdog_loop(&shared, &worker_opts, &tx, &handles, &stop))
    });
    drop(tx); // committer holds no sender: disconnect == all workers gone

    let committed = commit_loop(&shared, &rx, &admitted, opts, &mut stats);

    // Shutdown: close the queue, wake everyone, stop the watchdog, and
    // join every worker that wasn't abandoned as hung.
    {
        let mut q = lock(&shared.queue);
        q.items.clear();
        q.open = false;
    }
    shared.available.notify_all();
    watchdog_stop.store(true, Ordering::Release);
    if let Some(handle) = watchdog {
        let _ = handle.join();
    }
    let handles = std::mem::take(&mut *lock(&handles));
    for WorkerHandle { wid, handle } in handles {
        let abandoned = lock(&shared.watch).get(wid).is_some_and(|s| s.abandoned);
        if !abandoned {
            let _ = handle.join();
        }
    }

    stats.attempts = shared.attempts.load(Ordering::Relaxed);
    stats.retries = shared.retries.load(Ordering::Relaxed);
    stats.queue_depth_peak = lock(&shared.queue).depth_peak as u64;
    (committed, stats)
}

/// The ordered commit pass: feeds the bounded queue, pumps worker
/// reports, and commits outcomes strictly in submission order, advancing
/// the circuit breakers only here.
fn commit_loop<T: Send>(
    shared: &Arc<Shared<T>>,
    rx: &Receiver<Report<T>>,
    admitted: &[bool],
    opts: &ExecutorOptions,
    stats: &mut ExecutorStats,
) -> Vec<CommittedCell<T>> {
    let n = shared.meta.len();
    let capacity =
        if opts.queue_capacity == 0 { opts.jobs.max(1) * 4 } else { opts.queue_capacity }.max(1);
    let mut breakers: Vec<BreakerCore> =
        shared.breaker_open.iter().map(|_| BreakerCore::new(opts.breaker.clone())).collect();
    let mut committed: Vec<Option<CommittedCell<T>>> = (0..n).map(|_| None).collect();
    let mut ready: BTreeMap<usize, WorkerVerdict<T>> = BTreeMap::new();
    let mut pending_dispatch: VecDeque<usize> =
        (0..n).filter(|&i| admitted[i]).collect();
    let mut next = 0usize;

    let note_transition = |stats: &mut ExecutorStats, to: Option<BreakerState>| match to {
        Some(BreakerState::Open) => stats.breaker_opened += 1,
        Some(BreakerState::HalfOpen) => stats.breaker_half_opened += 1,
        Some(BreakerState::Closed) => stats.breaker_closed += 1,
        None => {}
    };

    while next < n {
        // Top up the bounded queue without blocking.
        {
            let mut q = lock(&shared.queue);
            let mut fed = false;
            while q.items.len() < capacity {
                let Some(i) = pending_dispatch.pop_front() else { break };
                if committed[i].is_some() {
                    continue; // shed while still queued for dispatch
                }
                q.items.push_back(WorkItem { index: i, forced: false });
                fed = true;
            }
            let depth = q.items.len();
            q.depth_peak = q.depth_peak.max(depth);
            drop(q);
            if fed {
                shared.available.notify_all();
            }
        }

        // Commit as far as the available results allow.
        let mut blocked = false;
        while next < n && !blocked {
            let meta = &shared.meta[next];
            let ridx = meta.runtime_idx;
            if !admitted[next] {
                committed[next] = Some(CommittedCell {
                    key: meta.key.clone(),
                    runtime: meta.runtime.clone(),
                    verdict: CellVerdict::Shed { reason: ShedReason::Budget },
                    breaker: breakers[ridx].state,
                });
                shared.done[next].store(true, Ordering::Release);
                stats.cells_shed_budget += 1;
                if ready.remove(&next).is_some() {
                    stats.speculative_discards += 1;
                }
                next += 1;
                continue;
            }
            match breakers[ridx].state {
                BreakerState::Open => {
                    committed[next] = Some(CommittedCell {
                        key: meta.key.clone(),
                        runtime: meta.runtime.clone(),
                        verdict: CellVerdict::Shed { reason: ShedReason::Breaker },
                        breaker: BreakerState::Open,
                    });
                    shared.done[next].store(true, Ordering::Release);
                    stats.cells_shed_breaker += 1;
                    if matches!(
                        ready.remove(&next),
                        Some(WorkerVerdict::Ok { .. } | WorkerVerdict::Failed { .. })
                    ) {
                        stats.speculative_discards += 1;
                    }
                    let transition = breakers[ridx].on_shed();
                    note_transition(stats, transition);
                    if transition == Some(BreakerState::HalfOpen) {
                        shared.breaker_open[ridx].store(false, Ordering::Relaxed);
                    }
                    next += 1;
                }
                BreakerState::Closed | BreakerState::HalfOpen => {
                    let state = breakers[ridx].state;
                    match ready.remove(&next) {
                        None => blocked = true,
                        Some(WorkerVerdict::NotRun) => {
                            // The skip hint was wrong (or the breaker has
                            // since closed): run the cell for real.
                            stats.redispatches += 1;
                            let mut q = lock(&shared.queue);
                            q.items.push_front(WorkItem { index: next, forced: true });
                            let depth = q.items.len();
                            q.depth_peak = q.depth_peak.max(depth);
                            drop(q);
                            shared.available.notify_all();
                            blocked = true;
                        }
                        Some(WorkerVerdict::Ok { value, attempts }) => {
                            let transition = breakers[ridx].on_success();
                            note_transition(stats, transition);
                            committed[next] = Some(CommittedCell {
                                key: meta.key.clone(),
                                runtime: meta.runtime.clone(),
                                verdict: CellVerdict::Ok { value, attempts },
                                breaker: state,
                            });
                            shared.done[next].store(true, Ordering::Release);
                            stats.cells_ok += 1;
                            next += 1;
                        }
                        Some(WorkerVerdict::Failed { kind, message, location, attempts }) => {
                            let transition = breakers[ridx].on_failure();
                            note_transition(stats, transition);
                            if transition == Some(BreakerState::Open) {
                                shared.breaker_open[ridx].store(true, Ordering::Relaxed);
                            }
                            committed[next] = Some(CommittedCell {
                                key: meta.key.clone(),
                                runtime: meta.runtime.clone(),
                                verdict: CellVerdict::Failed { kind, message, location, attempts },
                                breaker: state,
                            });
                            shared.done[next].store(true, Ordering::Release);
                            stats.cells_failed += 1;
                            next += 1;
                        }
                        Some(WorkerVerdict::Lost { attempts }) => {
                            // A hung worker counts as a failure for the
                            // breaker: a hanging runtime should trip it.
                            let transition = breakers[ridx].on_failure();
                            note_transition(stats, transition);
                            if transition == Some(BreakerState::Open) {
                                shared.breaker_open[ridx].store(true, Ordering::Relaxed);
                            }
                            committed[next] = Some(CommittedCell {
                                key: meta.key.clone(),
                                runtime: meta.runtime.clone(),
                                verdict: CellVerdict::Lost { attempts },
                                breaker: state,
                            });
                            shared.done[next].store(true, Ordering::Release);
                            stats.cells_lost += 1;
                            next += 1;
                        }
                    }
                }
            }
        }
        if next >= n {
            break;
        }

        // Pump worker reports: block briefly for the one we need, then
        // drain whatever else arrived.
        let mut absorb = |report: Report<T>, ready: &mut BTreeMap<usize, WorkerVerdict<T>>| {
            if committed[report.index].is_some() {
                if matches!(
                    report.verdict,
                    WorkerVerdict::Ok { .. } | WorkerVerdict::Failed { .. }
                ) {
                    stats.speculative_discards += 1;
                }
                return;
            }
            // First verdict wins (a real result racing a Lost marker is
            // only possible in wall-clock deadline mode).
            ready.entry(report.index).or_insert(report.verdict);
        };
        match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(report) => absorb(report, &mut ready),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                // Every worker died (all abandoned and exited). Nothing
                // more can arrive: mark the rest lost so the sweep still
                // terminates with a full journal.
                for (i, slot) in committed.iter().enumerate().skip(next) {
                    if slot.is_none() && !ready.contains_key(&i) {
                        ready.insert(i, WorkerVerdict::Lost { attempts: 0 });
                    }
                }
            }
        }
        while let Ok(report) = rx.try_recv() {
            absorb(report, &mut ready);
        }
    }

    committed.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(w: &str, rt: &str, v: u32) -> CellKey {
        CellKey::new(w, rt, "p", v.to_string())
    }

    fn quick_retry() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base: Duration::from_micros(100),
            cap: Duration::from_millis(2),
            jitter: 0.5,
        }
    }

    /// Renders a committed batch into a compact signature for parity
    /// assertions (value payloads included).
    fn signature(committed: &[CommittedCell<u64>]) -> Vec<String> {
        committed
            .iter()
            .map(|c| {
                let v = match &c.verdict {
                    CellVerdict::Ok { value, attempts } => format!("ok({value})x{attempts}"),
                    CellVerdict::Failed { kind, attempts, .. } => format!("fail({kind})x{attempts}"),
                    CellVerdict::Shed { reason } => format!("shed({})", reason.name()),
                    CellVerdict::Lost { .. } => "lost".to_string(),
                };
                format!("{}={v}@{}", c.key, c.breaker.name())
            })
            .collect()
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_jitter_bounded() {
        let policy = RetryPolicy {
            max_attempts: 6,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(200),
            jitter: 0.3,
        };
        let k = key("go", "CPython", 1);
        let a = policy.schedule(42, &k);
        let b = policy.schedule(42, &k);
        assert_eq!(a, b, "same seed + key must give the same schedule");
        let c = policy.schedule(43, &k);
        assert_ne!(a, c, "a different seed must perturb the schedule");
        for (i, delay) in a.iter().enumerate() {
            let exp = policy
                .base
                .saturating_mul(1 << i)
                .min(policy.cap);
            let lo = exp.mul_f64(1.0 - policy.jitter);
            let hi = exp.mul_f64(1.0 + policy.jitter);
            assert!(
                *delay >= lo && *delay <= hi,
                "attempt {}: {delay:?} outside [{lo:?}, {hi:?}]",
                i + 1
            );
        }
    }

    #[test]
    fn successful_batch_commits_in_submission_order() {
        let cells: Vec<SupervisedCell<u64>> = (0..20)
            .map(|i| SupervisedCell::new(key("w", "CPython", i), move |_| Ok(u64::from(i))))
            .collect();
        let (committed, stats) = run_supervised(cells, &ExecutorOptions::new(4));
        assert_eq!(committed.len(), 20);
        for (i, c) in committed.iter().enumerate() {
            assert_eq!(c.key.value, i.to_string());
            assert!(matches!(c.verdict, CellVerdict::Ok { value, attempts: 1 } if value == i as u64));
        }
        assert_eq!(stats.cells_ok, 20);
        assert_eq!(stats.retries, 0);
    }

    #[test]
    fn transient_failures_retry_and_recover() {
        use std::sync::atomic::AtomicU32;
        let flaky = Arc::new(AtomicU32::new(0));
        let f = Arc::clone(&flaky);
        let cells = vec![SupervisedCell::new(key("w", "CPython", 0), move |_| {
            if f.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("transient hiccup");
            }
            Ok(7u64)
        })];
        let mut opts = ExecutorOptions::new(2);
        opts.retry = quick_retry();
        let (committed, stats) = run_supervised(cells, &opts);
        assert!(matches!(committed[0].verdict, CellVerdict::Ok { value: 7, attempts: 3 }));
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.attempts, 3);
    }

    #[test]
    fn deterministic_failures_are_not_retried() {
        let cells = vec![SupervisedCell::new(key("w", "CPython", 0), move |_| {
            Err::<u64, _>(QoaError::FuelExhausted { steps: 5 })
        })];
        let mut opts = ExecutorOptions::new(2);
        opts.retry = quick_retry();
        let (committed, stats) = run_supervised(cells, &opts);
        assert!(matches!(
            &committed[0].verdict,
            CellVerdict::Failed { kind, attempts: 1, .. } if kind == "fuel"
        ));
        assert_eq!(stats.retries, 0);
    }

    #[test]
    fn budget_gate_sheds_lowest_priority_first() {
        let mut cells: Vec<SupervisedCell<u64>> = Vec::new();
        for i in 0..4u32 {
            cells.push(
                SupervisedCell::new(key("low", "CPython", i), move |_| Ok(u64::from(i)))
                    .with_priority(1)
                    .with_cost(2),
            );
        }
        for i in 0..2u32 {
            cells.push(
                SupervisedCell::new(key("high", "CPython", i), move |_| Ok(u64::from(i)))
                    .with_priority(9)
                    .with_cost(2),
            );
        }
        let mut opts = ExecutorOptions::new(3);
        opts.budget = Some(8); // room for both high (4) + two low (4)
        let (committed, stats) = run_supervised(cells, &opts);
        assert_eq!(stats.cells_shed_budget, 2);
        // The two *last-submitted* low-priority cells are the ones shed.
        for c in &committed {
            let shed = matches!(c.verdict, CellVerdict::Shed { reason: ShedReason::Budget });
            let expect_shed = c.key.workload == "low" && c.key.value.parse::<u32>().ok() >= Some(2);
            assert_eq!(shed, expect_shed, "unexpected admission for {}", c.key);
        }
    }

    #[test]
    fn breaker_opens_sheds_probes_and_closes() {
        // Runtime "flaky": 3 failures trip the breaker (threshold 3),
        // 2 sheds cool it down, then the probe succeeds and closes it.
        let mut cells: Vec<SupervisedCell<u64>> = Vec::new();
        for i in 0..3u32 {
            cells.push(SupervisedCell::new(key("w", "flaky", i), move |_| {
                Err(QoaError::Guest { message: "bad".into(), line: 1 })
            }));
        }
        for i in 3..5u32 {
            cells.push(SupervisedCell::new(key("w", "flaky", i), move |_| Ok(u64::from(i))));
        }
        // Probe + one post-recovery cell.
        for i in 5..7u32 {
            cells.push(SupervisedCell::new(key("w", "flaky", i), move |_| Ok(u64::from(i))));
        }
        // An innocent bystander runtime is never affected.
        cells.push(SupervisedCell::new(key("w", "steady", 0), move |_| Ok(100)));
        let mut opts = ExecutorOptions::new(4);
        opts.breaker = BreakerOptions { failure_threshold: 3, cooldown_sheds: 2 };
        let (committed, stats) = run_supervised(cells, &opts);
        let sig = signature(&committed);
        assert_eq!(
            sig,
            vec![
                "w/flaky p=0=fail(guest)x1@closed",
                "w/flaky p=1=fail(guest)x1@closed",
                "w/flaky p=2=fail(guest)x1@closed",
                "w/flaky p=3=shed(breaker)@open",
                "w/flaky p=4=shed(breaker)@open",
                "w/flaky p=5=ok(5)x1@half-open",
                "w/flaky p=6=ok(6)x1@closed",
                "w/steady p=0=ok(100)x1@closed",
            ],
            "full breaker lifecycle"
        );
        assert_eq!(stats.breaker_opened, 1);
        assert_eq!(stats.breaker_half_opened, 1);
        assert_eq!(stats.breaker_closed, 1);
        assert_eq!(stats.cells_shed_breaker, 2);
    }

    #[test]
    fn failed_probe_reopens_the_breaker() {
        let mut cells: Vec<SupervisedCell<u64>> = Vec::new();
        for i in 0..2u32 {
            cells.push(SupervisedCell::new(key("w", "rt", i), move |_| {
                Err(QoaError::Guest { message: "bad".into(), line: 1 })
            }));
        }
        cells.push(SupervisedCell::new(key("w", "rt", 2), move |_| Ok(0))); // shed
        cells.push(SupervisedCell::new(key("w", "rt", 3), move |_| {
            Err(QoaError::Guest { message: "still bad".into(), line: 1 }) // failing probe
        }));
        cells.push(SupervisedCell::new(key("w", "rt", 4), move |_| Ok(0))); // shed again
        let mut opts = ExecutorOptions::new(2);
        opts.breaker = BreakerOptions { failure_threshold: 2, cooldown_sheds: 1 };
        let (committed, stats) = run_supervised(cells, &opts);
        let sig = signature(&committed);
        assert_eq!(
            sig,
            vec![
                "w/rt p=0=fail(guest)x1@closed",
                "w/rt p=1=fail(guest)x1@closed",
                "w/rt p=2=shed(breaker)@open",
                "w/rt p=3=fail(guest)x1@half-open",
                "w/rt p=4=shed(breaker)@open",
            ]
        );
        assert_eq!(stats.breaker_opened, 2, "initial trip + failed probe");
    }

    #[test]
    fn outcomes_are_identical_across_job_counts() {
        // A mixed batch: successes, deterministic failures tripping a
        // breaker, a second healthy runtime, and budget shedding.
        let build = || {
            let mut cells: Vec<SupervisedCell<u64>> = Vec::new();
            for i in 0..24u32 {
                let rt = if i % 3 == 0 { "flaky" } else { "steady" };
                cells.push(
                    SupervisedCell::new(key("w", rt, i), move |_| {
                        if i % 3 == 0 {
                            Err(QoaError::Guest { message: format!("bad {i}"), line: 1 })
                        } else {
                            Ok(u64::from(i) * 10)
                        }
                    })
                    .with_priority(i64::from(i % 5))
                    .with_cost(1),
                );
            }
            cells
        };
        let mut opts = ExecutorOptions::new(1);
        opts.breaker = BreakerOptions { failure_threshold: 2, cooldown_sheds: 2 };
        opts.budget = Some(20);
        opts.seed = 7;
        let (sequential, seq_stats) = run_supervised(build(), &opts);
        opts.jobs = 4;
        let (parallel, par_stats) = run_supervised(build(), &opts);
        assert_eq!(
            signature(&sequential),
            signature(&parallel),
            "jobs=1 and jobs=4 must commit identical outcomes"
        );
        // Outcome counters agree too (speculation counters may differ).
        assert_eq!(seq_stats.cells_ok, par_stats.cells_ok);
        assert_eq!(seq_stats.cells_failed, par_stats.cells_failed);
        assert_eq!(seq_stats.cells_shed_budget, par_stats.cells_shed_budget);
        assert_eq!(seq_stats.cells_shed_breaker, par_stats.cells_shed_breaker);
        assert_eq!(seq_stats.breaker_opened, par_stats.breaker_opened);
    }

    #[test]
    fn watchdog_marks_hung_cells_lost_and_the_sweep_survives() {
        let mut cells: Vec<SupervisedCell<u64>> = Vec::new();
        cells.push(SupervisedCell::new(key("w", "rt", 0), move |_| {
            // A genuine hang: ignores its deadline entirely.
            std::thread::sleep(Duration::from_millis(400));
            Ok(0)
        }));
        for i in 1..4u32 {
            cells.push(SupervisedCell::new(key("w", "rt", i), move |_| Ok(u64::from(i))));
        }
        let mut opts = ExecutorOptions::new(1); // single worker: the hang blocks everything
        opts.cell_deadline = Some(Duration::from_millis(30));
        opts.watchdog_grace = Duration::from_millis(20);
        opts.retry = RetryPolicy::none();
        let (committed, stats) = run_supervised(cells, &opts);
        assert!(
            matches!(committed[0].verdict, CellVerdict::Lost { .. }),
            "hung cell must be lost, got {:?}",
            committed[0].verdict
        );
        for c in &committed[1..] {
            assert!(
                matches!(c.verdict, CellVerdict::Ok { .. }),
                "replacement worker must finish the batch, got {:?} for {}",
                c.verdict,
                c.key
            );
        }
        assert_eq!(stats.cells_lost, 1);
        assert_eq!(stats.cells_ok, 3);
    }

    #[test]
    fn stats_export_exposes_breaker_transitions() {
        let cells: Vec<SupervisedCell<u64>> = (0..4)
            .map(|i| {
                SupervisedCell::new(key("w", "rt", i), move |_| {
                    Err(QoaError::Guest { message: "storm".into(), line: 1 })
                })
            })
            .collect();
        let mut opts = ExecutorOptions::new(2);
        opts.breaker = BreakerOptions { failure_threshold: 2, cooldown_sheds: 99 };
        let (_, stats) = run_supervised(cells, &opts);
        assert_eq!(stats.breaker_opened, 1);
        let mut reg = Registry::new();
        stats.export(&mut reg);
        let text = reg.expose();
        assert!(
            text.contains("qoa_executor_breaker_transitions_total{to=\"open\"} 1"),
            "breaker-open event must be observable in the exposition:\n{text}"
        );
        assert!(text.contains("qoa_executor_cells_total{outcome=\"failed\"} 2"), "{text}");
        assert!(text.contains("qoa_executor_cells_total{outcome=\"shed_breaker\"} 2"), "{text}");
        qoa_obs::parse_exposition(&text).expect("exposition round-trips");
    }
}
