//! End-to-end supervision tests: `Harness::prewarm` drives real captures
//! (optionally under seeded per-cell chaos plans) through the parallel
//! executor, and the resulting journal must be byte-identical for any
//! `jobs` count — the executor's determinism contract, observed at the
//! persistence layer rather than the API. A breaker storm must land in
//! the journal as `shed` outcomes and in the Prometheus exposition as
//! breaker transitions.

use qoa_core::harness::{capture_cell, CellChaos};
use qoa_core::journal::{CellKey, CellMetrics, Metric};
use qoa_core::runtime::RuntimeConfig;
use qoa_core::{
    BreakerOptions, ExecutorOptions, Harness, HarnessOptions, QoaError, SupervisedCell,
};
use qoa_model::RuntimeKind;
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qoa-supervision-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Deterministic, allocation- and call-bearing guest program: enough
/// surface for the interpreter fault kinds while staying fast in debug.
const SRC: &str = "t = 0\nfor i in range(300):\n    t = t + i * 2\nresult = t\n";

fn capture_specs(chaos: Option<CellChaos>) -> Vec<SupervisedCell<CellMetrics>> {
    (0..6)
        .map(|i| {
            let key = CellKey::new(format!("w{i}"), "CPython", "cell", i.to_string());
            let mkey = key.clone();
            SupervisedCell::new(key, move |deadline| {
                let rt = RuntimeConfig::new(RuntimeKind::CPython).with_deadline(deadline);
                let run = capture_cell(SRC, &rt, chaos, &mkey)?;
                let mut m = CellMetrics::new();
                m.insert("bytecodes".into(), Metric::Int(run.vm.bytecodes as i64));
                m.insert("trace_len".into(), Metric::Int(run.trace.len() as i64));
                Ok(m)
            })
        })
        .collect()
}

fn prewarm_journal(dir: &Path, jobs: usize, chaos: Option<CellChaos>) -> String {
    let mut opts = HarnessOptions::new("supervised", "itest");
    opts.journal_dir = dir.to_path_buf();
    let mut h = Harness::open(opts).expect("open harness");
    let mut exec = ExecutorOptions::new(jobs);
    exec.seed = 9;
    h.prewarm(capture_specs(chaos), &exec);
    std::fs::read_to_string(dir.join("supervised.journal.jsonl")).expect("journal written")
}

#[test]
fn prewarm_journals_identically_for_any_jobs_count() {
    let chaos = Some(CellChaos { seed: 11, horizon: 4_000, points: 2 });
    let d1 = temp_dir("parity-j1");
    let d4 = temp_dir("parity-j4");
    let dp = temp_dir("parity-plain");
    let j1 = prewarm_journal(&d1, 1, chaos);
    let j4 = prewarm_journal(&d4, 4, chaos);
    let plain = prewarm_journal(&dp, 1, None);
    assert!(j1.contains("\"status\":\"ok\""), "cells must succeed:\n{j1}");
    assert_eq!(j1, j4, "chaos prewarm journals must be byte-identical across jobs counts");
    assert_eq!(
        j1, plain,
        "recovered chaos runs must journal the same metrics as fault-free runs"
    );
    for d in [d1, d4, dp] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

#[test]
fn breaker_storm_is_journaled_and_observable() {
    let dir = temp_dir("storm");
    let mut opts = HarnessOptions::new("storm", "itest");
    opts.journal_dir = dir.clone();
    // 12 deterministic failures would otherwise trip the harness's own
    // failure-rate gate in finish(); this test only inspects the journal.
    opts.max_failure_rate = 1.0;
    let mut h = Harness::open(opts).expect("open harness");
    let specs: Vec<SupervisedCell<CellMetrics>> = (0..12)
        .map(|i| {
            let key = CellKey::new(format!("w{i}"), "flaky-rt", "cell", i.to_string());
            SupervisedCell::new(key, move |_| {
                Err(QoaError::Guest { message: format!("storm {i}"), line: 1 })
            })
        })
        .collect();
    let mut exec = ExecutorOptions::new(4);
    exec.breaker = BreakerOptions { failure_threshold: 3, cooldown_sheds: 4 };
    let stats = h.prewarm(specs, &exec);

    // 3 failures open the breaker; 4 sheds half-open it; the probe fails
    // and reopens it; 4 more sheds half-open it again.
    assert_eq!(stats.cells_failed, 4, "3 to open + 1 failed probe");
    assert_eq!(stats.cells_shed_breaker, 8);
    assert_eq!(stats.breaker_opened, 2);
    assert_eq!(stats.breaker_half_opened, 2);

    // Re-presenting a shed cell answers from the journal — no re-run —
    // and surfaces the shed note for finish() accounting.
    let replay = h.cell(
        CellKey::new("w11", "flaky-rt", "cell", "11"),
        |_| -> Result<CellMetrics, QoaError> { panic!("journaled shed cells must not re-run") },
    );
    assert!(replay.is_none());
    assert_eq!(h.shed().len(), 1, "harness must surface shed cells distinctly");

    let mut reg = qoa_obs::metrics::Registry::new();
    stats.export(&mut reg);
    let text = reg.expose();
    assert!(
        text.contains("qoa_executor_breaker_transitions_total{to=\"open\"} 2"),
        "breaker-open events must be observable in the exposition:\n{text}"
    );
    qoa_obs::parse_exposition(&text).expect("exposition round-trips");

    let journal = std::fs::read_to_string(dir.join("storm.journal.jsonl")).expect("journal");
    assert!(journal.contains("\"status\":\"shed\""), "shed is a first-class outcome:\n{journal}");
    assert!(journal.contains("breaker"), "shed reason must be recorded:\n{journal}");
    let _ = std::fs::remove_dir_all(&dir);
}
