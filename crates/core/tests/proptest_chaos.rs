//! Property-based tests for the chaos engine: random fault plans against
//! random small workloads must uphold the engine's three invariants —
//! no panic escapes, failures are typed, and any run that completes
//! after recovery is byte-identical to the fault-free baseline — and a
//! mid-run snapshot must resume into exactly the trace the uninterrupted
//! machine produces.

use proptest::prelude::*;
use qoa_chaos::{FaultKind, FaultPlan, Snapshot};
use qoa_core::runtime::{capture, RuntimeConfig};
use qoa_core::{capture_chaos, oracle_check, run_isolated, stats_divergence, ChaosOptions};
use qoa_model::RuntimeKind;
use qoa_uarch::{TraceBuffer, UarchConfig};
use qoa_vm::{StepEvent, Vm, VmConfig};

/// Deterministic, terminating mini-workloads: enough shape diversity to
/// reach every injection site (allocation, calls, hot loops) while
/// staying fast under a debug build.
fn program(template: u8, n: u64) -> String {
    match template % 4 {
        0 => format!("t = 0\nfor i in range({n}):\n    t = t + i * 2\nresult = t\n"),
        1 => format!(
            "xs = []\nfor i in range({n}):\n    xs.append((i, i + 1))\nresult = len(xs)\n"
        ),
        2 => format!("s = 0\nwhile s < {n}:\n    s = s + 3\nresult = s\n"),
        _ => format!(
            "def f(x):\n    return x + 1\nt = 0\nfor i in range({n}):\n    t = f(t)\nresult = t\n"
        ),
    }
}

fn runtime_strategy() -> impl Strategy<Value = RuntimeKind> {
    prop_oneof![
        2 => Just(RuntimeKind::CPython),
        1 => Just(RuntimeKind::PyPyNoJit),
        1 => Just(RuntimeKind::PyPyJit),
    ]
}

fn fault_kinds(kind: RuntimeKind) -> &'static [FaultKind] {
    if matches!(kind, RuntimeKind::PyPyJit | RuntimeKind::V8) {
        &FaultKind::ALL
    } else {
        &FaultKind::INTERP
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Invariants 1–3: random plans, random workloads, random cadences.
    #[test]
    fn random_fault_plans_recover_byte_identically(
        template in any::<u8>(),
        n in 200u64..1500,
        seed in any::<u64>(),
        points in 1usize..4,
        cadence in prop_oneof![Just(256u64), Just(1024), Just(8192)],
        runtime in runtime_strategy(),
    ) {
        let source = program(template, n);
        let rt = RuntimeConfig::new(runtime);
        let baseline = capture(&source, &rt).expect("baseline runs");
        // Fault ticks land inside (and slightly past) the baseline run;
        // points beyond the final bytecode simply never fire.
        let horizon = baseline.vm.bytecodes + baseline.vm.bytecodes / 4 + 1;
        let plan = FaultPlan::seeded(seed, horizon, points, fault_kinds(runtime));
        let opts = ChaosOptions::new(plan).with_checkpoint_every(cadence);

        match run_isolated(|| capture_chaos(&source, &rt, &opts)) {
            Ok((run, out)) => {
                let uarch = UarchConfig::skylake();
                prop_assert_eq!(
                    oracle_check(&baseline, &run, &uarch),
                    None,
                    "oracle violated (injected {:?})",
                    out.injected
                );
                prop_assert_eq!(out.faults_injected_total(), out.recoveries_total());
            }
            Err(failure) => {
                // Invariant 1: never a panic. Invariant 2: the baseline
                // completed, so the chaos run must too — any typed error
                // here is a recovery bug worth failing loudly on.
                prop_assert!(
                    false,
                    "chaos run failed [{}]: {}",
                    failure.error.kind(),
                    failure.error
                );
            }
        }
    }

    /// Snapshot round-trip: checkpoint at a random point, then both the
    /// original machine and the restored copy must produce the same
    /// remaining cycle trace.
    #[test]
    fn snapshot_roundtrip_resumes_into_an_identical_trace(
        template in any::<u8>(),
        n in 100u64..800,
        split in 1u64..5000,
    ) {
        let source = program(template, n);
        let code = qoa_frontend::compile(&source).expect("compiles");

        let finish = |mut vm: Vm<TraceBuffer>| {
            loop {
                if matches!(vm.step().expect("steps"), StepEvent::Done) {
                    break;
                }
            }
            let result = vm.global_display("result");
            let (trace, _) = vm.finish();
            (trace, result)
        };

        let mut vm = Vm::new(VmConfig::default(), TraceBuffer::new());
        vm.load_program(&code);
        let mut done_early = false;
        for _ in 0..split {
            if matches!(vm.step().expect("steps"), StepEvent::Done) {
                done_early = true;
                break;
            }
        }
        if done_early {
            // The random split fell past the end of the run; nothing to
            // checkpoint mid-flight.
            return Ok(());
        }

        let snap = Snapshot::capture(vm.steps(), &vm);
        let restored = snap.restore().expect("version matches");
        let (trace_a, result_a) = finish(vm);
        let (trace_b, result_b) = finish(restored);

        prop_assert_eq!(result_a, result_b);
        prop_assert_eq!(trace_a.len(), trace_b.len());
        let uarch = UarchConfig::skylake();
        let a = trace_a.simulate_simple(&uarch);
        let b = trace_b.simulate_simple(&uarch);
        prop_assert_eq!(stats_divergence(&a, &b), None);
    }
}
