//! Property-based tests for the supervised executor's retry policy: the
//! backoff schedule is a pure function of `(seed, key, attempt)`, and
//! every jittered delay stays inside the documented envelope
//! `[exp * (1 - j), exp * (1 + j)]` where `exp` is the capped
//! exponential term.

use proptest::prelude::*;
use qoa_core::journal::CellKey;
use qoa_core::{cell_seed, RetryPolicy};
use std::time::Duration;

fn policy_strategy() -> impl Strategy<Value = RetryPolicy> {
    (1u32..=6, 1u64..=50_000, 1u64..=400_000, 0u32..=1000).prop_map(
        |(max_attempts, base_us, cap_us, jitter_permille)| RetryPolicy {
            max_attempts,
            base: Duration::from_micros(base_us),
            cap: Duration::from_micros(cap_us.max(base_us)),
            jitter: f64::from(jitter_permille) / 1000.0,
        },
    )
}

fn key_strategy() -> impl Strategy<Value = CellKey> {
    ("[a-z]{1,8}", "[A-Za-z]{1,8}", "[a-z]{1,6}", "[0-9]{1,4}")
        .prop_map(|(w, r, p, v)| CellKey::new(w, r, p, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn same_seed_produces_the_same_schedule(
        policy in policy_strategy(),
        key in key_strategy(),
        seed in any::<u64>(),
    ) {
        let first = policy.schedule(seed, &key);
        let second = policy.schedule(seed, &key);
        prop_assert_eq!(&first, &second);
        // One delay per failed attempt that still has a retry left.
        prop_assert_eq!(first.len(), policy.max_attempts.saturating_sub(1) as usize);
    }

    #[test]
    fn jitter_stays_inside_the_documented_envelope(
        policy in policy_strategy(),
        key in key_strategy(),
        seed in any::<u64>(),
        attempt in 1u32..=8,
    ) {
        let exp = policy
            .base
            .saturating_mul(1u32.checked_shl(attempt - 1).unwrap_or(u32::MAX))
            .min(policy.cap);
        let j = policy.jitter.clamp(0.0, 1.0);
        let got = policy.backoff(seed, &key, attempt).as_secs_f64();
        let lo = exp.mul_f64((1.0 - j).max(0.0)).as_secs_f64() - 1e-9;
        let hi = exp.mul_f64(1.0 + j).as_secs_f64() + 1e-9;
        prop_assert!(
            got >= lo && got <= hi,
            "delay {got}s outside [{lo}, {hi}] (exp {:?}, jitter {j})",
            exp
        );
    }

    #[test]
    fn zero_jitter_is_exactly_the_capped_exponential(
        key in key_strategy(),
        seed in any::<u64>(),
        attempt in 1u32..=8,
    ) {
        let policy = RetryPolicy {
            jitter: 0.0,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(160),
            max_attempts: 5,
        };
        let exp = policy
            .base
            .saturating_mul(1u32.checked_shl(attempt - 1).unwrap_or(u32::MAX))
            .min(policy.cap);
        prop_assert_eq!(policy.backoff(seed, &key, attempt), exp);
    }

    #[test]
    fn cell_seed_is_stable_per_key(key in key_strategy(), seed in any::<u64>()) {
        prop_assert_eq!(cell_seed(seed, &key), cell_seed(seed, &key));
    }
}
