//! End-to-end observability for the qoa pipeline.
//!
//! Three layers, all off by default so the figure pipeline stays
//! overhead-free:
//!
//! * **spans** ([`span`], [`perfetto`]) — closed intervals on two clocks:
//!   host wall time for pipeline stages (parse, compile, verify, execute,
//!   simulate) and simulated cycles for phase batches inside the replayed
//!   trace (interpreter runs, JIT compiles, GC pauses). Spans live in a
//!   preallocated ring and export as Chrome/Perfetto `trace_events` JSON.
//! * **metrics** ([`metrics`], [`bridge`]) — a typed registry of
//!   counters, gauges, and log2-bucket histograms with Prometheus text
//!   exposition; the bridge functions map every subsystem's stats struct
//!   (VM, heap, JIT, microarchitectural simulation) onto stable families.
//! * **profiler** ([`profiler`]) — a sampling profiler over simulated
//!   cycles that walks the guest frame stack every N cycles and renders
//!   folded stacks for flamegraphs, attributed to Table-II categories.
//!
//! Everything here observes the *simulation's* clocks, so enabling
//! observability never changes simulated cycles or instructions: guest
//! frame events cost zero micro-ops and sampling happens at trace replay
//! time, outside the modeled machine.

#![warn(missing_docs)]

pub mod bridge;
pub mod metrics;
pub mod perfetto;
pub mod profiler;
pub mod span;

pub use metrics::{parse_exposition, Exposition, MetricId, MetricKind, Registry};
pub use perfetto::{export_trace, parse_trace};
pub use profiler::{ObsCore, ObsReport, Profile};
pub use span::{Clock, RingSink, SpanEvent, TraceSink};

use std::borrow::Cow;
use std::time::Instant;

/// Observability configuration, carried by the runtime config.
///
/// The default is fully disabled: no frame capture, no sampling, no
/// spans, which keeps the default figure paths byte-for-byte identical
/// to a build without this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Master switch. When false the runtime records nothing.
    pub enabled: bool,
    /// Profiler sampling period in simulated cycles.
    pub sample_every: u64,
    /// Capacity of the span ring buffers (wall and cycle domains each).
    pub ring_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig { enabled: false, sample_every: 4096, ring_capacity: 4096 }
    }
}

impl ObsConfig {
    /// An enabled configuration with the default period and capacity.
    pub fn on() -> Self {
        ObsConfig { enabled: true, ..ObsConfig::default() }
    }

    /// Sets the sampling period (floor of 1 applied at use).
    pub fn with_sample_every(mut self, every: u64) -> Self {
        self.sample_every = every;
        self
    }
}

/// Per-run observability state: the wall-clock epoch, the wall-span
/// ring, and the metrics registry.
#[derive(Debug)]
pub struct Observability {
    epoch: Instant,
    ring: RingSink,
    /// The metrics registry for this run.
    pub registry: Registry,
}

impl Observability {
    /// Creates the state for one observed run.
    pub fn new(cfg: ObsConfig) -> Self {
        Observability {
            epoch: Instant::now(),
            ring: RingSink::new(cfg.ring_capacity),
            registry: Registry::new(),
        }
    }

    /// Runs `f` inside a wall-clock span named `name`.
    ///
    /// The span is recorded even if `f` is instantaneous (duration floor
    /// of 1 ns) so every pipeline stage shows up in the trace.
    pub fn wall_span<T>(&mut self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let start = self.epoch.elapsed().as_nanos() as u64;
        let out = f();
        let end = self.epoch.elapsed().as_nanos() as u64;
        self.ring.record(SpanEvent {
            name: Cow::Borrowed(name),
            clock: Clock::Wall,
            start,
            dur: (end - start).max(1),
        });
        out
    }

    /// Retained wall-clock spans, oldest first.
    pub fn wall_spans(&self) -> Vec<SpanEvent> {
        self.ring.to_vec()
    }

    /// Wall spans evicted from the ring.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_spans_nest_and_accumulate() {
        let mut obs = Observability::new(ObsConfig::on());
        let v = obs.wall_span("parse", || 21 * 2);
        assert_eq!(v, 42);
        obs.wall_span("execute", || ());
        let spans = obs.wall_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "parse");
        assert_eq!(spans[1].name, "execute");
        assert!(spans.iter().all(|s| s.clock == Clock::Wall && s.dur >= 1));
        // Spans are ordered on the shared epoch.
        assert!(spans[1].start >= spans[0].start);
    }

    #[test]
    fn default_config_is_fully_disabled() {
        let cfg = ObsConfig::default();
        assert!(!cfg.enabled);
        assert!(ObsConfig::on().enabled);
        assert_eq!(ObsConfig::on().with_sample_every(64).sample_every, 64);
    }
}
