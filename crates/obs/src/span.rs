//! Span events and sinks.
//!
//! A [`SpanEvent`] is one closed interval on one of the two clocks the
//! pipeline runs on: host wall-clock time (pipeline stages — parse,
//! compile, verify, execute, simulate) or simulated cycles (phase batches
//! inside the replayed trace — interpreter runs, JIT compilation, GC
//! pauses). Producers push closed spans into a [`TraceSink`]; the default
//! implementation is a fixed-capacity [`RingSink`] that never allocates
//! after construction, so recording a span on the hot path costs a couple
//! of moves and, at worst, evicts the oldest span.

use std::borrow::Cow;
use std::collections::VecDeque;

/// Which clock a span's `start`/`dur` are measured on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clock {
    /// Host wall-clock nanoseconds since the observability epoch.
    Wall,
    /// Simulated cycles since the start of trace replay.
    Cycles,
}

impl Clock {
    /// Short label used as the trace-event `cat` field.
    pub fn label(self) -> &'static str {
        match self {
            Clock::Wall => "wall",
            Clock::Cycles => "cycles",
        }
    }
}

/// One closed span: a named interval on one clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (pipeline stage or execution phase). Hot-path producers
    /// pass `&'static str`s; only the exporters ever build owned strings.
    pub name: Cow<'static, str>,
    /// The clock domain of `start` and `dur`.
    pub clock: Clock,
    /// Start timestamp (ns for [`Clock::Wall`], cycles for
    /// [`Clock::Cycles`]).
    pub start: u64,
    /// Duration in the same unit as `start`.
    pub dur: u64,
}

/// Consumer of closed spans.
pub trait TraceSink {
    /// Record one closed span.
    fn record(&mut self, span: SpanEvent);
}

/// A fixed-capacity ring buffer of spans.
///
/// Capacity is allocated once up front; recording into a full ring evicts
/// the oldest span and counts it in [`RingSink::dropped`]. This bounds
/// memory for arbitrarily long runs while keeping the most recent history
/// — the part a profile reader actually looks at.
#[derive(Debug, Clone)]
pub struct RingSink {
    buf: VecDeque<SpanEvent>,
    cap: usize,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` spans (floor of 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        RingSink { buf: VecDeque::with_capacity(cap), cap, dropped: 0 }
    }

    /// Number of spans currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no spans are recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Spans evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates over retained spans, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &SpanEvent> {
        self.buf.iter()
    }

    /// Copies the retained spans out, oldest first.
    pub fn to_vec(&self) -> Vec<SpanEvent> {
        self.buf.iter().cloned().collect()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, span: SpanEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &'static str, start: u64) -> SpanEvent {
        SpanEvent { name: Cow::Borrowed(name), clock: Clock::Cycles, start, dur: 10 }
    }

    #[test]
    fn ring_keeps_the_newest_spans() {
        let mut ring = RingSink::new(3);
        for i in 0..5 {
            ring.record(span("s", i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let starts: Vec<u64> = ring.spans().map(|s| s.start).collect();
        assert_eq!(starts, vec![2, 3, 4]);
    }

    #[test]
    fn ring_capacity_has_a_floor_of_one() {
        let mut ring = RingSink::new(0);
        ring.record(span("a", 0));
        ring.record(span("b", 1));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.to_vec()[0].start, 1);
    }
}
