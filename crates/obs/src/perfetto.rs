//! Chrome/Perfetto `trace_events` JSON export and its round-trip parser.
//!
//! Spans are exported as complete (`"ph":"X"`) events in the JSON object
//! format, loadable directly in `ui.perfetto.dev` or `chrome://tracing`.
//! The two clock domains get separate synthetic processes so they never
//! share a timeline: pid 1 carries wall-clock stages (timestamps in real
//! microseconds) and pid 2 carries simulated-cycle phases (one "µs" per
//! cycle — the unit label is wrong by design, the viewer has no cycle
//! unit, but relative widths are exact).
//!
//! The parser exists so tests and the `qoa-prof --check` mode can verify a
//! just-written trace independently of the exporter's string formatting:
//! export → parse → compare is the round-trip contract.

use crate::span::{Clock, SpanEvent};
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Synthetic process id for the wall-clock track.
const WALL_PID: i64 = 1;
/// Synthetic process id for the simulated-cycle track.
const CYCLES_PID: i64 = 2;

/// Renders spans as a Chrome/Perfetto `trace_events` JSON object.
pub fn export_trace(spans: &[SpanEvent]) -> String {
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{WALL_PID},\"tid\":1,\
         \"args\":{{\"name\":\"wall clock (us)\"}}}},\n"
    ));
    out.push_str(&format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{CYCLES_PID},\"tid\":1,\
         \"args\":{{\"name\":\"simulated cycles\"}}}}"
    ));
    for span in spans {
        out.push_str(",\n{\"name\":");
        encode_str(&mut out, &span.name);
        let _ = write!(out, ",\"cat\":\"{}\",\"ph\":\"X\",", span.clock.label());
        match span.clock {
            Clock::Wall => {
                // Wall spans are stored in ns; ts/dur are µs with ns
                // precision kept in the fraction, so parsing restores the
                // exact nanosecond values.
                let _ = write!(
                    out,
                    "\"ts\":{:.3},\"dur\":{:.3},",
                    span.start as f64 / 1000.0,
                    span.dur as f64 / 1000.0
                );
            }
            Clock::Cycles => {
                let _ = write!(out, "\"ts\":{},\"dur\":{},", span.start, span.dur);
            }
        }
        let pid = match span.clock {
            Clock::Wall => WALL_PID,
            Clock::Cycles => CYCLES_PID,
        };
        let _ = write!(out, "\"pid\":{pid},\"tid\":1}}");
    }
    out.push_str("\n]}\n");
    out
}

/// Parses a trace produced by [`export_trace`] (or any `trace_events`
/// JSON whose `X` events follow the same pid convention) back into spans.
///
/// Metadata (`M`) events are validated and skipped. Returns a descriptive
/// error for anything malformed — this is the validation path behind
/// `qoa-prof --check`.
///
/// # Errors
///
/// Returns a message describing the first structural problem found.
pub fn parse_trace(text: &str) -> Result<Vec<SpanEvent>, String> {
    let value = json::parse(text)?;
    let events = match &value {
        json::Value::Object(map) => match map.get("traceEvents") {
            Some(json::Value::Array(events)) => events,
            Some(_) => return Err("traceEvents is not an array".into()),
            None => return Err("missing traceEvents key".into()),
        },
        json::Value::Array(events) => events,
        _ => return Err("trace JSON must be an object or an array".into()),
    };
    let mut spans = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let json::Value::Object(ev) = ev else {
            return Err(format!("event {i} is not an object"));
        };
        let ph = ev
            .get("ph")
            .and_then(json::Value::as_str)
            .ok_or_else(|| format!("event {i} has no ph"))?;
        match ph {
            "M" => continue,
            "X" => {}
            other => return Err(format!("event {i} has unsupported ph {other:?}")),
        }
        let name = ev
            .get("name")
            .and_then(json::Value::as_str)
            .ok_or_else(|| format!("event {i} has no name"))?;
        let pid = ev
            .get("pid")
            .and_then(json::Value::as_i64)
            .ok_or_else(|| format!("event {i} has no pid"))?;
        let ts = ev
            .get("ts")
            .and_then(json::Value::as_f64)
            .ok_or_else(|| format!("event {i} has no ts"))?;
        let dur = ev
            .get("dur")
            .and_then(json::Value::as_f64)
            .ok_or_else(|| format!("event {i} has no dur"))?;
        if ts < 0.0 || dur < 0.0 {
            return Err(format!("event {i} has negative timestamps"));
        }
        let clock = match pid {
            WALL_PID => Clock::Wall,
            CYCLES_PID => Clock::Cycles,
            other => return Err(format!("event {i} has unknown pid {other}")),
        };
        let (start, dur) = match clock {
            // µs back to ns.
            Clock::Wall => ((ts * 1000.0).round() as u64, (dur * 1000.0).round() as u64),
            Clock::Cycles => (ts.round() as u64, dur.round() as u64),
        };
        spans.push(SpanEvent { name: Cow::Owned(name.to_string()), clock, start, dur });
    }
    Ok(spans)
}

fn encode_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A minimal JSON parser covering the full value grammar. The journal
/// parser in `qoa-core` is private and sits *above* this crate in the
/// dependency graph, so the exporter round-trip check carries its own.
pub(crate) mod json {
    use std::collections::BTreeMap;

    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any number (parsed as f64).
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Array(Vec<Value>),
        /// An object.
        Object(BTreeMap<String, Value>),
    }

    impl Value {
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(v) => Some(*v),
                _ => None,
            }
        }

        pub fn as_i64(&self) -> Option<i64> {
            match self {
                Value::Num(v) if v.fract() == 0.0 && v.abs() < i64::MAX as f64 => {
                    Some(*v as i64)
                }
                _ => None,
            }
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
        if bytes.get(*pos) == Some(&b) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, *pos))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => {
                *pos += 1;
                let mut map = BTreeMap::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    skip_ws(bytes, pos);
                    let key = match parse_value(bytes, pos)? {
                        Value::Str(s) => s,
                        _ => return Err(format!("object key at byte {} is not a string", *pos)),
                    };
                    skip_ws(bytes, pos);
                    expect(bytes, pos, b':')?;
                    let value = parse_value(bytes, pos)?;
                    map.insert(key, value);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Object(map));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(parse_value(bytes, pos)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                    }
                }
            }
            Some(b'"') => parse_string(bytes, pos).map(Value::Str),
            Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
            Some(_) => parse_number(bytes, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn parse_lit(
        bytes: &[u8],
        pos: &mut usize,
        lit: &str,
        value: Value,
    ) -> Result<Value, String> {
        if bytes[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", *pos))
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < bytes.len()
            && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            *pos += 1;
        }
        let token = std::str::from_utf8(&bytes[start..*pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        token
            .parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number {token:?} at byte {start}"))
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        *pos += 1; // opening quote
        let mut s = String::new();
        loop {
            let b = *bytes
                .get(*pos)
                .ok_or_else(|| "unterminated string".to_string())?;
            *pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let esc = *bytes
                        .get(*pos)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    *pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = bytes
                                .get(*pos..*pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            *pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad code point {code:#x}"))?,
                            );
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                b if b < 0x80 => s.push(b as char),
                _ => {
                    // Multi-byte UTF-8: find the full char in the source.
                    let rest = std::str::from_utf8(&bytes[*pos - 1..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| "unterminated string".to_string())?;
                    s.push(c);
                    *pos += c.len_utf8() - 1;
                }
            }
        }
    }
}

/// Groups parsed spans by `(clock, name)` — a convenience for tests and
/// the `--check` validator.
pub fn span_index(spans: &[SpanEvent]) -> BTreeMap<(&'static str, String), Vec<&SpanEvent>> {
    let mut map: BTreeMap<(&'static str, String), Vec<&SpanEvent>> = BTreeMap::new();
    for s in spans {
        map.entry((s.clock.label(), s.name.to_string())).or_default().push(s);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spans() -> Vec<SpanEvent> {
        vec![
            SpanEvent { name: "parse".into(), clock: Clock::Wall, start: 1_500, dur: 42_001 },
            SpanEvent { name: "compile".into(), clock: Clock::Wall, start: 43_501, dur: 7 },
            SpanEvent {
                name: "Bytecode Interpreter".into(),
                clock: Clock::Cycles,
                start: 0,
                dur: 123_456,
            },
            SpanEvent {
                name: "Garbage Collection (minor)".into(),
                clock: Clock::Cycles,
                start: 123_456,
                dur: 789,
            },
        ]
    }

    #[test]
    fn export_parse_round_trips_exactly() {
        let spans = sample_spans();
        let json = export_trace(&spans);
        let back = parse_trace(&json).expect("parses");
        assert_eq!(back.len(), spans.len());
        for (a, b) in spans.iter().zip(&back) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.clock, b.clock);
            assert_eq!(a.start, b.start, "{}", a.name);
            assert_eq!(a.dur, b.dur, "{}", a.name);
        }
    }

    #[test]
    fn exported_trace_matches_golden_shape() {
        let json = export_trace(&sample_spans());
        // Structural golden checks that pin the trace_events contract
        // without being hostage to whitespace.
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"name\":\"parse\""));
        assert!(json.contains("\"cat\":\"wall\""));
        assert!(json.contains("\"cat\":\"cycles\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":42.001"));
    }

    #[test]
    fn parser_rejects_malformed_traces() {
        assert!(parse_trace("not json").is_err());
        assert!(parse_trace("{\"foo\":1}").is_err());
        assert!(parse_trace("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err());
        assert!(parse_trace(
            "{\"traceEvents\":[{\"ph\":\"X\",\"name\":\"a\",\"pid\":9,\"ts\":0,\"dur\":1}]}"
        )
        .is_err());
        // Begin events (ph B) are unsupported by the round-trip contract.
        assert!(parse_trace(
            "{\"traceEvents\":[{\"ph\":\"B\",\"name\":\"a\",\"pid\":1,\"ts\":0}]}"
        )
        .is_err());
    }

    #[test]
    fn names_with_quotes_and_newlines_survive() {
        let spans = vec![SpanEvent {
            name: Cow::Owned("weird \"name\"\nwith\tescapes".to_string()),
            clock: Clock::Cycles,
            start: 5,
            dur: 6,
        }];
        let back = parse_trace(&export_trace(&spans)).expect("parses");
        assert_eq!(back[0].name, spans[0].name);
    }
}
