//! The typed metrics registry and its Prometheus-style text exposition.
//!
//! Three metric kinds, mirroring the Prometheus data model:
//!
//! * **counters** — monotonically accumulated `u64`s (dispatch counts per
//!   opcode, cycles per Table-II category, cache accesses),
//! * **gauges** — point-in-time `f64`s (miss rates, survival rates,
//!   overhead shares),
//! * **histograms** — power-of-two ("log2") bucketed distributions
//!   (sample stack depths, phase-batch lengths in cycles).
//!
//! Metrics are addressed by a copyable [`MetricId`] handle so hot-path
//! updates are two array indexations — no hashing, no allocation.
//! Registration (which does allocate) happens once, up front. A family may
//! carry one label key (`{opcode="LoadFast"}`-style series); registering
//! the same `(family, label value)` twice returns the existing handle.
//!
//! [`Registry::expose`] renders the standard text exposition format and
//! [`parse_exposition`] validates it back — the round-trip contract behind
//! the golden tests and `qoa-prof --check`.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Number of log2 histogram buckets (`le = 2^0 .. 2^62`, plus `+Inf`).
const HIST_BUCKETS: usize = 63;

/// The metric kind, matching the `# TYPE` line of the exposition format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic accumulated count.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Log2-bucketed distribution.
    Histogram,
}

impl MetricKind {
    /// The `# TYPE` keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A log2-bucketed histogram: bucket `k` counts observations `v` with
/// `v <= 2^k`; everything larger lands in `+Inf`.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    sum: u64,
    count: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: vec![0; HIST_BUCKETS], sum: 0, count: 0 }
    }
}

impl Histogram {
    fn observe(&mut self, v: u64) {
        let k = if v <= 1 {
            0
        } else {
            (64 - (v - 1).leading_zeros() as usize).min(HIST_BUCKETS - 1)
        };
        self.buckets[k] += 1;
        self.sum = self.sum.saturating_add(v);
        self.count += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Cumulative count of observations `<= 2^k`.
    pub fn cumulative(&self, k: usize) -> u64 {
        self.buckets.iter().take(k + 1).sum()
    }

    fn highest_used_bucket(&self) -> usize {
        self.buckets.iter().rposition(|&c| c > 0).unwrap_or(0)
    }
}

#[derive(Debug, Clone)]
enum Value {
    Counter(u64),
    Gauge(f64),
    Histogram(Histogram),
}

#[derive(Debug, Clone)]
struct Series {
    /// Label value, when the family is labeled.
    label: Option<String>,
    value: Value,
}

#[derive(Debug, Clone)]
struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    label_key: Option<&'static str>,
    series: Vec<Series>,
}

/// Copyable handle to one metric series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricId {
    family: u32,
    series: u32,
}

/// The metrics registry.
#[derive(Debug, Default)]
pub struct Registry {
    families: Vec<Family>,
    by_name: HashMap<String, u32>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or finds) an unlabeled counter.
    ///
    /// # Panics
    ///
    /// Panics if `name` is invalid or already registered with a different
    /// kind or labeling — that is a programming error, not run-time input.
    pub fn counter(&mut self, name: &str, help: &str) -> MetricId {
        self.series(name, help, MetricKind::Counter, None, None)
    }

    /// Registers (or finds) a counter series inside a labeled family.
    ///
    /// # Panics
    ///
    /// Panics on kind/label mismatch with an earlier registration.
    pub fn labeled_counter(
        &mut self,
        name: &str,
        help: &str,
        label_key: &'static str,
        label_value: &str,
    ) -> MetricId {
        self.series(name, help, MetricKind::Counter, Some(label_key), Some(label_value))
    }

    /// Registers (or finds) an unlabeled gauge.
    ///
    /// # Panics
    ///
    /// Panics on kind/label mismatch with an earlier registration.
    pub fn gauge(&mut self, name: &str, help: &str) -> MetricId {
        self.series(name, help, MetricKind::Gauge, None, None)
    }

    /// Registers (or finds) a gauge series inside a labeled family.
    ///
    /// # Panics
    ///
    /// Panics on kind/label mismatch with an earlier registration.
    pub fn labeled_gauge(
        &mut self,
        name: &str,
        help: &str,
        label_key: &'static str,
        label_value: &str,
    ) -> MetricId {
        self.series(name, help, MetricKind::Gauge, Some(label_key), Some(label_value))
    }

    /// Registers (or finds) an unlabeled log2-bucket histogram.
    ///
    /// # Panics
    ///
    /// Panics on kind/label mismatch with an earlier registration.
    pub fn histogram(&mut self, name: &str, help: &str) -> MetricId {
        self.series(name, help, MetricKind::Histogram, None, None)
    }

    fn series(
        &mut self,
        name: &str,
        help: &str,
        kind: MetricKind,
        label_key: Option<&'static str>,
        label_value: Option<&str>,
    ) -> MetricId {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let family = match self.by_name.get(name) {
            Some(&idx) => {
                let f = &self.families[idx as usize];
                assert!(
                    f.kind == kind && f.label_key == label_key,
                    "metric {name} re-registered with different kind or label"
                );
                idx
            }
            None => {
                let idx = self.families.len() as u32;
                self.families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    label_key,
                    series: Vec::new(),
                });
                self.by_name.insert(name.to_string(), idx);
                idx
            }
        };
        let fam = &mut self.families[family as usize];
        let existing = fam
            .series
            .iter()
            .position(|s| s.label.as_deref() == label_value);
        let series = match existing {
            Some(i) => i as u32,
            None => {
                fam.series.push(Series {
                    label: label_value.map(str::to_string),
                    value: match kind {
                        MetricKind::Counter => Value::Counter(0),
                        MetricKind::Gauge => Value::Gauge(0.0),
                        MetricKind::Histogram => Value::Histogram(Histogram::default()),
                    },
                });
                (fam.series.len() - 1) as u32
            }
        };
        MetricId { family, series }
    }

    fn value_mut(&mut self, id: MetricId) -> &mut Value {
        &mut self.families[id.family as usize].series[id.series as usize].value
    }

    /// Adds `delta` to a counter. No-op (debug-asserted) on other kinds.
    pub fn add(&mut self, id: MetricId, delta: u64) {
        match self.value_mut(id) {
            Value::Counter(v) => *v = v.saturating_add(delta),
            _ => debug_assert!(false, "add() on non-counter"),
        }
    }

    /// Increments a counter by one.
    pub fn inc(&mut self, id: MetricId) {
        self.add(id, 1);
    }

    /// Sets a gauge. No-op (debug-asserted) on other kinds.
    pub fn set(&mut self, id: MetricId, value: f64) {
        match self.value_mut(id) {
            Value::Gauge(v) => *v = value,
            _ => debug_assert!(false, "set() on non-gauge"),
        }
    }

    /// Records one observation into a histogram. No-op (debug-asserted) on
    /// other kinds.
    pub fn observe(&mut self, id: MetricId, value: u64) {
        match self.value_mut(id) {
            Value::Histogram(h) => h.observe(value),
            _ => debug_assert!(false, "observe() on non-histogram"),
        }
    }

    /// Current counter value (zero for other kinds).
    pub fn counter_value(&self, id: MetricId) -> u64 {
        match &self.families[id.family as usize].series[id.series as usize].value {
            Value::Counter(v) => *v,
            _ => 0,
        }
    }

    /// Renders the registry in the Prometheus text exposition format.
    pub fn expose(&self) -> String {
        let mut out = String::new();
        for fam in &self.families {
            let _ = writeln!(out, "# HELP {} {}", fam.name, escape_help(&fam.help));
            let _ = writeln!(out, "# TYPE {} {}", fam.name, fam.kind.keyword());
            for s in &fam.series {
                let labels = match (&fam.label_key, &s.label) {
                    (Some(k), Some(v)) => format!("{{{}={}}}", k, quote_label(v)),
                    _ => String::new(),
                };
                match &s.value {
                    Value::Counter(v) => {
                        let _ = writeln!(out, "{}{} {}", fam.name, labels, v);
                    }
                    Value::Gauge(v) => {
                        let _ = writeln!(out, "{}{} {}", fam.name, labels, fmt_f64(*v));
                    }
                    Value::Histogram(h) => {
                        let top = h.highest_used_bucket();
                        let mut cumulative = 0u64;
                        for (k, b) in h.buckets.iter().enumerate().take(top + 1) {
                            cumulative += b;
                            let _ = writeln!(
                                out,
                                "{}_bucket{{le=\"{}\"}} {}",
                                fam.name,
                                1u64 << k,
                                cumulative
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{}_bucket{{le=\"+Inf\"}} {}",
                            fam.name, h.count
                        );
                        let _ = writeln!(out, "{}_sum {}", fam.name, h.sum);
                        let _ = writeln!(out, "{}_count {}", fam.name, h.count);
                    }
                }
            }
        }
        out
    }

    /// Flattens the registry into `(sample name, value)` pairs —
    /// histograms contribute their `_sum` and `_count`. This is what gets
    /// embedded into journal records.
    pub fn snapshot(&self) -> BTreeMap<String, f64> {
        let mut map = BTreeMap::new();
        for fam in &self.families {
            for s in &fam.series {
                let base = match (&fam.label_key, &s.label) {
                    (Some(k), Some(v)) => format!("{}{{{}={}}}", fam.name, k, quote_label(v)),
                    _ => fam.name.clone(),
                };
                match &s.value {
                    Value::Counter(v) => {
                        map.insert(base, *v as f64);
                    }
                    Value::Gauge(v) => {
                        map.insert(base, *v);
                    }
                    Value::Histogram(h) => {
                        map.insert(format!("{base}_sum"), h.sum as f64);
                        map.insert(format!("{base}_count"), h.count as f64);
                    }
                }
            }
        }
        map
    }
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn quote_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// A parsed exposition: sample values keyed by full sample name (labels
/// included), plus the declared family kinds.
#[derive(Debug, Clone, PartialEq)]
pub struct Exposition {
    /// `name{labels}` → value, in text order flattened to a map.
    pub samples: BTreeMap<String, f64>,
    /// family name → declared `# TYPE`.
    pub kinds: BTreeMap<String, MetricKind>,
}

impl Exposition {
    /// Looks up one sample by its full name (labels included).
    pub fn get(&self, sample: &str) -> Option<f64> {
        self.samples.get(sample).copied()
    }
}

/// Parses and validates Prometheus text exposition, enforcing:
///
/// * every sample is preceded by a `# TYPE` declaration for its family,
/// * counter and histogram values are finite and non-negative,
/// * histogram buckets are cumulative (non-decreasing in `le` order),
///   `+Inf` equals `_count`, and `_sum`/`_count` are present.
///
/// # Errors
///
/// Returns a message naming the first offending line or family.
pub fn parse_exposition(text: &str) -> Result<Exposition, String> {
    let mut samples = BTreeMap::new();
    let mut kinds: BTreeMap<String, MetricKind> = BTreeMap::new();
    // Per-histogram bucket sequences, in text order.
    let mut hist_buckets: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| format!("line {}: TYPE without name", lineno + 1))?;
            let kind = match parts.next() {
                Some("counter") => MetricKind::Counter,
                Some("gauge") => MetricKind::Gauge,
                Some("histogram") => MetricKind::Histogram,
                other => {
                    return Err(format!("line {}: bad TYPE {:?}", lineno + 1, other));
                }
            };
            if kinds.insert(name.to_string(), kind).is_some() {
                return Err(format!("line {}: duplicate TYPE for {}", lineno + 1, name));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        let (name_part, value_part) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value", lineno + 1))?;
        let value = match value_part {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            v => v
                .parse::<f64>()
                .map_err(|_| format!("line {}: bad value {v:?}", lineno + 1))?,
        };
        let bare = name_part.split('{').next().unwrap_or(name_part);
        let family = kinds
            .keys()
            .find(|f| {
                bare == f.as_str()
                    || (kinds.get(*f) == Some(&MetricKind::Histogram)
                        && (bare == format!("{f}_bucket")
                            || bare == format!("{f}_sum")
                            || bare == format!("{f}_count")))
            })
            .cloned()
            .ok_or_else(|| {
                format!("line {}: sample {bare} has no preceding # TYPE", lineno + 1)
            })?;
        let kind = kinds[&family];
        match kind {
            MetricKind::Counter => {
                if !value.is_finite() || value < 0.0 {
                    return Err(format!(
                        "line {}: counter {bare} has invalid value {value}",
                        lineno + 1
                    ));
                }
            }
            MetricKind::Gauge => {}
            MetricKind::Histogram => {
                if bare == format!("{family}_bucket") {
                    let le = name_part
                        .split("le=\"")
                        .nth(1)
                        .and_then(|s| s.split('"').next())
                        .ok_or_else(|| {
                            format!("line {}: bucket without le label", lineno + 1)
                        })?;
                    let le = if le == "+Inf" {
                        f64::INFINITY
                    } else {
                        le.parse::<f64>().map_err(|_| {
                            format!("line {}: bad le {le:?}", lineno + 1)
                        })?
                    };
                    hist_buckets.entry(family.clone()).or_default().push((le, value));
                }
                if !value.is_finite() || value < 0.0 {
                    return Err(format!(
                        "line {}: histogram sample {bare} has invalid value {value}",
                        lineno + 1
                    ));
                }
            }
        }
        if samples.insert(name_part.to_string(), value).is_some() {
            return Err(format!("line {}: duplicate sample {name_part}", lineno + 1));
        }
    }

    // Histogram invariants.
    for (family, buckets) in &hist_buckets {
        let mut prev_le = f64::NEG_INFINITY;
        let mut prev_v = 0.0f64;
        for &(le, v) in buckets {
            if le <= prev_le {
                return Err(format!("histogram {family}: le values not increasing"));
            }
            if v < prev_v {
                return Err(format!("histogram {family}: buckets not cumulative"));
            }
            prev_le = le;
            prev_v = v;
        }
        let last = buckets.last().map(|&(le, _)| le);
        if last != Some(f64::INFINITY) {
            return Err(format!("histogram {family}: missing +Inf bucket"));
        }
        let count = samples
            .get(&format!("{family}_count"))
            .ok_or_else(|| format!("histogram {family}: missing _count"))?;
        if !samples.contains_key(&format!("{family}_sum")) {
            return Err(format!("histogram {family}: missing _sum"));
        }
        if let Some(&(_, inf_v)) = buckets.last() {
            if inf_v != *count {
                return Err(format!(
                    "histogram {family}: +Inf bucket {inf_v} != _count {count}"
                ));
            }
        }
    }

    Ok(Exposition { samples, kinds })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_update_and_expose() {
        let mut reg = Registry::new();
        let c = reg.counter("qoa_test_total", "A counter.");
        let g = reg.gauge("qoa_test_rate", "A gauge.");
        let lc = reg.labeled_counter("qoa_test_by_kind_total", "Labeled.", "kind", "a");
        let lc2 = reg.labeled_counter("qoa_test_by_kind_total", "Labeled.", "kind", "b");
        reg.add(c, 41);
        reg.inc(c);
        reg.set(g, 0.125);
        reg.add(lc, 7);
        reg.add(lc2, 9);
        // Re-registration returns the same handle.
        assert_eq!(reg.labeled_counter("qoa_test_by_kind_total", "Labeled.", "kind", "a"), lc);
        assert_eq!(reg.counter_value(c), 42);

        let text = reg.expose();
        assert!(text.contains("# HELP qoa_test_total A counter."));
        assert!(text.contains("# TYPE qoa_test_total counter"));
        assert!(text.contains("qoa_test_total 42"));
        assert!(text.contains("qoa_test_rate 0.125"));
        assert!(text.contains("qoa_test_by_kind_total{kind=\"a\"} 7"));
        assert!(text.contains("qoa_test_by_kind_total{kind=\"b\"} 9"));
    }

    #[test]
    fn histogram_buckets_are_log2_and_cumulative() {
        let mut reg = Registry::new();
        let h = reg.histogram("qoa_test_depth", "Depths.");
        for v in [0, 1, 2, 3, 4, 5, 9, 1000] {
            reg.observe(h, v);
        }
        let text = reg.expose();
        // v <= 1 -> le=1 (two observations: 0 and 1)
        assert!(text.contains("qoa_test_depth_bucket{le=\"1\"} 2"));
        assert!(text.contains("qoa_test_depth_bucket{le=\"2\"} 3"));
        assert!(text.contains("qoa_test_depth_bucket{le=\"4\"} 5"));
        assert!(text.contains("qoa_test_depth_bucket{le=\"8\"} 6"));
        assert!(text.contains("qoa_test_depth_bucket{le=\"16\"} 7"));
        assert!(text.contains("qoa_test_depth_bucket{le=\"1024\"} 8"));
        assert!(text.contains("qoa_test_depth_bucket{le=\"+Inf\"} 8"));
        assert!(text.contains("qoa_test_depth_sum 1024"));
        assert!(text.contains("qoa_test_depth_count 8"));

        let parsed = parse_exposition(&text).expect("valid");
        assert_eq!(parsed.get("qoa_test_depth_count"), Some(8.0));
        assert_eq!(parsed.kinds["qoa_test_depth"], MetricKind::Histogram);
    }

    #[test]
    fn exposition_round_trips_through_the_parser() {
        let mut reg = Registry::new();
        let c = reg.counter("qoa_cycles_total", "Cycles.");
        reg.add(c, 123_456_789);
        let g = reg.gauge("qoa_cpi", "CPI.");
        reg.set(g, 1.618_033_988);
        let lg = reg.labeled_gauge("qoa_share", "Shares.", "category", "Dispatch");
        reg.set(lg, 0.07);
        let h = reg.histogram("qoa_batch_cycles", "Batches.");
        reg.observe(h, 300);
        reg.observe(h, 70_000);

        let text = reg.expose();
        let parsed = parse_exposition(&text).expect("valid exposition");
        assert_eq!(parsed.get("qoa_cycles_total"), Some(123_456_789.0));
        assert_eq!(parsed.get("qoa_cpi"), Some(1.618_033_988));
        assert_eq!(parsed.get("qoa_share{category=\"Dispatch\"}"), Some(0.07));
        assert_eq!(parsed.get("qoa_batch_cycles_count"), Some(2.0));
        assert_eq!(parsed.get("qoa_batch_cycles_sum"), Some(70_300.0));

        // Snapshot agrees with the exposition for scalar samples.
        let snap = reg.snapshot();
        assert_eq!(snap["qoa_cycles_total"], 123_456_789.0);
        assert_eq!(snap["qoa_batch_cycles_count"], 2.0);
    }

    #[test]
    fn parser_rejects_invalid_expositions() {
        // Sample without TYPE.
        assert!(parse_exposition("qoa_x 1\n").is_err());
        // Negative counter.
        assert!(parse_exposition("# TYPE qoa_x counter\nqoa_x -1\n").is_err());
        // Non-cumulative buckets.
        let bad = "# TYPE qoa_h histogram\n\
                   qoa_h_bucket{le=\"1\"} 5\n\
                   qoa_h_bucket{le=\"2\"} 3\n\
                   qoa_h_bucket{le=\"+Inf\"} 5\n\
                   qoa_h_sum 9\nqoa_h_count 5\n";
        assert!(parse_exposition(bad).is_err());
        // +Inf bucket disagrees with _count.
        let bad = "# TYPE qoa_h histogram\n\
                   qoa_h_bucket{le=\"1\"} 5\n\
                   qoa_h_bucket{le=\"+Inf\"} 5\n\
                   qoa_h_sum 9\nqoa_h_count 6\n";
        assert!(parse_exposition(bad).is_err());
        // Missing +Inf.
        let bad = "# TYPE qoa_h histogram\n\
                   qoa_h_bucket{le=\"1\"} 5\n\
                   qoa_h_sum 9\nqoa_h_count 5\n";
        assert!(parse_exposition(bad).is_err());
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let mut reg = Registry::new();
        reg.counter("qoa_x", "x");
        reg.gauge("qoa_x", "x");
    }
}
