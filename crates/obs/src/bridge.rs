//! Bridges from the runtime's stats structs into the metrics
//! [`Registry`].
//!
//! Each `fill_*` function maps one subsystem's counters onto stable
//! Prometheus families. Registration is keyed by (family, label value),
//! so the functions are idempotent at the schema level; calling one adds
//! the run's values into the registered series.

use crate::metrics::Registry;
use crate::profiler::Profile;
use crate::span::{Clock, SpanEvent};
use qoa_frontend::Opcode;
use qoa_heap::GcStats;
use qoa_jit::JitStats;
use qoa_uarch::{CacheStats, ExecutionStats};
use qoa_vm::VmStats;

/// Records the VM-level counters: bytecodes, allocations, calls, dict
/// probes, the per-opcode dispatch distribution, and heap statistics.
pub fn fill_vm_stats(reg: &mut Registry, stats: &VmStats) {
    let scalars: [(&str, &str, u64); 5] = [
        ("qoa_vm_bytecodes_total", "Bytecodes executed", stats.bytecodes),
        ("qoa_vm_allocations_total", "Guest objects allocated", stats.allocations),
        ("qoa_vm_calls_total", "Guest function calls", stats.calls),
        ("qoa_vm_native_calls_total", "Native (C extension) calls", stats.native_calls),
        ("qoa_vm_dict_probes_total", "Dict probe slots touched", stats.dict_probes),
    ];
    for (name, help, value) in scalars {
        let id = reg.counter(name, help);
        reg.add(id, value);
    }
    for op in Opcode::ALL {
        let n = stats.opcodes.get(op.index()).copied().unwrap_or(0);
        if n > 0 {
            let id = reg.labeled_counter(
                "qoa_vm_dispatch_total",
                "Dispatch count per opcode",
                "opcode",
                &format!("{op:?}"),
            );
            reg.add(id, n);
        }
    }
    let rc: [(&str, &str, u64); 3] = [
        ("qoa_heap_rc_increfs_total", "Reference-count increments", stats.rc.increfs),
        ("qoa_heap_rc_decrefs_total", "Reference-count decrements", stats.rc.decrefs),
        ("qoa_heap_rc_frees_total", "Objects freed by refcounting", stats.rc.frees),
    ];
    for (name, help, value) in rc {
        let id = reg.counter(name, help);
        reg.add(id, value);
    }
    let peak = reg.gauge("qoa_heap_rc_peak_bytes", "High-water mark of live bytes (Rc mode)");
    reg.set(peak, stats.rc.peak_bytes as f64);
    fill_gc_stats(reg, &stats.gc);
}

/// Records the generational-GC counters and the nursery survival rate.
pub fn fill_gc_stats(reg: &mut Registry, gc: &GcStats) {
    let minor = reg.labeled_counter("qoa_gc_collections_total", "Collections performed", "kind", "minor");
    reg.add(minor, gc.minor_collections);
    let major = reg.labeled_counter("qoa_gc_collections_total", "Collections performed", "kind", "major");
    reg.add(major, gc.major_collections);
    let allocated = reg.counter("qoa_gc_nursery_allocated_bytes_total", "Bytes bump-allocated in the nursery");
    reg.add(allocated, gc.nursery_allocated);
    let promoted = reg.counter("qoa_gc_promoted_bytes_total", "Bytes copied out of the nursery");
    reg.add(promoted, gc.bytes_promoted);
    let survival = reg.gauge("qoa_gc_nursery_survival_rate", "Fraction of nursery bytes that survived");
    reg.set(survival, gc.survival_rate());
    let old = reg.gauge("qoa_gc_old_live_bytes", "Live bytes in the old space");
    reg.set(old, gc.old_live_bytes as f64);
}

/// Records the tracing-JIT counters.
pub fn fill_jit_stats(reg: &mut Registry, jit: &JitStats) {
    let pairs: [(&str, &str, u64); 10] = [
        ("qoa_jit_traces_compiled_total", "Main loop traces compiled", jit.traces_compiled),
        ("qoa_jit_bridges_compiled_total", "Bridge traces compiled", jit.bridges_compiled),
        ("qoa_jit_trace_executions_total", "Completed trace-loop iterations", jit.trace_executions),
        ("qoa_jit_guard_failures_total", "Guard failures", jit.guard_failures),
        ("qoa_jit_bridge_transfers_total", "Guard failures continued in a bridge", jit.bridge_transfers),
        ("qoa_jit_deopts_total", "Deoptimizations back to the interpreter", jit.deopts),
        ("qoa_jit_blacklisted_total", "Loops blacklisted as trace-hostile", jit.blacklisted),
        ("qoa_jit_aborted_recordings_total", "Recordings aborted", jit.aborted_recordings),
        ("qoa_jit_bytecodes_total", "Bytecodes executed under the trace cost model", jit.jit_bytecodes),
        ("qoa_jit_interp_bytecodes_total", "Bytecodes executed under the interpreter cost model", jit.interp_bytecodes),
    ];
    for (name, help, value) in pairs {
        let id = reg.counter(name, help);
        reg.add(id, value);
    }
}

/// Records the microarchitectural simulation result: cycle and
/// instruction totals, per-category and per-phase attribution, cache and
/// branch statistics, and the derived share gauges.
pub fn fill_exec_stats(reg: &mut Registry, stats: &ExecutionStats) {
    let cycles = reg.counter("qoa_sim_cycles_total", "Total simulated cycles");
    reg.add(cycles, stats.cycles);
    let instructions = reg.counter("qoa_sim_instructions_total", "Total retired micro-ops");
    reg.add(instructions, stats.instructions);
    for (c, &n) in stats.cycles_by_category.iter() {
        if n > 0 {
            let id = reg.labeled_counter(
                "qoa_sim_category_cycles_total",
                "Cycles per Table II category",
                "category",
                &format!("{c:?}"),
            );
            reg.add(id, n);
        }
    }
    for (c, &n) in stats.instructions_by_category.iter() {
        if n > 0 {
            let id = reg.labeled_counter(
                "qoa_sim_category_instructions_total",
                "Instructions per Table II category",
                "category",
                &format!("{c:?}"),
            );
            reg.add(id, n);
        }
    }
    for (p, &n) in stats.cycles_by_phase.iter() {
        if n > 0 {
            let id = reg.labeled_counter(
                "qoa_sim_phase_cycles_total",
                "Cycles per execution phase",
                "phase",
                p.label(),
            );
            reg.add(id, n);
        }
    }
    let caches: [(&str, &CacheStats); 4] =
        [("l1i", &stats.l1i), ("l1d", &stats.l1d), ("l2", &stats.l2), ("llc", &stats.llc)];
    for (level, cache) in caches {
        let accesses =
            reg.labeled_counter("qoa_sim_cache_accesses_total", "Cache accesses per level", "level", level);
        reg.add(accesses, cache.accesses);
        let misses =
            reg.labeled_counter("qoa_sim_cache_misses_total", "Cache misses per level", "level", level);
        reg.add(misses, cache.misses);
        let rate = reg.labeled_gauge("qoa_sim_cache_miss_rate", "Cache miss rate per level", "level", level);
        reg.set(rate, cache.miss_rate());
    }
    let dir = reg.counter("qoa_sim_branch_direction_mispredicts_total", "Conditional mispredictions");
    reg.add(dir, stats.branch.direction_mispredicts);
    let tgt = reg.counter("qoa_sim_branch_target_mispredicts_total", "Indirect-target mispredictions");
    reg.add(tgt, stats.branch.target_mispredicts);
    let dram = reg.counter("qoa_sim_dram_bytes_total", "Bytes transferred from DRAM");
    reg.add(dram, stats.dram_bytes);
    let cpi = reg.gauge("qoa_sim_cpi", "Cycles per instruction");
    reg.set(cpi, stats.cpi());
    // Shares go through the one CategoryMap code path shared with the
    // figure pipeline, so the exposition can never drift from Fig. 4.
    let overhead = reg.gauge("qoa_sim_overhead_share", "Share of cycles in the 14 Table II overheads");
    reg.set(overhead, stats.overhead_share());
    let compute = reg.gauge("qoa_sim_compute_share", "Share of cycles in Execute + C library");
    reg.set(compute, stats.compute_share());
}

/// Records the sampling profile: totals, per-category samples, and the
/// guest stack-depth distribution.
pub fn fill_profile(reg: &mut Registry, profile: &Profile) {
    let total = reg.counter("qoa_prof_samples_total", "Profiler samples taken");
    reg.add(total, profile.total_samples);
    let every = reg.gauge("qoa_prof_sample_every_cycles", "Sampling period in simulated cycles");
    reg.set(every, profile.sample_every as f64);
    for (c, &n) in profile.by_category.iter() {
        if n > 0 {
            let id = reg.labeled_counter(
                "qoa_prof_category_samples_total",
                "Profiler samples per Table II category",
                "category",
                &format!("{c:?}"),
            );
            reg.add(id, n);
        }
    }
    for (p, &n) in profile.by_phase.iter() {
        if n > 0 {
            let id = reg.labeled_counter(
                "qoa_prof_phase_samples_total",
                "Profiler samples per execution phase",
                "phase",
                p.label(),
            );
            reg.add(id, n);
        }
    }
    let depth = reg.histogram("qoa_prof_stack_depth", "Guest stack depth at each sample");
    for (d, &n) in profile.depth_counts.iter().enumerate() {
        for _ in 0..n {
            reg.observe(depth, d as u64);
        }
    }
}

/// Records a histogram of simulated-cycle span durations (phase batch
/// lengths: interpreter runs, JIT compiles, GC pauses).
pub fn fill_span_histogram(reg: &mut Registry, spans: &[SpanEvent]) {
    let hist = reg.histogram("qoa_span_cycles", "Simulated-cycle span durations");
    for span in spans {
        if span.clock == Clock::Cycles {
            reg.observe(hist, span.dur);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::parse_exposition;

    #[test]
    fn exec_stats_expose_and_round_trip() {
        let mut stats = ExecutionStats {
            cycles: 1000,
            instructions: 800,
            ..Default::default()
        };
        stats.cycles_by_category[qoa_model::Category::Dispatch] = 250;
        stats.cycles_by_category[qoa_model::Category::Execute] = 750;
        stats.cycles_by_phase[qoa_model::Phase::Interpreter] = 1000;
        stats.l1d = CacheStats { accesses: 400, misses: 13 };

        let mut reg = Registry::new();
        fill_exec_stats(&mut reg, &stats);
        let text = reg.expose();
        let parsed = parse_exposition(&text).expect("valid exposition");
        assert_eq!(parsed.get("qoa_sim_cycles_total"), Some(1000.0));
        assert_eq!(
            parsed.get("qoa_sim_category_cycles_total{category=\"Dispatch\"}"),
            Some(250.0)
        );
        let share = parsed.get("qoa_sim_overhead_share").expect("share gauge");
        assert!((share - 0.25).abs() < 1e-12);
    }

    #[test]
    fn vm_and_jit_stats_land_in_the_registry() {
        let mut vm = VmStats {
            bytecodes: 123,
            ..Default::default()
        };
        vm.opcodes[Opcode::BinaryAdd.index()] = 7;
        vm.gc.minor_collections = 3;
        let jit = JitStats {
            traces_compiled: 2,
            ..Default::default()
        };

        let mut reg = Registry::new();
        fill_vm_stats(&mut reg, &vm);
        fill_jit_stats(&mut reg, &jit);
        let parsed = parse_exposition(&reg.expose()).expect("valid exposition");
        assert_eq!(parsed.get("qoa_vm_bytecodes_total"), Some(123.0));
        assert_eq!(parsed.get("qoa_vm_dispatch_total{opcode=\"BinaryAdd\"}"), Some(7.0));
        assert_eq!(parsed.get("qoa_gc_collections_total{kind=\"minor\"}"), Some(3.0));
        assert_eq!(parsed.get("qoa_jit_traces_compiled_total"), Some(2.0));
    }
}
