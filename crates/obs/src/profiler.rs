//! The sampling profiler over simulated cycles.
//!
//! [`ObsCore`] wraps the attribution-exact [`SimpleCore`] as an
//! [`OpSink`]: each replayed micro-op is charged by the inner core, and
//! every time the simulated cycle clock crosses an `every`-cycle
//! boundary a sample is recorded against the guest call stack (rebuilt
//! from the [`FrameEvent`]s captured in the trace), the op's Table-II
//! [`Category`], and its [`Phase`]. Because the sampling clock *is* the
//! attribution clock, per-category sample shares converge on the exact
//! Fig. 4 cycle shares. Sampling is *stratified*: one sample per
//! `every`-cycle window, at a deterministic pseudo-random offset inside
//! the window. A strict `every`-cycle comb would alias against periodic
//! op patterns (an interpreter loop whose dispatch ops recur every k
//! cycles with `k | every` would be systematically over- or
//! under-sampled); the per-window jitter breaks that alignment while a
//! fixed-seed xorshift keeps every run bit-for-bit reproducible.
//!
//! The wrapper also derives simulated-cycle spans: each contiguous run of
//! one phase (an interpreter dispatch batch, a JIT compilation, a GC
//! pause) becomes one [`SpanEvent`] in a bounded [`RingSink`].

use crate::span::{Clock, RingSink, SpanEvent, TraceSink};
use qoa_model::{Category, CategoryMap, FrameEvent, MicroOp, OpSink, Phase, PhaseMap};
use qoa_uarch::{ExecutionStats, SimpleCore, UarchConfig};
use std::borrow::Cow;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Maximum tracked stack depth for the depth distribution (deeper stacks
/// saturate into the last slot).
const MAX_DEPTH: usize = 256;

/// Sampling replay core: [`SimpleCore`] plus guest-stack samples and
/// phase spans.
#[derive(Debug)]
pub struct ObsCore {
    core: SimpleCore,
    every: u64,
    /// Start of the current sampling window.
    window_start: u64,
    /// Cycle timestamp of the next sample (inside the current window).
    target: u64,
    /// Fixed-seed xorshift state for the per-window jitter.
    rng: u64,
    stack: Vec<Arc<str>>,
    folded_key: String,
    key_dirty: bool,
    samples: HashMap<String, CategoryMap<u64>>,
    by_category: CategoryMap<u64>,
    by_phase: PhaseMap<u64>,
    total_samples: u64,
    depth_counts: Vec<u64>,
    ring: RingSink,
    cur_phase: Option<Phase>,
    phase_start: u64,
}

impl ObsCore {
    /// Builds a sampling core over the hierarchy described by `uarch`,
    /// sampling every `sample_every` simulated cycles and retaining at
    /// most `ring_capacity` phase spans.
    pub fn new(uarch: &UarchConfig, sample_every: u64, ring_capacity: usize) -> Self {
        let every = sample_every.max(1);
        let mut this = ObsCore {
            core: SimpleCore::new(uarch),
            every,
            window_start: 0,
            target: 0,
            rng: 0x9E37_79B9_7F4A_7C15,
            stack: Vec::new(),
            folded_key: String::new(),
            key_dirty: true,
            samples: HashMap::new(),
            by_category: CategoryMap::default(),
            by_phase: PhaseMap::default(),
            total_samples: 0,
            depth_counts: vec![0; MAX_DEPTH + 1],
            ring: RingSink::new(ring_capacity),
            cur_phase: None,
            phase_start: 0,
        };
        this.target = this.jitter();
        this
    }

    /// Next pseudo-random offset in `[0, every)` (xorshift64).
    fn jitter(&mut self) -> u64 {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        self.rng % self.every
    }

    /// Read-only view of the inner core's statistics so far.
    pub fn stats(&self) -> &ExecutionStats {
        self.core.stats()
    }

    /// Finishes the replay: closes the open phase span and returns the
    /// execution statistics, the profile, and the retained cycle spans.
    pub fn finish(mut self) -> ObsReport {
        self.close_phase_span();
        let folded = self.samples.into_iter().collect();
        ObsReport {
            stats: self.core.finish(),
            profile: Profile {
                sample_every: self.every,
                total_samples: self.total_samples,
                by_category: self.by_category,
                by_phase: self.by_phase,
                depth_counts: self.depth_counts,
                folded,
            },
            spans: self.ring.to_vec(),
            dropped_spans: self.ring.dropped(),
        }
    }

    fn close_phase_span(&mut self) {
        if let Some(phase) = self.cur_phase {
            let now = self.core.stats().cycles;
            if now > self.phase_start {
                self.ring.record(SpanEvent {
                    name: Cow::Borrowed(phase.label()),
                    clock: Clock::Cycles,
                    start: self.phase_start,
                    dur: now - self.phase_start,
                });
            }
        }
    }

    fn record_sample(&mut self, category: Category, phase: Phase) {
        self.total_samples += 1;
        self.by_category[category] += 1;
        self.by_phase[phase] += 1;
        self.depth_counts[self.stack.len().min(MAX_DEPTH)] += 1;
        if self.key_dirty {
            self.key_dirty = false;
            self.folded_key.clear();
            if self.stack.is_empty() {
                self.folded_key.push_str("(no guest frame)");
            } else {
                for (i, frame) in self.stack.iter().enumerate() {
                    if i > 0 {
                        self.folded_key.push(';');
                    }
                    self.folded_key.push_str(frame);
                }
            }
        }
        match self.samples.get_mut(self.folded_key.as_str()) {
            Some(m) => m[category] += 1,
            None => {
                let mut m = CategoryMap::default();
                m[category] = 1;
                self.samples.insert(self.folded_key.clone(), m);
            }
        }
    }
}

impl OpSink for ObsCore {
    fn op(&mut self, op: MicroOp) {
        if self.cur_phase != Some(op.phase) {
            self.close_phase_span();
            self.cur_phase = Some(op.phase);
            self.phase_start = self.core.stats().cycles;
        }
        self.core.op(op);
        // An op that stalls (cache miss) can cross several sampling
        // windows; it earns one sample per window, which is exactly
        // cycle-weighted attribution.
        let now = self.core.stats().cycles;
        while now > self.target {
            self.record_sample(op.category, op.phase);
            self.window_start += self.every;
            let offset = self.jitter();
            self.target = self.window_start + offset;
        }
    }

    fn phase_change(&mut self, phase: Phase) {
        self.core.phase_change(phase);
    }

    fn frame_event(&mut self, event: &FrameEvent) {
        match event {
            FrameEvent::Push { name } => self.stack.push(Arc::clone(name)),
            FrameEvent::Pop => {
                self.stack.pop();
            }
        }
        self.key_dirty = true;
    }
}

/// Everything one sampled replay yields.
#[derive(Debug)]
pub struct ObsReport {
    /// The inner [`SimpleCore`]'s exact statistics — identical to an
    /// unobserved `simulate_simple` replay of the same trace.
    pub stats: ExecutionStats,
    /// The sampling profile.
    pub profile: Profile,
    /// Retained simulated-cycle phase spans, oldest first.
    pub spans: Vec<SpanEvent>,
    /// Phase spans evicted from the ring.
    pub dropped_spans: u64,
}

/// Aggregated samples from one replay.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Sampling period in simulated cycles.
    pub sample_every: u64,
    /// Total samples taken.
    pub total_samples: u64,
    /// Samples per Table-II category.
    pub by_category: CategoryMap<u64>,
    /// Samples per execution phase.
    pub by_phase: PhaseMap<u64>,
    /// Samples per guest stack depth (saturating at the last slot).
    pub depth_counts: Vec<u64>,
    /// Samples per folded guest stack, split by category.
    folded: BTreeMap<String, CategoryMap<u64>>,
}

impl Profile {
    /// Fraction of samples per category — the sampled estimate of the
    /// Fig. 4 cycle shares.
    pub fn category_shares(&self) -> CategoryMap<f64> {
        let total = self.total_samples.max(1) as f64;
        CategoryMap::from_fn(|c| self.by_category[c] as f64 / total)
    }

    /// Number of distinct guest stacks observed.
    pub fn distinct_stacks(&self) -> usize {
        self.folded.len()
    }

    /// Renders the profile in folded-stack format: one
    /// `frame;frame;[Category] count` line per (stack, category),
    /// consumable by inferno / flamegraph.pl.
    pub fn folded_output(&self) -> String {
        let mut out = String::new();
        for (stack, counts) in &self.folded {
            for (category, &n) in counts.iter() {
                if n > 0 {
                    out.push_str(stack);
                    out.push_str(";[");
                    out.push_str(&format!("{category:?}"));
                    out.push_str("] ");
                    out.push_str(&n.to_string());
                    out.push('\n');
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoa_model::{OpKind, Pc};
    use qoa_uarch::TraceBuffer;

    /// A trace with two functions and two categories, long enough to
    /// collect over a thousand samples at every=16.
    fn sample_trace() -> TraceBuffer {
        let mut t = TraceBuffer::with_frame_capture();
        t.frame_event(&FrameEvent::Push { name: "<module>".into() });
        for outer in 0..500u64 {
            t.frame_event(&FrameEvent::Push { name: "work".into() });
            for i in 0..40u64 {
                t.op(MicroOp {
                    pc: Pc(0x400000 + (i % 16) * 4),
                    kind: OpKind::Alu,
                    category: if i % 4 == 0 { Category::Dispatch } else { Category::Execute },
                    phase: Phase::Interpreter,
                });
            }
            t.frame_event(&FrameEvent::Pop);
            if outer % 10 == 9 {
                for i in 0..60u64 {
                    t.op(MicroOp {
                        pc: Pc(0x700000 + (i % 8) * 4),
                        kind: OpKind::Alu,
                        category: Category::GarbageCollection,
                        phase: Phase::GcMinor,
                    });
                }
            }
        }
        t.frame_event(&FrameEvent::Pop);
        t
    }

    #[test]
    fn sampled_shares_track_exact_cycle_shares() {
        let trace = sample_trace();
        let cfg = UarchConfig::skylake();
        let exact = trace.simulate_simple(&cfg);

        let mut core = ObsCore::new(&cfg, 16, 1024);
        trace.replay(&mut core);
        let report = core.finish();

        // The wrapped core's stats are identical to the unobserved run.
        assert_eq!(report.stats.cycles, exact.cycles);
        assert_eq!(report.stats.instructions, exact.instructions);

        assert!(report.profile.total_samples > 1000);
        let sampled = report.profile.category_shares();
        let exact_shares = exact.category_shares();
        for (c, &s) in sampled.iter() {
            assert!(
                (s - exact_shares[c]).abs() < 0.02,
                "{c:?}: sampled {s} vs exact {}",
                exact_shares[c]
            );
        }
    }

    #[test]
    fn folded_output_contains_guest_stacks() {
        let trace = sample_trace();
        let mut core = ObsCore::new(&UarchConfig::skylake(), 16, 1024);
        trace.replay(&mut core);
        let report = core.finish();
        let folded = report.profile.folded_output();
        assert!(folded.contains("<module>;work;[Execute] "), "folded:\n{folded}");
        assert!(folded.contains("<module>;[GarbageCollection] "), "folded:\n{folded}");
        // Lines are "stack count" with a numeric count.
        for line in folded.lines() {
            let (_, count) = line.rsplit_once(' ').expect("folded line has count");
            count.parse::<u64>().expect("count is numeric");
        }
    }

    #[test]
    fn phase_batches_become_cycle_spans() {
        let trace = sample_trace();
        let mut core = ObsCore::new(&UarchConfig::skylake(), 64, 1024);
        trace.replay(&mut core);
        let report = core.finish();
        assert!(!report.spans.is_empty());
        // Every 10th outer iteration ends in a GC pause, so the trace is
        // 50 interpreter batches alternating with 50 GC pauses.
        let gc = report
            .spans
            .iter()
            .filter(|s| s.name == Phase::GcMinor.label())
            .count();
        let interp = report
            .spans
            .iter()
            .filter(|s| s.name == Phase::Interpreter.label())
            .count();
        assert_eq!(gc, 50);
        assert_eq!(interp, 50);
        // Spans tile the timeline: total span cycles == total cycles.
        let total: u64 = report.spans.iter().map(|s| s.dur).sum();
        assert_eq!(total, report.stats.cycles);
        assert_eq!(report.dropped_spans, 0);
    }

    #[test]
    fn sampling_is_deterministic() {
        let trace = sample_trace();
        let cfg = UarchConfig::skylake();
        let run = |every| {
            let mut core = ObsCore::new(&cfg, every, 256);
            trace.replay(&mut core);
            core.finish().profile.folded_output()
        };
        assert_eq!(run(32), run(32));
    }
}
