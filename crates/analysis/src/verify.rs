//! Bytecode verification by abstract interpretation.
//!
//! A worklist dataflow pass propagates an abstract machine state — the
//! operand-stack depth and value types, the local-slot types, and the
//! static block stack — along every control-flow edge of a code object.
//! Code is rejected if any reachable path underflows the stack, exceeds
//! the declared [`CodeObject::max_stack`], jumps outside the instruction
//! array, indexes outside the const/name/local pools, or merges two
//! paths with inconsistent stack or block depths.
//!
//! Code that passes earns a [`Verified`] token, which is the *only* way
//! to reach the VM's check-eliding load path: the interpreter's dynamic
//! stack and index bounds checks exist exactly for the properties proved
//! here, so the token is the proof that they can be skipped.

use crate::cfg::Cfg;
use qoa_frontend::{ccj_const, ccj_target, pair_hi, pair_lo, CodeKind, CodeObject, Const, Opcode};
use std::fmt;
use std::rc::Rc;

/// Why a code object failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // Field names mirror the prose in each variant doc.
pub enum VerifyReason {
    /// The instruction stream is empty (nothing to execute, and the VM
    /// would immediately fault on pc 0).
    EmptyCode,
    /// A jump target lies outside the instruction array.
    BadJump { target: usize, len: usize },
    /// A reachable instruction falls through past the last instruction.
    FallsOffEnd,
    /// An instruction pops more operands than the stack holds.
    StackUnderflow { depth: usize, pops: usize },
    /// The stack grows beyond the code object's declared `max_stack`.
    ExceedsDeclaredMax { depth: usize, declared: usize },
    /// A `LoadConst` indexes outside the constant pool.
    BadConstIndex { index: usize, len: usize },
    /// A name-keyed opcode indexes outside `names`.
    BadNameIndex { index: usize, len: usize },
    /// A fast-local opcode indexes outside `varnames`.
    BadLocalIndex { index: usize, len: usize },
    /// A `CompareOp` carries an undecodable comparison discriminant.
    BadCompareOp { arg: u32 },
    /// `PopBlock`/`BreakLoop` with no enclosing block.
    BlockUnderflow,
    /// Two paths reach the same instruction with different stack depths.
    DepthMismatch { a: usize, b: usize },
    /// Two paths reach the same instruction with different block stacks.
    BlockMismatch,
    /// More parameters than local slots (the frame could not bind them).
    BadArgcount { argcount: usize, nlocals: usize },
}

impl fmt::Display for VerifyReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyReason::EmptyCode => write!(f, "empty instruction stream"),
            VerifyReason::BadJump { target, len } => {
                write!(f, "jump target {target} outside code of length {len}")
            }
            VerifyReason::FallsOffEnd => {
                write!(f, "execution falls off the end of the code")
            }
            VerifyReason::StackUnderflow { depth, pops } => {
                write!(f, "pops {pops} operand(s) with stack depth {depth}")
            }
            VerifyReason::ExceedsDeclaredMax { depth, declared } => {
                write!(f, "stack depth {depth} exceeds declared max_stack {declared}")
            }
            VerifyReason::BadConstIndex { index, len } => {
                write!(f, "const index {index} outside pool of {len}")
            }
            VerifyReason::BadNameIndex { index, len } => {
                write!(f, "name index {index} outside table of {len}")
            }
            VerifyReason::BadLocalIndex { index, len } => {
                write!(f, "local index {index} outside {len} slot(s)")
            }
            VerifyReason::BadCompareOp { arg } => {
                write!(f, "comparison discriminant {arg} out of range")
            }
            VerifyReason::BlockUnderflow => write!(f, "no enclosing block"),
            VerifyReason::DepthMismatch { a, b } => {
                write!(f, "paths merge with stack depths {a} and {b}")
            }
            VerifyReason::BlockMismatch => {
                write!(f, "paths merge with different block stacks")
            }
            VerifyReason::BadArgcount { argcount, nlocals } => {
                write!(f, "{argcount} parameter(s) but only {nlocals} local slot(s)")
            }
        }
    }
}

/// A typed verification diagnostic: which code object, which instruction
/// (span: index + source line), which opcode, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Name of the offending code object.
    pub code: String,
    /// Instruction index the diagnostic anchors to.
    pub at: usize,
    /// 1-based source line of that instruction (0 if unavailable).
    pub line: u32,
    /// The opcode at `at`, when one exists.
    pub op: Option<Opcode>,
    /// The failed property.
    pub reason: VerifyReason,
}

impl VerifyError {
    pub(crate) fn at(code: &CodeObject, at: usize, reason: VerifyReason) -> VerifyError {
        let instr = code.code.get(at);
        VerifyError {
            code: code.name.clone(),
            at,
            line: instr.map_or(0, |i| i.line),
            op: instr.map(|i| i.op),
            reason,
        }
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verification failed in `{}` at instr {}", self.code, self.at)?;
        if let Some(op) = self.op {
            write!(f, " ({op:?})")?;
        }
        if self.line > 0 {
            write!(f, ", line {}", self.line)?;
        }
        write!(f, ": {}", self.reason)
    }
}

impl std::error::Error for VerifyError {}

/// Static type of an abstract stack or local slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // Variants mirror the guest type names.
pub enum Ty {
    Int,
    Float,
    Bool,
    Str,
    None,
    List,
    Tuple,
    Dict,
    Slice,
    Code,
    Func,
    Class,
    Iter,
    /// Join of distinct types, or a value the analysis cannot type.
    Any,
}

impl Ty {
    /// Whether the type is a concrete guest type (not the lattice top).
    pub fn is_concrete(self) -> bool {
        self != Ty::Any
    }

    fn join(self, other: Ty) -> Ty {
        if self == other {
            self
        } else {
            Ty::Any
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ty::Int => "int",
            Ty::Float => "float",
            Ty::Bool => "bool",
            Ty::Str => "str",
            Ty::None => "NoneType",
            Ty::List => "list",
            Ty::Tuple => "tuple",
            Ty::Dict => "dict",
            Ty::Slice => "slice",
            Ty::Code => "code",
            Ty::Func => "function",
            Ty::Class => "class",
            Ty::Iter => "iterator",
            Ty::Any => "?",
        };
        f.write_str(s)
    }
}

/// Where an abstract value came from (constant provenance for the
/// folding lint).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Origin {
    /// Loaded from the constant pool at this index (possibly through a
    /// local slot that holds nothing else).
    Const(u32),
    /// Anything else.
    Other,
}

/// One abstract operand: its static type and provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbsVal {
    /// Static type.
    pub ty: Ty,
    /// Constant provenance.
    pub origin: Origin,
}

impl AbsVal {
    fn any() -> AbsVal {
        AbsVal { ty: Ty::Any, origin: Origin::Other }
    }

    fn of(ty: Ty) -> AbsVal {
        AbsVal { ty, origin: Origin::Other }
    }

    fn join(self, other: AbsVal) -> AbsVal {
        AbsVal {
            ty: self.ty.join(other.ty),
            origin: if self.origin == other.origin { self.origin } else { Origin::Other },
        }
    }
}

/// One entry on the abstract block stack (a `SetupLoop` frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AbsBlock {
    /// Where `BreakLoop` resumes.
    end: usize,
    /// Operand-stack depth on block entry (`BreakLoop` truncates to it).
    depth: usize,
}

/// The abstract machine state at one program point.
#[derive(Debug, Clone, PartialEq)]
struct State {
    stack: Vec<AbsVal>,
    blocks: Vec<AbsBlock>,
    locals: Vec<AbsVal>,
}

impl State {
    /// Joins `other` into `self`. Returns whether `self` changed.
    fn join(&mut self, other: &State) -> Result<bool, VerifyReason> {
        if self.stack.len() != other.stack.len() {
            return Err(VerifyReason::DepthMismatch {
                a: self.stack.len(),
                b: other.stack.len(),
            });
        }
        if self.blocks != other.blocks {
            return Err(VerifyReason::BlockMismatch);
        }
        let mut changed = false;
        for (a, b) in self.stack.iter_mut().zip(&other.stack) {
            let j = a.join(*b);
            changed |= j != *a;
            *a = j;
        }
        for (a, b) in self.locals.iter_mut().zip(&other.locals) {
            let j = a.join(*b);
            changed |= j != *a;
            *a = j;
        }
        Ok(changed)
    }
}

/// Facts proved about one reachable instruction.
#[derive(Debug, Clone)]
pub struct EntryFacts {
    /// The abstract operand stack on entry (bottom first).
    pub stack: Vec<AbsVal>,
}

impl EntryFacts {
    /// The `n`-th operand from the top of the entry stack (0 = TOS).
    pub fn operand(&self, n: usize) -> Option<&AbsVal> {
        self.stack.iter().rev().nth(n)
    }
}

/// Everything the dataflow pass proved about one code object.
#[derive(Debug, Clone)]
pub struct CodeAnalysis {
    /// The control-flow graph.
    pub cfg: Cfg,
    /// Per-instruction entry facts; `None` marks unreachable code.
    pub entry: Vec<Option<EntryFacts>>,
    /// The re-derived operand-stack high-water mark.
    pub max_depth: usize,
}

impl CodeAnalysis {
    /// Whether instruction `i` is reachable from the entry point.
    pub fn reachable(&self, i: usize) -> bool {
        self.entry.get(i).is_some_and(Option::is_some)
    }
}

/// Proof that a value passed verification. The only constructors live in
/// this crate, so holding a `Verified<T>` means [`verify`] (or
/// [`verify_code`] for every nested code object) succeeded on it.
#[derive(Debug, Clone)]
pub struct Verified<T>(T);

impl<T> Verified<T> {
    /// Borrows the verified value.
    pub fn get(&self) -> &T {
        &self.0
    }

    /// Unwraps the verified value, discarding the proof.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> AsRef<T> for Verified<T> {
    fn as_ref(&self) -> &T {
        &self.0
    }
}

fn const_ty(c: &Const) -> Ty {
    match c {
        Const::Int(_) => Ty::Int,
        Const::Float(_) => Ty::Float,
        Const::Str(_) => Ty::Str,
        Const::Bool(_) => Ty::Bool,
        Const::None => Ty::None,
        Const::Code(_) => Ty::Code,
    }
}

/// Result type of `a ⊗ b` for the arithmetic/bit opcodes, mirroring the
/// interpreter's coercion rules closely enough for lint purposes.
fn binary_ty(op: Opcode, a: Ty, b: Ty) -> Ty {
    use Ty::{Any, Bool, Float, Int, List, Str};
    let numeric = |t: Ty| matches!(t, Int | Bool | Float);
    match (op, a, b) {
        (_, x, y) if numeric(x) && numeric(y) => {
            if x == Float || y == Float {
                Float
            } else {
                Int
            }
        }
        (Opcode::BinaryAdd, Str, Str) => Str,
        (Opcode::BinaryAdd, List, List) => List,
        (Opcode::BinaryMultiply, Str, Int) | (Opcode::BinaryMultiply, Int, Str) => Str,
        (Opcode::BinaryMultiply, List, Int) | (Opcode::BinaryMultiply, Int, List) => List,
        (Opcode::BinaryModulo, Str, _) => Str,
        _ => Any,
    }
}

/// Static per-instruction argument checks (indices, discriminants,
/// parameter binding). Applied to *every* instruction, reachable or not,
/// so the guarantee matches `CodeObject::validate` and more.
fn check_static(code: &CodeObject) -> Result<(), VerifyError> {
    if code.argcount > code.varnames.len() {
        return Err(VerifyError::at(
            code,
            0,
            VerifyReason::BadArgcount {
                argcount: code.argcount,
                nlocals: code.varnames.len(),
            },
        ));
    }
    for (i, instr) in code.code.iter().enumerate() {
        let arg = instr.arg as usize;
        let reason = match instr.op {
            Opcode::LoadConst if arg >= code.consts.len() => {
                Some(VerifyReason::BadConstIndex { index: arg, len: code.consts.len() })
            }
            Opcode::LoadFast | Opcode::StoreFast if arg >= code.varnames.len() => {
                Some(VerifyReason::BadLocalIndex { index: arg, len: code.varnames.len() })
            }
            Opcode::LoadGlobal
            | Opcode::StoreGlobal
            | Opcode::LoadName
            | Opcode::StoreName
            | Opcode::LoadAttr
            | Opcode::StoreAttr
            | Opcode::BuildClass
                if arg >= code.names.len() =>
            {
                Some(VerifyReason::BadNameIndex { index: arg, len: code.names.len() })
            }
            Opcode::CompareOp if instr.arg >= 8 => {
                Some(VerifyReason::BadCompareOp { arg: instr.arg })
            }
            Opcode::LoadFastLoadFast | Opcode::AddFastFast => {
                let (lo, hi) = (pair_lo(instr.arg) as usize, pair_hi(instr.arg) as usize);
                let bad = lo.max(hi);
                (bad >= code.varnames.len()).then_some(VerifyReason::BadLocalIndex {
                    index: bad,
                    len: code.varnames.len(),
                })
            }
            Opcode::LoadFastLoadConst => {
                let (lo, hi) = (pair_lo(instr.arg) as usize, pair_hi(instr.arg) as usize);
                if lo >= code.varnames.len() {
                    Some(VerifyReason::BadLocalIndex { index: lo, len: code.varnames.len() })
                } else if hi >= code.consts.len() {
                    Some(VerifyReason::BadConstIndex { index: hi, len: code.consts.len() })
                } else {
                    None
                }
            }
            // The 3-bit cmp field is always a valid discriminant; the
            // packed jump target is bounded by `Cfg::build`.
            Opcode::ConstCompareJump => {
                let k = ccj_const(instr.arg) as usize;
                (k >= code.consts.len())
                    .then_some(VerifyReason::BadConstIndex { index: k, len: code.consts.len() })
            }
            _ => None,
        };
        if let Some(reason) = reason {
            return Err(VerifyError::at(code, i, reason));
        }
    }
    Ok(())
}

/// Verifies one code object (not its nested children) and returns the
/// per-instruction dataflow facts.
///
/// # Errors
///
/// The first [`VerifyError`] encountered; see [`VerifyReason`] for the
/// full list of rejected properties.
pub fn verify_code(code: &CodeObject) -> Result<CodeAnalysis, VerifyError> {
    check_static(code)?;
    let cfg = Cfg::build(code)?;
    let len = code.code.len();
    let nlocals = code.varnames.len();

    let mut entry: Vec<Option<State>> = vec![None; len];
    let mut work: Vec<usize> = Vec::new();
    entry[0] = Some(State {
        stack: Vec::new(),
        blocks: Vec::new(),
        // Parameters arrive typed by the caller; everything is Any here.
        locals: vec![AbsVal::any(); nlocals],
    });
    work.push(0);
    let mut max_depth = 0usize;

    while let Some(i) = work.pop() {
        let Some(st) = entry[i].clone() else { continue };
        let instr = code.code[i];
        let arg = instr.arg;
        let err = |reason: VerifyReason| VerifyError::at(code, i, reason);

        // Each outgoing edge carries its own successor state.
        let mut edges: Vec<(usize, State)> = Vec::new();
        let fall = |state: State, edges: &mut Vec<(usize, State)>| {
            if i + 1 >= len {
                return Err(err(VerifyReason::FallsOffEnd));
            }
            edges.push((i + 1, state));
            Ok(())
        };
        let pop_n = |state: &mut State, n: usize| -> Result<Vec<AbsVal>, VerifyError> {
            if state.stack.len() < n {
                return Err(err(VerifyReason::StackUnderflow {
                    depth: state.stack.len(),
                    pops: n,
                }));
            }
            let at = state.stack.len() - n;
            Ok(state.stack.split_off(at))
        };

        match instr.op {
            Opcode::JumpAbsolute => {
                edges.push((arg as usize, st));
            }
            Opcode::PopJumpIfFalse | Opcode::PopJumpIfTrue => {
                let mut s = st;
                pop_n(&mut s, 1)?;
                edges.push((arg as usize, s.clone()));
                fall(s, &mut edges)?;
            }
            Opcode::ConstCompareJump => {
                // Fused LoadConst + CompareOp + PopJumpIf: pops the LHS,
                // compares against the packed constant, branches.
                let mut s = st;
                pop_n(&mut s, 1)?;
                edges.push((ccj_target(arg) as usize, s.clone()));
                fall(s, &mut edges)?;
            }
            Opcode::JumpIfFalseOrPop | Opcode::JumpIfTrueOrPop => {
                if st.stack.is_empty() {
                    return Err(err(VerifyReason::StackUnderflow { depth: 0, pops: 1 }));
                }
                edges.push((arg as usize, st.clone()));
                let mut s = st;
                s.stack.pop();
                fall(s, &mut edges)?;
            }
            Opcode::ForIter => {
                if st.stack.is_empty() {
                    return Err(err(VerifyReason::StackUnderflow { depth: 0, pops: 1 }));
                }
                let mut taken = st.clone();
                taken.stack.pop();
                edges.push((arg as usize, taken));
                let mut s = st;
                s.stack.push(AbsVal::any());
                fall(s, &mut edges)?;
            }
            Opcode::SetupLoop => {
                let mut s = st;
                s.blocks.push(AbsBlock { end: arg as usize, depth: s.stack.len() });
                fall(s, &mut edges)?;
            }
            Opcode::PopBlock => {
                let mut s = st;
                if s.blocks.pop().is_none() {
                    return Err(err(VerifyReason::BlockUnderflow));
                }
                fall(s, &mut edges)?;
            }
            Opcode::BreakLoop => {
                let mut s = st;
                let Some(block) = s.blocks.pop() else {
                    return Err(err(VerifyReason::BlockUnderflow));
                };
                // The dynamic break truncates the stack to the block's
                // entry depth; a shallower stack means the body leaked.
                if s.stack.len() < block.depth {
                    return Err(err(VerifyReason::StackUnderflow {
                        depth: s.stack.len(),
                        pops: block.depth,
                    }));
                }
                s.stack.truncate(block.depth);
                edges.push((block.end, s));
            }
            Opcode::ReturnValue => {
                // Class bodies return their namespace dict implicitly
                // (the VM special-cases frames with a class namespace),
                // so their ReturnValue pops nothing.
                if code.kind != CodeKind::ClassBody {
                    let mut s = st;
                    pop_n(&mut s, 1)?;
                }
                // Terminal: no successors.
            }
            Opcode::DupTop => {
                let mut s = st;
                let Some(&top) = s.stack.last() else {
                    return Err(err(VerifyReason::StackUnderflow { depth: 0, pops: 1 }));
                };
                s.stack.push(top);
                fall(s, &mut edges)?;
            }
            Opcode::DupTopTwo => {
                let mut s = st;
                let n = s.stack.len();
                if n < 2 {
                    return Err(err(VerifyReason::StackUnderflow { depth: n, pops: 2 }));
                }
                let (a, b) = (s.stack[n - 2], s.stack[n - 1]);
                s.stack.push(a);
                s.stack.push(b);
                fall(s, &mut edges)?;
            }
            Opcode::RotTwo => {
                let mut s = st;
                let n = s.stack.len();
                if n < 2 {
                    return Err(err(VerifyReason::StackUnderflow { depth: n, pops: 2 }));
                }
                s.stack.swap(n - 1, n - 2);
                fall(s, &mut edges)?;
            }
            Opcode::RotThree => {
                let mut s = st;
                let n = s.stack.len();
                if n < 3 {
                    return Err(err(VerifyReason::StackUnderflow { depth: n, pops: 3 }));
                }
                let top = s.stack.remove(n - 1);
                s.stack.insert(n - 3, top);
                fall(s, &mut edges)?;
            }
            _ => {
                // Straight-line opcodes: generic pops, typed pushes.
                let (pops, pushes) = instr.op.stack_io(arg);
                let mut s = st;
                let popped = pop_n(&mut s, pops as usize)?;
                let results: Vec<AbsVal> = match instr.op {
                    Opcode::LoadConst => vec![AbsVal {
                        ty: const_ty(&code.consts[arg as usize]),
                        origin: Origin::Const(arg),
                    }],
                    Opcode::LoadFast => vec![s.locals[arg as usize]],
                    Opcode::StoreFast => {
                        s.locals[arg as usize] = popped[0];
                        vec![]
                    }
                    Opcode::BinaryAdd
                    | Opcode::BinarySubtract
                    | Opcode::BinaryMultiply
                    | Opcode::BinaryDivide
                    | Opcode::BinaryFloorDivide
                    | Opcode::BinaryModulo
                    | Opcode::BinaryPower
                    | Opcode::BinaryAnd
                    | Opcode::BinaryOr
                    | Opcode::BinaryXor
                    | Opcode::BinaryLshift
                    | Opcode::BinaryRshift => {
                        vec![AbsVal::of(binary_ty(instr.op, popped[0].ty, popped[1].ty))]
                    }
                    Opcode::CompareOp | Opcode::UnaryNot => vec![AbsVal::of(Ty::Bool)],
                    Opcode::UnaryNegative | Opcode::UnaryInvert => {
                        let t = match popped[0].ty {
                            Ty::Int | Ty::Bool => Ty::Int,
                            Ty::Float if instr.op == Opcode::UnaryNegative => Ty::Float,
                            _ => Ty::Any,
                        };
                        vec![AbsVal::of(t)]
                    }
                    Opcode::LoadFastLoadFast => {
                        vec![s.locals[pair_lo(arg) as usize], s.locals[pair_hi(arg) as usize]]
                    }
                    Opcode::LoadFastLoadConst => vec![
                        s.locals[pair_lo(arg) as usize],
                        AbsVal {
                            ty: const_ty(&code.consts[pair_hi(arg) as usize]),
                            origin: Origin::Const(pair_hi(arg)),
                        },
                    ],
                    Opcode::AddFastFast => {
                        let (a, b) = (
                            s.locals[pair_lo(arg) as usize],
                            s.locals[pair_hi(arg) as usize],
                        );
                        vec![AbsVal::of(binary_ty(Opcode::BinaryAdd, a.ty, b.ty))]
                    }
                    Opcode::GetIter => vec![AbsVal::of(Ty::Iter)],
                    Opcode::BuildList => vec![AbsVal::of(Ty::List)],
                    Opcode::BuildTuple => vec![AbsVal::of(Ty::Tuple)],
                    Opcode::BuildMap => vec![AbsVal::of(Ty::Dict)],
                    Opcode::BuildSlice => vec![AbsVal::of(Ty::Slice)],
                    Opcode::MakeFunction => vec![AbsVal::of(Ty::Func)],
                    Opcode::BuildClass => vec![AbsVal::of(Ty::Class)],
                    _ => vec![AbsVal::any(); pushes as usize],
                };
                debug_assert_eq!(results.len(), pushes as usize);
                s.stack.extend(results);
                fall(s, &mut edges)?;
            }
        }

        for (target, next) in edges {
            // `Cfg::build` bounded all jump targets; fall-through targets
            // were bounded above.
            max_depth = max_depth.max(next.stack.len());
            if next.stack.len() > code.max_stack {
                return Err(err(VerifyReason::ExceedsDeclaredMax {
                    depth: next.stack.len(),
                    declared: code.max_stack,
                }));
            }
            match entry[target].as_mut() {
                None => {
                    entry[target] = Some(next);
                    work.push(target);
                }
                Some(prev) => {
                    let changed = prev
                        .join(&next)
                        .map_err(|reason| VerifyError::at(code, target, reason))?;
                    if changed {
                        work.push(target);
                    }
                }
            }
        }
    }

    Ok(CodeAnalysis {
        cfg,
        entry: entry
            .into_iter()
            .map(|s| s.map(|st| EntryFacts { stack: st.stack }))
            .collect(),
        max_depth,
    })
}

/// Verifies `root` and every nested code object, returning the
/// [`Verified`] capability on success.
///
/// # Errors
///
/// The first [`VerifyError`] in any code object.
pub fn verify(root: &Rc<CodeObject>) -> Result<Verified<Rc<CodeObject>>, VerifyError> {
    for code in root.iter_all() {
        verify_code(&code)?;
    }
    Ok(Verified(Rc::clone(root)))
}

/// Verifies `root` and every nested code object, returning each one's
/// analysis (in [`CodeObject::iter_all`] order) for downstream passes.
///
/// # Errors
///
/// The first [`VerifyError`] in any code object.
pub fn analyze(
    root: &Rc<CodeObject>,
) -> Result<Vec<(Rc<CodeObject>, CodeAnalysis)>, VerifyError> {
    root.iter_all()
        .into_iter()
        .map(|code| verify_code(&code).map(|a| (code, a)))
        .collect()
}
