//! Lints over verified bytecode.
//!
//! All lints run on the dataflow facts the verifier proved, so they
//! never fire on code that would not verify. Two severities:
//!
//! * **Warning** — findings a clean program should not have (genuinely
//!   unreachable user code). The `qoa-lint --deny warnings` CI gate
//!   fails on these.
//! * **Note** — optimization opportunities and compiler artifacts:
//!   constant-foldable operations, name loads promotable to fast locals,
//!   type-stable operations a JIT would specialize, and the compiler's
//!   own unreachable implicit-return tail.

use crate::verify::{CodeAnalysis, Origin, VerifyError};
use qoa_frontend::{CodeKind, CodeObject, Const, Opcode};
use std::fmt;
use std::rc::Rc;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: an optimization opportunity or compiler artifact.
    Note,
    /// A defect in the program under analysis.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
        })
    }
}

/// What kind of finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintKind {
    /// Instructions unreachable from the entry point.
    DeadCode,
    /// An operation whose operands are all compile-time constants.
    FoldableConst,
    /// A dict-probed name load that could be a fast local slot.
    PromotableLoad,
    /// An operation with concrete static operand types on every path —
    /// a JIT specialization candidate.
    TypeStable,
    /// An instruction run the optimizer's peephole pass would fuse into
    /// one superinstruction, with its predicted cycle savings.
    FusibleSequence,
}

impl LintKind {
    /// Short machine-readable tag.
    pub fn tag(self) -> &'static str {
        match self {
            LintKind::DeadCode => "dead-code",
            LintKind::FoldableConst => "const-fold",
            LintKind::PromotableLoad => "promotable-load",
            LintKind::TypeStable => "type-stable",
            LintKind::FusibleSequence => "fusible-sequence",
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Lint {
    /// Name of the code object.
    pub code: String,
    /// Instruction index the finding anchors to.
    pub at: usize,
    /// 1-based source line (0 if unavailable).
    pub line: u32,
    /// Finding severity.
    pub severity: Severity,
    /// Finding kind.
    pub kind: LintKind,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] `{}` instr {} (line {}): {}",
            self.severity,
            self.kind.tag(),
            self.code,
            self.at,
            self.line,
            self.message
        )
    }
}

fn push_lint(
    out: &mut Vec<Lint>,
    code: &CodeObject,
    at: usize,
    severity: Severity,
    kind: LintKind,
    message: String,
) {
    out.push(Lint {
        code: code.name.clone(),
        at,
        line: code.code.get(at).map_or(0, |i| i.line),
        severity,
        kind,
        message,
    });
}

/// Whether the unreachable run `start..end` is the compiler's implicit
/// `return None` tail: every module/function body ends with
/// `LoadConst None; ReturnValue`, which is dead when the last statement
/// already returned.
fn is_implicit_return_tail(code: &CodeObject, start: usize, end: usize) -> bool {
    if end != code.code.len() || end - start != 2 {
        return false;
    }
    let a = code.code[start];
    let b = code.code[start + 1];
    a.op == Opcode::LoadConst
        && matches!(code.consts.get(a.arg as usize), Some(Const::None))
        && b.op == Opcode::ReturnValue
}

fn dead_code(code: &CodeObject, analysis: &CodeAnalysis, out: &mut Vec<Lint>) {
    let len = code.code.len();
    let mut i = 0;
    while i < len {
        if analysis.reachable(i) {
            i += 1;
            continue;
        }
        let start = i;
        while i < len && !analysis.reachable(i) {
            i += 1;
        }
        // Split the compiler's implicit `return None` tail off the end of
        // the run: the artifact is a note, anything before it is real
        // unreachable user code.
        let mut user_end = i;
        if i == len && i - start >= 2 && is_implicit_return_tail(code, i - 2, i) {
            user_end = i - 2;
            push_lint(
                out,
                code,
                user_end,
                Severity::Note,
                LintKind::DeadCode,
                format!(
                    "the compiler's implicit `return None` tail (instrs {}..{i})",
                    user_end
                ),
            );
        }
        if user_end > start {
            // A run of nothing but jumps is the compiler stitching an
            // always-returning arm to its join point — users cannot
            // write a bare jump, so real dead user code always contains
            // at least one non-jump instruction.
            let all_jumps = code.code[start..user_end]
                .iter()
                .all(|i| i.op == Opcode::JumpAbsolute);
            let (severity, what) = if all_jumps {
                (Severity::Note, "unreachable control-flow seam after a return")
            } else {
                (Severity::Warning, "unreachable instruction(s)")
            };
            push_lint(
                out,
                code,
                start,
                severity,
                LintKind::DeadCode,
                format!("{} {what} (instrs {start}..{user_end})", user_end - start),
            );
        }
    }
}

fn operand_count(op: Opcode) -> Option<usize> {
    match op {
        Opcode::BinaryAdd
        | Opcode::BinarySubtract
        | Opcode::BinaryMultiply
        | Opcode::BinaryDivide
        | Opcode::BinaryFloorDivide
        | Opcode::BinaryModulo
        | Opcode::BinaryPower
        | Opcode::BinaryAnd
        | Opcode::BinaryOr
        | Opcode::BinaryXor
        | Opcode::BinaryLshift
        | Opcode::BinaryRshift
        | Opcode::CompareOp
        | Opcode::BinarySubscr => Some(2),
        Opcode::UnaryNegative | Opcode::UnaryNot | Opcode::UnaryInvert => Some(1),
        _ => None,
    }
}

fn value_lints(code: &CodeObject, analysis: &CodeAnalysis, out: &mut Vec<Lint>) {
    for (i, instr) in code.code.iter().enumerate() {
        let Some(n) = operand_count(instr.op) else { continue };
        let Some(facts) = analysis.entry.get(i).and_then(Option::as_ref) else {
            continue; // unreachable: covered by the dead-code lint
        };
        let operands: Vec<_> = (0..n).rev().filter_map(|k| facts.operand(k)).collect();
        if operands.len() < n {
            continue;
        }
        if operands.iter().all(|v| matches!(v.origin, Origin::Const(_))) {
            push_lint(
                out,
                code,
                i,
                Severity::Note,
                LintKind::FoldableConst,
                format!(
                    "{:?} of compile-time constants could fold at compile time",
                    instr.op
                ),
            );
        } else if operands.iter().all(|v| v.ty.is_concrete()) {
            let tys: Vec<String> = operands.iter().map(|v| v.ty.to_string()).collect();
            push_lint(
                out,
                code,
                i,
                Severity::Note,
                LintKind::TypeStable,
                format!(
                    "{:?} sees ({}) on every path — JIT specialization candidate",
                    instr.op,
                    tys.join(", ")
                ),
            );
        }
    }
}

fn promotable_loads(code: &CodeObject, analysis: &CodeAnalysis, out: &mut Vec<Lint>) {
    // A name both loaded and stored within the same module/class scope
    // resolves through dict probes every time, yet could live in an
    // indexed fast slot (LOAD_NAME/LOAD_GLOBAL -> LOAD_FAST), as
    // function scopes already do.
    if code.kind == CodeKind::Function {
        return;
    }
    let load = |op: Opcode| matches!(op, Opcode::LoadName | Opcode::LoadGlobal);
    let store = |op: Opcode| matches!(op, Opcode::StoreName | Opcode::StoreGlobal);
    let mut stored = vec![false; code.names.len()];
    for instr in &code.code {
        if store(instr.op) {
            stored[instr.arg as usize] = true;
        }
    }
    for (i, instr) in code.code.iter().enumerate() {
        if load(instr.op) && stored[instr.arg as usize] && analysis.reachable(i) {
            push_lint(
                out,
                code,
                i,
                Severity::Note,
                LintKind::PromotableLoad,
                format!(
                    "{:?} of locally-assigned `{}` could promote to LOAD_FAST",
                    instr.op, code.names[instr.arg as usize]
                ),
            );
        }
    }
}

fn fusible_sequences(code: &CodeObject, analysis: &CodeAnalysis, out: &mut Vec<Lint>) {
    use qoa_model::Category;
    for cand in crate::opt::fusion_candidates(code) {
        if !analysis.reachable(cand.at) {
            continue; // covered by the dead-code lint
        }
        // Predicted savings: the modeled cost of the unfused run minus
        // the fused superinstruction's profile (annotate::instr_profile).
        let line = code.code[cand.at].line;
        let mut before = qoa_model::CategoryMap::<u64>::default();
        for k in 0..cand.len {
            before.merge(&crate::annotate::instr_profile(code.code[cand.at + k]));
        }
        let after = crate::annotate::instr_profile(qoa_frontend::Instr {
            op: cand.fused,
            arg: cand.arg,
            line,
        });
        let saved = before.total().saturating_sub(after.total());
        let dispatch_saved =
            before[Category::Dispatch].saturating_sub(after[Category::Dispatch]);
        let ops: Vec<String> = (0..cand.len)
            .map(|k| format!("{:?}", code.code[cand.at + k].op))
            .collect();
        push_lint(
            out,
            code,
            cand.at,
            Severity::Note,
            LintKind::FusibleSequence,
            format!(
                "{} fuses to {:?}, saving ~{saved} modeled cycles ({dispatch_saved} dispatch) per execution",
                ops.join("+"),
                cand.fused
            ),
        );
    }
}

/// Runs every lint over one verified code object.
pub fn lint_code(code: &CodeObject, analysis: &CodeAnalysis) -> Vec<Lint> {
    let mut out = Vec::new();
    dead_code(code, analysis, &mut out);
    value_lints(code, analysis, &mut out);
    promotable_loads(code, analysis, &mut out);
    fusible_sequences(code, analysis, &mut out);
    out
}

/// Verifies `root` (and nested code) and lints everything.
///
/// # Errors
///
/// The first [`VerifyError`] if verification fails — unverifiable code
/// cannot be linted.
pub fn lint_module(root: &Rc<CodeObject>) -> Result<Vec<Lint>, VerifyError> {
    let mut out = Vec::new();
    for (code, analysis) in crate::verify::analyze(root)? {
        out.extend(lint_code(&code, &analysis));
    }
    Ok(out)
}
