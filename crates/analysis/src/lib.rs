//! Static analysis over guest bytecode: verification, overhead-category
//! annotation, and lints.
//!
//! This crate is the static counterpart of the dynamic attribution in
//! `qoa-core`. Three passes share one CFG + abstract-interpretation
//! substrate ([`verify`]):
//!
//! 1. **Verifier** — proves stack-depth safety, jump-target validity,
//!    operand-index bounds, and block-stack consistency for every
//!    reachable path, rejecting malformed code with a typed
//!    [`VerifyError`] (span + opcode + reason). Success mints a
//!    [`Verified`] token, which is the VM's license to elide its dynamic
//!    per-dispatch guard checks (`Vm::load_verified`).
//! 2. **Annotator** ([`annotate`]) — maps each static instruction to the
//!    Table II category profile its interpreter handler would emit,
//!    yielding a predicted Fig. 4-style share table (`fig04-static`).
//! 3. **Lints** ([`lint`]) — dead code, constant-foldable operations,
//!    `LOAD_NAME`→`LOAD_FAST` promotion candidates, type-stable ops
//!    that a JIT would specialize, and fusible superinstruction runs
//!    (`qoa-lint`).
//! 4. **Optimizer** ([`opt`]) — an analysis-driven pass manager that
//!    *acts* on those facts: constant folding, dead-code elimination,
//!    global→fast promotion, and superinstruction fusion, with every
//!    pass output re-verified ([`optimize`]).

#![warn(missing_docs)]

pub mod annotate;
pub mod cfg;
pub mod lint;
pub mod opt;
pub mod verify;

pub use cfg::{BasicBlock, Cfg};
pub use lint::{Lint, LintKind, Severity};
pub use opt::{
    fusion_candidates, optimize, optimize_with, FusionCandidate, OptError, OptReport, Passes,
    MAX_OPT_LEVEL,
};
pub use verify::{
    analyze, verify, verify_code, AbsVal, CodeAnalysis, EntryFacts, Origin, Ty, Verified,
    VerifyError, VerifyReason,
};

#[cfg(test)]
mod tests {
    use super::*;
    use qoa_frontend::{compile, CodeKind, CodeObject, Const, Instr, Opcode};
    use std::rc::Rc;

    fn raw(code: Vec<(Opcode, u32)>) -> Rc<CodeObject> {
        Rc::new(CodeObject {
            name: "hand".into(),
            kind: CodeKind::Function,
            argcount: 0,
            num_defaults: 0,
            varnames: vec!["x".into()],
            names: vec!["g".into()],
            consts: vec![Const::None, Const::Int(7)],
            code: code
                .into_iter()
                .map(|(op, arg)| Instr { op, arg, line: 1 })
                .collect(),
            max_stack: 8,
        })
    }

    #[test]
    fn compiler_output_verifies() {
        let src = "def f(a, b):\n    t = 0\n    for i in range(a):\n        if i % 2 == 0:\n            t = t + b\n        else:\n            t = t - 1\n    return t\nresult = f(10, 3)\n";
        let code = compile(src).expect("compiles");
        assert!(verify(&code).is_ok());
    }

    #[test]
    fn rejects_bad_jump_target() {
        let e = verify(&raw(vec![(Opcode::JumpAbsolute, 99)])).expect_err("bad jump");
        assert!(matches!(e.reason, VerifyReason::BadJump { target: 99, .. }), "{e}");
        assert_eq!(e.op, Some(Opcode::JumpAbsolute));
    }

    #[test]
    fn rejects_stack_underflow() {
        let e = verify(&raw(vec![(Opcode::BinaryAdd, 0), (Opcode::ReturnValue, 0)]))
            .expect_err("underflow");
        assert!(matches!(e.reason, VerifyReason::StackUnderflow { depth: 0, pops: 2 }), "{e}");
    }

    #[test]
    fn rejects_out_of_range_indices() {
        let e = verify(&raw(vec![(Opcode::LoadConst, 9), (Opcode::ReturnValue, 0)]))
            .expect_err("const index");
        assert!(matches!(e.reason, VerifyReason::BadConstIndex { index: 9, len: 2 }), "{e}");
        let e = verify(&raw(vec![(Opcode::LoadGlobal, 4), (Opcode::ReturnValue, 0)]))
            .expect_err("name index");
        assert!(matches!(e.reason, VerifyReason::BadNameIndex { index: 4, len: 1 }), "{e}");
        let e = verify(&raw(vec![(Opcode::LoadFast, 3), (Opcode::ReturnValue, 0)]))
            .expect_err("local index");
        assert!(matches!(e.reason, VerifyReason::BadLocalIndex { index: 3, len: 1 }), "{e}");
        let e = verify(&raw(vec![
            (Opcode::LoadConst, 1),
            (Opcode::LoadConst, 1),
            (Opcode::CompareOp, 42),
            (Opcode::ReturnValue, 0),
        ]))
        .expect_err("compare arg");
        assert!(matches!(e.reason, VerifyReason::BadCompareOp { arg: 42 }), "{e}");
    }

    #[test]
    fn rejects_falling_off_the_end_and_block_underflow() {
        let e = verify(&raw(vec![(Opcode::LoadConst, 0), (Opcode::PopTop, 0)]))
            .expect_err("falls off end");
        assert!(matches!(e.reason, VerifyReason::FallsOffEnd), "{e}");
        let e = verify(&raw(vec![(Opcode::PopBlock, 0), (Opcode::ReturnValue, 0)]))
            .expect_err("block underflow");
        assert!(matches!(e.reason, VerifyReason::BlockUnderflow), "{e}");
    }

    #[test]
    fn rejects_inconsistent_merge_depths() {
        // One arm leaves an extra operand behind before the join.
        let e = verify(&raw(vec![
            (Opcode::LoadConst, 1),
            (Opcode::PopJumpIfFalse, 4),
            (Opcode::LoadConst, 1),
            (Opcode::LoadConst, 1),
            (Opcode::LoadConst, 0), // join: depth 0 vs 2
            (Opcode::ReturnValue, 0),
        ]))
        .expect_err("depth mismatch");
        assert!(matches!(e.reason, VerifyReason::DepthMismatch { .. }), "{e}");
    }

    #[test]
    fn rejects_exceeding_declared_max_stack() {
        let mut code = (*raw(vec![
            (Opcode::LoadConst, 1),
            (Opcode::LoadConst, 1),
            (Opcode::LoadConst, 1),
            (Opcode::ReturnValue, 0),
        ]))
        .clone();
        code.max_stack = 2;
        let e = verify(&Rc::new(code)).expect_err("declared bound");
        assert!(
            matches!(e.reason, VerifyReason::ExceedsDeclaredMax { depth: 3, declared: 2 }),
            "{e}"
        );
    }

    #[test]
    fn verifies_nested_code_objects() {
        // The module verifies but the nested function is malformed.
        let inner = raw(vec![(Opcode::BinaryAdd, 0), (Opcode::ReturnValue, 0)]);
        let outer = Rc::new(CodeObject {
            name: "<module>".into(),
            kind: CodeKind::Module,
            argcount: 0,
            num_defaults: 0,
            varnames: vec![],
            names: vec![],
            consts: vec![Const::Code(Rc::clone(&inner)), Const::None],
            code: vec![
                Instr { op: Opcode::LoadConst, arg: 1, line: 1 },
                Instr { op: Opcode::ReturnValue, arg: 0, line: 1 },
            ],
            max_stack: 1,
        });
        let e = verify(&outer).expect_err("nested rejection");
        assert_eq!(e.code, "hand");
    }

    #[test]
    fn derived_depth_matches_declared_for_compiled_code() {
        let src = "xs = [1, 2, 3]\nt = 0\nfor x in xs:\n    t = t + x * (x + 1)\nresult = t\n";
        let code = compile(src).expect("compiles");
        for c in code.iter_all() {
            let a = verify_code(&c).expect("verifies");
            assert!(
                a.max_depth <= c.max_stack,
                "{}: derived {} > declared {}",
                c.name,
                a.max_depth,
                c.max_stack
            );
        }
    }

    #[test]
    fn static_shares_cover_dispatch_and_sum_to_one() {
        let code = compile("t = 1 + 2\nresult = t\n").expect("compiles");
        let shares = annotate::static_shares(&code);
        assert!((shares.total() - 1.0).abs() < 1e-9);
        assert!(shares[qoa_model::Category::Dispatch] > 0.0);
    }

    #[test]
    fn lints_flag_seeded_patterns() {
        let src = "def f(x):\n    return x\n    y = x + 1\nn = 2 * 3\nresult = f(n)\n";
        let code = compile(src).expect("compiles");
        let lints = lint::lint_module(&code).expect("verifies");
        let has = |kind: LintKind, sev: Severity| {
            lints.iter().any(|l| l.kind == kind && l.severity == sev)
        };
        assert!(has(LintKind::DeadCode, Severity::Warning), "dead user code: {lints:?}");
        assert!(has(LintKind::DeadCode, Severity::Note), "implicit tail: {lints:?}");
        assert!(has(LintKind::FoldableConst, Severity::Note), "2 * 3: {lints:?}");
        assert!(has(LintKind::PromotableLoad, Severity::Note), "module load of n: {lints:?}");
    }

    #[test]
    fn type_stable_lint_fires_on_concrete_types() {
        // `t` joins Float with Float across the back-edge (const
        // provenance is lost, the type is not), so `t + 1.5` is
        // type-stable without being foldable.
        let src = "def f():\n    t = 0.0\n    for i in range(3):\n        t = t + 1.5\n    return t\nresult = f()\n";
        let code = compile(src).expect("compiles");
        let lints = lint::lint_module(&code).expect("verifies");
        assert!(lints.iter().any(|l| l.kind == LintKind::TypeStable), "{lints:?}");
    }
}
