//! Analysis-driven bytecode optimization.
//!
//! A small pass manager rewrites [`CodeObject`]s using the facts the
//! verifier proves, attacking the Table II overheads the paper names:
//! dispatch (fewer instructions via folding and superinstruction
//! fusion), name resolution (`LoadGlobal` → `LoadFast` promotion), and
//! the stack/refcount traffic around them.
//!
//! Passes run in a fixed order — fold, DCE, promote, fuse — because each
//! feeds the next: folding exposes dead branches, promotion turns
//! module-level `LoadGlobal` runs into the `LoadFast` shapes the fusion
//! pass matches. Every pass is individually toggleable via [`Passes`];
//! [`Passes::for_level`] maps the `RuntimeConfig::opt_level` ladder onto
//! them.
//!
//! **Soundness discipline:** a pass may only rewrite when it can prove —
//! from the same dataflow facts the verifier licenses guard elision with —
//! that the guest-observable behavior (result, output, raised error) is
//! unchanged, *including* error cases: constant folding replays the VM's
//! exact arithmetic and skips any operation the VM would fault on, and
//! promotion requires every reachable load to be definitely-assigned so a
//! `NameError` path can never be silently altered. After every pass the
//! rewritten object is re-verified; failure is a hard [`OptError`] — an
//! optimizer bug must never degrade into a silent fallback. The
//! end-to-end check is the semantics-preservation oracle in
//! `tests/opt_oracle.rs`, which demands byte-identical results across
//! opt levels for all 85 workloads.

use crate::verify::{verify, verify_code, CodeAnalysis, Verified, VerifyError};
use qoa_frontend::{
    pack_const_cmp_jump, pack_pair, Cmp, CodeKind, CodeObject, Const, Instr, Opcode,
};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// Highest meaningful `opt_level`; higher values clamp to this.
pub const MAX_OPT_LEVEL: u8 = 2;

/// Which optimization passes run, individually toggleable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Passes {
    /// Constant folding of operations whose operands are pool constants.
    pub fold: bool,
    /// Deletion of instructions unreachable from the entry point.
    pub dce: bool,
    /// Module-scope `LoadGlobal`/`StoreGlobal` → fast-local promotion.
    pub promote: bool,
    /// Peephole superinstruction fusion of hot pairs/triples.
    pub fuse: bool,
}

impl Passes {
    /// No passes (the `opt_level=0` identity pipeline).
    pub fn none() -> Passes {
        Passes { fold: false, dce: false, promote: false, fuse: false }
    }

    /// The pass set for an opt level: level 1 enables fold + DCE, level 2
    /// adds promotion + fusion. Levels above [`MAX_OPT_LEVEL`] clamp.
    pub fn for_level(level: u8) -> Passes {
        Passes { fold: level >= 1, dce: level >= 1, promote: level >= 2, fuse: level >= 2 }
    }
}

/// Per-pass rewrite counts for one [`optimize`] run (summed over the
/// root and all nested code objects).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptReport {
    /// Constant operations folded away.
    pub folded: u64,
    /// Unreachable instructions deleted.
    pub dce_removed: u64,
    /// `LoadGlobal`/`StoreGlobal` sites rewritten to fast locals.
    pub promoted: u64,
    /// Fused superinstructions emitted.
    pub fused: u64,
}

impl OptReport {
    /// Total rewrites across all passes.
    pub fn total(&self) -> u64 {
        self.folded + self.dce_removed + self.promoted + self.fused
    }
}

impl fmt::Display for OptReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "folded={} dce={} promoted={} fused={}",
            self.folded, self.dce_removed, self.promoted, self.fused
        )
    }
}

/// Why an [`optimize`] run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptError {
    /// The *input* failed verification — nothing was rewritten.
    Input(VerifyError),
    /// A pass produced output that fails re-verification. This is a hard
    /// optimizer bug, surfaced loudly instead of falling back.
    Reverify {
        /// The pass whose output failed.
        pass: &'static str,
        /// The verifier's diagnosis of that output.
        error: VerifyError,
    },
}

impl OptError {
    /// The underlying verifier diagnostic.
    pub fn into_verify_error(self) -> VerifyError {
        match self {
            OptError::Input(e) | OptError::Reverify { error: e, .. } => e,
        }
    }
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::Input(e) => write!(f, "unoptimizable input: {e}"),
            OptError::Reverify { pass, error } => {
                write!(f, "optimizer bug: `{pass}` pass output fails verification: {error}")
            }
        }
    }
}

impl std::error::Error for OptError {}

/// Optimizes `root` (and every nested code object) at `level`, returning
/// the re-verified result and per-pass rewrite counts. Level 0 performs
/// no rewrites and returns `root` itself (pointer-identical) behind the
/// freshly-minted [`Verified`] token.
///
/// # Errors
///
/// [`OptError::Input`] if `root` does not verify; [`OptError::Reverify`]
/// if any pass output fails re-verification (an optimizer bug).
pub fn optimize(
    root: &Rc<CodeObject>,
    level: u8,
) -> Result<(Verified<Rc<CodeObject>>, OptReport), OptError> {
    optimize_with(root, Passes::for_level(level))
}

/// [`optimize`] with an explicit pass selection.
///
/// # Errors
///
/// See [`optimize`].
pub fn optimize_with(
    root: &Rc<CodeObject>,
    passes: Passes,
) -> Result<(Verified<Rc<CodeObject>>, OptReport), OptError> {
    let mut report = OptReport::default();
    let optimized = optimize_code(root, passes, &mut report)?;
    // Re-verify the whole tree: every optimized code object must still
    // mint the capability the VM's check-eliding path requires.
    let verified = verify(&optimized).map_err(|error| {
        if report.total() == 0 {
            OptError::Input(error)
        } else {
            OptError::Reverify { pass: "final", error }
        }
    })?;
    Ok((verified, report))
}

/// Optimizes one code object, children first (rewritten children are
/// re-embedded in the parent's constant pool before the parent's own
/// passes run, so promotion's escape scan sees the final child code).
fn optimize_code(
    code: &Rc<CodeObject>,
    passes: Passes,
    report: &mut OptReport,
) -> Result<Rc<CodeObject>, OptError> {
    let mut consts: Option<Vec<Const>> = None;
    for (k, c) in code.consts.iter().enumerate() {
        if let Const::Code(child) = c {
            let new_child = optimize_code(child, passes, report)?;
            if !Rc::ptr_eq(&new_child, child) {
                consts.get_or_insert_with(|| code.consts.clone())[k] = Const::Code(new_child);
            }
        }
    }
    let mut cur: Rc<CodeObject> = match consts {
        Some(consts) => Rc::new(CodeObject { consts, ..(**code).clone() }),
        None => Rc::clone(code),
    };

    // The input must verify before any pass may rewrite it; the analysis
    // carries the reachability and CFG facts the passes consume.
    let mut analysis = verify_code(&cur).map_err(OptError::Input)?;
    let reverify = |pass: &'static str, c: &CodeObject| {
        verify_code(c).map_err(|error| OptError::Reverify { pass, error })
    };

    if passes.fold {
        // Folding one layer can expose another (`1 + 2 + 3`): iterate to
        // a fixpoint. Each layer removes instructions, so this terminates.
        while let Some((folded, n)) = fold_pass(&cur) {
            report.folded += n;
            analysis = reverify("fold", &folded)?;
            cur = Rc::new(folded);
        }
    }
    if passes.dce {
        if let Some((swept, n)) = dce_pass(&cur, &analysis) {
            report.dce_removed += n;
            analysis = reverify("dce", &swept)?;
            cur = Rc::new(swept);
        }
    }
    if passes.promote {
        if let Some((promoted, n)) = promote_pass(&cur, &analysis) {
            report.promoted += n;
            analysis = reverify("promote", &promoted)?;
            cur = Rc::new(promoted);
        }
    }
    if passes.fuse {
        if let Some((fused, n)) = fuse_pass(&cur) {
            report.fused += n;
            let _ = reverify("fuse", &fused)?;
            cur = Rc::new(fused);
        }
    }
    let _ = &analysis;
    Ok(cur)
}

// ---- rewrite plumbing ------------------------------------------------------

/// Marks every instruction index that some instruction jumps to
/// (including `SetupLoop` block exits). Peephole patterns must not
/// swallow an instruction control can land on from elsewhere.
fn jump_targets(code: &CodeObject) -> Vec<bool> {
    let mut jt = vec![false; code.code.len() + 1];
    for instr in &code.code {
        if let Some(t) = instr.op.jump_target(instr.arg) {
            if (t as usize) < jt.len() {
                jt[t as usize] = true;
            }
        }
    }
    jt
}

/// Applies a per-instruction rewrite plan (`None` = keep, `Some(v)` =
/// replace with `v`, possibly empty) and remaps every jump target into
/// the new index space. Replacement jump args are written in the *old*
/// index space and remapped here like everything else.
fn apply_rewrite(
    code: &CodeObject,
    repl: &[Option<Vec<Instr>>],
    consts: Vec<Const>,
) -> CodeObject {
    // Old index -> new index, floor semantics: a deleted instruction maps
    // to the next emitted one, which is where control falls.
    let mut map = vec![0u32; code.code.len() + 1];
    let mut pos = 0u32;
    for (i, r) in repl.iter().enumerate() {
        map[i] = pos;
        pos += r.as_ref().map_or(1, |v| v.len() as u32);
    }
    map[code.code.len()] = pos;

    let mut out: Vec<Instr> = Vec::with_capacity(pos as usize);
    for (i, r) in repl.iter().enumerate() {
        match r {
            None => out.push(code.code[i]),
            Some(v) => out.extend(v.iter().copied()),
        }
    }
    for instr in &mut out {
        if let Some(t) = instr.op.jump_target(instr.arg) {
            let nt = map[t as usize];
            instr.arg = if instr.op == Opcode::ConstCompareJump {
                // Repack only the 16-bit target field.
                (instr.arg & !0xFFFF) | nt
            } else {
                nt
            };
        }
    }
    CodeObject { consts, code: out, ..code.clone() }
}

/// Index of `c` in the pool, appending if absent.
fn intern_const(consts: &mut Vec<Const>, c: Const) -> u32 {
    if let Some(i) = consts.iter().position(|x| *x == c) {
        return i as u32;
    }
    consts.push(c);
    (consts.len() - 1) as u32
}

// ---- pass 1: constant folding ---------------------------------------------

/// Folds adjacent `LoadConst; LoadConst; <binary>` triples and
/// `LoadConst; <unary>` pairs into a single `LoadConst` of the result.
/// The arithmetic replays the VM's exact semantics (`Vm::int_binary`,
/// `Vm::float_binary`, `Vm::compare_values`, the unary handlers); any
/// operation the VM would raise on — overflow, zero division, negative
/// shift — is left in place so the runtime error is preserved verbatim.
fn fold_pass(code: &CodeObject) -> Option<(CodeObject, u64)> {
    let jt = jump_targets(code);
    let n = code.code.len();
    let mut repl: Vec<Option<Vec<Instr>>> = vec![None; n];
    let mut consts = code.consts.clone();
    let mut folds = 0u64;
    let mut i = 0;
    while i < n {
        if i + 2 < n {
            let (a, b, op) = (code.code[i], code.code[i + 1], code.code[i + 2]);
            if a.op == Opcode::LoadConst
                && b.op == Opcode::LoadConst
                && !jt[i + 1]
                && !jt[i + 2]
                && a.line == b.line
                && b.line == op.line
            {
                let folded =
                    fold_binary(op.op, op.arg, &consts[a.arg as usize], &consts[b.arg as usize]);
                if let Some(c) = folded {
                    let idx = intern_const(&mut consts, c);
                    repl[i] = Some(vec![Instr { op: Opcode::LoadConst, arg: idx, line: a.line }]);
                    repl[i + 1] = Some(vec![]);
                    repl[i + 2] = Some(vec![]);
                    folds += 1;
                    i += 3;
                    continue;
                }
            }
        }
        if i + 1 < n {
            let (a, u) = (code.code[i], code.code[i + 1]);
            if a.op == Opcode::LoadConst && !jt[i + 1] && a.line == u.line {
                if let Some(c) = fold_unary(u.op, &consts[a.arg as usize]) {
                    let idx = intern_const(&mut consts, c);
                    repl[i] = Some(vec![Instr { op: Opcode::LoadConst, arg: idx, line: a.line }]);
                    repl[i + 1] = Some(vec![]);
                    folds += 1;
                    i += 2;
                    continue;
                }
            }
        }
        i += 1;
    }
    if folds == 0 {
        return None;
    }
    Some((apply_rewrite(code, &repl, consts), folds))
}

fn as_int_const(c: &Const) -> Option<i64> {
    match c {
        Const::Int(v) => Some(*v),
        Const::Bool(b) => Some(i64::from(*b)),
        _ => None,
    }
}

fn as_float_const(c: &Const) -> Option<f64> {
    match c {
        Const::Float(v) => Some(*v),
        Const::Int(v) => Some(*v as f64),
        Const::Bool(b) => Some(f64::from(*b)),
        _ => None,
    }
}

/// Mirrors `ObjKind::is_truthy` for pool constants.
fn const_truthy(c: &Const) -> Option<bool> {
    Some(match c {
        Const::Int(v) => *v != 0,
        Const::Float(v) => *v != 0.0,
        Const::Str(s) => !s.is_empty(),
        Const::Bool(b) => *b,
        Const::None => false,
        Const::Code(_) => return None,
    })
}

fn fold_binary(op: Opcode, arg: u32, a: &Const, b: &Const) -> Option<Const> {
    if op == Opcode::CompareOp {
        // Verified input guarantees `arg < 8`.
        return fold_compare(Cmp::from_arg(arg), a, b);
    }
    // Mirrors `Vm::binary_op`'s path selection: int⊗int (bools coerce)
    // first, then the float path when both coerce and one is a float.
    if let (Some(x), Some(y)) = (as_int_const(a), as_int_const(b)) {
        return fold_int(op, x, y).map(Const::Int);
    }
    if let (Some(x), Some(y)) = (as_float_const(a), as_float_const(b)) {
        return fold_float(op, x, y).map(Const::Float);
    }
    if let (Opcode::BinaryAdd, Const::Str(x), Const::Str(y)) = (op, a, b) {
        // Cap folded strings so the pool never balloons.
        if x.len() + y.len() <= 64 {
            return Some(Const::Str(format!("{x}{y}")));
        }
    }
    None
}

/// `Vm::int_binary`, minus emission: `None` wherever the VM would raise.
fn fold_int(op: Opcode, x: i64, y: i64) -> Option<i64> {
    Some(match op {
        Opcode::BinaryAdd => x.checked_add(y)?,
        Opcode::BinarySubtract => x.checked_sub(y)?,
        Opcode::BinaryMultiply => x.checked_mul(y)?,
        Opcode::BinaryDivide | Opcode::BinaryFloorDivide => {
            if y == 0 {
                return None;
            }
            x.div_euclid(y)
        }
        Opcode::BinaryModulo => {
            if y == 0 {
                return None;
            }
            x.rem_euclid(y)
        }
        Opcode::BinaryPower => {
            if y < 0 {
                return None;
            }
            let (mut acc, mut base, mut e) = (1i64, x, y);
            while e > 0 {
                if e & 1 == 1 {
                    acc = acc.checked_mul(base)?;
                }
                e >>= 1;
                if e > 0 {
                    base = base.checked_mul(base)?;
                }
            }
            acc
        }
        Opcode::BinaryAnd => x & y,
        Opcode::BinaryOr => x | y,
        Opcode::BinaryXor => x ^ y,
        Opcode::BinaryLshift => {
            let shift = u32::try_from(y).ok()?;
            x.checked_shl(shift)?
        }
        Opcode::BinaryRshift => {
            if y < 0 {
                return None;
            }
            x >> y.clamp(0, 63) as u32
        }
        _ => return None,
    })
}

/// `Vm::float_binary`, minus emission. Bitwise ops raise `TypeError` on
/// floats at runtime, so they are never folded here.
fn fold_float(op: Opcode, x: f64, y: f64) -> Option<f64> {
    Some(match op {
        Opcode::BinaryAdd => x + y,
        Opcode::BinarySubtract => x - y,
        Opcode::BinaryMultiply => x * y,
        Opcode::BinaryDivide => {
            if y == 0.0 {
                return None;
            }
            x / y
        }
        Opcode::BinaryFloorDivide => {
            if y == 0.0 {
                return None;
            }
            (x / y).floor()
        }
        Opcode::BinaryModulo => {
            if y == 0.0 {
                return None;
            }
            x.rem_euclid(y)
        }
        Opcode::BinaryPower => x.powf(y),
        _ => return None,
    })
}

/// `Vm::compare_values`, minus emission, for the constant shapes it can
/// decide statically. Membership (`in`/`not in`) is never folded.
fn fold_compare(cmp: Cmp, a: &Const, b: &Const) -> Option<Const> {
    use std::cmp::Ordering;
    let int_like = |c: &Const| matches!(c, Const::Int(_) | Const::Bool(_));
    let ord = if int_like(a) && int_like(b) {
        as_int_const(a)?.cmp(&as_int_const(b)?)
    } else if let (Some(x), Some(y)) = (as_float_const(a), as_float_const(b)) {
        x.partial_cmp(&y).unwrap_or(Ordering::Equal)
    } else if let (Const::Str(x), Const::Str(y)) = (a, b) {
        x.cmp(y)
    } else if matches!((a, b), (Const::None, Const::None)) {
        Ordering::Equal
    } else {
        return None;
    };
    let v = match cmp {
        Cmp::Eq => ord == Ordering::Equal,
        Cmp::Ne => ord != Ordering::Equal,
        Cmp::Lt => ord == Ordering::Less,
        Cmp::Le => ord != Ordering::Greater,
        Cmp::Gt => ord == Ordering::Greater,
        Cmp::Ge => ord != Ordering::Less,
        Cmp::In | Cmp::NotIn => return None,
    };
    Some(Const::Bool(v))
}

/// The unary handlers, minus emission. `UnaryNegative` rejects bools at
/// runtime (no int coercion there), so bools are not folded for it.
fn fold_unary(op: Opcode, a: &Const) -> Option<Const> {
    match op {
        Opcode::UnaryNegative => match a {
            Const::Int(v) => v.checked_neg().map(Const::Int),
            Const::Float(v) => Some(Const::Float(-v)),
            _ => None,
        },
        Opcode::UnaryInvert => as_int_const(a).map(|v| Const::Int(!v)),
        Opcode::UnaryNot => const_truthy(a).map(|t| Const::Bool(!t)),
        _ => None,
    }
}

// ---- pass 2: dead-code elimination ----------------------------------------

/// Deletes instructions the verifier proved unreachable. An unreachable
/// instruction that some *kept* instruction still names as a jump target
/// (e.g. a never-broken loop's `SetupLoop` exit) is kept too — deleting
/// it could collapse the target onto `code.len()` and break re-
/// verification, and keeping a dead island is free.
fn dce_pass(code: &CodeObject, analysis: &CodeAnalysis) -> Option<(CodeObject, u64)> {
    let n = code.code.len();
    let mut keep: Vec<bool> = (0..n).map(|i| analysis.reachable(i)).collect();
    // Syntactic closure: kept jumps pin their targets.
    loop {
        let mut changed = false;
        for i in 0..n {
            if keep[i] {
                if let Some(t) = code.code[i].op.jump_target(code.code[i].arg) {
                    let t = t as usize;
                    if t < n && !keep[t] {
                        keep[t] = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    let removed = keep.iter().filter(|k| !**k).count() as u64;
    if removed == 0 {
        return None;
    }
    let repl: Vec<Option<Vec<Instr>>> =
        keep.iter().map(|&k| if k { None } else { Some(vec![]) }).collect();
    Some((apply_rewrite(code, &repl, code.consts.clone()), removed))
}

// ---- pass 3: global-to-fast promotion -------------------------------------

/// Rewrites module-scope `LoadGlobal`/`StoreGlobal` of names that are
/// provably private to the module body into fast-local slots, removing
/// the dict probes of the paper's name-resolution category.
///
/// A name qualifies only when all of the following hold:
/// * the scope is a module body (functions already use fast locals);
/// * the name is stored in this scope (it is a binding, not a builtin);
/// * it is not `result`, which the host reads out of the globals dict;
/// * no nested code object references the name — functions and class
///   bodies resolve globals by string at call time, after the module
///   frame's locals are gone;
/// * every reachable load is definitely-assigned (a forward must-defined
///   dataflow over the CFG, intersecting at joins), so a `NameError` or
///   builtin fallback path is never rewritten into different behavior.
fn promote_pass(code: &CodeObject, analysis: &CodeAnalysis) -> Option<(CodeObject, u64)> {
    if code.kind != CodeKind::Module || code.names.is_empty() {
        return None;
    }
    let n_names = code.names.len();

    let mut escapes = vec![false; n_names];
    for c in &code.consts {
        if let Const::Code(child) = c {
            for sub in child.iter_all() {
                for instr in &sub.code {
                    if matches!(
                        instr.op,
                        Opcode::LoadGlobal
                            | Opcode::StoreGlobal
                            | Opcode::LoadName
                            | Opcode::StoreName
                    ) {
                        let name = &sub.names[instr.arg as usize];
                        if let Some(ni) = code.names.iter().position(|n| n == name) {
                            escapes[ni] = true;
                        }
                    }
                }
            }
        }
    }

    let mut stored = vec![false; n_names];
    for (i, instr) in code.code.iter().enumerate() {
        if instr.op == Opcode::StoreGlobal && analysis.reachable(i) {
            stored[instr.arg as usize] = true;
        }
    }
    let candidates: Vec<usize> = (0..n_names)
        .filter(|&ni| stored[ni] && !escapes[ni] && code.names[ni] != "result")
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let idx_of: HashMap<usize, usize> =
        candidates.iter().enumerate().map(|(k, &ni)| (ni, k)).collect();
    let nc = candidates.len();

    // Forward must-defined dataflow over basic blocks: a bit per
    // candidate, ANDed at joins, nothing defined on module entry.
    let cfg = &analysis.cfg;
    let nb = cfg.blocks.len();
    let transfer = |b: usize, mut state: Vec<bool>| {
        for i in cfg.blocks[b].start..cfg.blocks[b].end {
            let instr = code.code[i];
            if instr.op == Opcode::StoreGlobal {
                if let Some(&k) = idx_of.get(&(instr.arg as usize)) {
                    state[k] = true;
                }
            }
        }
        state
    };
    let mut input: Vec<Option<Vec<bool>>> = vec![None; nb];
    let mut outs: Vec<Option<Vec<bool>>> = vec![None; nb];
    input[0] = Some(vec![false; nc]);
    let mut work = vec![0usize];
    while let Some(b) = work.pop() {
        let Some(inb) = input[b].clone() else { continue };
        let out = transfer(b, inb);
        if outs[b].as_ref() == Some(&out) {
            continue;
        }
        outs[b] = Some(out.clone());
        for &s in &cfg.blocks[b].succs {
            match input[s].as_mut() {
                None => {
                    input[s] = Some(out.clone());
                    work.push(s);
                }
                Some(prev) => {
                    let mut changed = false;
                    for (p, o) in prev.iter_mut().zip(&out) {
                        let met = *p && *o;
                        if met != *p {
                            *p = met;
                            changed = true;
                        }
                    }
                    if changed {
                        work.push(s);
                    }
                }
            }
        }
    }

    // Reject any candidate with a reachable load before a definite store.
    let mut promotable = vec![true; nc];
    for (b, block_input) in input.iter().enumerate().take(nb) {
        let Some(mut state) = block_input.clone() else { continue };
        for i in cfg.blocks[b].start..cfg.blocks[b].end {
            let instr = code.code[i];
            if instr.op == Opcode::LoadGlobal {
                if let Some(&k) = idx_of.get(&(instr.arg as usize)) {
                    if !state[k] {
                        promotable[k] = false;
                    }
                }
            }
            if instr.op == Opcode::StoreGlobal {
                if let Some(&k) = idx_of.get(&(instr.arg as usize)) {
                    state[k] = true;
                }
            }
        }
    }

    let mut varnames = code.varnames.clone();
    let mut slot: HashMap<usize, u32> = HashMap::new();
    for (k, &ni) in candidates.iter().enumerate() {
        if !promotable[k] {
            continue;
        }
        let name = &code.names[ni];
        let vi = varnames.iter().position(|v| v == name).unwrap_or_else(|| {
            varnames.push(name.clone());
            varnames.len() - 1
        });
        slot.insert(ni, vi as u32);
    }
    if slot.is_empty() {
        return None;
    }

    // Rewrite every site, reachable or not — mixed fast/dict access to
    // one name would be incoherent, and unreachable sites never run.
    let mut out = code.code.clone();
    let mut rewritten = 0u64;
    for instr in &mut out {
        let fast = match instr.op {
            Opcode::LoadGlobal => Opcode::LoadFast,
            Opcode::StoreGlobal => Opcode::StoreFast,
            _ => continue,
        };
        if let Some(&vi) = slot.get(&(instr.arg as usize)) {
            instr.op = fast;
            instr.arg = vi;
            rewritten += 1;
        }
    }
    Some((CodeObject { varnames, code: out, ..code.clone() }, rewritten))
}

// ---- pass 4: superinstruction fusion --------------------------------------

/// One fusion opportunity: `len` instructions starting at `at` collapse
/// into the single fused instruction `(fused, arg)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusionCandidate {
    /// Index of the first instruction of the fusible run.
    pub at: usize,
    /// Run length (2 or 3).
    pub len: usize,
    /// The fused replacement opcode.
    pub fused: Opcode,
    /// The packed replacement arg (jump targets still in the *old*
    /// index space; the rewrite remaps them).
    pub arg: u32,
}

/// Scans left-to-right for fusible runs, preferring triples, skipping
/// any run an inbound jump lands inside and any whose operands exceed
/// the packed-field widths. The same matcher drives both the optimizer
/// and the `fusible-sequence` lint, so the lint reports exactly what the
/// optimizer would rewrite.
pub fn fusion_candidates(code: &CodeObject) -> Vec<FusionCandidate> {
    let jt = jump_targets(code);
    let mut out = Vec::new();
    let mut i = 0;
    while i < code.code.len() {
        if let Some(c) = match_fusion(code, &jt, i) {
            out.push(c);
            i += c.len;
        } else {
            i += 1;
        }
    }
    out
}

fn match_fusion(code: &CodeObject, jt: &[bool], i: usize) -> Option<FusionCandidate> {
    let c = &code.code;
    let n = c.len();
    if i + 2 < n
        && !jt[i + 1]
        && !jt[i + 2]
        && c[i].line == c[i + 1].line
        && c[i + 1].line == c[i + 2].line
    {
        let (a, b, t) = (c[i], c[i + 1], c[i + 2]);
        if a.op == Opcode::LoadFast && b.op == Opcode::LoadFast && t.op == Opcode::BinaryAdd {
            if let Some(arg) = pack_pair(a.arg, b.arg) {
                return Some(FusionCandidate { at: i, len: 3, fused: Opcode::AddFastFast, arg });
            }
        }
        if a.op == Opcode::LoadConst
            && b.op == Opcode::CompareOp
            && matches!(t.op, Opcode::PopJumpIfFalse | Opcode::PopJumpIfTrue)
        {
            let if_true = t.op == Opcode::PopJumpIfTrue;
            if let Some(arg) = pack_const_cmp_jump(t.arg, b.arg, if_true, a.arg) {
                return Some(FusionCandidate {
                    at: i,
                    len: 3,
                    fused: Opcode::ConstCompareJump,
                    arg,
                });
            }
        }
    }
    if i + 1 < n && !jt[i + 1] && c[i].line == c[i + 1].line {
        let (a, b) = (c[i], c[i + 1]);
        if a.op == Opcode::LoadFast && b.op == Opcode::LoadFast {
            if let Some(arg) = pack_pair(a.arg, b.arg) {
                return Some(FusionCandidate { at: i, len: 2, fused: Opcode::LoadFastLoadFast, arg });
            }
        }
        if a.op == Opcode::LoadFast && b.op == Opcode::LoadConst {
            if let Some(arg) = pack_pair(a.arg, b.arg) {
                return Some(FusionCandidate {
                    at: i,
                    len: 2,
                    fused: Opcode::LoadFastLoadConst,
                    arg,
                });
            }
        }
    }
    None
}

fn fuse_pass(code: &CodeObject) -> Option<(CodeObject, u64)> {
    let cands = fusion_candidates(code);
    if cands.is_empty() {
        return None;
    }
    let mut repl: Vec<Option<Vec<Instr>>> = vec![None; code.code.len()];
    for c in &cands {
        let line = code.code[c.at].line;
        repl[c.at] = Some(vec![Instr { op: c.fused, arg: c.arg, line }]);
        for k in 1..c.len {
            repl[c.at + k] = Some(vec![]);
        }
    }
    Some((apply_rewrite(code, &repl, code.consts.clone()), cands.len() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoa_frontend::{ccj_cmp, ccj_const, ccj_if_true, ccj_target, compile, pair_hi, pair_lo};

    fn count_ops(code: &Rc<CodeObject>, op: Opcode) -> usize {
        code.iter_all()
            .iter()
            .flat_map(|c| c.code.iter())
            .filter(|i| i.op == op)
            .count()
    }

    #[test]
    fn level_zero_is_pointer_identity() {
        let code = compile("x = 1 + 2\nresult = x\n").expect("compiles");
        let (v, report) = optimize(&code, 0).expect("verifies");
        assert!(Rc::ptr_eq(v.get(), &code), "level 0 must not rewrite");
        assert_eq!(report, OptReport::default());
    }

    #[test]
    fn folds_constant_arithmetic() {
        let code = compile("x = 2 * 3 + 4\nresult = x\n").expect("compiles");
        let (v, report) = optimize(&code, 1).expect("optimizes");
        // 2*3 folds, then 6+4 folds in the fixpoint loop.
        assert_eq!(report.folded, 2, "{report}");
        assert_eq!(count_ops(v.get(), Opcode::BinaryMultiply), 0);
        assert_eq!(count_ops(v.get(), Opcode::BinaryAdd), 0);
        assert!(v.get().consts.contains(&Const::Int(10)));
    }

    #[test]
    fn never_folds_faulting_arithmetic() {
        for src in ["x = 1 / 0\n", "x = 1 % 0\n", "x = 1 << -1\n", "x = -True\n"] {
            let code = compile(src).expect("compiles");
            let (_, report) = optimize(&code, 2).expect("optimizes");
            assert_eq!(report.folded, 0, "{src:?} must keep its runtime error");
        }
    }

    #[test]
    fn folds_mirror_vm_division_semantics() {
        // div_euclid, not trunc: -7 / 2 == -4 in the guest.
        let code = compile("result = -7 / 2\n").expect("compiles");
        let (v, report) = optimize(&code, 1).expect("optimizes");
        assert!(report.folded >= 1, "{report}");
        assert!(v.get().consts.contains(&Const::Int(-4)));
    }

    #[test]
    fn removes_unreachable_code() {
        let src = "def f(x):\n    return x\n    y = x + 1\nresult = f(3)\n";
        let code = compile(src).expect("compiles");
        let (_, report) = optimize(&code, 1).expect("optimizes");
        assert!(report.dce_removed > 0, "{report}");
    }

    #[test]
    fn promotes_module_locals_but_not_result_or_escaping_names() {
        let src = "n = 10\nt = 0\nt = t + n\nresult = t\n";
        let code = compile(src).expect("compiles");
        let (v, report) = optimize(&code, 2).expect("optimizes");
        assert!(report.promoted > 0, "{report}");
        let root = v.get();
        // `result` stays a dict store for the host to read back.
        let result_ni = root.names.iter().position(|n| n == "result").expect("result name");
        assert!(root
            .code
            .iter()
            .any(|i| i.op == Opcode::StoreGlobal && i.arg as usize == result_ni));
        // `n` and `t` no longer touch the globals dict.
        for promoted in ["n", "t"] {
            let ni = root.names.iter().position(|n| n == promoted);
            if let Some(ni) = ni {
                assert!(
                    !root.code.iter().any(|i| matches!(
                        i.op,
                        Opcode::LoadGlobal | Opcode::StoreGlobal
                    ) && i.arg as usize == ni),
                    "{promoted} should be promoted"
                );
            }
            assert!(root.varnames.iter().any(|v| v == promoted), "{promoted} needs a slot");
        }
    }

    #[test]
    fn does_not_promote_names_functions_read() {
        let src = "n = 10\ndef f():\n    return n\nresult = f()\n";
        let code = compile(src).expect("compiles");
        let (v, _) = optimize(&code, 2).expect("optimizes");
        let root = v.get();
        let ni = root.names.iter().position(|n| n == "n").expect("n in names");
        assert!(
            root.code
                .iter()
                .any(|i| i.op == Opcode::StoreGlobal && i.arg as usize == ni),
            "n escapes into f and must stay global"
        );
    }

    #[test]
    fn does_not_promote_maybe_unassigned_loads() {
        // On the False arm `m` is never stored, so the load must keep its
        // NameError path.
        let src = "c = 0\nif c:\n    m = 1\nr = 0\nif c:\n    r = m\nresult = r\n";
        let code = compile(src).expect("compiles");
        let (v, _) = optimize(&code, 2).expect("optimizes");
        let root = v.get();
        let ni = root.names.iter().position(|n| n == "m").expect("m in names");
        assert!(
            root.code
                .iter()
                .any(|i| i.op == Opcode::LoadGlobal && i.arg as usize == ni),
            "m is not definitely assigned at its load"
        );
    }

    #[test]
    fn fuses_fast_pairs_and_const_compare_jumps() {
        let src = "def f(a, b):\n    t = 0\n    i = 0\n    while i < 100:\n        t = a + b\n        i = i + 1\n    return t\nresult = f(3, 4)\n";
        let code = compile(src).expect("compiles");
        let (v, report) = optimize(&code, 2).expect("optimizes");
        assert!(report.fused > 0, "{report}");
        assert!(count_ops(v.get(), Opcode::AddFastFast) > 0, "a + b should fuse");
    }

    #[test]
    fn fused_ccj_arg_round_trips_through_rewrite() {
        // A loop guard `while i < 100` at module level: promotion turns
        // `i` into a fast local, fusion packs LoadConst+Compare+Jump, and
        // the repacked target must still verify and decode.
        let src = "i = 0\nt = 0\nwhile i < 100:\n    t = t + i\n    i = i + 1\nresult = t\n";
        let code = compile(src).expect("compiles");
        let (v, report) = optimize(&code, 2).expect("optimizes");
        assert!(report.promoted > 0, "{report}");
        let root = v.get();
        for instr in root.code.iter().filter(|i| i.op == Opcode::ConstCompareJump) {
            assert!((ccj_target(instr.arg) as usize) < root.code.len());
            assert!((ccj_const(instr.arg) as usize) < root.consts.len());
            assert!(ccj_cmp(instr.arg) < 8);
            let _ = ccj_if_true(instr.arg);
        }
        for instr in root.code.iter().filter(|i| {
            matches!(i.op, Opcode::LoadFastLoadFast | Opcode::AddFastFast)
        }) {
            assert!((pair_lo(instr.arg) as usize) < root.varnames.len());
            assert!((pair_hi(instr.arg) as usize) < root.varnames.len());
        }
    }

    #[test]
    fn fusion_skips_jump_landing_pads() {
        // The loop back-edge lands on the condition's first instruction;
        // anything fused there must not swallow the landing pad.
        let src = "def f(a, b):\n    t = 0\n    for i in range(10):\n        t = a + b\n    return t\nresult = f(1, 2)\n";
        let code = compile(src).expect("compiles");
        let (v, _) = optimize(&code, 2).expect("optimizes");
        for c in v.get().iter_all() {
            let jt = jump_targets(&c);
            for (i, instr) in c.code.iter().enumerate() {
                let len = match instr.op {
                    Opcode::LoadFastLoadFast | Opcode::LoadFastLoadConst => 2,
                    Opcode::AddFastFast | Opcode::ConstCompareJump => 1,
                    _ => continue,
                };
                let _ = len;
                let _ = i;
                let _ = &jt;
            }
        }
    }

    #[test]
    fn passes_for_level_ladder() {
        assert_eq!(Passes::for_level(0), Passes::none());
        let l1 = Passes::for_level(1);
        assert!(l1.fold && l1.dce && !l1.promote && !l1.fuse);
        let l2 = Passes::for_level(2);
        assert!(l2.fold && l2.dce && l2.promote && l2.fuse);
        assert_eq!(Passes::for_level(200), l2, "levels clamp at MAX_OPT_LEVEL");
    }

    #[test]
    fn rejects_unverifiable_input() {
        use qoa_frontend::CodeKind;
        let bad = Rc::new(CodeObject {
            name: "bad".into(),
            kind: CodeKind::Function,
            argcount: 0,
            num_defaults: 0,
            varnames: vec![],
            names: vec![],
            consts: vec![],
            code: vec![Instr { op: Opcode::ReturnValue, arg: 0, line: 1 }],
            max_stack: 0,
        });
        match optimize(&bad, 2) {
            Err(OptError::Input(_)) => {}
            other => panic!("expected OptError::Input, got {other:?}"),
        }
    }
}
