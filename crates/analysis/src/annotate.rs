//! Static overhead-category annotation.
//!
//! The paper's methodology is a *static* labeling of interpreter source
//! regions with Table II categories, weighed dynamically by cycles. This
//! module is the static half applied to guest bytecode: every opcode maps
//! to the micro-op category profile its interpreter handler emits on its
//! common path (dispatch prologue, value-stack traffic, refcounting, type
//! checks, C-helper call chains, ...), mirroring `vm::interp`.
//!
//! Summing the profiles over a program's static instructions yields a
//! predicted Fig. 4-style share table with *every instruction weighted
//! equally* — no execution frequencies. Comparing it against the dynamic
//! attribution (`fig04-static` prints both side by side) shows how much
//! of the dynamic picture is loop weighting rather than opcode mix.

use qoa_frontend::{CodeObject, Instr, Opcode};
use qoa_model::{Category, CategoryMap};
use std::rc::Rc;

/// Accumulator for a modeled micro-op profile.
struct Profile(CategoryMap<u64>);

impl Profile {
    fn new() -> Profile {
        // Every bytecode starts with the dispatch prologue (fetch,
        // decode, computed goto) and ends in the handler's unannotated
        // Execute residual, as in `Vm::step`.
        let mut p = Profile(CategoryMap::default());
        p.add(Category::Dispatch, 4);
        p.add(Category::Execute, 6);
        p
    }

    fn add(&mut self, cat: Category, n: u64) -> &mut Profile {
        self.0[cat] += n;
        self
    }

    /// One value-stack push or pop: pointer math + slot traffic.
    fn stack(&mut self, n: u64) -> &mut Profile {
        self.add(Category::RegTransfer, n).add(Category::Stack, 2 * n)
    }

    fn incref(&mut self, n: u64) -> &mut Profile {
        self.add(Category::GarbageCollection, 2 * n)
    }

    fn decref(&mut self, n: u64) -> &mut Profile {
        self.add(Category::GarbageCollection, 3 * n)
    }

    /// A modeled C call/return pair (`Vm::c_call` + `Vm::c_return`).
    fn ccall(&mut self) -> &mut Profile {
        self.add(Category::CFunctionCall, 10)
    }

    fn typecheck(&mut self, n: u64) -> &mut Profile {
        self.add(Category::TypeCheck, 2 * n)
    }

    fn unbox(&mut self, n: u64) -> &mut Profile {
        self.add(Category::BoxUnbox, n)
    }

    fn alloc(&mut self) -> &mut Profile {
        self.add(Category::ObjectAllocation, 6)
    }

    /// One dict probe sequence (`Vm::dict_lookup`, single-probe case).
    fn lookup(&mut self, cat: Category) -> &mut Profile {
        self.add(cat, 5)
    }

    /// One dict insert (`Vm::dict_insert`, probe + winning-slot writes).
    fn insert(&mut self, cat: Category) -> &mut Profile {
        self.add(cat, 7)
    }
}

/// The modeled micro-op category profile of one static instruction, as
/// the CPython-style interpreter would execute it on its common path.
pub fn instr_profile(instr: Instr) -> CategoryMap<u64> {
    use Category as C;
    let n = u64::from(instr.arg);
    let mut p = Profile::new();
    match instr.op {
        Opcode::Nop => {}
        Opcode::LoadConst => {
            p.add(C::RegTransfer, 1).add(C::ConstLoad, 1).incref(1).stack(1);
        }
        Opcode::PopTop => {
            p.stack(1).decref(1);
        }
        Opcode::DupTop => {
            p.incref(1).stack(1);
        }
        Opcode::DupTopTwo => {
            p.incref(2).stack(2);
        }
        Opcode::RotTwo => {
            p.add(C::Stack, 2);
        }
        Opcode::RotThree => {
            p.add(C::Stack, 3);
        }
        Opcode::LoadFast => {
            p.add(C::RegTransfer, 1).add(C::Execute, 1).incref(1).stack(1);
        }
        Opcode::StoreFast => {
            p.stack(1).add(C::RegTransfer, 1).add(C::Execute, 1).decref(1);
        }
        Opcode::LoadGlobal => {
            p.ccall().lookup(C::NameResolution).incref(1).stack(1);
        }
        Opcode::StoreGlobal => {
            p.stack(1).insert(C::NameResolution);
        }
        Opcode::LoadName => {
            // Class-namespace probe with globals fallback.
            p.lookup(C::NameResolution).lookup(C::NameResolution).incref(1).stack(1);
        }
        Opcode::StoreName => {
            p.stack(1).insert(C::NameResolution);
        }
        Opcode::LoadAttr => {
            p.stack(1).ccall().lookup(C::NameResolution).incref(1).decref(1).stack(1);
        }
        Opcode::StoreAttr => {
            p.stack(2).insert(C::NameResolution).decref(1);
        }
        Opcode::BinarySubscr => {
            p.stack(2)
                .typecheck(2)
                .unbox(1)
                .add(C::ErrorCheck, 2)
                .add(C::Execute, 3)
                .incref(1)
                .decref(2)
                .stack(1);
        }
        Opcode::StoreSubscr => {
            p.stack(3).typecheck(2).unbox(1).add(C::ErrorCheck, 2).add(C::Execute, 2).decref(2);
        }
        Opcode::DeleteSubscr => {
            p.stack(2).typecheck(2).unbox(1).add(C::ErrorCheck, 2).add(C::Execute, 2).decref(2);
        }
        Opcode::BinaryAdd
        | Opcode::BinarySubtract
        | Opcode::BinaryMultiply
        | Opcode::BinaryDivide
        | Opcode::BinaryFloorDivide
        | Opcode::BinaryModulo
        | Opcode::BinaryPower
        | Opcode::BinaryAnd
        | Opcode::BinaryOr
        | Opcode::BinaryXor
        | Opcode::BinaryLshift
        | Opcode::BinaryRshift => {
            // ceval int fast path: typecheck both, unbox both, one ALU,
            // box the result, release the operands.
            p.stack(2).typecheck(2).unbox(2).add(C::Execute, 1).alloc().decref(2).stack(1);
        }
        Opcode::UnaryNegative | Opcode::UnaryInvert => {
            p.stack(1).typecheck(1).unbox(1).add(C::Execute, 1).alloc().decref(1).stack(1);
        }
        Opcode::UnaryNot => {
            p.stack(1).typecheck(1).add(C::Execute, 1).incref(1).decref(1).stack(1);
        }
        Opcode::CompareOp => {
            p.stack(2).typecheck(2).unbox(2).add(C::Execute, 1).incref(1).decref(2).stack(1);
        }
        Opcode::JumpAbsolute => {
            p.add(C::RichControlFlow, 1);
        }
        Opcode::PopJumpIfFalse | Opcode::PopJumpIfTrue => {
            p.stack(1).typecheck(1).add(C::RichControlFlow, 1).add(C::Execute, 1).decref(1);
        }
        Opcode::JumpIfFalseOrPop | Opcode::JumpIfTrueOrPop => {
            p.typecheck(1).add(C::RichControlFlow, 1).add(C::Execute, 1).stack(1).decref(1);
        }
        Opcode::SetupLoop => {
            p.add(C::RichControlFlow, 4);
        }
        Opcode::PopBlock => {
            p.add(C::RichControlFlow, 2);
        }
        Opcode::BreakLoop => {
            p.add(C::RichControlFlow, 3);
        }
        Opcode::GetIter => {
            p.stack(1).typecheck(1).ccall().alloc().stack(1);
        }
        Opcode::ForIter => {
            // iternext through a function pointer, exhaustion branch not
            // taken, next element pushed.
            p.add(C::FunctionResolution, 1)
                .ccall()
                .add(C::Execute, 2)
                .add(C::RichControlFlow, 1)
                .stack(1);
        }
        Opcode::BuildList | Opcode::BuildTuple => {
            p.stack(n).alloc().add(C::Execute, n).stack(1);
        }
        Opcode::BuildMap => {
            p.stack(2 * n).alloc().add(C::Execute, 7 * n).stack(1);
        }
        Opcode::BuildSlice => {
            p.stack(2).alloc().stack(1);
        }
        Opcode::UnpackSequence => {
            p.stack(1)
                .typecheck(1)
                .add(C::ErrorCheck, 2)
                .add(C::Execute, n)
                .incref(n)
                .stack(n)
                .decref(1);
        }
        Opcode::CallFunction => {
            // Pop callee + args, helper call chain, frame allocation and
            // argument binding (the paper's function setup).
            p.stack(n + 1).typecheck(1).ccall().alloc().add(C::FunctionSetup, 4 + 2 * n);
        }
        Opcode::ReturnValue => {
            p.stack(2).add(C::FunctionSetup, 4).decref(2);
        }
        Opcode::MakeFunction => {
            p.stack(n + 1).alloc().add(C::FunctionSetup, 2).decref(1).stack(1);
        }
        Opcode::BuildClass => {
            p.stack(2).alloc().decref(1).stack(1);
        }
        // Fused superinstructions: one dispatch prologue covers what the
        // unfused sequence paid two or three times, and operands that the
        // fused handler keeps in registers skip the value-stack round
        // trip. The per-object work (refcounts, type checks, allocation)
        // is unchanged — fusion only removes interpreter overhead.
        Opcode::LoadFastLoadFast => {
            p.add(C::RegTransfer, 2).add(C::Execute, 2).incref(2).stack(2);
        }
        Opcode::LoadFastLoadConst => {
            p.add(C::RegTransfer, 2).add(C::Execute, 1).add(C::ConstLoad, 1).incref(2).stack(2);
        }
        Opcode::AddFastFast => {
            // Both operands flow straight from the local slots into the
            // ALU; only the result touches the value stack.
            p.add(C::RegTransfer, 2)
                .add(C::Execute, 2)
                .incref(2)
                .typecheck(2)
                .unbox(2)
                .add(C::Execute, 1)
                .alloc()
                .decref(2)
                .stack(1);
        }
        Opcode::ConstCompareJump => {
            // Pop the LHS, load the packed constant, compare, branch —
            // the intermediate bool is consumed without a stack trip.
            p.stack(1)
                .add(C::RegTransfer, 1)
                .add(C::ConstLoad, 1)
                .incref(1)
                .typecheck(2)
                .unbox(2)
                .add(C::Execute, 1)
                .incref(1)
                .decref(3)
                .add(C::RichControlFlow, 1)
                .add(C::Execute, 1);
        }
    }
    p.0
}

/// Sums [`instr_profile`] over every instruction of `code` (one code
/// object, no nesting).
pub fn code_counts(code: &CodeObject) -> CategoryMap<u64> {
    let mut total = CategoryMap::default();
    for &instr in &code.code {
        total.merge(&instr_profile(instr));
    }
    total
}

/// Sums [`instr_profile`] over every instruction of `root` and all
/// nested code objects.
pub fn static_counts(root: &Rc<CodeObject>) -> CategoryMap<u64> {
    let mut total = CategoryMap::default();
    for code in root.iter_all() {
        total.merge(&code_counts(&code));
    }
    total
}

/// Normalizes [`static_counts`] into per-category shares of the modeled
/// micro-op total (all zeros for an empty program).
pub fn static_shares(root: &Rc<CodeObject>) -> CategoryMap<f64> {
    let counts = static_counts(root);
    let total = counts.total() as f64;
    let mut shares = CategoryMap::default();
    if total > 0.0 {
        for cat in Category::ALL {
            shares[cat] = counts[cat] as f64 / total;
        }
    }
    shares
}
