//! Control-flow graphs over guest bytecode.
//!
//! A [`Cfg`] partitions a code object's instruction stream into basic
//! blocks and records the static successor edges between them. Leaders
//! are the entry point, every jump target (including `SetupLoop`'s block
//! exit), and every instruction following a jump or a terminator.
//!
//! `BreakLoop` has no *static* successor: its transfer target lives on
//! the block stack. The dataflow pass in [`crate::verify`] resolves it
//! from the abstract block stack; at the CFG level the edge is covered by
//! `SetupLoop`'s exit edge, exactly as in CPython's `stackdepth()`.

use crate::verify::{VerifyError, VerifyReason};
use qoa_frontend::CodeObject;

/// A maximal straight-line run of instructions.
#[derive(Debug, Clone)]
pub struct BasicBlock {
    /// Index of the first instruction.
    pub start: usize,
    /// One past the last instruction.
    pub end: usize,
    /// Successor block ids along static edges (fall-through and
    /// arg-encoded jumps, deduplicated).
    pub succs: Vec<usize>,
}

/// The control-flow graph of one code object.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Basic blocks in instruction order; block 0 is the entry.
    pub blocks: Vec<BasicBlock>,
    /// Map from instruction index to owning block id.
    pub block_of: Vec<usize>,
}

impl Cfg {
    /// Partitions `code` into basic blocks.
    ///
    /// # Errors
    ///
    /// Rejects an empty instruction stream and any jump whose target is
    /// outside the instruction array (the verifier's `BadJump`).
    pub fn build(code: &CodeObject) -> Result<Cfg, VerifyError> {
        let len = code.code.len();
        if len == 0 {
            return Err(VerifyError::at(code, 0, VerifyReason::EmptyCode));
        }
        let mut leader = vec![false; len];
        leader[0] = true;
        for (i, instr) in code.code.iter().enumerate() {
            if let Some(target) = instr.op.jump_target(instr.arg) {
                let target = target as usize;
                if target >= len {
                    return Err(VerifyError::at(
                        code,
                        i,
                        VerifyReason::BadJump { target, len },
                    ));
                }
                leader[target] = true;
            }
            let splits_after =
                instr.op.is_jump() || !instr.op.has_fallthrough();
            if splits_after && i + 1 < len {
                leader[i + 1] = true;
            }
        }

        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; len];
        for (i, &is_leader) in leader.iter().enumerate() {
            if is_leader {
                blocks.push(BasicBlock { start: i, end: i, succs: Vec::new() });
            }
            let id = blocks.len() - 1;
            block_of[i] = id;
            blocks[id].end = i + 1;
        }

        for block in &mut blocks {
            let last = block.end - 1;
            let instr = code.code[last];
            let mut succs = Vec::new();
            if instr.op.has_fallthrough() && last + 1 < len {
                succs.push(block_of[last + 1]);
            }
            if let Some(target) = instr.op.jump_target(instr.arg) {
                let t = block_of[target as usize];
                if !succs.contains(&t) {
                    succs.push(t);
                }
            }
            block.succs = succs;
        }
        Ok(Cfg { blocks, block_of })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoa_frontend::compile;

    #[test]
    fn loop_produces_cycle() {
        let code = compile("t = 0\nwhile t < 3:\n    t = t + 1\nresult = t\n")
            .expect("compiles");
        let cfg = Cfg::build(&code).expect("cfg");
        assert!(cfg.blocks.len() >= 3, "loop should split blocks");
        // Some block jumps backwards (the loop back-edge).
        let back = cfg
            .blocks
            .iter()
            .enumerate()
            .any(|(id, b)| b.succs.iter().any(|&s| s <= id));
        assert!(back, "expected a back-edge in {:?}", cfg.blocks);
    }

    #[test]
    fn rejects_wild_jump() {
        use qoa_frontend::{CodeKind, Instr, Opcode};
        let code = CodeObject {
            name: "t".into(),
            kind: CodeKind::Function,
            argcount: 0,
            num_defaults: 0,
            varnames: vec![],
            names: vec![],
            consts: vec![],
            code: vec![Instr { op: Opcode::JumpAbsolute, arg: 7, line: 1 }],
            max_stack: 0,
        };
        assert!(Cfg::build(&code).is_err());
    }
}
