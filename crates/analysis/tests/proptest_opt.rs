//! Property tests for the static optimization pipeline.
//!
//! Two properties, over fuzzer-generated (random-but-verifiable)
//! programs:
//!
//! 1. **Soundness, per pass and composed** — for every pass selection
//!    (each pass alone, and all together at the top opt level), the
//!    optimizer's output re-verifies and interprets byte-identically to
//!    the input: same `result`, same output, same error. Fuel exhaustion
//!    is compared by kind only, since executing fewer instructions for
//!    the same program is precisely what the optimizer is for.
//! 2. **Level 0 is the identity** — no pass runs, no rewrite happens,
//!    and the returned code object is pointer-identical to the input.

use proptest::prelude::*;
use qoa_analysis::{optimize, optimize_with, Passes};
use qoa_frontend::CodeObject;
use qoa_model::CountingSink;
use qoa_vm::{Vm, VmConfig};
use std::rc::Rc;

/// Tight fuel: fuzz programs may loop forever.
const FUZZ_FUEL: u64 = 100_000;

#[derive(Debug, PartialEq, Eq)]
struct Run {
    result: Option<String>,
    output: Vec<String>,
    error: Option<String>,
}

fn run(code: &Rc<CodeObject>) -> Run {
    let cfg = VmConfig { max_steps: FUZZ_FUEL, ..VmConfig::default() };
    let mut vm = Vm::new(cfg, CountingSink::new());
    vm.load_program(code);
    let error = vm.run().err().map(|e| {
        let e = format!("{e:?}");
        // Optimized code legitimately runs out of fuel at a different
        // step count — fewer dispatches per iteration — so fuel cutoffs
        // compare by kind, not by step.
        if e.starts_with("FuelExhausted") { "FuelExhausted".to_string() } else { e }
    });
    Run { result: vm.global_display("result"), output: vm.output().to_vec(), error }
}

fn soup(stmts: &[String]) -> String {
    let mut src = stmts.join("\n");
    src.push('\n');
    src
}

/// Statement soup biased toward the optimizer's patterns: constant
/// arithmetic (folding), module-level names (promotion), loops with
/// comparisons against literals (ConstCompareJump fusion), and local
/// arithmetic inside functions (LoadFast/AddFastFast fusion).
fn stmt_strategy() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(
        prop_oneof![
            "[a-z]{1,3} = [0-9]{1,3}",
            "[a-z]{1,3} = [0-9]{1,2} [+*-] [0-9]{1,2}",
            "[a-z]{1,3} = [a-z]{1,3} [+*-] [0-9]{1,2}",
            "[a-z]{1,3} = [a-z]{1,3} \\+ [a-z]{1,3}",
            "result = [a-z0-9]{1,3}",
            "if [a-z]{1,3} < [0-9]{1,2}:",
            "    [a-z]{1,3} = [0-9]{1,2}",
            "while [a-z]{1,3} < [0-9]{1,2}:",
            "    break",
            "def [a-z]{1,3}\\([a-z]{1,2}\\):",
            "    return [a-z0-9]{1,3}",
            "for [a-z]{1,2} in range\\([0-9]{1,2}\\):",
        ],
        0..14,
    )
}

/// Every pass alone, then the full level-2 pipeline.
fn pass_selections() -> [(&'static str, Passes); 5] {
    [
        ("fold", Passes { fold: true, ..Passes::none() }),
        ("dce", Passes { dce: true, ..Passes::none() }),
        ("promote", Passes { promote: true, ..Passes::none() }),
        ("fuse", Passes { fuse: true, ..Passes::none() }),
        ("all", Passes::for_level(qoa_analysis::MAX_OPT_LEVEL)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Optimizer output re-verifies and interprets identically, for each
    /// pass in isolation and for the composed pipeline.
    #[test]
    fn optimized_programs_reverify_and_interpret_identically(stmts in stmt_strategy()) {
        let src = soup(&stmts);
        if let Ok(code) = qoa_frontend::compile(&src) {
            if qoa_analysis::verify(&code).is_err() {
                return Ok(());
            }
            let baseline = run(&code);
            for (name, passes) in pass_selections() {
                // `optimize_with` re-verifies internally; an Err here is
                // an optimizer bug by construction.
                let (v, _report) = optimize_with(&code, passes).unwrap_or_else(|e| {
                    panic!("pass `{name}` broke verification: {e}\nsource:\n{src}")
                });
                let opt = run(v.get());
                prop_assert_eq!(
                    &opt, &baseline,
                    "pass `{}` changed behavior\nsource:\n{}", name, src
                );
            }
        }
    }

    /// `opt_level = 0` performs no rewrites at all: the returned tree is
    /// the very same allocation.
    #[test]
    fn level_zero_is_identity(stmts in stmt_strategy()) {
        let src = soup(&stmts);
        if let Ok(code) = qoa_frontend::compile(&src) {
            if qoa_analysis::verify(&code).is_err() {
                return Ok(());
            }
            let (v, report) = optimize(&code, 0).expect("verifiable input");
            prop_assert!(Rc::ptr_eq(v.get(), &code), "level 0 rewrote the code object");
            prop_assert_eq!(report.total(), 0, "level 0 reported rewrites: {}", report);
        }
    }
}
