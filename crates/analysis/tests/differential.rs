//! Differential and fuzz-shaped property tests for the verifier and the
//! VM's check-elision path.
//!
//! Three properties:
//!
//! 1. Every bundled workload verifies, and runs **byte-identically**
//!    (same result, same output, same error) with dynamic guards on and
//!    off — plus the elided run must emit strictly fewer micro-ops (the
//!    dispatch-path speedup the `Verified` token buys).
//! 2. Anything the verifier accepts, the *checked* interpreter accepts:
//!    no panic and no malformed-bytecode-class error on any compiled
//!    program the fuzzer produces.
//! 3. The verifier itself is total: arbitrarily mutated or truncated
//!    bytecode produces `Ok` or a typed `VerifyError`, never a panic.

use proptest::prelude::*;
use qoa_analysis::verify;
use qoa_frontend::{CodeObject, Opcode};
use qoa_model::CountingSink;
use qoa_vm::{Vm, VmConfig};
use std::rc::Rc;

/// Ample fuel for the known-terminating bundled workloads.
const WORKLOAD_FUEL: u64 = 2_000_000_000;
/// Tight fuel for fuzz programs, which may loop forever.
const FUZZ_FUEL: u64 = 100_000;

struct Run {
    result: Option<String>,
    output: Vec<String>,
    micro_ops: u64,
    error: Option<String>,
}

fn run(code: &Rc<CodeObject>, elide: bool, fuel: u64) -> Run {
    let cfg = VmConfig { max_steps: fuel, ..VmConfig::default() };
    let mut vm = Vm::new(cfg, CountingSink::new());
    if elide {
        let v = verify(code).expect("caller verified the code");
        vm.load_verified(&v);
    } else {
        vm.load_program(code);
    }
    let error = vm.run().err().map(|e| format!("{e:?}"));
    let result = vm.global_display("result");
    let output = vm.output().to_vec();
    let (sink, _) = vm.finish();
    Run { result, output, micro_ops: sink.total(), error }
}

#[test]
fn all_workloads_run_identically_checked_vs_elided() {
    for suite in [qoa_workloads::python_suite(), qoa_workloads::jetstream_suite()] {
        for w in suite {
            let src = w.source(qoa_workloads::Scale::Tiny);
            let code =
                qoa_frontend::compile(&src).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            verify(&code).unwrap_or_else(|e| panic!("{} fails verification: {e}", w.name));
            let guarded = run(&code, false, WORKLOAD_FUEL);
            let elided = run(&code, true, WORKLOAD_FUEL);
            assert_eq!(guarded.error, elided.error, "{}: errors diverge", w.name);
            assert_eq!(guarded.result, elided.result, "{}: results diverge", w.name);
            assert_eq!(guarded.output, elided.output, "{}: outputs diverge", w.name);
            assert!(
                guarded.micro_ops > elided.micro_ops,
                "{}: elision saved nothing (guarded {} vs elided {})",
                w.name,
                guarded.micro_ops,
                elided.micro_ops
            );
        }
    }
}

/// Messages the guarded interpreter only produces on bytecode the
/// verifier is supposed to reject.
fn is_malformed_class(message: &str) -> bool {
    message.contains("value stack underflow")
        || message.contains("block stack underflow")
        || message.contains("out of bounds")
        || message.contains("internal error")
}

/// Every opcode, for mutation fuzzing — including the optimizer-only
/// fused superinstructions, whose packed args the verifier must also be
/// total over.
const OPCODES: [Opcode; 57] = [
    Opcode::LoadConst,
    Opcode::PopTop,
    Opcode::DupTop,
    Opcode::DupTopTwo,
    Opcode::RotTwo,
    Opcode::RotThree,
    Opcode::LoadFast,
    Opcode::StoreFast,
    Opcode::LoadGlobal,
    Opcode::StoreGlobal,
    Opcode::LoadName,
    Opcode::StoreName,
    Opcode::LoadAttr,
    Opcode::StoreAttr,
    Opcode::BinarySubscr,
    Opcode::StoreSubscr,
    Opcode::DeleteSubscr,
    Opcode::BinaryAdd,
    Opcode::BinarySubtract,
    Opcode::BinaryMultiply,
    Opcode::BinaryDivide,
    Opcode::BinaryFloorDivide,
    Opcode::BinaryModulo,
    Opcode::BinaryPower,
    Opcode::BinaryAnd,
    Opcode::BinaryOr,
    Opcode::BinaryXor,
    Opcode::BinaryLshift,
    Opcode::BinaryRshift,
    Opcode::UnaryNegative,
    Opcode::UnaryNot,
    Opcode::UnaryInvert,
    Opcode::CompareOp,
    Opcode::JumpAbsolute,
    Opcode::PopJumpIfFalse,
    Opcode::PopJumpIfTrue,
    Opcode::JumpIfFalseOrPop,
    Opcode::JumpIfTrueOrPop,
    Opcode::SetupLoop,
    Opcode::PopBlock,
    Opcode::BreakLoop,
    Opcode::GetIter,
    Opcode::ForIter,
    Opcode::BuildList,
    Opcode::BuildTuple,
    Opcode::BuildMap,
    Opcode::BuildSlice,
    Opcode::UnpackSequence,
    Opcode::CallFunction,
    Opcode::ReturnValue,
    Opcode::MakeFunction,
    Opcode::BuildClass,
    Opcode::LoadFastLoadFast,
    Opcode::LoadFastLoadConst,
    Opcode::AddFastFast,
    Opcode::ConstCompareJump,
    Opcode::Nop,
];

/// Statement soup: hits the code generator (and hence the verifier) far
/// more often than character soup.
fn soup(stmts: &[String]) -> String {
    let mut src = stmts.join("\n");
    src.push('\n');
    src
}

const STMT_PATTERNS: [&str; 10] = [
    "[a-z]{1,4} = [0-9]{1,4}",
    "[a-z]{1,4} = [a-z]{1,4} [+*-] [0-9]{1,3}",
    "[a-z]{1,4} = \\[[0-9]{1,2}, [0-9]{1,2}\\]",
    "if [a-z]{1,4}:",
    "    [a-z]{1,4} = [0-9]{1,3}",
    "while [a-z]{1,4}:",
    "    break",
    "def [a-z]{1,4}\\([a-z]{0,3}\\):",
    "    return [a-z0-9]{1,4}",
    "for [a-z]{1,2} in range\\([0-9]{1,3}\\):",
];

fn stmt_strategy() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(
        prop_oneof![
            STMT_PATTERNS[0],
            STMT_PATTERNS[1],
            STMT_PATTERNS[2],
            STMT_PATTERNS[3],
            STMT_PATTERNS[4],
            STMT_PATTERNS[5],
            STMT_PATTERNS[6],
            STMT_PATTERNS[7],
            STMT_PATTERNS[8],
            STMT_PATTERNS[9],
        ],
        0..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Verifier-accepts ⇒ the *checked* interpreter accepts: it neither
    /// panics nor reports a malformed-bytecode-class error. (Guest-level
    /// errors like NameError and fuel exhaustion are fine — the verifier
    /// proves structure, not semantics.)
    #[test]
    fn verified_programs_never_trip_dynamic_guards(stmts in stmt_strategy()) {
        let src = soup(&stmts);
        if let Ok(code) = qoa_frontend::compile(&src) {
            if verify(&code).is_ok() {
                let guarded = run(&code, false, FUZZ_FUEL);
                if let Some(e) = &guarded.error {
                    prop_assert!(
                        !is_malformed_class(e),
                        "verified program tripped a guard: {e}\nsource:\n{src}"
                    );
                }
                // And elision must not change observable behavior.
                let elided = run(&code, true, FUZZ_FUEL);
                prop_assert_eq!(&guarded.error, &elided.error, "source:\n{}", src);
                prop_assert_eq!(&guarded.result, &elided.result, "source:\n{}", src);
                prop_assert_eq!(&guarded.output, &elided.output, "source:\n{}", src);
            }
        }
    }

    /// The verifier is total over mutated bytecode: opcode/arg rewrites
    /// of real compiler output either verify or fail with a typed error,
    /// never a panic.
    #[test]
    fn verifier_is_total_on_mutated_bytecode(
        stmts in stmt_strategy(),
        mutations in proptest::collection::vec(
            (any::<usize>(), any::<u32>(), any::<usize>()),
            1..8,
        ),
        declared in 0u32..64,
    ) {
        let src = soup(&stmts);
        if let Ok(root) = qoa_frontend::compile(&src) {
            for code in root.iter_all() {
                let mut c = (*code).clone();
                if c.code.is_empty() {
                    continue;
                }
                for &(i, arg, opsel) in &mutations {
                    let i = i % c.code.len();
                    c.code[i].op = OPCODES[opsel % OPCODES.len()];
                    // Mix small (often in-range) and wild operands.
                    c.code[i].arg = if arg & 1 == 0 { arg % 8 } else { arg };
                }
                c.max_stack = declared as usize;
                let _ = qoa_analysis::verify_code(&c);
            }
        }
    }

    /// ... and over truncated bytecode (dangling jumps, missing
    /// terminators, half-built blocks).
    #[test]
    fn verifier_is_total_on_truncated_bytecode(
        stmts in stmt_strategy(),
        keep in any::<usize>(),
    ) {
        let src = soup(&stmts);
        if let Ok(root) = qoa_frontend::compile(&src) {
            for code in root.iter_all() {
                let mut c = (*code).clone();
                if c.code.is_empty() {
                    continue;
                }
                c.code.truncate(keep % c.code.len() + 1);
                let _ = qoa_analysis::verify_code(&c);
            }
        }
    }
}
