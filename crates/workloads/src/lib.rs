//! Benchmark workloads: the guest programs of the study.
//!
//! Two suites, mirroring the paper's §III setup:
//!
//! * **Python suite** — 48 programs named after the pyperformance / PyPy
//!   benchmarks the paper runs on CPython and PyPy (Fig. 4/5, 7/8, 10–15,
//!   17). Each is a real Pyl program written to land in the same
//!   behavioural class as its namesake: numeric kernels, object-oriented
//!   simulations, string/template processing, parsers, allocation-heavy
//!   churn, and native-library-dominated programs (pickle/regex/json), the
//!   last group reproducing the paper's ">64% of time in C library code"
//!   population.
//! * **JetStream suite** — 37 programs named after the JetStream 1.1
//!   benchmarks the paper runs on V8 (Fig. 6, 9, 16).
//!
//! Every workload takes a scale knob so the full-suite experiments stay
//! tractable on a laptop while preserving each program's character.

mod jetstream;
mod python_suite;

/// Which suite a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// The pyperformance/PyPy-analog suite (48 programs).
    Python,
    /// The JetStream-analog suite (37 programs).
    JetStream,
}

/// Behavioural class, used to sanity-check suite composition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    /// Numeric kernels (floats, matrices, simulations).
    Numeric,
    /// Object-oriented simulations and solvers.
    ObjectOriented,
    /// String building, templates, formatting.
    Strings,
    /// Parsers and state machines written in the guest language.
    Parsing,
    /// Container churn and allocation stress.
    DataStructures,
    /// Dominated by native ("C extension") library calls.
    NativeHeavy,
}

/// Workload size: multiplies each program's base iteration count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Scale {
    /// Smoke-test size (CI-friendly).
    Tiny,
    /// Default size for full-suite experiments.
    Small,
    /// Larger runs for high-fidelity single-benchmark studies.
    Full,
}

impl Scale {
    /// The iteration multiplier.
    pub fn factor(self) -> u32 {
        match self {
            Scale::Tiny => 1,
            Scale::Small => 4,
            Scale::Full => 16,
        }
    }
}

/// One benchmark program.
pub struct Workload {
    /// Name, matching the paper's figure x-axes.
    pub name: &'static str,
    /// Owning suite.
    pub suite: Suite,
    /// Behavioural class.
    pub kind: Kind,
    /// Base size parameter passed to the generator at `Scale::Tiny`.
    pub base: u32,
    source_fn: fn(u32) -> String,
}

impl Workload {
    /// Generates the program source at the given scale.
    pub fn source(&self, scale: Scale) -> String {
        (self.source_fn)(self.base * scale.factor())
    }

    /// Generates the program source with an explicit size parameter.
    pub fn source_with_n(&self, n: u32) -> String {
        (self.source_fn)(n)
    }
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("suite", &self.suite)
            .field("kind", &self.kind)
            .finish()
    }
}

/// The 48-program Python-analog suite, in the paper's Fig. 4 order.
pub fn python_suite() -> &'static [Workload] {
    python_suite::SUITE
}

/// The 37-program JetStream-analog suite, in the paper's Fig. 6 order.
pub fn jetstream_suite() -> &'static [Workload] {
    jetstream::SUITE
}

/// Looks up any workload by name across both suites.
pub fn by_name(name: &str) -> Option<&'static Workload> {
    python_suite()
        .iter()
        .chain(jetstream_suite().iter())
        .find(|w| w.name == name)
}

/// The subset of Python-suite benchmarks shown per-benchmark in the
/// paper's Fig. 8 microarchitecture sweeps.
pub const FIG8_BENCHMARKS: [&str; 8] = [
    "go",
    "float",
    "eparse",
    "spitfire",
    "regex_v8",
    "richards",
    "unpack_seq",
    "sym_integrate",
];

/// The subset shown per-benchmark in the nursery sweeps of Fig. 14/15.
pub const FIG14_BENCHMARKS: [&str; 8] = [
    "telco",
    "eparse",
    "fannkuch",
    "html5lib",
    "spitfire",
    "pyxl_bench",
    "unpack_seq",
    "logging_format",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes_match_the_paper() {
        assert_eq!(python_suite().len(), 48);
        assert_eq!(jetstream_suite().len(), 37);
    }

    #[test]
    fn names_are_unique_within_suites() {
        for suite in [python_suite(), jetstream_suite()] {
            let mut names: Vec<_> = suite.iter().map(|w| w.name).collect();
            names.sort();
            names.dedup();
            assert_eq!(names.len(), suite.len());
        }
    }

    #[test]
    fn figure_subsets_exist() {
        for n in FIG8_BENCHMARKS.iter().chain(FIG14_BENCHMARKS.iter()) {
            assert!(by_name(n).is_some(), "{n} missing");
        }
    }

    #[test]
    fn every_workload_compiles() {
        for w in python_suite().iter().chain(jetstream_suite().iter()) {
            let src = w.source(Scale::Tiny);
            qoa_frontend::compile(&src)
                .unwrap_or_else(|e| panic!("{} does not compile: {e}\n{src}", w.name));
        }
    }

    #[test]
    fn scales_are_monotone() {
        let w = by_name("fannkuch").expect("fannkuch exists");
        assert!(w.source(Scale::Tiny).len() <= w.source(Scale::Full).len() + 8);
        assert!(Scale::Tiny.factor() < Scale::Small.factor());
        assert!(Scale::Small.factor() < Scale::Full.factor());
    }

    #[test]
    fn native_heavy_group_is_represented() {
        // The paper's pickle/regex group must exist for the C-library
        // findings to reproduce.
        let heavy: Vec<_> = python_suite()
            .iter()
            .filter(|w| w.kind == Kind::NativeHeavy)
            .map(|w| w.name)
            .collect();
        for expected in ["pickle", "pickle_dict", "pickle_list", "unpickle", "regex_dna"] {
            assert!(heavy.contains(&expected), "{expected} not NativeHeavy: {heavy:?}");
        }
    }
}
