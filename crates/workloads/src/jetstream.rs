//! The 37 JetStream-analog workload programs (the paper's V8 suite), in
//! the Fig. 6 order.

use crate::{Kind, Suite, Workload};

macro_rules! w {
    ($name:literal, $kind:ident, $base:literal, $f:ident) => {
        Workload {
            name: $name,
            suite: Suite::JetStream,
            kind: Kind::$kind,
            base: $base,
            source_fn: $f,
        }
    };
}

/// The suite, in the paper's presentation order.
pub static SUITE: &[Workload] = &[
    w!("3d-cube", Numeric, 20, js_3d_cube),
    w!("3d-raytrace", Numeric, 5, js_3d_raytrace),
    w!("base64", Strings, 20, js_base64),
    w!("bigfib.cpp", Numeric, 60, js_bigfib),
    w!("box2d", Numeric, 25, js_box2d),
    w!("cdjs", ObjectOriented, 20, js_cdjs),
    w!("code-first-load", Parsing, 25, js_code_first_load),
    w!("code-multi-load", Parsing, 25, js_code_multi_load),
    w!("container.cpp", DataStructures, 200, js_container),
    w!("crypto", NativeHeavy, 40, js_crypto),
    w!("crypto-aes", Numeric, 8, js_crypto_aes),
    w!("crypto-md5", NativeHeavy, 60, js_crypto_md5),
    w!("crypto-sha1", NativeHeavy, 60, js_crypto_sha1),
    w!("date-format-tofte", Strings, 80, js_date_format_tofte),
    w!("date-format-xparb", Strings, 80, js_date_format_xparb),
    w!("delta-blue", ObjectOriented, 25, js_delta_blue),
    w!("dry.c", Numeric, 150, js_dry),
    w!("earley-boyer", DataStructures, 25, js_earley_boyer),
    w!("float-mm.c", Numeric, 6, js_float_mm),
    w!("gbemu", DataStructures, 15, js_gbemu),
    w!("gcc-loops.cpp", Numeric, 40, js_gcc_loops),
    w!("hash-map", DataStructures, 60, js_hash_map),
    w!("mandreel", Numeric, 50, js_mandreel),
    w!("n-body", Numeric, 35, js_n_body),
    w!("n-body.c", Numeric, 35, js_n_body_c),
    w!("navier-stokes", Numeric, 8, js_navier_stokes),
    w!("pdfjs", Parsing, 20, js_pdfjs),
    w!("proto-raytracer", Numeric, 5, js_proto_raytracer),
    w!("quicksort.c", DataStructures, 25, js_quicksort),
    w!("regex-dna", NativeHeavy, 8, js_regex_dna),
    w!("regexp-2010", NativeHeavy, 40, js_regexp_2010),
    w!("richards", ObjectOriented, 12, js_richards),
    w!("splay", ObjectOriented, 25, js_splay),
    w!("tagcloud", NativeHeavy, 25, js_tagcloud),
    w!("towers.c", DataStructures, 10, js_towers),
    w!("typescript", Parsing, 20, js_typescript),
    w!("zlib", NativeHeavy, 30, js_zlib),
];

fn js_3d_cube(n: u32) -> String {
    format!(
        "
# 3d-cube: rotate a unit cube through 3-D rotation matrices.
verts = []
for x in [-1.0, 1.0]:
    for y in [-1.0, 1.0]:
        for z in [-1.0, 1.0]:
            verts.append([x, y, z])

total = 0.0
for frame in range({n} * 10):
    ang = frame * 0.05
    ca = cos(ang)
    sa = sin(ang)
    for v in verts:
        x = v[0] * ca - v[1] * sa
        y = v[0] * sa + v[1] * ca
        z = v[2] * ca - x * sa * 0.1
        v[0] = x
        v[1] = y
        v[2] = z
    total = total + verts[0][0] + verts[7][2]
result = total
"
    )
}

fn js_3d_raytrace(n: u32) -> String {
    // The same ray-sphere kernel the Python suite uses, with a denser scene.
    crate::python_suite::SUITE
        .iter()
        .find(|w| w.name == "raytrace")
        .expect("raytrace exists")
        .source_with_n(n)
}

fn js_base64(n: u32) -> String {
    format!(
        "
# base64: pure-guest encode/decode round trip.
ALPHA = 'ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/'

def encode(data):
    out = []
    i = 0
    while i + 2 < len(data):
        a = data[i]
        b = data[i + 1]
        c = data[i + 2]
        out.append(ALPHA[a >> 2])
        out.append(ALPHA[((a & 3) << 4) | (b >> 4)])
        out.append(ALPHA[((b & 15) << 2) | (c >> 6)])
        out.append(ALPHA[c & 63])
        i = i + 3
    return ''.join(out)

data = []
for i in range(90):
    data.append((i * 37 + 11) % 256)
size = 0
for round in range({n}):
    s = encode(data)
    size = size + len(s)
result = size
"
    )
}

fn js_bigfib(n: u32) -> String {
    format!(
        "
# bigfib.cpp: iterative Fibonacci modulo a large prime (bignum stand-in).
total = 0
for round in range({n}):
    a = 0
    b = 1
    for i in range(500):
        a, b = b, (a + b) % 1000000007
    total = (total + a) % 1000000007
result = total
"
    )
}

fn js_box2d(n: u32) -> String {
    format!(
        "
# box2d: bouncing-ball physics integration with wall collisions.
class Body:
    def __init__(self, x, y, vx, vy):
        self.x = x
        self.y = y
        self.vx = vx
        self.vy = vy

bodies = []
for i in range(12):
    bodies.append(Body(float(i), float(i % 5), 0.3 + i * 0.01, 0.7 - i * 0.02))

bounces = 0
for step in range({n} * 20):
    for b in bodies:
        b.vy = b.vy - 0.01
        b.x = b.x + b.vx
        b.y = b.y + b.vy
        if b.y < 0.0:
            b.y = 0.0 - b.y
            b.vy = 0.0 - b.vy * 0.9
            bounces = bounces + 1
        if b.x < 0.0 or b.x > 20.0:
            b.vx = 0.0 - b.vx
            bounces = bounces + 1
result = bounces
"
    )
}

fn js_cdjs(n: u32) -> String {
    format!(
        "
# cdjs: collision detection — sort aircraft by position, check pairs.
rand_seed(5)
planes = []
for i in range(30):
    planes.append((randint(0, 1000), randint(0, 1000), i))

collisions = 0
for frame in range({n} * 2):
    moved = []
    for p in planes:
        moved.append(((p[0] + frame * 7) % 1000, (p[1] + frame * 3) % 1000, p[2]))
    moved.sort()
    for i in range(len(moved) - 1):
        a = moved[i]
        b = moved[i + 1]
        dx = a[0] - b[0]
        dy = a[1] - b[1]
        if dx * dx + dy * dy < 400:
            collisions = collisions + 1
    planes = moved
result = collisions
"
    )
}

fn js_code_first_load(n: u32) -> String {
    format!(
        "
# code-first-load: tokenize many distinct source snippets once each.
def lex(src):
    toks = 0
    i = 0
    while i < len(src):
        c = src[i]
        if c == ' ':
            i = i + 1
        elif (c >= 'a' and c <= 'z') or c == '_':
            while i < len(src) and ((src[i] >= 'a' and src[i] <= 'z') or src[i] == '_'):
                i = i + 1
            toks = toks + 1
        elif c >= '0' and c <= '9':
            while i < len(src) and src[i] >= '0' and src[i] <= '9':
                i = i + 1
            toks = toks + 1
        else:
            i = i + 1
            toks = toks + 1
    return toks

total = 0
for i in range({n} * 4):
    src = 'function f_%d (a, b) return a * %d + b end' % (i, i)
    total = total + lex(src)
result = total
"
    )
}

fn js_code_multi_load(n: u32) -> String {
    format!(
        "
# code-multi-load: tokenize the same sources repeatedly (warm load).
def lex(src):
    toks = 0
    i = 0
    while i < len(src):
        c = src[i]
        if c == ' ':
            i = i + 1
        elif (c >= 'a' and c <= 'z') or c == '_':
            while i < len(src) and ((src[i] >= 'a' and src[i] <= 'z') or src[i] == '_'):
                i = i + 1
            toks = toks + 1
        elif c >= '0' and c <= '9':
            while i < len(src) and src[i] >= '0' and src[i] <= '9':
                i = i + 1
            toks = toks + 1
        else:
            i = i + 1
            toks = toks + 1
    return toks

sources = []
for i in range(10):
    sources.append('function f_%d (a, b) return a * %d + b end' % (i, i))
total = 0
for round in range({n}):
    for src in sources:
        total = total + lex(src)
result = total
"
    )
}

fn js_container(n: u32) -> String {
    format!(
        "
# container.cpp: vector/map churn (push, erase, lookup).
total = 0
for round in range({n}):
    v = []
    for i in range(30):
        v.append(i * 2)
    m = {{}}
    for i in range(30):
        m[i] = v[i] + 1
    for i in range(0, 30, 3):
        v.remove(i * 2)
        del m[i]
    for k in m:
        total = total + m[k]
    total = total + len(v)
result = total
"
    )
}

fn js_crypto(n: u32) -> String {
    format!(
        "
# crypto: mixed checksum workload over message strings.
total = 0
for i in range({n} * 2):
    msg = 'message payload number %d with some entropy %d' % (i, i * 31)
    total = (total + crc32(msg) + md5(msg)) % 1000000007
result = total
"
    )
}

fn js_crypto_aes(n: u32) -> String {
    crate::python_suite::SUITE
        .iter()
        .find(|w| w.name == "crypto_pyaes")
        .expect("crypto_pyaes exists")
        .source_with_n(n)
}

fn js_crypto_md5(n: u32) -> String {
    format!(
        "
# crypto-md5: hash a growing message repeatedly.
msg = 'The quick brown fox jumps over the lazy dog. ' * 4
total = 0
for i in range({n} * 4):
    total = (total + md5(msg)) % 1000000007
    if i % 64 == 0:
        msg = msg + 'x'
result = total
"
    )
}

fn js_crypto_sha1(n: u32) -> String {
    format!(
        "
# crypto-sha1: hash chaining (output feeds the next message).
h = 12345
total = 0
for i in range({n} * 4):
    msg = 'block-%d-%d' % (i, h % 100000)
    h = md5(msg)
    total = (total + h) % 1000000007
result = total
"
    )
}

fn js_date_format_tofte(n: u32) -> String {
    format!(
        "
# date-format-tofte: render timestamps through format strings.
MONTHS = ['Jan', 'Feb', 'Mar', 'Apr', 'May', 'Jun', 'Jul', 'Aug', 'Sep', 'Oct', 'Nov', 'Dec']
size = 0
for t in range({n} * 4):
    days = t % 28 + 1
    month = MONTHS[t % 12]
    year = 2000 + t % 30
    h = t % 24
    m = (t * 7) % 60
    s = '%s %d, %d %d:%d' % (month, days, year, h, m)
    size = size + len(s)
result = size
"
    )
}

fn js_date_format_xparb(n: u32) -> String {
    format!(
        "
# date-format-xparb: render dates via concatenation and padding.
def pad(v):
    if v < 10:
        return '0' + str(v)
    return str(v)

size = 0
for t in range({n} * 4):
    y = 2000 + t % 30
    mo = t % 12 + 1
    d = t % 28 + 1
    s = str(y) + '-' + pad(mo) + '-' + pad(d) + 'T' + pad(t % 24) + ':' + pad((t * 3) % 60)
    size = size + len(s)
result = size
"
    )
}

fn js_delta_blue(n: u32) -> String {
    crate::python_suite::SUITE
        .iter()
        .find(|w| w.name == "deltablue")
        .expect("deltablue exists")
        .source_with_n(n)
}

fn js_dry(n: u32) -> String {
    format!(
        "
# dry.c: Dhrystone-like integer record shuffling.
rec1 = [0, 0, 0]
rec2 = [0, 0, 0]
total = 0
for i in range({n} * 20):
    rec1[0] = i
    rec1[1] = i % 7
    rec1[2] = rec1[0] + rec1[1]
    rec2[0] = rec1[2]
    rec2[1] = rec2[0] * 2
    rec2[2] = rec2[1] - rec1[0]
    if rec2[2] > rec1[2]:
        total = total + 1
    else:
        total = total + rec2[2] % 3
result = total
"
    )
}

fn js_earley_boyer(n: u32) -> String {
    format!(
        "
# earley-boyer: term rewriting over nested list structures.
def rewrite(term, depth):
    if depth > 6:
        return term
    if len(term) == 3 and term[0] == 'plus':
        l = rewrite(term[1], depth + 1)
        r = rewrite(term[2], depth + 1)
        if len(l) == 1 and len(r) == 1:
            return [l[0] + r[0]]
        return ['plus', l, r]
    if len(term) == 3 and term[0] == 'times':
        l = rewrite(term[1], depth + 1)
        r = rewrite(term[2], depth + 1)
        if len(l) == 1 and len(r) == 1:
            return [l[0] * r[0]]
        return ['times', l, r]
    return term

total = 0
for i in range({n} * 8):
    t = ['plus', ['times', [i % 5], [3]], ['plus', [2], [i % 7]]]
    res = rewrite(t, 0)
    total = total + res[0]
result = total
"
    )
}

fn js_float_mm(n: u32) -> String {
    format!(
        "
# float-mm.c: dense float matrix multiply.
SIZE = 10
a = []
b = []
for i in range(SIZE):
    ra = []
    rb = []
    for j in range(SIZE):
        ra.append(float(i + j) * 0.5)
        rb.append(float(i - j) * 0.25)
    a.append(ra)
    b.append(rb)
acc = 0.0
for round in range({n}):
    c = []
    for i in range(SIZE):
        row = []
        for j in range(SIZE):
            total = 0.0
            for k in range(SIZE):
                total = total + a[i][k] * b[k][j]
            row.append(total)
        c.append(row)
    acc = acc + c[SIZE - 1][SIZE - 1]
result = acc
"
    )
}

fn js_gbemu(n: u32) -> String {
    format!(
        "
# gbemu: emulator core — fetch/decode over byte memory with a dispatch dict.
mem = []
for i in range(256):
    mem.append((i * 67 + 13) % 256)

regs = {{'a': 0, 'b': 0, 'pc': 0}}
executed = 0
for cycle in range({n} * 40):
    op = mem[regs['pc'] % 256]
    regs['pc'] = regs['pc'] + 1
    kind = op % 5
    if kind == 0:
        regs['a'] = (regs['a'] + op) % 256
    elif kind == 1:
        regs['b'] = regs['a'] ^ op
    elif kind == 2:
        regs['a'] = (regs['a'] + regs['b']) % 256
    elif kind == 3:
        regs['pc'] = (regs['pc'] + op % 7) % 256
    else:
        mem[op % 256] = regs['a']
    executed = executed + 1
result = executed + regs['a'] + regs['b']
"
    )
}

fn js_gcc_loops(n: u32) -> String {
    format!(
        "
# gcc-loops.cpp: a battery of small vectorizable loops.
N = 60
x = []
y = []
for i in range(N):
    x.append(i * 3 % 17)
    y.append(i * 5 % 13)
total = 0
for round in range({n} * 4):
    for i in range(N):
        x[i] = x[i] + y[i]
    for i in range(N):
        y[i] = y[i] ^ (x[i] & 15)
    s = 0
    for i in range(N):
        s = s + x[i] * y[i]
    total = (total + s) % 1000000007
result = total
"
    )
}

fn js_hash_map(n: u32) -> String {
    format!(
        "
# hash-map: dict insert/lookup/delete stress.
total = 0
for round in range({n}):
    m = {{}}
    for i in range(120):
        m['k%d' % i] = i
    for i in range(120):
        total = total + m['k%d' % i]
    for i in range(0, 120, 2):
        del m['k%d' % i]
    total = total + len(m)
result = total
"
    )
}

fn js_mandreel(n: u32) -> String {
    format!(
        "
# mandreel: Mandelbrot escape iteration over a coarse grid.
count = 0
for round in range({n}):
    for py in range(12):
        for px in range(12):
            cr = px / 6.0 - 1.5
            ci = py / 6.0 - 1.0
            zr = 0.0
            zi = 0.0
            it = 0
            while it < 20 and zr * zr + zi * zi < 4.0:
                t = zr * zr - zi * zi + cr
                zi = 2.0 * zr * zi + ci
                zr = t
                it = it + 1
            count = count + it
result = count
"
    )
}

fn js_n_body(n: u32) -> String {
    crate::python_suite::SUITE
        .iter()
        .find(|w| w.name == "nbody")
        .expect("nbody exists")
        .source_with_n(n)
}

fn js_n_body_c(n: u32) -> String {
    format!(
        "
# n-body.c: the same simulation with flat parallel arrays and no helper
# structure (the C-port style).
px = [0.0, 4.84, 8.34]
py = [0.0, -1.16, 4.12]
vx = [0.0, 0.606, -1.010]
vy = [0.0, 2.811, 1.825]
ms = [39.47, 0.037, 0.011]
for step in range({n} * 20):
    for i in range(3):
        for j in range(3):
            if i != j:
                dx = px[i] - px[j]
                dy = py[i] - py[j]
                d2 = dx * dx + dy * dy + 0.01
                f = 0.001 * ms[j] / (d2 * sqrt(d2))
                vx[i] = vx[i] - dx * f
                vy[i] = vy[i] - dy * f
    for i in range(3):
        px[i] = px[i] + vx[i] * 0.01
        py[i] = py[i] + vy[i] * 0.01
result = px[1] + py[2]
"
    )
}

fn js_navier_stokes(n: u32) -> String {
    format!(
        "
# navier-stokes: diffusion + advection passes over a velocity grid.
G = 14
u = []
for i in range(G):
    row = []
    for j in range(G):
        row.append(sin(float(i * j)) * 0.1)
    u.append(row)
for step in range({n} * 3):
    for i in range(1, G - 1):
        for j in range(1, G - 1):
            u[i][j] = (u[i][j] + 0.2 * (u[i - 1][j] + u[i + 1][j] + u[i][j - 1] + u[i][j + 1])) / 1.8
total = 0.0
for i in range(G):
    for j in range(G):
        total = total + u[i][j]
result = total
"
    )
}

fn js_pdfjs(n: u32) -> String {
    format!(
        "
# pdfjs: tokenize a PDF-ish object stream.
doc = ''
for i in range(12):
    doc = doc + '%d 0 obj << /Type /Page /Count %d >> endobj ' % (i, i * 2)

def scan(src):
    objs = 0
    nums = 0
    names = 0
    i = 0
    while i < len(src):
        c = src[i]
        if c == '/':
            names = names + 1
            i = i + 1
        elif c >= '0' and c <= '9':
            while i < len(src) and src[i] >= '0' and src[i] <= '9':
                i = i + 1
            nums = nums + 1
        elif c == 'o' and i + 2 < len(src) and src[i + 1] == 'b' and src[i + 2] == 'j':
            objs = objs + 1
            i = i + 3
        else:
            i = i + 1
    return objs * 100 + nums + names

total = 0
for round in range({n} * 2):
    total = total + scan(doc)
result = total
"
    )
}

fn js_proto_raytracer(n: u32) -> String {
    format!(
        "
# proto-raytracer: ray-plane checkerboard rendering.
hits = 0
for frame in range({n} * 2):
    for py in range(16):
        for px in range(16):
            dx = px / 8.0 - 1.0
            dy = py / 8.0 - 1.0
            dz = 1.0
            if dy < -0.05:
                t = -1.0 / dy
                wx = dx * t
                wz = dz * t
                cell = int(wx + 100.0) + int(wz + 100.0)
                if cell % 2 == 0:
                    hits = hits + 1
result = hits
"
    )
}

fn js_quicksort(n: u32) -> String {
    format!(
        "
# quicksort.c: in-guest quicksort with explicit stack.
rand_seed(3)
total = 0
for round in range({n}):
    xs = []
    for i in range(80):
        xs.append(randint(0, 10000))
    stack = [(0, len(xs) - 1)]
    while len(stack) > 0:
        lo, hi = stack.pop()
        if lo >= hi:
            continue
        pivot = xs[(lo + hi) // 2]
        i = lo
        j = hi
        while i <= j:
            while xs[i] < pivot:
                i = i + 1
            while xs[j] > pivot:
                j = j - 1
            if i <= j:
                xs[i], xs[j] = xs[j], xs[i]
                i = i + 1
                j = j - 1
        stack.append((lo, j))
        stack.append((i, hi))
    total = total + xs[0] + xs[79]
result = total
"
    )
}

fn js_regex_dna(n: u32) -> String {
    crate::python_suite::SUITE
        .iter()
        .find(|w| w.name == "regex_dna")
        .expect("regex_dna exists")
        .source_with_n(n)
}

fn js_regexp_2010(n: u32) -> String {
    format!(
        "
# regexp-2010: the browser regex mix — URLs, tags, numbers.
text = ''
for i in range(10):
    text = text + '<a href=\"http://site%d.example/path%d\">link %d</a> ' % (i, i * 3, i)
count = 0
for round in range({n}):
    count = count + len(re_findall('http://[a-z0-9.]+/[a-z0-9]+', text))
    count = count + len(re_findall('<a [^>]*>', text))
    count = count + len(re_findall('[0-9]+', text))
result = count
"
    )
}

fn js_richards(n: u32) -> String {
    crate::python_suite::SUITE
        .iter()
        .find(|w| w.name == "richards")
        .expect("richards exists")
        .source_with_n(n)
}

fn js_splay(n: u32) -> String {
    format!(
        "
# splay: binary search tree with root-insertion (splay-like) updates.
class Node:
    def __init__(self, key):
        self.key = key
        self.left = None
        self.right = None

def insert(root, key):
    if root == None:
        return Node(key)
    cur = root
    while True:
        if key < cur.key:
            if cur.left == None:
                cur.left = Node(key)
                break
            cur = cur.left
        elif key > cur.key:
            if cur.right == None:
                cur.right = Node(key)
                break
            cur = cur.right
        else:
            break
    return root

def count(root):
    if root == None:
        return 0
    return 1 + count(root.left) + count(root.right)

rand_seed(11)
total = 0
for round in range({n}):
    root = None
    for i in range(60):
        root = insert(root, randint(0, 1000))
    total = total + count(root)
result = total
"
    )
}

fn js_tagcloud(n: u32) -> String {
    format!(
        "
# tagcloud: JSON parse + weight computation + markup generation.
tags = []
for i in range(20):
    tags.append({{'tag': 'word%d' % i, 'popularity': (i * 7) % 19 + 1}})
payload = json_dumps(tags)
size = 0
for round in range({n}):
    data = json_loads(payload)
    parts = []
    for t in data:
        w = 8 + t['popularity'] * 2
        parts.append('<span style=\"font-size:%dpx\">%s</span>' % (w, t['tag']))
    size = size + len(''.join(parts))
result = size
"
    )
}

fn js_towers(n: u32) -> String {
    format!(
        "
# towers.c: Towers of Hanoi with explicit move counting.
def hanoi(k, src, dst, via, counter):
    if k == 0:
        return
    hanoi(k - 1, src, via, dst, counter)
    counter[0] = counter[0] + 1
    hanoi(k - 1, via, dst, src, counter)

total = 0
for round in range({n}):
    counter = [0]
    hanoi(10, 0, 2, 1, counter)
    total = total + counter[0]
result = total
"
    )
}

fn js_typescript(n: u32) -> String {
    format!(
        "
# typescript: scanner over a typed source snippet (keywords vs idents).
KEYWORDS = {{'var': 1, 'function': 1, 'return': 1, 'if': 1, 'else': 1, 'number': 1, 'string': 1}}

def scan(src):
    kw = 0
    ident = 0
    i = 0
    while i < len(src):
        c = src[i]
        if (c >= 'a' and c <= 'z') or (c >= 'A' and c <= 'Z'):
            word = ''
            while i < len(src) and ((src[i] >= 'a' and src[i] <= 'z') or (src[i] >= 'A' and src[i] <= 'Z')):
                word = word + src[i]
                i = i + 1
            if word in KEYWORDS:
                kw = kw + 1
            else:
                ident = ident + 1
        else:
            i = i + 1
    return kw * 10 + ident

src = 'function add (a number, b number) number if a else return a var x'
total = 0
for round in range({n} * 6):
    total = total + scan(src)
result = total
"
    )
}

fn js_zlib(n: u32) -> String {
    format!(
        "
# zlib: native compression over a text corpus.
corpus = ''
for i in range(12):
    corpus = corpus + 'the quick brown fox %d jumps over the lazy dog ' % i
size = 0
for round in range({n} * 2):
    size = size + len(compress(corpus))
result = size
"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn suite_has_37_entries() {
        assert_eq!(SUITE.len(), 37);
    }

    #[test]
    fn all_sources_have_results() {
        for w in SUITE {
            let src = w.source(Scale::Tiny);
            assert!(src.contains("result"), "{} lacks a result", w.name);
        }
    }
}
